//! Criterion bench for Table 1: TPC-H Q1-Q10 on the columnar engine, the
//! row store and the library scripts.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite_tpch::{frames, queries};

fn bench_tpch(c: &mut Criterion) {
    let data = monetlite_tpch::generate(0.005, 1);
    let db = monetlite::Database::open_in_memory();
    // Caches off: each iteration re-issues the same query text.
    let mut conn = monetlite_bench::uncached_conn(&db);
    monetlite_tpch::load_monet(&mut conn, &data).unwrap();
    let rdb = monetlite_rowstore::RowDb::in_memory();
    monetlite_tpch::load_rowdb(&rdb, &data).unwrap();
    let session = monetlite_frame::Session::unlimited();
    let fr = frames::TpchFrames::load(&session, &data).unwrap();

    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    for n in 1..=10usize {
        let sql = queries::sql(n);
        g.bench_function(format!("monetlite_q{n}"), |b| b.iter(|| conn.query(sql).unwrap()));
        g.bench_function(format!("rowstore_q{n}"), |b| b.iter(|| rdb.query(sql).unwrap()));
        g.bench_function(format!("library_q{n}"), |b| b.iter(|| frames::run(n, &fr).unwrap()));
    }
    g.finish();
}

criterion_group!(benches, bench_tpch);
criterion_main!(benches);
