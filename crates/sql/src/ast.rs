//! Abstract syntax tree for the monetlite SQL dialect.

use monetlite_types::{LogicalType, Value};

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// SELECT query.
    Select(Box<SelectStmt>),
    /// CREATE VIEW name [(columns)] AS SELECT ... — the view's text is
    /// expanded at bind time like a named derived table (Q15's shape).
    CreateView {
        /// View name.
        name: String,
        /// Optional output column rename list.
        columns: Option<Vec<String>>,
        /// The defining query.
        query: Box<SelectStmt>,
    },
    /// DROP VIEW.
    DropView {
        /// View name.
        name: String,
        /// IF EXISTS given.
        if_exists: bool,
    },
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column name, type, nullable.
        columns: Vec<ColumnDef>,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
        /// IF EXISTS given.
        if_exists: bool,
    },
    /// INSERT INTO ... VALUES.
    Insert {
        /// Target table.
        table: String,
        /// Optional explicit column list.
        columns: Option<Vec<String>>,
        /// Value rows.
        rows: Vec<Vec<Expr>>,
    },
    /// DELETE FROM.
    Delete {
        /// Target table.
        table: String,
        /// Optional predicate.
        filter: Option<Expr>,
    },
    /// UPDATE ... SET.
    Update {
        /// Target table.
        table: String,
        /// Assignments.
        sets: Vec<(String, Expr)>,
        /// Optional predicate.
        filter: Option<Expr>,
    },
    /// CREATE \[ORDER\] INDEX (paper §3.1: ORDER INDEX is user-created;
    /// plain INDEX is accepted as a hint — MonetDB builds indexes
    /// automatically anyway).
    CreateIndex {
        /// Index name.
        name: String,
        /// Target table.
        table: String,
        /// Indexed column.
        column: String,
        /// True for CREATE ORDER INDEX.
        ordered: bool,
    },
    /// BEGIN / START TRANSACTION.
    Begin,
    /// COMMIT.
    Commit,
    /// ROLLBACK.
    Rollback,
    /// EXPLAIN: show the optimized plan / MAL program.
    Explain(Box<Statement>),
}

/// Column definition in CREATE TABLE.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Logical type.
    pub ty: LogicalType,
    /// NULLs admitted.
    pub nullable: bool,
}

/// One `WITH name [(cols)] AS (SELECT ...)` common table expression.
/// Non-recursive: a CTE may reference only CTEs defined before it.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Optional output column rename list.
    pub columns: Option<Vec<String>>,
    /// The defining query.
    pub query: SelectStmt,
}

/// A SELECT query body.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SelectStmt {
    /// Leading WITH clause (visible to this query and its subqueries).
    pub ctes: Vec<Cte>,
    /// SELECT DISTINCT.
    pub distinct: bool,
    /// Projection list.
    pub projections: Vec<SelectItem>,
    /// FROM clause (empty = single-row SELECT of constants).
    pub from: Vec<TableRef>,
    /// WHERE predicate.
    pub where_clause: Option<Expr>,
    /// GROUP BY keys.
    pub group_by: Vec<Expr>,
    /// HAVING predicate.
    pub having: Option<Expr>,
    /// ORDER BY items.
    pub order_by: Vec<OrderItem>,
    /// LIMIT row count.
    pub limit: Option<u64>,
}

/// One projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `t.*`
    QualifiedWildcard(String),
    /// Expression with optional alias.
    Expr {
        /// The expression.
        expr: Expr,
        /// AS alias.
        alias: Option<String>,
    },
}

/// A FROM-clause item.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table with optional alias.
    Table {
        /// Table name.
        name: String,
        /// Alias.
        alias: Option<String>,
    },
    /// Derived table.
    Subquery {
        /// The inner query.
        query: Box<SelectStmt>,
        /// Mandatory alias.
        alias: String,
        /// Optional output column rename list: `(SELECT ...) AS t (a, b)`
        /// (TPC-H Q13's shape).
        columns: Option<Vec<String>>,
    },
    /// Explicit JOIN.
    Join {
        /// Left input.
        left: Box<TableRef>,
        /// Right input.
        right: Box<TableRef>,
        /// Join kind.
        kind: JoinKind,
        /// ON condition (None only for CROSS JOIN).
        on: Option<Expr>,
    },
}

/// Supported join kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// INNER JOIN.
    Inner,
    /// LEFT \[OUTER\] JOIN.
    Left,
    /// CROSS JOIN.
    Cross,
}

/// ORDER BY item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// Sort key expression (may be a 1-based output ordinal).
    pub expr: Expr,
    /// Descending order.
    pub desc: bool,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// COUNT(expr) / COUNT(*) when arg is None.
    Count,
    /// SUM.
    Sum,
    /// AVG.
    Avg,
    /// MIN.
    Min,
    /// MAX.
    Max,
    /// MEDIAN — MonetDB supports it natively; it is the blocking operator
    /// of the paper's Figure 2 example.
    Median,
}

/// Binary operators, in increasing precedence groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// OR
    Or,
    /// AND
    And,
    /// =
    Eq,
    /// <>
    NotEq,
    /// <
    Lt,
    /// <=
    LtEq,
    /// >
    Gt,
    /// >=
    GtEq,
    /// +
    Add,
    /// -
    Sub,
    /// *
    Mul,
    /// /
    Div,
    /// %
    Mod,
}

/// EXTRACT fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DateField {
    /// EXTRACT(YEAR ...)
    Year,
    /// EXTRACT(MONTH ...)
    Month,
    /// EXTRACT(DAY ...)
    Day,
}

/// Interval units for date arithmetic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntervalUnit {
    /// Days.
    Day,
    /// Months.
    Month,
    /// Years.
    Year,
}

/// Scalar expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference, optionally qualified.
    Column {
        /// Table qualifier.
        table: Option<String>,
        /// Column name.
        name: String,
    },
    /// Constant.
    Literal(Value),
    /// Bind-parameter placeholder produced by the plan-cache normalizer
    /// (`canon::normalize_select`); the parser never emits this. `index`
    /// is the 0-based slot in the extracted parameter vector.
    Param {
        /// 0-based slot in the bind vector.
        index: usize,
    },
    /// `INTERVAL '90' DAY`.
    Interval {
        /// Signed magnitude.
        value: i32,
        /// Unit.
        unit: IntervalUnit,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical NOT.
    Not(Box<Expr>),
    /// Arithmetic negation.
    Neg(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Operand.
        expr: Box<Expr>,
        /// IS NOT NULL.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern` (pattern is a literal string; MonetDBLite
    /// re-implemented LIKE without PCRE — see §3.4 *Dependencies* — and so
    /// do we, in the engines).
    Like {
        /// Operand.
        expr: Box<Expr>,
        /// Pattern with `%` and `_` wildcards.
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// Operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// NOT BETWEEN.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// Operand.
        expr: Box<Expr>,
        /// List members.
        list: Vec<Expr>,
        /// NOT IN.
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT ...)`.
    InSubquery {
        /// Operand.
        expr: Box<Expr>,
        /// Subquery producing one column.
        query: Box<SelectStmt>,
        /// NOT IN.
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT ...)`.
    Exists {
        /// The subquery.
        query: Box<SelectStmt>,
        /// NOT EXISTS.
        negated: bool,
    },
    /// Scalar subquery in expression position.
    ScalarSubquery(Box<SelectStmt>),
    /// Searched CASE.
    Case {
        /// WHEN cond THEN value pairs.
        branches: Vec<(Expr, Expr)>,
        /// ELSE value.
        else_expr: Option<Box<Expr>>,
    },
    /// Aggregate call (only valid in SELECT/HAVING/ORDER BY of a grouped
    /// query).
    Agg {
        /// Function.
        func: AggFunc,
        /// Argument (None = COUNT(*)).
        arg: Option<Box<Expr>>,
        /// DISTINCT modifier.
        distinct: bool,
    },
    /// EXTRACT(field FROM expr).
    Extract {
        /// Date part.
        field: DateField,
        /// Date expression.
        expr: Box<Expr>,
    },
    /// CAST(expr AS type).
    Cast {
        /// Operand.
        expr: Box<Expr>,
        /// Target type.
        ty: LogicalType,
    },
    /// Scalar function call (sqrt, abs, substring, ...).
    Function {
        /// Lower-cased function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
    },
}

impl Expr {
    /// Convenience: unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column { table: None, name: name.to_string() }
    }

    /// Convenience: integer literal.
    pub fn int(v: i32) -> Expr {
        Expr::Literal(Value::Int(v))
    }

    /// True if the expression (recursively) contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Agg { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) | Expr::Param { .. } | Expr::Interval { .. } => {
                false
            }
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) | Expr::Neg(e) => e.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::Between { expr, low, high, .. } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(|e| e.contains_aggregate())
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
            Expr::Case { branches, else_expr } => {
                branches.iter().any(|(c, v)| c.contains_aggregate() || v.contains_aggregate())
                    || else_expr.as_ref().is_some_and(|e| e.contains_aggregate())
            }
            Expr::Extract { expr, .. } => expr.contains_aggregate(),
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            Expr::Function { args, .. } => args.iter().any(|e| e.contains_aggregate()),
        }
    }
}

/// Render expressions back as SQL text. Used by binder diagnostics so an
/// unsupported construct is reported as the SQL fragment the user wrote,
/// not a debug dump of the AST.
impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Literal(v) => match v {
                // Embedded quotes must re-escape as '' or two distinct
                // literals render identically (and the text is unparseable).
                Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
                // Bare `1995-03-15` does not parse back as a date literal.
                Value::Date(_) => write!(f, "date '{v}'"),
                other => write!(f, "{other}"),
            },
            Expr::Param { index } => write!(f, "?{index}"),
            Expr::Interval { value, unit } => {
                let u = match unit {
                    IntervalUnit::Day => "day",
                    IntervalUnit::Month => "month",
                    IntervalUnit::Year => "year",
                };
                write!(f, "interval '{value}' {u}")
            }
            Expr::Binary { op, left, right } => {
                let o = match op {
                    BinOp::Or => "or",
                    BinOp::And => "and",
                    BinOp::Eq => "=",
                    BinOp::NotEq => "<>",
                    BinOp::Lt => "<",
                    BinOp::LtEq => "<=",
                    BinOp::Gt => ">",
                    BinOp::GtEq => ">=",
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Mod => "%",
                };
                write!(f, "({left} {o} {right})")
            }
            Expr::Not(e) => write!(f, "not {e}"),
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::IsNull { expr, negated } => {
                write!(f, "{expr} is {}null", if *negated { "not " } else { "" })
            }
            Expr::Like { expr, pattern, negated } => {
                write!(
                    f,
                    "{expr} {}like '{}'",
                    if *negated { "not " } else { "" },
                    pattern.replace('\'', "''")
                )
            }
            Expr::Between { expr, low, high, negated } => {
                write!(f, "{expr} {}between {low} and {high}", if *negated { "not " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "{expr} {}in (", if *negated { "not " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::InSubquery { expr, negated, .. } => {
                write!(f, "{expr} {}in (select ...)", if *negated { "not " } else { "" })
            }
            Expr::Exists { negated, .. } => {
                write!(f, "{}exists (select ...)", if *negated { "not " } else { "" })
            }
            Expr::ScalarSubquery(_) => write!(f, "(select ...)"),
            Expr::Case { branches, else_expr } => {
                write!(f, "case")?;
                for (c, v) in branches {
                    write!(f, " when {c} then {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " else {e}")?;
                }
                write!(f, " end")
            }
            Expr::Agg { func, arg, distinct } => {
                let name = format!("{func:?}").to_ascii_lowercase();
                match arg {
                    None => write!(f, "{name}(*)"),
                    Some(a) => {
                        write!(f, "{name}({}{a})", if *distinct { "distinct " } else { "" })
                    }
                }
            }
            Expr::Extract { field, expr } => {
                let p = match field {
                    DateField::Year => "year",
                    DateField::Month => "month",
                    DateField::Day => "day",
                };
                write!(f, "extract({p} from {expr})")
            }
            Expr::Cast { expr, ty } => write!(f, "cast({expr} as {ty})"),
            Expr::Function { name, args } => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_display_is_sql() {
        let e = Expr::Binary {
            op: BinOp::Eq,
            left: Box::new(Expr::Column { table: Some("l2".into()), name: "l_orderkey".into() }),
            right: Box::new(Expr::col("l_orderkey")),
        };
        assert_eq!(e.to_string(), "(l2.l_orderkey = l_orderkey)");
        let like = Expr::Like {
            expr: Box::new(Expr::col("s_comment")),
            pattern: "%Customer%Complaints%".into(),
            negated: true,
        };
        assert_eq!(like.to_string(), "s_comment not like '%Customer%Complaints%'");
    }

    #[test]
    fn contains_aggregate_walks_tree() {
        let agg =
            Expr::Agg { func: AggFunc::Sum, arg: Some(Box::new(Expr::col("x"))), distinct: false };
        let e = Expr::Binary { op: BinOp::Add, left: Box::new(Expr::int(1)), right: Box::new(agg) };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
        let case = Expr::Case {
            branches: vec![(
                Expr::col("c"),
                Expr::Agg { func: AggFunc::Count, arg: None, distinct: false },
            )],
            else_expr: None,
        };
        assert!(case.contains_aggregate());
    }
}
