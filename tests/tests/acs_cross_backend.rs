//! The ACS survey statistics must be identical regardless of which
//! backend exported the columns (Figure 8's premise: the engines differ
//! in export cost, not in answers).

use monetlite_acs::survey::{self, BufferSource, ColumnSource};
use monetlite_types::{ColumnBuffer, Result};

struct MonetBacked {
    conn: monetlite::Connection,
}

impl ColumnSource for MonetBacked {
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>> {
        let r = self.conn.query(&format!("SELECT {} FROM acs", names.join(", ")))?;
        Ok(r.to_buffers())
    }
}

struct RowBacked {
    db: monetlite_rowstore::RowDb,
}

impl ColumnSource for RowBacked {
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>> {
        let r = self.db.query(&format!("SELECT {} FROM acs", names.join(", ")))?;
        let mut bufs: Vec<ColumnBuffer> =
            r.types.iter().map(|&t| ColumnBuffer::with_capacity(t, r.rows.len())).collect();
        for row in &r.rows {
            for (b, v) in bufs.iter_mut().zip(row) {
                b.push(v)?;
            }
        }
        Ok(bufs)
    }
}

#[test]
fn statistics_identical_across_backends() {
    let d = monetlite_acs::wrangle(monetlite_acs::generate(800, 4)).unwrap();

    // Reference: direct in-memory buffers.
    let mut direct = BufferSource::from_data(&d);
    let expect = survey::analysis(&mut direct).unwrap();

    // Through the columnar engine.
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute(&monetlite_acs::ddl(&d)).unwrap();
    conn.append("acs", d.cols.clone()).unwrap();
    let mut monet = MonetBacked { conn };
    let got_m = survey::analysis(&mut monet).unwrap();

    // Through the row store.
    let rdb = monetlite_rowstore::RowDb::in_memory();
    rdb.execute(&monetlite_acs::ddl(&d)).unwrap();
    let rows: Vec<Vec<monetlite_types::Value>> =
        (0..d.rows).map(|r| d.cols.iter().map(|c| c.get(r)).collect()).collect();
    rdb.insert_rows("acs", rows).unwrap();
    let mut rowb = RowBacked { db: rdb };
    let got_r = survey::analysis(&mut rowb).unwrap();

    assert_eq!(expect.len(), got_m.len());
    assert_eq!(expect.len(), got_r.len());
    for ((le, ee), (lm, em)) in expect.iter().zip(&got_m) {
        assert_eq!(le, lm);
        assert!((ee.value - em.value).abs() <= 1e-6 * ee.value.abs().max(1.0), "{le}");
        assert!((ee.se - em.se).abs() <= 1e-6 * ee.se.abs().max(1.0), "{le} SE");
    }
    for ((le, ee), (lr, er)) in expect.iter().zip(&got_r) {
        assert_eq!(le, lr);
        assert!((ee.value - er.value).abs() <= 1e-6 * ee.value.abs().max(1.0), "{le}");
    }
}
