//! A loom-style deterministic-interleaving model checker for the
//! shared-state protocols of [`crate::pipeline`].
//!
//! The streaming engine's parallelism rests on three tiny protocols:
//!
//! 1. the **morsel cursor** — an `AtomicUsize` handing each worker the
//!    next morsel id, with an `AtomicBool` stop flag for limit
//!    early-exit;
//! 2. the **partial-aggregate freeze/merge** — per-thread accumulators
//!    frozen into a shared list when the memory budget trips, merged
//!    once after the fan-out joins;
//! 3. the **order-preserving collect** — per-morsel results tracked in a
//!    `Mutex<HashMap>` so a LIMIT can stop the scan as soon as the
//!    completed morsels form a long-enough contiguous prefix.
//!
//! Each protocol is modelled as a [`Model`]: an explicit state machine
//! whose `step(t)` executes thread `t`'s next *atomic* action (one
//! atomic RMW, one load/store, or one mutex critical section — the
//! units between which real threads can interleave). [`explore`] then
//! walks the whole reachable state graph: from every state it tries
//! every runnable thread, deduplicating states so the search is
//! exhaustive over interleavings without enumerating each of the
//! exponentially many schedules one by one. Terminal states (all
//! threads done) are checked against the protocol's invariants, and
//! their observable outputs are collected so tests can assert the
//! result is schedule-independent.
//!
//! This is the same exhaustive-bounded-interleaving idea as `loom`,
//! reduced to cloneable pure state machines — no vendored shim needed,
//! and counterexamples are plain states that print with `{:?}`.

use std::collections::HashSet;
use std::hash::Hash;

/// A bounded concurrent protocol as an explicit state machine.
///
/// States must be value types (`Clone + Eq + Hash`) so the explorer can
/// deduplicate them; `step` must perform exactly one atomic action of
/// one thread.
pub trait Model: Clone + Eq + Hash + std::fmt::Debug {
    /// Number of modelled threads.
    fn threads(&self) -> usize;
    /// True when thread `t` has no further step to take.
    fn done(&self, t: usize) -> bool;
    /// Execute thread `t`'s next atomic step. Only called when
    /// `!self.done(t)`.
    fn step(&mut self, t: usize);
    /// Safety invariants of a terminal state (all threads done).
    fn check_terminal(&self) -> Result<(), String>;
    /// The protocol's observable result in a terminal state — what the
    /// query would return. Tests assert this is identical across every
    /// reachable terminal, i.e. the outcome is schedule-independent.
    fn output(&self) -> String;
}

/// Exploration statistics: distinct states visited and the set of
/// distinct terminal outputs.
#[derive(Debug)]
pub struct Exploration {
    /// Distinct reachable states (the state graph's node count).
    pub states: usize,
    /// Terminal states reached (post-deduplication).
    pub terminals: usize,
    /// Distinct observable outputs across all terminals.
    pub outputs: HashSet<String>,
}

/// Hard cap on distinct states: a runaway model errors out instead of
/// consuming the test host's memory.
const MAX_STATES: usize = 4_000_000;

/// Exhaustively explore every interleaving of `init`'s threads.
///
/// The walk covers the full reachable state graph: every interleaving of
/// atomic steps passes through some path of this graph, and every
/// terminal state of every schedule is visited exactly once. Invariant
/// violations return `Err` with the offending terminal state's debug
/// rendering as the counterexample.
pub fn explore<M: Model>(init: M) -> Result<Exploration, String> {
    let mut seen: HashSet<M> = HashSet::new();
    let mut stack: Vec<M> = Vec::new();
    seen.insert(init.clone());
    stack.push(init);
    let mut terminals = 0usize;
    let mut outputs: HashSet<String> = HashSet::new();
    while let Some(s) = stack.pop() {
        let mut terminal = true;
        for t in 0..s.threads() {
            if s.done(t) {
                continue;
            }
            terminal = false;
            let mut next = s.clone();
            next.step(t);
            if !seen.contains(&next) {
                if seen.len() >= MAX_STATES {
                    return Err(format!("state space exceeds {MAX_STATES} states"));
                }
                seen.insert(next.clone());
                stack.push(next);
            }
        }
        if terminal {
            terminals += 1;
            s.check_terminal().map_err(|e| format!("{e}\ncounterexample: {s:?}"))?;
            outputs.insert(s.output());
        }
    }
    Ok(Exploration { states: seen.len(), terminals, outputs })
}

// ---------------------------------------------------------------------------
// Protocol 1: the morsel cursor (pipeline::drive's claim loop)
// ---------------------------------------------------------------------------

/// One worker's position in the claim loop. Mirrors `drive()` exactly:
/// the `fetch_add` claim and the bounds/stop check are *separate* atomic
/// actions, so the model can interleave other threads between them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CursorPc {
    /// About to `cursor.fetch_add(1)`.
    Claim,
    /// Claimed morsel in hand, about to check bounds + stop flag.
    Check(usize),
    /// Past the checks, about to consume the morsel.
    Consume(usize),
    /// Left the loop.
    Done,
}

/// Model of the `AtomicUsize` morsel cursor with `AtomicBool` stop flag.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MorselCursor {
    n_morsels: usize,
    /// `Some(k)`: consuming morsel `k` trips the limit (consume returns
    /// `Ok(false)`), setting the stop flag — the early-exit protocol.
    limit_at: Option<usize>,
    cursor: usize,
    stop: bool,
    pc: Vec<CursorPc>,
    /// Morsels consumed, per thread.
    consumed: Vec<Vec<usize>>,
}

impl MorselCursor {
    pub fn new(threads: usize, n_morsels: usize, limit_at: Option<usize>) -> MorselCursor {
        MorselCursor {
            n_morsels,
            limit_at,
            cursor: 0,
            stop: false,
            pc: vec![CursorPc::Claim; threads],
            consumed: vec![Vec::new(); threads],
        }
    }
}

impl Model for MorselCursor {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn done(&self, t: usize) -> bool {
        self.pc[t] == CursorPc::Done
    }

    fn step(&mut self, t: usize) {
        match self.pc[t] {
            CursorPc::Claim => {
                // cursor.fetch_add(1, Relaxed): one atomic RMW.
                let m = self.cursor;
                self.cursor += 1;
                self.pc[t] = CursorPc::Check(m);
            }
            CursorPc::Check(m) => {
                // `m >= n_morsels || stop.load(Relaxed)`.
                self.pc[t] = if m >= self.n_morsels || self.stop {
                    CursorPc::Done
                } else {
                    CursorPc::Consume(m)
                };
            }
            CursorPc::Consume(m) => {
                self.consumed[t].push(m);
                if self.limit_at == Some(m) {
                    // consume returned Ok(false): stop.store(true).
                    self.stop = true;
                    self.pc[t] = CursorPc::Done;
                } else {
                    self.pc[t] = CursorPc::Claim;
                }
            }
            CursorPc::Done => {}
        }
    }

    fn check_terminal(&self) -> Result<(), String> {
        let mut all: Vec<usize> = self.consumed.iter().flatten().copied().collect();
        all.sort_unstable();
        let distinct: HashSet<usize> = all.iter().copied().collect();
        if distinct.len() != all.len() {
            return Err(format!("morsel consumed twice: {all:?}"));
        }
        if let Some(&m) = all.iter().find(|&&m| m >= self.n_morsels) {
            return Err(format!("out-of-range morsel {m} consumed"));
        }
        match self.limit_at {
            None => {
                // No early exit: every morsel must be consumed exactly once.
                if all.len() != self.n_morsels {
                    return Err(format!(
                        "lost morsels: consumed {} of {}: {all:?}",
                        all.len(),
                        self.n_morsels
                    ));
                }
            }
            Some(k) => {
                // Early exit: the tripping morsel itself must have been
                // consumed (the stop flag is only set by its consumer).
                if !distinct.contains(&k) {
                    return Err(format!("limit morsel {k} never consumed: {all:?}"));
                }
            }
        }
        Ok(())
    }

    fn output(&self) -> String {
        match self.limit_at {
            // Without a limit the full consumed set is the observable.
            None => {
                let mut all: Vec<usize> = self.consumed.iter().flatten().copied().collect();
                all.sort_unstable();
                format!("{all:?}")
            }
            // With early exit the *guaranteed* observable is the limit
            // morsel; the racing tail is schedule-dependent by design.
            Some(k) => format!("limit hit at {k}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Protocol 2: partial-aggregate freeze/merge under the memory budget
// ---------------------------------------------------------------------------

/// One worker's position in the aggregate loop.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
enum AggPc {
    Claim,
    Check(usize),
    /// Fold morsel into the thread-local accumulator.
    Accum(usize),
    /// Budget tripped: push the frozen accumulator to the shared list
    /// (one mutex critical section).
    Freeze,
    /// Cursor exhausted: publish whatever the local accumulator holds.
    Flush,
    Done,
}

/// Model of morsel-parallel partial aggregation with budget freezes:
/// thread-local accumulators, a shared frozen-partials list, and a final
/// merge that must see every morsel's contribution exactly once.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AggMerge {
    n_morsels: usize,
    /// Local accumulators freeze after this many morsels (the modelled
    /// memory budget).
    freeze_after: usize,
    cursor: usize,
    pc: Vec<AggPc>,
    /// Thread-local partial: (sum, contributing morsel ids).
    local: Vec<(u64, Vec<usize>)>,
    /// Shared frozen partials (the spill/freeze list).
    frozen: Vec<(u64, Vec<usize>)>,
}

/// The modelled per-morsel aggregate input.
fn morsel_value(m: usize) -> u64 {
    (m as u64 + 1) * 10
}

impl AggMerge {
    pub fn new(threads: usize, n_morsels: usize, freeze_after: usize) -> AggMerge {
        AggMerge {
            n_morsels,
            freeze_after: freeze_after.max(1),
            cursor: 0,
            pc: vec![AggPc::Claim; threads],
            local: vec![(0, Vec::new()); threads],
            frozen: Vec::new(),
        }
    }
}

impl Model for AggMerge {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn done(&self, t: usize) -> bool {
        self.pc[t] == AggPc::Done
    }

    fn step(&mut self, t: usize) {
        match self.pc[t].clone() {
            AggPc::Claim => {
                let m = self.cursor;
                self.cursor += 1;
                self.pc[t] = AggPc::Check(m);
            }
            AggPc::Check(m) => {
                self.pc[t] = if m >= self.n_morsels { AggPc::Flush } else { AggPc::Accum(m) };
            }
            AggPc::Accum(m) => {
                self.local[t].0 += morsel_value(m);
                self.local[t].1.push(m);
                self.pc[t] = if self.local[t].1.len() >= self.freeze_after {
                    AggPc::Freeze
                } else {
                    AggPc::Claim
                };
            }
            AggPc::Freeze => {
                let part = std::mem::take(&mut self.local[t]);
                self.frozen.push(part);
                self.pc[t] = AggPc::Claim;
            }
            AggPc::Flush => {
                if !self.local[t].1.is_empty() {
                    let part = std::mem::take(&mut self.local[t]);
                    self.frozen.push(part);
                }
                self.pc[t] = AggPc::Done;
            }
            AggPc::Done => {}
        }
    }

    fn check_terminal(&self) -> Result<(), String> {
        // The final merge folds every frozen partial once.
        let merged_sum: u64 = self.frozen.iter().map(|(s, _)| s).sum();
        let mut ids: Vec<usize> = self.frozen.iter().flat_map(|(_, v)| v.iter().copied()).collect();
        ids.sort_unstable();
        let expect_sum: u64 = (0..self.n_morsels).map(morsel_value).sum();
        if ids != (0..self.n_morsels).collect::<Vec<_>>() {
            return Err(format!(
                "merge saw morsels {ids:?}, expected each of 0..{} once",
                self.n_morsels
            ));
        }
        if merged_sum != expect_sum {
            return Err(format!("merged sum {merged_sum} != expected {expect_sum}"));
        }
        // No contribution may be stranded in a local accumulator.
        if let Some((t, _)) = self.local.iter().enumerate().find(|(_, l)| !l.1.is_empty()) {
            return Err(format!("thread {t} left an unmerged partial"));
        }
        Ok(())
    }

    fn output(&self) -> String {
        let merged: u64 = self.frozen.iter().map(|(s, _)| s).sum();
        format!("sum={merged}")
    }
}

// ---------------------------------------------------------------------------
// Protocol 3: order-preserving collect with LIMIT prefix tracking
// ---------------------------------------------------------------------------

/// One worker's position in the limit-collect loop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum CollectPc {
    Claim,
    Check(usize),
    /// The `done.lock()` critical section: record the morsel's row count
    /// and run the contiguous-prefix check.
    Publish(usize),
    Done,
}

/// Model of the LIMIT sink: completed morsels are recorded in a shared
/// map (one mutex critical section per morsel), and the worker that
/// completes a contiguous prefix holding at least `limit` rows trips the
/// stop flag. The collect then orders parts by morsel id.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct OrderedCollect {
    n_morsels: usize,
    rows_per_morsel: usize,
    limit: usize,
    cursor: usize,
    stop: bool,
    pc: Vec<CollectPc>,
    /// Per-thread collected (morsel id) lists — `drive`'s partials.
    parts: Vec<Vec<usize>>,
    /// The shared completion map, keyed by morsel id (modelled as a
    /// sorted vec so states hash deterministically).
    done_map: Vec<usize>,
}

impl OrderedCollect {
    pub fn new(threads: usize, n_morsels: usize, rows_per_morsel: usize, limit: usize) -> Self {
        OrderedCollect {
            n_morsels,
            rows_per_morsel,
            limit,
            cursor: 0,
            stop: false,
            pc: vec![CollectPc::Claim; threads],
            parts: vec![Vec::new(); threads],
            done_map: Vec::new(),
        }
    }

    /// Morsel ids forming the longest completed contiguous prefix.
    fn prefix_rows(&self) -> usize {
        let mut rows = 0;
        let mut k = 0;
        while self.done_map.contains(&k) {
            rows += self.rows_per_morsel;
            k += 1;
        }
        rows
    }

    /// How many whole morsels the limit needs from the front of the scan.
    fn needed_prefix(&self) -> usize {
        self.limit.div_ceil(self.rows_per_morsel).min(self.n_morsels)
    }
}

impl Model for OrderedCollect {
    fn threads(&self) -> usize {
        self.pc.len()
    }

    fn done(&self, t: usize) -> bool {
        self.pc[t] == CollectPc::Done
    }

    fn step(&mut self, t: usize) {
        match self.pc[t] {
            CollectPc::Claim => {
                let m = self.cursor;
                self.cursor += 1;
                self.pc[t] = CollectPc::Check(m);
            }
            CollectPc::Check(m) => {
                self.pc[t] = if m >= self.n_morsels || self.stop {
                    CollectPc::Done
                } else {
                    CollectPc::Publish(m)
                };
            }
            CollectPc::Publish(m) => {
                // The mutex critical section: push to the local part,
                // record completion, and run the prefix check.
                self.parts[t].push(m);
                let pos = self.done_map.binary_search(&m).unwrap_or_else(|p| p);
                self.done_map.insert(pos, m);
                if self.prefix_rows() >= self.limit {
                    self.stop = true;
                    self.pc[t] = CollectPc::Done;
                } else {
                    self.pc[t] = CollectPc::Claim;
                }
            }
            CollectPc::Done => {}
        }
    }

    fn check_terminal(&self) -> Result<(), String> {
        let mut all: Vec<usize> = self.parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let distinct: HashSet<usize> = all.iter().copied().collect();
        if distinct.len() != all.len() {
            return Err(format!("morsel collected twice: {all:?}"));
        }
        // The limit's answer needs the whole required prefix: every
        // morsel feeding the first `limit` rows must have been collected.
        for k in 0..self.needed_prefix() {
            if !distinct.contains(&k) {
                return Err(format!("prefix morsel {k} missing from collect: {all:?}"));
            }
        }
        Ok(())
    }

    fn output(&self) -> String {
        // The engine's observable: parts ordered by morsel id, truncated
        // to the limit — byte-identical across schedules.
        let mut all: Vec<usize> = self.parts.iter().flatten().copied().collect();
        all.sort_unstable();
        let mut rows = Vec::new();
        for m in all {
            for r in 0..self.rows_per_morsel {
                if rows.len() < self.limit {
                    rows.push(m * self.rows_per_morsel + r);
                }
            }
        }
        format!("{rows:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // -----------------------------------------------------------------
    // A deliberately broken cursor — claim modelled as a non-atomic
    // read-then-increment — to prove the explorer actually finds
    // interleaving bugs rather than vacuously passing.
    // -----------------------------------------------------------------
    #[derive(Clone, PartialEq, Eq, Hash, Debug)]
    struct TornCursor {
        n_morsels: usize,
        cursor: usize,
        /// None = about to read; Some(m) = read done, about to write+use.
        pending: Vec<Option<usize>>,
        finished: Vec<bool>,
        consumed: Vec<Vec<usize>>,
    }

    impl TornCursor {
        fn new(threads: usize, n_morsels: usize) -> Self {
            TornCursor {
                n_morsels,
                cursor: 0,
                pending: vec![None; threads],
                finished: vec![false; threads],
                consumed: vec![Vec::new(); threads],
            }
        }
    }

    impl Model for TornCursor {
        fn threads(&self) -> usize {
            self.finished.len()
        }
        fn done(&self, t: usize) -> bool {
            self.finished[t]
        }
        fn step(&mut self, t: usize) {
            match self.pending[t] {
                None => self.pending[t] = Some(self.cursor), // torn read
                Some(m) => {
                    self.cursor = m + 1; // torn write
                    self.pending[t] = None;
                    if m >= self.n_morsels {
                        self.finished[t] = true;
                    } else {
                        self.consumed[t].push(m);
                    }
                }
            }
        }
        fn check_terminal(&self) -> Result<(), String> {
            let mut all: Vec<usize> = self.consumed.iter().flatten().copied().collect();
            all.sort_unstable();
            let distinct: HashSet<usize> = all.iter().copied().collect();
            if distinct.len() != all.len() {
                return Err(format!("morsel consumed twice: {all:?}"));
            }
            Ok(())
        }
        fn output(&self) -> String {
            String::new()
        }
    }

    #[test]
    fn explorer_catches_a_torn_claim() {
        let err = explore(TornCursor::new(2, 2)).unwrap_err();
        assert!(err.contains("consumed twice"), "{err}");
    }

    // -----------------------------------------------------------------
    // Protocol 1: morsel cursor
    // -----------------------------------------------------------------

    #[test]
    fn morsel_cursor_no_lost_or_duplicated_morsels() {
        // ≥ 3 threads × ≥ 4 morsels, per the acceptance bar; every
        // interleaving must hand out each morsel exactly once.
        let exp = explore(MorselCursor::new(3, 5, None)).unwrap();
        assert!(exp.states > 100, "exploration too small: {} states", exp.states);
        assert_eq!(exp.outputs.len(), 1, "consumed set must be schedule-independent");
        assert_eq!(exp.outputs.iter().next().unwrap(), "[0, 1, 2, 3, 4]");
    }

    #[test]
    fn morsel_cursor_four_threads() {
        let exp = explore(MorselCursor::new(4, 4, None)).unwrap();
        assert_eq!(exp.outputs.len(), 1);
        assert_eq!(exp.outputs.iter().next().unwrap(), "[0, 1, 2, 3]");
    }

    #[test]
    fn morsel_cursor_limit_early_exit() {
        // The stop flag races with in-flight claims; whatever the
        // schedule, nothing is consumed twice and the tripping morsel
        // is always consumed.
        let exp = explore(MorselCursor::new(3, 6, Some(2))).unwrap();
        assert_eq!(exp.outputs.len(), 1);
    }

    // -----------------------------------------------------------------
    // Protocol 2: partial-aggregate freeze/merge
    // -----------------------------------------------------------------

    #[test]
    fn agg_merge_every_contribution_exactly_once() {
        let exp = explore(AggMerge::new(3, 5, 2)).unwrap();
        assert!(exp.states > 100);
        assert_eq!(exp.outputs.len(), 1, "merged sum must be schedule-independent");
        let expect: u64 = (0..5).map(morsel_value).sum();
        assert_eq!(exp.outputs.iter().next().unwrap(), &format!("sum={expect}"));
    }

    #[test]
    fn agg_merge_freeze_every_morsel() {
        // freeze_after=1 maximises freeze traffic (a freeze per morsel).
        let exp = explore(AggMerge::new(3, 4, 1)).unwrap();
        assert_eq!(exp.outputs.len(), 1);
    }

    // -----------------------------------------------------------------
    // Protocol 3: order-preserving collect under LIMIT
    // -----------------------------------------------------------------

    #[test]
    fn ordered_collect_deterministic_prefix() {
        // 5 morsels × 2 rows, LIMIT 5: the first three morsels feed the
        // answer; every schedule must produce the identical first five
        // rows after the ordered collect.
        let exp = explore(OrderedCollect::new(3, 5, 2, 5)).unwrap();
        assert!(exp.states > 100);
        assert_eq!(
            exp.outputs.len(),
            1,
            "limit output must be schedule-independent: {:?}",
            exp.outputs
        );
        assert_eq!(exp.outputs.iter().next().unwrap(), "[0, 1, 2, 3, 4]");
    }

    #[test]
    fn ordered_collect_limit_beyond_input() {
        // A limit larger than the table degrades to a full ordered scan.
        let exp = explore(OrderedCollect::new(3, 4, 2, 100)).unwrap();
        assert_eq!(exp.outputs.len(), 1);
        assert_eq!(exp.outputs.iter().next().unwrap(), "[0, 1, 2, 3, 4, 5, 6, 7]");
    }
}
