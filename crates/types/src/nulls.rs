//! In-domain NULL sentinels (paper §3.1 *Data Storage*).
//!
//! MonetDB never stores validity bitmaps: "Missing values are stored as
//! 'special' values within the domain of the type, i.e. a missing value in
//! an INTEGER column is stored internally as the value −2³¹." We reproduce
//! the same convention: each fixed-width physical type reserves one value
//! of its domain as NULL. For `f64` MonetDB uses a NaN payload; we use the
//! canonical quiet NaN and compare via `is_nan`.

/// NULL sentinel for 32-bit integers (and DATE, which is stored as i32).
pub const NULL_I32: i32 = i32::MIN;
/// NULL sentinel for 64-bit integers (BIGINT and DECIMAL storage).
pub const NULL_I64: i64 = i64::MIN;
/// NULL sentinel for booleans, stored as i8 (0 = false, 1 = true).
pub const NULL_I8: i8 = i8::MIN;
/// NULL sentinel for DATE columns (same physical representation as i32).
pub const NULL_DATE: i32 = i32::MIN;

/// Physical element types that reserve an in-domain NULL sentinel.
///
/// Execution kernels are generic over `Nullable` so a single select/fetch/
/// aggregate implementation handles every fixed-width column type.
pub trait Nullable: Copy + PartialOrd {
    /// The sentinel denoting NULL.
    const NULL: Self;
    /// True iff `self` is the NULL sentinel.
    fn is_null(self) -> bool;
}

impl Nullable for i32 {
    const NULL: Self = NULL_I32;
    #[inline(always)]
    fn is_null(self) -> bool {
        self == NULL_I32
    }
}

impl Nullable for i64 {
    const NULL: Self = NULL_I64;
    #[inline(always)]
    fn is_null(self) -> bool {
        self == NULL_I64
    }
}

impl Nullable for i8 {
    const NULL: Self = NULL_I8;
    #[inline(always)]
    fn is_null(self) -> bool {
        self == NULL_I8
    }
}

impl Nullable for f64 {
    const NULL: Self = f64::NAN;
    #[inline(always)]
    fn is_null(self) -> bool {
        self.is_nan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_sentinels_match_the_paper() {
        // "a missing value in an INTEGER column is stored internally as the
        // value −2^31"
        assert_eq!(NULL_I32, -(2i64.pow(31)) as i32);
        assert!(NULL_I32.is_null());
        assert!(!0i32.is_null());
        assert!(!(i32::MIN + 1).is_null());
    }

    #[test]
    fn bigint_sentinel() {
        assert!(NULL_I64.is_null());
        assert!(!0i64.is_null());
    }

    #[test]
    fn double_null_is_nan() {
        assert!(<f64 as Nullable>::NULL.is_null());
        assert!(!1.0f64.is_null());
        assert!(!f64::INFINITY.is_null());
        assert!(!f64::MIN.is_null());
    }

    #[test]
    fn bool_sentinel_distinct_from_values() {
        assert!(NULL_I8.is_null());
        assert!(!0i8.is_null());
        assert!(!1i8.is_null());
    }
}
