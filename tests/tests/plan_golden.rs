//! Plan-snapshot golden tests: the full EXPLAIN text (relational tree,
//! `-- stats` estimates, pipeline decomposition, MAL program) of all 22
//! TPC-H queries is rendered over the fixed golden corpus and compared
//! byte-for-byte against `tests/golden/plans/qNN.txt`.
//!
//! Any optimizer change — join order, selectivity model, build-side
//! choice, push-down — now shows up as a reviewable plan diff instead of
//! silently altering execution. Regeneration is gated exactly like the
//! answer goldens:
//!
//! ```sh
//! MONETLITE_BLESS=1 cargo test -p monetlite-tests --test plan_golden
//! ```
//!
//! Execution options and optimizer flags are pinned to literals (not
//! `Default::default()`) so the CI env matrix (threads / vector size /
//! candidates / join-order ablations) cannot change the rendered plans.

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite::opt::OptFlags;
use monetlite_tpch::{generate, load_monet, queries};
use std::path::PathBuf;

const GOLDEN_SF: f64 = 0.02;
const GOLDEN_SEED: u64 = 20260727;

fn golden_path(n: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("golden")
        .join("plans")
        .join(format!("q{n:02}.txt"))
}

/// Fully pinned execution shape: EXPLAIN's morsel counts and spill
/// annotations depend on these, so they must not follow the environment.
fn pinned_exec() -> ExecOptions {
    ExecOptions {
        mode: ExecMode::Streaming,
        threads: 1,
        vector_size: 64 * 1024,
        mitosis_min_rows: 64 * 1024,
        use_imprints: true,
        use_hash_index: true,
        use_order_index: true,
        timeout: None,
        memory_budget: usize::MAX,
        spill_quota: usize::MAX,
        use_candidates: true,
        use_zonemaps: true,
        use_dict: true,
        // Caches pinned off: cache-status tags must never reach the
        // rendered plan snapshots.
        use_plan_cache: false,
        use_result_cache: false,
        plan_cache_bytes: 0,
        result_cache_bytes: 0,
    }
}

/// Fully pinned optimizer flags (cost-based DP ordering on).
fn pinned_flags() -> OptFlags {
    OptFlags {
        pushdown: true,
        join_order: true,
        join_dp: true,
        topn: true,
        fold: true,
        build_side: true,
    }
}

fn explain_text(conn: &mut monetlite::Connection, n: usize) -> String {
    if let Some(s) = queries::setup_sql(n) {
        conn.execute(s).unwrap_or_else(|e| panic!("Q{n} setup: {e}"));
    }
    let r = conn
        .query(&format!("EXPLAIN {}", queries::sql(n)))
        .unwrap_or_else(|e| panic!("EXPLAIN Q{n}: {e}"));
    if let Some(s) = queries::teardown_sql(n) {
        conn.execute(s).unwrap_or_else(|e| panic!("Q{n} teardown: {e}"));
    }
    let mut out = String::new();
    for i in 0..r.nrows() {
        out.push_str(&r.value(i, 0).to_string());
        out.push('\n');
    }
    out
}

fn connect_pinned(db: &monetlite::Database) -> monetlite::Connection {
    let mut conn = db.connect();
    conn.set_exec_options(pinned_exec());
    conn.set_opt_flags(pinned_flags());
    conn
}

#[test]
fn all_22_plans_match_golden_snapshots() {
    let bless = std::env::var("MONETLITE_BLESS").as_deref() == Ok("1");
    let data = generate(GOLDEN_SF, GOLDEN_SEED);
    let db = monetlite::Database::open_in_memory();
    let mut load_conn = db.connect();
    load_monet(&mut load_conn, &data).unwrap();
    let mut conn = connect_pinned(&db);
    let mut failures = Vec::new();
    for (n, _) in queries::all() {
        let got = explain_text(&mut conn, n);
        assert!(got.contains("-- relational plan"), "Q{n}: no plan section");
        assert!(got.contains("-- stats"), "Q{n}: no stats section");
        assert!(got.contains("est_rows="), "Q{n}: no estimates");
        let path = golden_path(n);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            eprintln!("blessed {} ({} lines)", path.display(), got.lines().count());
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("Q{n}: missing plan golden {} ({e}); run with MONETLITE_BLESS=1", path.display())
        });
        if got != want {
            let at = got
                .lines()
                .zip(want.lines())
                .position(|(g, w)| g != w)
                .map(|i| {
                    format!(
                        "first diff at line {}:\n  got:  {}\n  want: {}",
                        i,
                        got.lines().nth(i).unwrap_or("<eof>"),
                        want.lines().nth(i).unwrap_or("<eof>")
                    )
                })
                .unwrap_or_else(|| {
                    format!(
                        "line counts differ: got {}, want {}",
                        got.lines().count(),
                        want.lines().count()
                    )
                });
            failures.push(format!("Q{n}: {at}"));
        }
    }
    assert!(failures.is_empty(), "plan golden mismatches:\n{}", failures.join("\n"));
}

/// The join-heavy queries must place the filtered small side first under
/// real statistics: with build-side selection disabled (it deliberately
/// re-roots the tree so facts stream through probes), the deepest-left
/// relation of the ordered join tree is the selective dimension, not a
/// fact table left to luck.
#[test]
fn join_heavy_queries_lead_with_the_filtered_small_side() {
    let data = generate(GOLDEN_SF, GOLDEN_SEED);
    let db = monetlite::Database::open_in_memory();
    let mut load_conn = db.connect();
    load_monet(&mut load_conn, &data).unwrap();
    let mut conn = connect_pinned(&db);
    conn.set_opt_flags(OptFlags { build_side: false, ..pinned_flags() });
    for (n, lead, filter_frag) in [
        // Q5: r_name = 'ASIA' over the 5-row region table.
        (5, "region", "'ASIA'"),
        // Q8: the filtered region again (the part filter is 1/ndv-tight
        // but part is 200× larger).
        (8, "region", "'AMERICA'"),
    ] {
        let text = explain_text(&mut conn, n);
        let tree: Vec<&str> = text.lines().take_while(|l| !l.starts_with("-- stats")).collect();
        let first_scan = tree
            .iter()
            .find(|l| l.trim_start().starts_with("scan"))
            .unwrap_or_else(|| panic!("Q{n}: no scan in plan"));
        assert!(
            first_scan.contains(lead),
            "Q{n}: expected '{lead}' to lead the join tree, got: {first_scan}\n{}",
            tree.join("\n")
        );
        assert!(
            first_scan.contains(filter_frag),
            "Q{n}: leading scan should carry its filter: {first_scan}"
        );
    }
    // Q9 has no tiny filtered dimension — its selective anchors are the
    // LIKE-filtered part table and the two-key lineitem⋈partsupp join.
    // Lock in that part joins early (before supplier/nation) and that the
    // unfiltered orders table — which contributes nothing selective —
    // joins last instead of being left to luck.
    let text = explain_text(&mut conn, 9);
    let tree: Vec<&str> = text.lines().take_while(|l| !l.starts_with("-- stats")).collect();
    let scans: Vec<&&str> = tree.iter().filter(|l| l.trim_start().starts_with("scan")).collect();
    let pos = |t: &str| {
        scans.iter().position(|l| l.contains(t)).unwrap_or_else(|| panic!("Q9: no scan of {t}"))
    };
    assert!(
        scans[pos("part ")].contains("green"),
        "Q9: part scan should carry its LIKE filter: {}",
        scans[pos("part ")]
    );
    assert!(
        pos("part ") < pos("supplier") && pos("part ") < pos("nation"),
        "Q9: filtered part must join before the unfiltered dimensions:\n{}",
        tree.join("\n")
    );
    assert_eq!(
        pos("orders"),
        scans.len() - 1,
        "Q9: the unselective orders table must join last:\n{}",
        tree.join("\n")
    );
}

/// Answer sweep with DP ordering ablated: the greedy fallback must still
/// produce byte-identical answers for all 22 queries (plans may differ —
/// results may not). Mirrors the `MONETLITE_JOINORDER=0` CI leg.
#[test]
fn greedy_fallback_matches_answer_goldens() {
    if std::env::var("MONETLITE_BLESS").as_deref() == Ok("1") {
        return; // answer goldens are blessed by tpch_golden.rs
    }
    let data = generate(GOLDEN_SF, GOLDEN_SEED);
    let db = monetlite::Database::open_in_memory();
    let mut load_conn = db.connect();
    load_monet(&mut load_conn, &data).unwrap();
    let mut conn = connect_pinned(&db);
    conn.set_opt_flags(OptFlags { join_dp: false, ..pinned_flags() });
    for (n, sql) in queries::all() {
        if let Some(s) = queries::setup_sql(n) {
            conn.execute(s).unwrap_or_else(|e| panic!("Q{n} setup: {e}"));
        }
        let r = conn.query(sql).unwrap_or_else(|e| panic!("Q{n} (greedy): {e}"));
        if let Some(s) = queries::teardown_sql(n) {
            conn.execute(s).unwrap_or_else(|e| panic!("Q{n} teardown: {e}"));
        }
        let got = monetlite_tests::fmt_golden_rows(&r);
        let want_path =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(format!("q{n:02}.tbl"));
        let want = std::fs::read_to_string(&want_path).expect("answer goldens checked in");
        assert_eq!(got, want, "Q{n}: greedy join order changed the answer");
    }
}
