//! Plan cache: optimized-plan templates keyed on the normalized
//! statement, shared by every connection of a [`crate::Database`].
//!
//! The paper's embedded-use argument (§1, §4.2) is that the same process
//! re-issues many small parameterized queries, so per-query overheads —
//! parse, bind, optimize — dominate at scale; PR 5's cost-based DPsize
//! join orderer made optimization meaningfully expensive, which is what
//! this cache skips on a hit. A template stores the optimized plan with
//! [`BExpr::Param`] slots where WHERE-clause literals were; replay
//! substitutes the statement's fresh literals (re-applying the same cast
//! folds the representative went through) and re-folds constants so
//! every literal-driven fast path (zonemap probes, dictionary predicate
//! compilation, imprints) fires exactly as it would uncached.
//!
//! Soundness rules shared with the result cache:
//! * Entries are consulted/stored only by transactions with **no
//!   uncommitted writes**: a txn-local append bumps `version` in its
//!   private view, so uncommitted `(id, version)` pairs can collide with
//!   committed pairs of different content.
//! * Every dependency must carry a **committed** table id
//!   (`id < TEMP_TABLE_ID_BASE`); temp ids are reused across
//!   transactions.
//! * At hit time each stored `(name, id, version)` is revalidated
//!   against the transaction's snapshot — DROP/CREATE changes the id,
//!   appends/deletes/compaction bump the version, so any content change
//!   (and any stats-sidecar change, which rides on the same writes)
//!   invalidates lazily. Option/stats/view changes never need
//!   invalidation at all: the optimizer flags, stats mode, `ExecOptions`
//!   and the view epoch are part of the key.

use crate::expr::BExpr;
use crate::plan::Plan;
use monetlite_sql::ast::SelectStmt;
use monetlite_sql::canon;
use monetlite_storage::catalog::TableMeta;
use monetlite_storage::store::TEMP_TABLE_ID_BASE;
use monetlite_types::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Dependency fingerprints
// ---------------------------------------------------------------------------

/// One input table's content fingerprint at store time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dep {
    /// Lower-cased catalog name.
    pub table: String,
    /// Committed table id (DROP + CREATE of the same name changes it).
    pub id: u64,
    /// Version counter (bumped by appends, deletes, compaction).
    pub version: u64,
}

/// Fingerprint the plan's base-table inputs against the transaction's
/// snapshot. `None` when a scanned table is missing or carries a
/// temporary (uncommitted) id — such a statement must not be cached.
pub fn collect_deps(plan: &Plan, tables: &HashMap<String, Arc<TableMeta>>) -> Option<Vec<Dep>> {
    let mut names = Vec::new();
    collect_scans(plan, &mut names);
    names.sort();
    names.dedup();
    let mut deps = Vec::with_capacity(names.len());
    for n in names {
        let meta = tables.get(&n)?;
        if meta.id >= TEMP_TABLE_ID_BASE {
            return None;
        }
        deps.push(Dep { table: n, id: meta.id, version: meta.version });
    }
    Some(deps)
}

/// True when every stored dependency still matches the snapshot exactly.
pub fn deps_valid(deps: &[Dep], tables: &HashMap<String, Arc<TableMeta>>) -> bool {
    deps.iter()
        .all(|d| tables.get(&d.table).is_some_and(|m| m.id == d.id && m.version == d.version))
}

fn collect_scans(p: &Plan, out: &mut Vec<String>) {
    match p {
        Plan::Scan { table, .. } => out.push(table.clone()),
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopN { input, .. }
        | Plan::Distinct { input } => collect_scans(input, out),
        Plan::Join { left, right, .. } => {
            collect_scans(left, out);
            collect_scans(right, out);
        }
        Plan::Values { .. } => {}
    }
}

// ---------------------------------------------------------------------------
// Parameter substitution over whole plans
// ---------------------------------------------------------------------------

/// Rewrite every expression in the plan through `f` (used to replace
/// [`BExpr::Param`] slots with fresh literals before execution).
pub fn map_plan_exprs(p: &Plan, f: &dyn Fn(&BExpr) -> BExpr) -> Plan {
    match p {
        Plan::Scan { table, projected, filters, schema } => Plan::Scan {
            table: table.clone(),
            projected: projected.clone(),
            filters: filters.iter().map(f).collect(),
            schema: schema.clone(),
        },
        Plan::Filter { input, pred } => {
            Plan::Filter { input: Box::new(map_plan_exprs(input, f)), pred: f(pred) }
        }
        Plan::Project { input, exprs, schema } => Plan::Project {
            input: Box::new(map_plan_exprs(input, f)),
            exprs: exprs.iter().map(f).collect(),
            schema: schema.clone(),
        },
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => Plan::Join {
            left: Box::new(map_plan_exprs(left, f)),
            right: Box::new(map_plan_exprs(right, f)),
            kind: *kind,
            left_keys: left_keys.iter().map(f).collect(),
            right_keys: right_keys.iter().map(f).collect(),
            residual: residual.as_ref().map(f),
            schema: schema.clone(),
        },
        Plan::Aggregate { input, groups, aggs, schema } => Plan::Aggregate {
            input: Box::new(map_plan_exprs(input, f)),
            groups: groups.iter().map(f).collect(),
            aggs: aggs
                .iter()
                .map(|a| crate::expr::AggSpec {
                    func: a.func,
                    arg: a.arg.as_ref().map(f),
                    distinct: a.distinct,
                    ty: a.ty,
                })
                .collect(),
            schema: schema.clone(),
        },
        Plan::Sort { input, keys } => {
            Plan::Sort { input: Box::new(map_plan_exprs(input, f)), keys: keys.clone() }
        }
        Plan::Limit { input, n } => {
            Plan::Limit { input: Box::new(map_plan_exprs(input, f)), n: *n }
        }
        Plan::TopN { input, keys, n } => {
            Plan::TopN { input: Box::new(map_plan_exprs(input, f)), keys: keys.clone(), n: *n }
        }
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(map_plan_exprs(input, f)) },
        Plan::Values { rows, schema } => Plan::Values {
            rows: rows.iter().map(|r| r.iter().map(f).collect()).collect(),
            schema: schema.clone(),
        },
    }
}

/// Substitute fresh literals for the template's parameter slots,
/// coercing each to the representative's type (the casts the template's
/// binding folded away). `None` when a fresh value cannot take the
/// template's type — the caller falls back to a full replan.
pub fn substitute_params(template: &Plan, fresh: &[Value]) -> Option<Plan> {
    let mut coerced: Vec<Option<Value>> = vec![None; fresh.len()];
    let mut ok = true;
    visit_plan_exprs(template, &mut |e| {
        walk_params(e, &mut |idx, repr| {
            if !ok {
                return;
            }
            match fresh.get(idx).and_then(|v| crate::bind::coerce_param_value(v, repr)) {
                Some(c) => coerced[idx] = Some(c),
                None => ok = false,
            }
        })
    });
    if !ok {
        return None;
    }
    Some(map_plan_exprs(template, &|e| {
        e.resolve_params(&|idx, repr| {
            coerced.get(idx).and_then(|c| c.clone()).unwrap_or_else(|| repr.clone())
        })
    }))
}

/// Visit every expression position in the plan once (read-only).
fn visit_plan_exprs(p: &Plan, f: &mut dyn FnMut(&BExpr)) {
    match p {
        Plan::Scan { filters, .. } => {
            for e in filters {
                f(e);
            }
        }
        Plan::Filter { input, pred } => {
            visit_plan_exprs(input, f);
            f(pred);
        }
        Plan::Project { input, exprs, .. } => {
            visit_plan_exprs(input, f);
            for e in exprs {
                f(e);
            }
        }
        Plan::Join { left, right, left_keys, right_keys, residual, .. } => {
            visit_plan_exprs(left, f);
            visit_plan_exprs(right, f);
            for e in left_keys.iter().chain(right_keys.iter()) {
                f(e);
            }
            if let Some(r) = residual {
                f(r);
            }
        }
        Plan::Aggregate { input, groups, aggs, .. } => {
            visit_plan_exprs(input, f);
            for e in groups {
                f(e);
            }
            for a in aggs {
                if let Some(arg) = &a.arg {
                    f(arg);
                }
            }
        }
        Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopN { input, .. }
        | Plan::Distinct { input } => visit_plan_exprs(input, f),
        Plan::Values { rows, .. } => {
            for e in rows.iter().flatten() {
                f(e);
            }
        }
    }
}

fn walk_params(e: &BExpr, f: &mut dyn FnMut(usize, &Value)) {
    match e {
        BExpr::Param { idx, value } => f(*idx, value),
        BExpr::ColRef { .. } | BExpr::Lit(_) => {}
        BExpr::Cast { input, .. } | BExpr::Not(input) | BExpr::Neg { input, .. } => {
            walk_params(input, f)
        }
        BExpr::IsNull { input, .. } | BExpr::Like { input, .. } => walk_params(input, f),
        BExpr::Arith { left, right, .. } | BExpr::Cmp { left, right, .. } => {
            walk_params(left, f);
            walk_params(right, f);
        }
        BExpr::And(a, b) | BExpr::Or(a, b) => {
            walk_params(a, f);
            walk_params(b, f);
        }
        BExpr::Case { branches, else_expr, .. } => {
            for (c, v) in branches {
                walk_params(c, f);
                walk_params(v, f);
            }
            if let Some(e) = else_expr {
                walk_params(e, f);
            }
        }
        BExpr::Func { args, .. } => {
            for a in args {
                walk_params(a, f);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// LRU with a byte budget
// ---------------------------------------------------------------------------

struct Slot<V> {
    v: Arc<V>,
    bytes: usize,
    last_used: u64,
}

/// A mutex-guarded LRU map with a byte budget, shared by both caches.
pub(crate) struct Lru<V> {
    inner: Mutex<LruInner<V>>,
}

struct LruInner<V> {
    map: HashMap<String, Slot<V>>,
    tick: u64,
    bytes: usize,
}

impl<V> Default for Lru<V> {
    fn default() -> Self {
        Lru { inner: Mutex::new(LruInner { map: HashMap::new(), tick: 0, bytes: 0 }) }
    }
}

impl<V> Lru<V> {
    pub fn get(&self, key: &str) -> Option<Arc<V>> {
        let mut g = self.inner.lock().expect("cache lock");
        g.tick += 1;
        let tick = g.tick;
        let slot = g.map.get_mut(key)?;
        slot.last_used = tick;
        Some(slot.v.clone())
    }

    pub fn put(&self, key: String, v: Arc<V>, bytes: usize, budget: usize) {
        let mut g = self.inner.lock().expect("cache lock");
        // One entry larger than the whole budget is not cacheable.
        if bytes > budget {
            return;
        }
        g.tick += 1;
        let tick = g.tick;
        if let Some(old) = g.map.insert(key, Slot { v, bytes, last_used: tick }) {
            g.bytes -= old.bytes;
        }
        g.bytes += bytes;
        while g.bytes > budget {
            let Some(victim) =
                g.map.iter().min_by_key(|(_, s)| s.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            if let Some(s) = g.map.remove(&victim) {
                g.bytes -= s.bytes;
            }
        }
    }

    pub fn remove(&self, key: &str) {
        let mut g = self.inner.lock().expect("cache lock");
        if let Some(s) = g.map.remove(key) {
            g.bytes -= s.bytes;
        }
    }

    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").map.len()
    }

    pub fn bytes(&self) -> usize {
        self.inner.lock().expect("cache lock").bytes
    }

    pub fn clear(&self) {
        let mut g = self.inner.lock().expect("cache lock");
        g.map.clear();
        g.bytes = 0;
    }
}

// ---------------------------------------------------------------------------
// Statement memo and the plan cache proper
// ---------------------------------------------------------------------------

/// Pure, per-text normalization memo entry: everything derivable from
/// the SQL text alone (no catalog state), so it can never go stale. A
/// repeat of the *exact* text skips the parser as well as the binder.
pub struct StmtMemo {
    /// Canonical rendering of the statement with literals in place (the
    /// result-cache key material).
    pub result_key: String,
    /// Canonical rendering of the parameterized statement (the plan
    /// -cache key material).
    pub plan_key: String,
    /// Extracted WHERE-clause literals, aligned with the `?N` slots.
    pub params: Vec<Value>,
    /// The parameterized AST (template binding input).
    pub template_stmt: SelectStmt,
    /// The original AST (cache-off / fallback binding input).
    pub original_stmt: SelectStmt,
}

impl StmtMemo {
    /// Normalize a parsed SELECT.
    pub fn build(sel: &SelectStmt) -> StmtMemo {
        let result_key = canon::canon_select_full(sel);
        let n = canon::normalize_select(sel);
        StmtMemo {
            result_key,
            plan_key: n.key,
            params: n.params,
            template_stmt: n.stmt,
            original_stmt: sel.clone(),
        }
    }
}

/// One cached plan template.
pub struct PlanEntry {
    /// Optimized plan with `BExpr::Param` slots.
    pub plan: Plan,
    /// Input-table fingerprints at store time.
    pub deps: Vec<Dep>,
}

/// The shared plan cache: a text → normalization memo plus the template
/// store. Hit/miss/invalidation counters aggregate across connections.
#[derive(Default)]
pub struct PlanCache {
    memo: Mutex<HashMap<String, Arc<StmtMemo>>>,
    templates: Lru<PlanEntry>,
    /// Template hits (bind+optimize skipped).
    pub hits: AtomicU64,
    /// Template misses (statement fully planned).
    pub misses: AtomicU64,
    /// Hits rejected because a dependency's id/version moved.
    pub invalidations: AtomicU64,
}

/// Cap on distinct statement texts memoized; past it the memo is cleared
/// wholesale (entries are pure functions of the text, so dropping them
/// only costs a re-parse).
const MEMO_CAP: usize = 4096;

impl PlanCache {
    /// The memoized normalization of `sql`, if this exact text was seen.
    pub fn memo_get(&self, sql: &str) -> Option<Arc<StmtMemo>> {
        self.memo.lock().expect("memo lock").get(sql).cloned()
    }

    /// Memoize a normalization under its exact text.
    pub fn memo_put(&self, sql: &str, m: Arc<StmtMemo>) {
        let mut g = self.memo.lock().expect("memo lock");
        if g.len() >= MEMO_CAP {
            g.clear();
        }
        g.insert(sql.to_string(), m);
    }

    /// Fetch a template if its dependencies still hold for `tables`.
    pub fn get_valid(
        &self,
        key: &str,
        tables: &HashMap<String, Arc<TableMeta>>,
    ) -> Option<Arc<PlanEntry>> {
        let entry = self.templates.get(key)?;
        if deps_valid(&entry.deps, tables) {
            Some(entry)
        } else {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.templates.remove(key);
            None
        }
    }

    /// Store a template under `key` within `budget` bytes.
    pub fn put(&self, key: String, entry: PlanEntry, budget: usize) {
        // Plans are small trees; a coarse per-node proxy keeps the LRU
        // honest without a deep byte count.
        let bytes = key.len() + plan_weight(&entry.plan) + entry.deps.len() * 64 + 128;
        self.templates.put(key, Arc::new(entry), bytes, budget);
    }

    /// Number of cached templates.
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// True when no templates are cached.
    pub fn is_empty(&self) -> bool {
        self.templates.len() == 0
    }

    /// Drop everything (tests).
    pub fn clear(&self) {
        self.templates.clear();
        self.memo.lock().expect("memo lock").clear();
    }
}

fn plan_weight(p: &Plan) -> usize {
    let mut nodes = 0usize;
    fn walk(p: &Plan, n: &mut usize) {
        *n += 1;
        match p {
            Plan::Filter { input, .. }
            | Plan::Project { input, .. }
            | Plan::Aggregate { input, .. }
            | Plan::Sort { input, .. }
            | Plan::Limit { input, .. }
            | Plan::TopN { input, .. }
            | Plan::Distinct { input } => walk(input, n),
            Plan::Join { left, right, .. } => {
                walk(left, n);
                walk(right, n);
            }
            Plan::Scan { .. } | Plan::Values { .. } => {}
        }
    }
    walk(p, &mut nodes);
    nodes * 512
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::LogicalType;

    fn meta(id: u64, version: u64) -> Arc<TableMeta> {
        use monetlite_storage::catalog::TableData;
        use monetlite_types::{Field, Schema};
        let schema = Schema::new(vec![Field::new("a", LogicalType::Int)]).unwrap();
        let data = TableData::empty(&schema);
        Arc::new(TableMeta {
            id,
            name: "t".into(),
            schema,
            data,
            version,
            ordered_cols: Vec::new(),
        })
    }

    #[test]
    fn deps_track_id_and_version() {
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), meta(3, 7));
        let plan =
            Plan::Scan { table: "t".into(), projected: vec![0], filters: vec![], schema: vec![] };
        let deps = collect_deps(&plan, &tables).unwrap();
        assert_eq!(deps, vec![Dep { table: "t".into(), id: 3, version: 7 }]);
        assert!(deps_valid(&deps, &tables));
        tables.insert("t".to_string(), meta(3, 8));
        assert!(!deps_valid(&deps, &tables), "version bump invalidates");
        tables.insert("t".to_string(), meta(4, 1));
        assert!(!deps_valid(&deps, &tables), "drop+create invalidates");
        tables.remove("t");
        assert!(!deps_valid(&deps, &tables), "drop invalidates");
    }

    #[test]
    fn temp_ids_are_not_cacheable() {
        let mut tables = HashMap::new();
        tables.insert("t".to_string(), meta(TEMP_TABLE_ID_BASE + 1, 1));
        let plan =
            Plan::Scan { table: "t".into(), projected: vec![0], filters: vec![], schema: vec![] };
        assert!(collect_deps(&plan, &tables).is_none());
    }

    #[test]
    fn lru_evicts_by_bytes() {
        let lru: Lru<u32> = Lru::default();
        lru.put("a".into(), Arc::new(1), 400, 1000);
        lru.put("b".into(), Arc::new(2), 400, 1000);
        assert!(lru.get("a").is_some()); // refresh a
        lru.put("c".into(), Arc::new(3), 400, 1000); // evicts b (LRU)
        assert!(lru.get("b").is_none());
        assert!(lru.get("a").is_some());
        assert!(lru.get("c").is_some());
        assert!(lru.bytes() <= 1000);
        // Oversized entries are refused outright.
        lru.put("huge".into(), Arc::new(9), 2000, 1000);
        assert!(lru.get("huge").is_none());
    }
}
