//! Calendar dates stored as days since the Unix epoch (1970-01-01).
//!
//! MonetDB stores DATE columns as 32-bit day counts; all TPC-H date
//! arithmetic (`date '1998-12-01' - interval '90' day`, `extract(year ...)`)
//! operates on this representation. Conversions use Howard Hinnant's
//! `days_from_civil` / `civil_from_days` algorithms, valid over the whole
//! proleptic Gregorian calendar.

use crate::error::{MlError, Result};
use crate::nulls::NULL_I32;
use std::fmt;

/// A calendar date: days since 1970-01-01. `Date(i32::MIN)` is NULL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// The NULL date sentinel.
    pub const NULL: Date = Date(NULL_I32);

    /// True iff this is the NULL sentinel.
    #[inline]
    pub fn is_null(self) -> bool {
        self.0 == NULL_I32
    }

    /// Construct from a civil (year, month, day) triple.
    ///
    /// Returns an error for out-of-range month/day combinations.
    pub fn from_ymd(year: i32, month: u32, day: u32) -> Result<Date> {
        if !(1..=12).contains(&month) {
            return Err(MlError::Execution(format!("invalid month {month}")));
        }
        let dim = days_in_month(year, month);
        if day == 0 || day > dim {
            return Err(MlError::Execution(format!("invalid day {day} for {year:04}-{month:02}")));
        }
        Ok(Date(days_from_civil(year, month, day)))
    }

    /// Parse `YYYY-MM-DD`.
    pub fn parse(s: &str) -> Result<Date> {
        let bad = || MlError::Execution(format!("invalid date literal '{s}'"));
        let mut parts = s.splitn(3, '-');
        let y: i32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let m: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        let d: u32 = parts.next().ok_or_else(bad)?.parse().map_err(|_| bad())?;
        Date::from_ymd(y, m, d)
    }

    /// Decompose into (year, month, day).
    pub fn ymd(self) -> (i32, u32, u32) {
        civil_from_days(self.0)
    }

    /// `EXTRACT(YEAR FROM d)`.
    pub fn year(self) -> i32 {
        self.ymd().0
    }

    /// `EXTRACT(MONTH FROM d)`.
    pub fn month(self) -> u32 {
        self.ymd().1
    }

    /// `EXTRACT(DAY FROM d)`.
    pub fn day(self) -> u32 {
        self.ymd().2
    }

    /// Add a number of days (may be negative).
    pub fn add_days(self, days: i32) -> Date {
        Date(self.0 + days)
    }

    /// Add calendar months, clamping the day to the target month's length
    /// (SQL interval semantics: `1996-01-31 + 1 month = 1996-02-29`).
    pub fn add_months(self, months: i32) -> Date {
        let (y, m, d) = self.ymd();
        let total = (y as i64) * 12 + (m as i64 - 1) + months as i64;
        let ny = total.div_euclid(12) as i32;
        let nm = (total.rem_euclid(12) + 1) as u32;
        let nd = d.min(days_in_month(ny, nm));
        Date(days_from_civil(ny, nm, nd))
    }

    /// Add calendar years (clamps Feb 29 to Feb 28 on non-leap targets).
    pub fn add_years(self, years: i32) -> Date {
        self.add_months(years * 12)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            return write!(f, "NULL");
        }
        let (y, m, d) = self.ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// Days from civil date, per Howard Hinnant's algorithm.
pub fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y } as i64;
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era * 146097 + doe - 719468) as i32
}

/// Civil date from day count, per Howard Hinnant's algorithm.
pub fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
}

/// True for Gregorian leap years.
pub fn is_leap(y: i32) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

/// Number of days in a (year, month).
pub fn days_in_month(y: i32, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(Date::from_ymd(1970, 1, 1).unwrap(), Date(0));
        assert_eq!(Date(0).ymd(), (1970, 1, 1));
    }

    #[test]
    fn known_dates_roundtrip() {
        // TPC-H boundary dates.
        let d = Date::parse("1998-12-01").unwrap();
        assert_eq!(d.ymd(), (1998, 12, 1));
        assert_eq!(d.to_string(), "1998-12-01");
        let d = Date::parse("1992-01-01").unwrap();
        assert_eq!(d.year(), 1992);
        // Pre-epoch.
        let d = Date::parse("1969-12-31").unwrap();
        assert_eq!(d, Date(-1));
    }

    #[test]
    fn q1_interval_arithmetic() {
        // date '1998-12-01' - interval '90' day = 1998-09-02
        let d = Date::parse("1998-12-01").unwrap().add_days(-90);
        assert_eq!(d.to_string(), "1998-09-02");
    }

    #[test]
    fn month_arithmetic_clamps() {
        let d = Date::parse("1996-01-31").unwrap();
        assert_eq!(d.add_months(1).to_string(), "1996-02-29"); // leap year
        let d = Date::parse("1995-01-31").unwrap();
        assert_eq!(d.add_months(1).to_string(), "1995-02-28");
        let d = Date::parse("1996-02-29").unwrap();
        assert_eq!(d.add_years(1).to_string(), "1997-02-28");
        // Negative months cross year boundaries correctly.
        let d = Date::parse("1996-03-15").unwrap();
        assert_eq!(d.add_months(-3).to_string(), "1995-12-15");
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(1996));
        assert!(!is_leap(1997));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1900, 2), 28);
    }

    #[test]
    fn invalid_dates_rejected() {
        assert!(Date::from_ymd(1995, 2, 29).is_err());
        assert!(Date::from_ymd(1995, 13, 1).is_err());
        assert!(Date::from_ymd(1995, 0, 1).is_err());
        assert!(Date::from_ymd(1995, 4, 31).is_err());
        assert!(Date::parse("not-a-date").is_err());
        assert!(Date::parse("1995-06").is_err());
    }

    #[test]
    fn ordering_follows_calendar() {
        let a = Date::parse("1994-01-01").unwrap();
        let b = Date::parse("1995-01-01").unwrap();
        assert!(a < b);
        assert_eq!(b.0 - a.0, 365);
    }

    #[test]
    fn exhaustive_roundtrip_1990s() {
        // Every day of the TPC-H decade roundtrips through civil form.
        let start = days_from_civil(1990, 1, 1);
        let end = days_from_civil(1999, 12, 31);
        for z in start..=end {
            let (y, m, d) = civil_from_days(z);
            assert_eq!(days_from_civil(y, m, d), z);
        }
    }
}
