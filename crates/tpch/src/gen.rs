//! A deterministic `dbgen` equivalent: all eight TPC-H tables at an
//! arbitrary scale factor, column-major, with the distributions that the
//! benchmarked queries are sensitive to (uniform keys, the 1992–1998 date
//! window, the price/discount/tax ranges, the standard text pools for
//! brands/types/segments/nations).

use monetlite_types::{ColumnBuffer, Date, Field, LogicalType, Schema};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated table.
pub struct Table {
    /// Table name.
    pub name: &'static str,
    /// Column definitions.
    pub schema: Schema,
    /// Column-major data.
    pub cols: Vec<ColumnBuffer>,
}

impl Table {
    /// Row count.
    pub fn rows(&self) -> usize {
        self.cols.first().map_or(0, |c| c.len())
    }

    /// Total bytes (host representation).
    pub fn bytes(&self) -> usize {
        self.cols.iter().map(|c| c.size_bytes()).sum()
    }
}

/// The full generated dataset.
pub struct TpchData {
    /// REGION (5 rows).
    pub region: Table,
    /// NATION (25 rows).
    pub nation: Table,
    /// SUPPLIER (10k × SF).
    pub supplier: Table,
    /// PART (200k × SF).
    pub part: Table,
    /// PARTSUPP (800k × SF).
    pub partsupp: Table,
    /// CUSTOMER (150k × SF).
    pub customer: Table,
    /// ORDERS (1.5M × SF).
    pub orders: Table,
    /// LINEITEM (~6M × SF).
    pub lineitem: Table,
}

impl TpchData {
    /// Tables in foreign-key-safe load order.
    pub fn tables(&self) -> [&Table; 8] {
        [
            &self.region,
            &self.nation,
            &self.supplier,
            &self.part,
            &self.customer,
            &self.partsupp,
            &self.orders,
            &self.lineitem,
        ]
    }

    /// Total dataset bytes.
    pub fn bytes(&self) -> usize {
        self.tables().iter().map(|t| t.bytes()).sum()
    }
}

const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// (name, region index) — the official 25 nations.
const NATIONS: [(&str, i32); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];

const SEGMENTS: [&str; 5] = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: [&str; 4] = ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
const TYPE_SYL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINERS1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINERS2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
const COLORS: [&str; 18] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "forest",
    "green",
    "red",
];
const WORDS: [&str; 19] = [
    "special",
    "Customer",
    "Complaints",
    "carefully",
    "quickly",
    "furiously",
    "slyly",
    "blithely",
    "ideas",
    "packages",
    "requests",
    "accounts",
    "deposits",
    "foxes",
    "theodolites",
    "pinto",
    "beans",
    "instructions",
    "asymptotes",
];

fn comment(rng: &mut StdRng, words: usize) -> String {
    let mut s = String::new();
    for i in 0..words {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(WORDS[rng.random_range(0..WORDS.len())]);
    }
    s
}

fn schema(fields: Vec<Field>) -> Schema {
    Schema::new(fields).expect("static schemas are valid")
}

fn money(rng: &mut StdRng, lo: i64, hi: i64) -> i64 {
    rng.random_range(lo..=hi) // raw cents
}

/// Generate the dataset at `sf` (1.0 ≈ the paper's SF1) with a fixed
/// seed, so every run of every engine sees identical data.
pub fn generate(sf: f64, seed: u64) -> TpchData {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_supplier = ((10_000.0 * sf) as usize).max(10);
    let n_part = ((200_000.0 * sf) as usize).max(50);
    let n_customer = ((150_000.0 * sf) as usize).max(30);
    let n_orders = ((1_500_000.0 * sf) as usize).max(150);

    // REGION ---------------------------------------------------------------
    let region = Table {
        name: "region",
        schema: schema(vec![
            Field::not_null("r_regionkey", LogicalType::Int),
            Field::not_null("r_name", LogicalType::Varchar),
            Field::new("r_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int((0..5).collect()),
            ColumnBuffer::Varchar(REGIONS.iter().map(|s| Some(s.to_string())).collect()),
            ColumnBuffer::Varchar((0..5).map(|_| Some(comment(&mut rng, 6))).collect()),
        ],
    };

    // NATION ---------------------------------------------------------------
    let nation = Table {
        name: "nation",
        schema: schema(vec![
            Field::not_null("n_nationkey", LogicalType::Int),
            Field::not_null("n_name", LogicalType::Varchar),
            Field::not_null("n_regionkey", LogicalType::Int),
            Field::new("n_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int((0..25).collect()),
            ColumnBuffer::Varchar(NATIONS.iter().map(|(n, _)| Some(n.to_string())).collect()),
            ColumnBuffer::Int(NATIONS.iter().map(|(_, r)| *r).collect()),
            ColumnBuffer::Varchar((0..25).map(|_| Some(comment(&mut rng, 6))).collect()),
        ],
    };

    // SUPPLIER ---------------------------------------------------------------
    let mut s_key = Vec::with_capacity(n_supplier);
    let mut s_name = Vec::with_capacity(n_supplier);
    let mut s_addr = Vec::with_capacity(n_supplier);
    let mut s_nation = Vec::with_capacity(n_supplier);
    let mut s_phone = Vec::with_capacity(n_supplier);
    let mut s_acct = Vec::with_capacity(n_supplier);
    let mut s_comment = Vec::with_capacity(n_supplier);
    for i in 0..n_supplier {
        s_key.push(i as i32 + 1);
        s_name.push(Some(format!("Supplier#{:09}", i + 1)));
        s_addr.push(Some(comment(&mut rng, 3)));
        let nk = rng.random_range(0..25);
        s_nation.push(nk);
        s_phone.push(Some(format!(
            "{}-{:03}-{:03}-{:04}",
            10 + nk,
            rng.random_range(100..999),
            rng.random_range(100..999),
            rng.random_range(1000..9999)
        )));
        s_acct.push(money(&mut rng, -99_999, 999_999));
        s_comment.push(Some(comment(&mut rng, 8)));
    }
    let supplier = Table {
        name: "supplier",
        schema: schema(vec![
            Field::not_null("s_suppkey", LogicalType::Int),
            Field::not_null("s_name", LogicalType::Varchar),
            Field::new("s_address", LogicalType::Varchar),
            Field::not_null("s_nationkey", LogicalType::Int),
            Field::new("s_phone", LogicalType::Varchar),
            Field::new("s_acctbal", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("s_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int(s_key),
            ColumnBuffer::Varchar(s_name),
            ColumnBuffer::Varchar(s_addr),
            ColumnBuffer::Int(s_nation),
            ColumnBuffer::Varchar(s_phone),
            ColumnBuffer::Decimal { data: s_acct, scale: 2 },
            ColumnBuffer::Varchar(s_comment),
        ],
    };

    // PART -------------------------------------------------------------------
    let mut p_key = Vec::with_capacity(n_part);
    let mut p_name = Vec::with_capacity(n_part);
    let mut p_mfgr = Vec::with_capacity(n_part);
    let mut p_brand = Vec::with_capacity(n_part);
    let mut p_type = Vec::with_capacity(n_part);
    let mut p_size = Vec::with_capacity(n_part);
    let mut p_container = Vec::with_capacity(n_part);
    let mut p_retail = Vec::with_capacity(n_part);
    let mut p_comment = Vec::with_capacity(n_part);
    for i in 0..n_part {
        p_key.push(i as i32 + 1);
        let c1 = COLORS[rng.random_range(0..COLORS.len())];
        let c2 = COLORS[rng.random_range(0..COLORS.len())];
        p_name.push(Some(format!("{c1} {c2}")));
        let m = rng.random_range(1..=5);
        p_mfgr.push(Some(format!("Manufacturer#{m}")));
        p_brand.push(Some(format!("Brand#{}{}", m, rng.random_range(1..=5))));
        p_type.push(Some(format!(
            "{} {} {}",
            TYPE_SYL1[rng.random_range(0..TYPE_SYL1.len())],
            TYPE_SYL2[rng.random_range(0..TYPE_SYL2.len())],
            TYPE_SYL3[rng.random_range(0..TYPE_SYL3.len())]
        )));
        p_size.push(rng.random_range(1..=50));
        p_container.push(Some(format!(
            "{} {}",
            CONTAINERS1[rng.random_range(0..CONTAINERS1.len())],
            CONTAINERS2[rng.random_range(0..CONTAINERS2.len())]
        )));
        // 90000 + i/10 + ... per spec; close enough: 900.00..2098.99
        p_retail.push(90_000 + (i as i64 % 120_000));
        p_comment.push(Some(comment(&mut rng, 4)));
    }
    let part = Table {
        name: "part",
        schema: schema(vec![
            Field::not_null("p_partkey", LogicalType::Int),
            Field::not_null("p_name", LogicalType::Varchar),
            Field::new("p_mfgr", LogicalType::Varchar),
            Field::new("p_brand", LogicalType::Varchar),
            Field::new("p_type", LogicalType::Varchar),
            Field::new("p_size", LogicalType::Int),
            Field::new("p_container", LogicalType::Varchar),
            Field::new("p_retailprice", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("p_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int(p_key),
            ColumnBuffer::Varchar(p_name),
            ColumnBuffer::Varchar(p_mfgr),
            ColumnBuffer::Varchar(p_brand),
            ColumnBuffer::Varchar(p_type),
            ColumnBuffer::Int(p_size),
            ColumnBuffer::Varchar(p_container),
            ColumnBuffer::Decimal { data: p_retail.clone(), scale: 2 },
            ColumnBuffer::Varchar(p_comment),
        ],
    };

    // PARTSUPP (4 suppliers per part) -----------------------------------------
    let n_ps = n_part * 4;
    let mut ps_part = Vec::with_capacity(n_ps);
    let mut ps_supp = Vec::with_capacity(n_ps);
    let mut ps_avail = Vec::with_capacity(n_ps);
    let mut ps_cost = Vec::with_capacity(n_ps);
    let mut ps_comment = Vec::with_capacity(n_ps);
    for p in 0..n_part {
        for j in 0..4 {
            ps_part.push(p as i32 + 1);
            // Spec formula spreads suppliers over the key space.
            let s = ((p + (j * ((n_supplier / 4) + (p % n_supplier)))) % n_supplier) as i32 + 1;
            ps_supp.push(s);
            ps_avail.push(rng.random_range(1..=9999));
            ps_cost.push(money(&mut rng, 100, 100_000));
            ps_comment.push(Some(comment(&mut rng, 6)));
        }
    }
    let partsupp = Table {
        name: "partsupp",
        schema: schema(vec![
            Field::not_null("ps_partkey", LogicalType::Int),
            Field::not_null("ps_suppkey", LogicalType::Int),
            Field::new("ps_availqty", LogicalType::Int),
            Field::new("ps_supplycost", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("ps_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int(ps_part),
            ColumnBuffer::Int(ps_supp),
            ColumnBuffer::Int(ps_avail),
            ColumnBuffer::Decimal { data: ps_cost.clone(), scale: 2 },
            ColumnBuffer::Varchar(ps_comment),
        ],
    };

    // CUSTOMER ----------------------------------------------------------------
    let mut c_key = Vec::with_capacity(n_customer);
    let mut c_name = Vec::with_capacity(n_customer);
    let mut c_addr = Vec::with_capacity(n_customer);
    let mut c_nation = Vec::with_capacity(n_customer);
    let mut c_phone = Vec::with_capacity(n_customer);
    let mut c_acct = Vec::with_capacity(n_customer);
    let mut c_segment = Vec::with_capacity(n_customer);
    let mut c_comment = Vec::with_capacity(n_customer);
    for i in 0..n_customer {
        c_key.push(i as i32 + 1);
        c_name.push(Some(format!("Customer#{:09}", i + 1)));
        c_addr.push(Some(comment(&mut rng, 3)));
        let nk = rng.random_range(0..25);
        c_nation.push(nk);
        c_phone.push(Some(format!(
            "{}-{:03}-{:03}-{:04}",
            10 + nk,
            rng.random_range(100..999),
            rng.random_range(100..999),
            rng.random_range(1000..9999)
        )));
        c_acct.push(money(&mut rng, -99_999, 999_999));
        c_segment.push(Some(SEGMENTS[rng.random_range(0..SEGMENTS.len())].to_string()));
        c_comment.push(Some(comment(&mut rng, 8)));
    }
    let customer = Table {
        name: "customer",
        schema: schema(vec![
            Field::not_null("c_custkey", LogicalType::Int),
            Field::not_null("c_name", LogicalType::Varchar),
            Field::new("c_address", LogicalType::Varchar),
            Field::not_null("c_nationkey", LogicalType::Int),
            Field::new("c_phone", LogicalType::Varchar),
            Field::new("c_acctbal", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("c_mktsegment", LogicalType::Varchar),
            Field::new("c_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int(c_key),
            ColumnBuffer::Varchar(c_name),
            ColumnBuffer::Varchar(c_addr),
            ColumnBuffer::Int(c_nation),
            ColumnBuffer::Varchar(c_phone),
            ColumnBuffer::Decimal { data: c_acct.clone(), scale: 2 },
            ColumnBuffer::Varchar(c_segment),
            ColumnBuffer::Varchar(c_comment),
        ],
    };

    // ORDERS + LINEITEM ---------------------------------------------------------
    let start = Date::from_ymd(1992, 1, 1).unwrap().0;
    let end = Date::from_ymd(1998, 8, 2).unwrap().0;
    let mut o_key = Vec::with_capacity(n_orders);
    let mut o_cust = Vec::with_capacity(n_orders);
    let mut o_status = Vec::with_capacity(n_orders);
    let mut o_total = Vec::with_capacity(n_orders);
    let mut o_date = Vec::with_capacity(n_orders);
    let mut o_prio = Vec::with_capacity(n_orders);
    let mut o_clerk = Vec::with_capacity(n_orders);
    let mut o_ship = Vec::with_capacity(n_orders);
    let mut o_comment = Vec::with_capacity(n_orders);

    let est_li = n_orders * 4;
    let mut l_order = Vec::with_capacity(est_li);
    let mut l_part = Vec::with_capacity(est_li);
    let mut l_supp = Vec::with_capacity(est_li);
    let mut l_line = Vec::with_capacity(est_li);
    let mut l_qty = Vec::with_capacity(est_li);
    let mut l_extprice = Vec::with_capacity(est_li);
    let mut l_discount = Vec::with_capacity(est_li);
    let mut l_tax = Vec::with_capacity(est_li);
    let mut l_retflag = Vec::with_capacity(est_li);
    let mut l_status = Vec::with_capacity(est_li);
    let mut l_shipdate = Vec::with_capacity(est_li);
    let mut l_commit = Vec::with_capacity(est_li);
    let mut l_receipt = Vec::with_capacity(est_li);
    let mut l_instruct = Vec::with_capacity(est_li);
    let mut l_mode = Vec::with_capacity(est_li);
    let mut l_comment = Vec::with_capacity(est_li);

    let cutoff = Date::from_ymd(1995, 6, 17).unwrap().0;
    for i in 0..n_orders {
        let okey = (i as i32 + 1) * 4; // sparse keys like dbgen
        o_key.push(okey);
        // dbgen's sparse customer population: custkey % 3 == 0 never
        // places an order (what gives Q13's zero-order spike and Q22's
        // no-order customers their rows).
        let ck = loop {
            let c = rng.random_range(0..n_customer) as i32 + 1;
            if c % 3 != 0 {
                break c;
            }
        };
        o_cust.push(ck);
        let odate = rng.random_range(start..=end - 151);
        o_date.push(odate);
        o_prio.push(Some(PRIORITIES[rng.random_range(0..PRIORITIES.len())].to_string()));
        o_clerk.push(Some(format!("Clerk#{:09}", rng.random_range(1..=1000))));
        o_ship.push(rng.random_range(0..5));
        o_comment.push(Some(comment(&mut rng, 6)));
        let nlines = rng.random_range(1..=7);
        let mut total: i64 = 0;
        let mut any_open = false;
        for ln in 0..nlines {
            l_order.push(okey);
            let pk = rng.random_range(0..n_part);
            l_part.push(pk as i32 + 1);
            // One of this part's four suppliers.
            let j = rng.random_range(0..4usize);
            let sk = ((pk + (j * ((n_supplier / 4) + (pk % n_supplier)))) % n_supplier) as i32 + 1;
            l_supp.push(sk);
            l_line.push(ln + 1);
            let qty = rng.random_range(1..=50) as i64;
            l_qty.push(qty * 100); // DECIMAL(15,2)
            let ext = qty * p_retail[pk];
            l_extprice.push(ext);
            let disc = rng.random_range(0..=10) as i64; // 0.00..0.10
            l_discount.push(disc);
            l_tax.push(rng.random_range(0..=8) as i64);
            let ship = odate + rng.random_range(1..=121);
            l_shipdate.push(ship);
            l_commit.push(odate + rng.random_range(30..=90));
            let receipt = ship + rng.random_range(1..=30);
            l_receipt.push(receipt);
            if receipt <= cutoff {
                l_retflag.push(Some(if rng.random_bool(0.5) { "R" } else { "A" }.to_string()));
            } else {
                l_retflag.push(Some("N".to_string()));
            }
            if ship > cutoff {
                l_status.push(Some("O".to_string()));
                any_open = true;
            } else {
                l_status.push(Some("F".to_string()));
            }
            l_instruct
                .push(Some(INSTRUCTIONS[rng.random_range(0..INSTRUCTIONS.len())].to_string()));
            l_mode.push(Some(MODES[rng.random_range(0..MODES.len())].to_string()));
            l_comment.push(Some(comment(&mut rng, 4)));
            total += ext * (100 - disc) / 100;
        }
        o_total.push(total);
        o_status.push(Some(if any_open { "O" } else { "F" }.to_string()));
    }
    // Discounts are DECIMAL(15,2): 0.00–0.10 stored as 0..10 cents... the
    // raw values above are hundredths already (disc=6 → 0.06).
    let orders = Table {
        name: "orders",
        schema: schema(vec![
            Field::not_null("o_orderkey", LogicalType::Int),
            Field::not_null("o_custkey", LogicalType::Int),
            Field::new("o_orderstatus", LogicalType::Varchar),
            Field::new("o_totalprice", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::not_null("o_orderdate", LogicalType::Date),
            Field::new("o_orderpriority", LogicalType::Varchar),
            Field::new("o_clerk", LogicalType::Varchar),
            Field::new("o_shippriority", LogicalType::Int),
            Field::new("o_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int(o_key),
            ColumnBuffer::Int(o_cust),
            ColumnBuffer::Varchar(o_status),
            ColumnBuffer::Decimal { data: o_total, scale: 2 },
            ColumnBuffer::Date(o_date),
            ColumnBuffer::Varchar(o_prio),
            ColumnBuffer::Varchar(o_clerk),
            ColumnBuffer::Int(o_ship),
            ColumnBuffer::Varchar(o_comment),
        ],
    };
    let lineitem = Table {
        name: "lineitem",
        schema: schema(vec![
            Field::not_null("l_orderkey", LogicalType::Int),
            Field::not_null("l_partkey", LogicalType::Int),
            Field::not_null("l_suppkey", LogicalType::Int),
            Field::not_null("l_linenumber", LogicalType::Int),
            Field::new("l_quantity", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("l_extendedprice", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("l_discount", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("l_tax", LogicalType::Decimal { width: 15, scale: 2 }),
            Field::new("l_returnflag", LogicalType::Varchar),
            Field::new("l_linestatus", LogicalType::Varchar),
            Field::not_null("l_shipdate", LogicalType::Date),
            Field::new("l_commitdate", LogicalType::Date),
            Field::new("l_receiptdate", LogicalType::Date),
            Field::new("l_shipinstruct", LogicalType::Varchar),
            Field::new("l_shipmode", LogicalType::Varchar),
            Field::new("l_comment", LogicalType::Varchar),
        ]),
        cols: vec![
            ColumnBuffer::Int(l_order),
            ColumnBuffer::Int(l_part),
            ColumnBuffer::Int(l_supp),
            ColumnBuffer::Int(l_line),
            ColumnBuffer::Decimal { data: l_qty, scale: 2 },
            ColumnBuffer::Decimal { data: l_extprice, scale: 2 },
            ColumnBuffer::Decimal { data: l_discount, scale: 2 },
            ColumnBuffer::Decimal { data: l_tax, scale: 2 },
            ColumnBuffer::Varchar(l_retflag),
            ColumnBuffer::Varchar(l_status),
            ColumnBuffer::Date(l_shipdate),
            ColumnBuffer::Date(l_commit),
            ColumnBuffer::Date(l_receipt),
            ColumnBuffer::Varchar(l_instruct),
            ColumnBuffer::Varchar(l_mode),
            ColumnBuffer::Varchar(l_comment),
        ],
    };

    TpchData { region, nation, supplier, part, partsupp, customer, orders, lineitem }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::Value;

    #[test]
    fn deterministic_and_scaled() {
        let a = generate(0.001, 42);
        let b = generate(0.001, 42);
        assert_eq!(a.lineitem.rows(), b.lineitem.rows());
        assert_eq!(a.lineitem.cols[0].get(10), b.lineitem.cols[0].get(10));
        let big = generate(0.002, 42);
        assert!(big.orders.rows() > a.orders.rows());
        assert_eq!(a.nation.rows(), 25);
        assert_eq!(a.region.rows(), 5);
    }

    #[test]
    fn lineitem_invariants() {
        let d = generate(0.001, 7);
        let li = &d.lineitem;
        let orders = &d.orders;
        assert!(li.rows() >= orders.rows(), "at least one line per order");
        // Dates ordered: ship < receipt.
        let (ColumnBuffer::Date(ship), ColumnBuffer::Date(receipt)) = (&li.cols[10], &li.cols[12])
        else {
            panic!()
        };
        assert!(ship.iter().zip(receipt).all(|(s, r)| s < r));
        // Discounts within 0.00..0.10.
        let ColumnBuffer::Decimal { data: disc, .. } = &li.cols[6] else { panic!() };
        assert!(disc.iter().all(|&d| (0..=10).contains(&d)));
        // Return flags from the 3-letter domain.
        for i in 0..li.rows() {
            match li.cols[8].get(i) {
                Value::Str(s) => assert!(["R", "A", "N"].contains(&s.as_str())),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn partsupp_links_valid_suppliers() {
        let d = generate(0.001, 7);
        let n_supp = d.supplier.rows() as i32;
        let ColumnBuffer::Int(supps) = &d.partsupp.cols[1] else { panic!() };
        assert!(supps.iter().all(|&s| s >= 1 && s <= n_supp));
        assert_eq!(d.partsupp.rows(), d.part.rows() * 4);
    }

    #[test]
    fn lineitem_suppliers_exist_in_partsupp() {
        // Q9 joins lineitem to partsupp on (partkey, suppkey): every pair
        // must exist.
        let d = generate(0.001, 3);
        let ColumnBuffer::Int(ps_p) = &d.partsupp.cols[0] else { panic!() };
        let ColumnBuffer::Int(ps_s) = &d.partsupp.cols[1] else { panic!() };
        let pairs: std::collections::HashSet<(i32, i32)> =
            ps_p.iter().copied().zip(ps_s.iter().copied()).collect();
        let ColumnBuffer::Int(l_p) = &d.lineitem.cols[1] else { panic!() };
        let ColumnBuffer::Int(l_s) = &d.lineitem.cols[2] else { panic!() };
        for (p, s) in l_p.iter().zip(l_s) {
            assert!(pairs.contains(&(*p, *s)), "lineitem ({p},{s}) not in partsupp");
        }
    }
}
