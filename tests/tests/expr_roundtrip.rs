//! `parse(render(e)) ≡ e` round-trip property for the `Expr` Display
//! rendering, plus regression tests pinning the two cache-key soundness
//! fixes:
//!
//! 1. `Value::Str` rendering must `''`-escape embedded single quotes —
//!    the old `format!("'{s}'")` produced unparseable text and let two
//!    distinct ASTs render identically.
//! 2. Cache-key literal rendering must be type-tagged (`canon_value`) —
//!    the old bare `{value}` rendering collided across `Int(5)` /
//!    `Bigint(5)` / `Double(5.0)` / `Decimal(5, 0)` / `Str("5")`.
//!
//! The generator only produces ASTs the parser itself can produce:
//! non-negative numeric literals (a leading minus parses as
//! `Expr::Neg`), `Int` within i32, `Bigint` beyond it, `Decimal` with
//! scale ≥ 1 (a scale-0 decimal prints as a bare integer and re-parses
//! as `Int`), no `Double` (the parser never emits one from a literal),
//! lower-case identifiers (the lexer case-folds), and no subqueries
//! (Display elides them as `(select ...)`).
//!
//! The vendored proptest shim has no combinator DSL, so the generator
//! is a hand-rolled recursive function over the shim's deterministic
//! `TestRng`, exposed through a small `Strategy` impl.

use monetlite_sql::canon::canon_value;
use monetlite_sql::{
    parse_statement, AggFunc, BinOp, DateField, Expr, IntervalUnit, SelectItem, Statement,
};
use monetlite_types::{Date, Decimal, LogicalType, Value};
use proptest::prelude::*;
use proptest::TestRng;

/// Render `e` into a SELECT projection, parse it back, and return the
/// re-parsed expression.
fn reparse(e: &Expr) -> Result<Expr, String> {
    let sql = format!("SELECT {e} FROM t");
    let stmt = parse_statement(&sql).map_err(|err| format!("{err} in {sql:?}"))?;
    let Statement::Select(sel) = stmt else {
        return Err(format!("not a SELECT: {sql:?}"));
    };
    match sel.projections.into_iter().next() {
        Some(SelectItem::Expr { expr, alias: None }) => Ok(expr),
        other => Err(format!("unexpected projection {other:?} in {sql:?}")),
    }
}

// -- generator ----------------------------------------------------------

fn pick(rng: &mut TestRng, n: usize) -> usize {
    (rng.next_u64() % n as u64) as usize
}

fn rbool(rng: &mut TestRng) -> bool {
    rng.next_u64() & 1 == 0
}

/// A parser-producible literal. Numeric values are non-negative (the
/// parser wraps a leading minus in `Expr::Neg`); `Bigint` is outside
/// the i32 range (within it the parser yields `Int`); `Decimal` scale
/// is ≥ 1 (scale 0 prints bare and re-parses as an integer); `Double`
/// is excluded (no literal form produces it).
fn gen_lit(rng: &mut TestRng) -> Value {
    match pick(rng, 7) {
        0 => Value::Null,
        1 => Value::Bool(rbool(rng)),
        2 => Value::Int((rng.next_u64() % i32::MAX as u64) as i32),
        3 => Value::Bigint(i32::MAX as i64 + 1 + (rng.next_u64() % 1_000_000_000) as i64),
        4 => Value::Decimal(Decimal::new(
            (rng.next_u64() % 1_000_000_000) as i64,
            1 + pick(rng, 4) as u8,
        )),
        // Printable ASCII including single quotes, to exercise escaping.
        5 => Value::Str(Strategy::generate(&"[ -~]{0,12}", rng)),
        _ => {
            let (y, m, d) =
                (1970 + pick(rng, 66) as i32, 1 + pick(rng, 12) as u32, 1 + pick(rng, 28) as u32);
            Value::Date(Date::from_ymd(y, m, d).expect("valid ymd"))
        }
    }
}

/// Lower-case column names only: the lexer case-folds identifiers.
fn gen_column(rng: &mut TestRng) -> Expr {
    const NAMES: [&str; 5] = ["a", "b", "c", "x", "y"];
    let name = NAMES[pick(rng, NAMES.len())].to_string();
    let table = if pick(rng, 4) == 0 { Some("t".to_string()) } else { None };
    Expr::Column { table, name }
}

fn gen_binop(rng: &mut TestRng) -> BinOp {
    const OPS: [BinOp; 13] = [
        BinOp::Or,
        BinOp::And,
        BinOp::Eq,
        BinOp::NotEq,
        BinOp::Lt,
        BinOp::LtEq,
        BinOp::Gt,
        BinOp::GtEq,
        BinOp::Add,
        BinOp::Sub,
        BinOp::Mul,
        BinOp::Div,
        BinOp::Mod,
    ];
    OPS[pick(rng, OPS.len())]
}

/// Operand safe on the left of a postfix predicate (`IS NULL`,
/// `BETWEEN`, `LIKE`, `IN`) or as a BETWEEN bound: those positions
/// parse at `additive` precedence, so the operand must not itself be a
/// postfix predicate or a bare NOT. `Binary` is safe because Display
/// self-parenthesizes it.
fn gen_pred_operand(rng: &mut TestRng) -> Expr {
    match pick(rng, 3) {
        0 => gen_column(rng),
        1 => Expr::int(pick(rng, 10_000) as i32),
        _ => Expr::Binary {
            op: gen_binop(rng),
            left: Box::new(gen_column(rng)),
            right: Box::new(Expr::int(pick(rng, 100) as i32)),
        },
    }
}

fn gen_leaf(rng: &mut TestRng) -> Expr {
    match pick(rng, 5) {
        0 | 1 => Expr::Literal(gen_lit(rng)),
        2 => gen_column(rng),
        // Neg only over a column or a positive literal: `--x` would lex
        // as a line comment, and `-5` must parse back as Neg(5).
        3 => {
            if rbool(rng) {
                Expr::Neg(Box::new(gen_column(rng)))
            } else {
                Expr::Neg(Box::new(Expr::int(1 + pick(rng, 10_000) as i32)))
            }
        }
        _ => {
            const UNITS: [IntervalUnit; 3] =
                [IntervalUnit::Day, IntervalUnit::Month, IntervalUnit::Year];
            Expr::Interval { value: pick(rng, 10_000) as i32, unit: UNITS[pick(rng, 3)] }
        }
    }
}

/// True when `e` can appear as a comparison or arithmetic operand
/// without parentheses. Postfix predicates and bare NOT bind looser
/// than `additive`, and Display has no structural parenthesis node, so
/// e.g. `a between 1 and 2 <> b` cannot re-parse. (The parser only
/// builds such trees from explicitly parenthesized input.) `Binary` is
/// safe because Display self-parenthesizes it.
fn additive_safe(e: &Expr) -> bool {
    !matches!(
        e,
        Expr::Between { .. }
            | Expr::Like { .. }
            | Expr::IsNull { .. }
            | Expr::InList { .. }
            | Expr::Not(_)
    )
}

fn gen_operand(rng: &mut TestRng, depth: usize) -> Expr {
    for _ in 0..8 {
        let e = gen_expr(rng, depth);
        if additive_safe(&e) {
            return e;
        }
    }
    gen_pred_operand(rng)
}

fn gen_expr(rng: &mut TestRng, depth: usize) -> Expr {
    if depth == 0 {
        return gen_leaf(rng);
    }
    let d = depth - 1;
    match pick(rng, 12) {
        0 => {
            let op = gen_binop(rng);
            // AND/OR operands parse at full predicate precedence; every
            // other operator's operands must be additive-safe.
            let (l, r) = if matches!(op, BinOp::And | BinOp::Or) {
                (gen_expr(rng, d), gen_expr(rng, d))
            } else {
                (gen_operand(rng, d), gen_operand(rng, d))
            };
            Expr::Binary { op, left: Box::new(l), right: Box::new(r) }
        }
        1 => Expr::Not(Box::new(gen_expr(rng, d))),
        2 => Expr::IsNull { expr: Box::new(gen_pred_operand(rng)), negated: rbool(rng) },
        3 => Expr::Like {
            expr: Box::new(gen_column(rng)),
            pattern: Strategy::generate(&"[ -~]{0,8}", rng),
            negated: rbool(rng),
        },
        4 => Expr::Between {
            expr: Box::new(gen_pred_operand(rng)),
            low: Box::new(gen_pred_operand(rng)),
            high: Box::new(gen_pred_operand(rng)),
            negated: rbool(rng),
        },
        5 => Expr::InList {
            expr: Box::new(gen_pred_operand(rng)),
            list: (0..1 + pick(rng, 3)).map(|_| Expr::Literal(gen_lit(rng))).collect(),
            negated: rbool(rng),
        },
        6 => {
            let branches =
                (0..1 + pick(rng, 2)).map(|_| (gen_expr(rng, d), gen_expr(rng, d))).collect();
            let else_expr = if rbool(rng) { Some(Box::new(gen_expr(rng, d))) } else { None };
            Expr::Case { branches, else_expr }
        }
        7 => Expr::Agg { func: AggFunc::Count, arg: None, distinct: false },
        8 => {
            const FUNCS: [AggFunc; 6] = [
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Avg,
                AggFunc::Min,
                AggFunc::Max,
                AggFunc::Median,
            ];
            Expr::Agg {
                func: FUNCS[pick(rng, FUNCS.len())],
                arg: Some(Box::new(gen_expr(rng, d))),
                distinct: rbool(rng),
            }
        }
        9 => {
            const FIELDS: [DateField; 3] = [DateField::Year, DateField::Month, DateField::Day];
            Expr::Extract { field: FIELDS[pick(rng, 3)], expr: Box::new(gen_column(rng)) }
        }
        10 => {
            const TYPES: [LogicalType; 7] = [
                LogicalType::Int,
                LogicalType::Bigint,
                LogicalType::Double,
                LogicalType::Varchar,
                LogicalType::Date,
                LogicalType::Bool,
                LogicalType::Decimal { width: 12, scale: 2 },
            ];
            Expr::Cast { expr: Box::new(gen_expr(rng, d)), ty: TYPES[pick(rng, TYPES.len())] }
        }
        _ => {
            let name = if rbool(rng) { "sqrt" } else { "abs" };
            Expr::Function { name: name.to_string(), args: vec![gen_expr(rng, d)] }
        }
    }
}

/// Strategy adapters over the shim's `TestRng`.
struct ExprTree;
impl Strategy for ExprTree {
    type Value = Expr;
    fn generate(&self, rng: &mut TestRng) -> Expr {
        gen_expr(rng, 3)
    }
}
fn expr_tree() -> ExprTree {
    ExprTree
}

struct LitValue;
impl Strategy for LitValue {
    type Value = Value;
    fn generate(&self, rng: &mut TestRng) -> Value {
        gen_lit(rng)
    }
}
fn lit_value() -> LitValue {
    LitValue
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // The load-bearing property for cache-key soundness: rendering any
    // parser-producible expression and parsing it back yields the same
    // AST. This fails against the pre-fix Display (unescaped quotes in
    // `Value::Str`): e.g. `Str("a'b")` rendered as `'a'b'`, which does
    // not lex.
    #[test]
    fn display_round_trips_through_the_parser(e in expr_tree()) {
        let back = reparse(&e);
        prop_assert!(back.is_ok(), "render of {:?} failed to re-parse: {:?}", e, back);
        prop_assert_eq!(&back.unwrap(), &e, "render {} re-parsed differently", e);
    }

    // canon_value is injective over generated values: distinct values
    // never share a rendering (the whole point of type tags).
    #[test]
    fn canon_value_is_injective(a in lit_value(), b in lit_value()) {
        if a != b {
            prop_assert!(canon_value(&a) != canon_value(&b), "{:?} vs {:?} collide", a, b);
        } else {
            prop_assert_eq!(canon_value(&a), canon_value(&b));
        }
    }
}

// -- satellite 1: the quote-escaping bug, pinned ------------------------

/// The pre-fix rendering: `format!("'{s}'")` with no escaping.
fn old_str_render(s: &str) -> String {
    format!("'{s}'")
}

#[test]
fn old_unescaped_rendering_does_not_reparse() {
    // `Str("a'b")` under the old rendering produced `'a'b'`: the lexer
    // closes the literal at the embedded quote and trips over the rest.
    let old = old_str_render("a'b");
    assert_eq!(old, "'a'b'");
    assert!(
        parse_statement(&format!("SELECT {old} FROM t")).is_err(),
        "old rendering of an embedded quote must not lex"
    );
    // The fixed Display escapes and round-trips the same value.
    let e = Expr::Literal(Value::Str("a'b".to_string()));
    assert_eq!(e.to_string(), "'a''b'");
    assert_eq!(reparse(&e).unwrap(), e);
}

#[test]
fn old_unescaped_rendering_collides_distinct_asts() {
    // Under the old rendering, a single-element IN list over
    // `Str("a','b")` prints exactly like a two-element list over "a"
    // and "b" — two distinct ASTs, one text, i.e. one cache key.
    let one = Expr::InList {
        expr: Box::new(Expr::col("x")),
        list: vec![Expr::Literal(Value::Str("a','b".to_string()))],
        negated: false,
    };
    let two = Expr::InList {
        expr: Box::new(Expr::col("x")),
        list: vec![
            Expr::Literal(Value::Str("a".to_string())),
            Expr::Literal(Value::Str("b".to_string())),
        ],
        negated: false,
    };
    let old_one = format!("x in ({})", old_str_render("a','b"));
    let old_two = format!("x in ({},{})", old_str_render("a"), old_str_render("b"));
    // "x in ('a','b')" both ways — identical text for distinct ASTs.
    assert_eq!(old_one, old_two);
    // The fixed Display keeps them distinct and round-trippable.
    assert_ne!(one.to_string(), two.to_string());
    assert_eq!(reparse(&one).unwrap(), one);
    assert_eq!(reparse(&two).unwrap(), two);
}

// -- satellite 2: the type-ambiguity bug, pinned ------------------------

/// The pre-fix cache-key literal rendering: bare `Display`, no type tag.
fn old_untyped_render(v: &Value) -> String {
    format!("{v}")
}

#[test]
fn old_untyped_rendering_collides_across_types() {
    // All five of these printed as the bare text `5` under the old
    // rendering — five different typed literals, one cache key. A plan
    // bound for `x = 5` (int) would be replayed for `x = '5'` (str).
    let five = [
        Value::Int(5),
        Value::Bigint(5),
        Value::Double(5.0),
        Value::Decimal(Decimal::new(5, 0)),
        Value::Str("5".to_string()),
    ];
    for v in &five {
        assert_eq!(old_untyped_render(v), "5", "{v:?} renders bare under the old scheme");
    }
    // canon_value keeps every pair distinct.
    for (i, a) in five.iter().enumerate() {
        for b in &five[i + 1..] {
            assert_ne!(canon_value(a), canon_value(b), "{a:?} vs {b:?} must not collide");
        }
    }
}

#[test]
fn old_untyped_rendering_collides_decimal_scales() {
    // 110@2 (1.10) and 1100@3 (1.100) are numerically equal but bind
    // and cast differently; the canonical key separates raw and scale.
    let a = Value::Decimal(Decimal::new(110, 2));
    let b = Value::Decimal(Decimal::new(1100, 3));
    assert_ne!(canon_value(&a), canon_value(&b));
    assert_eq!(canon_value(&a), "dec:110.2");
    assert_eq!(canon_value(&b), "dec:1100.3");
}

#[test]
fn canon_value_escapes_quotes_in_strings() {
    assert_eq!(canon_value(&Value::Str("a'b".to_string())), "str:'a''b'");
    // The classic smuggle: without escaping, Str("a','b") and the pair
    // ("a", "b") produce the same key material in list position.
    let smuggled = canon_value(&Value::Str("a','b".to_string()));
    let pair = format!(
        "{},{}",
        canon_value(&Value::Str("a".to_string())),
        canon_value(&Value::Str("b".to_string()))
    );
    assert_ne!(smuggled, pair);
}
