//! Figure 1 in code: the same engine embedded (c) versus behind a socket
//! (a), showing why in-process transfer wins by an order of magnitude.
//!
//! ```sh
//! cargo run --release -p monetlite-examples --example client_server
//! ```

use monetlite::host::{HostFrame, TransferMode};
use monetlite::Database;
use monetlite_netsim::{RemoteClient, Server, ServerEngine};
use monetlite_types::ColumnBuffer;
use std::time::Instant;

fn main() -> monetlite::types::Result<()> {
    let n = 200_000;
    let cols = vec![
        ColumnBuffer::Int((0..n).collect()),
        ColumnBuffer::Double((0..n).map(|x| x as f64).collect()),
    ];
    let ddl = "CREATE TABLE t (a INTEGER NOT NULL, b DOUBLE)";

    // Embedded.
    let db = Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute(ddl)?;
    conn.append("t", cols.clone())?;
    let t0 = Instant::now();
    let r = conn.query("SELECT * FROM t")?;
    let frame = HostFrame::import(&r, TransferMode::ZeroCopy);
    let embedded = t0.elapsed();
    println!(
        "embedded:  {} rows in {embedded:?} (zero-copy: {} cols)",
        frame.rows, frame.stats.zero_copied
    );

    // Same engine behind a TCP socket with a row-wise text protocol.
    let db2 = Database::open_in_memory();
    let mut c2 = db2.connect();
    c2.execute(ddl)?;
    c2.append("t", cols)?;
    drop(c2);
    let server = Server::start(ServerEngine::Monet(db2))?;
    let mut client = RemoteClient::connect(server.port())?;
    let t0 = Instant::now();
    let (_, bufs) = client.read_table("t")?;
    let socket = t0.elapsed();
    println!(
        "socket:    {} rows in {socket:?} ({} protocol bytes received)",
        bufs[0].len(),
        client.bytes_received
    );
    println!(
        "socket / embedded transfer ratio: {:.1}x",
        socket.as_secs_f64() / embedded.as_secs_f64().max(1e-9)
    );
    client.close();
    Ok(())
}
