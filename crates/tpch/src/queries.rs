//! TPC-H Q1–Q10 SQL text (validation parameters) and the schema DDL.

/// CREATE TABLE statements for all eight tables.
pub const DDL: &str = "
CREATE TABLE region (r_regionkey INTEGER NOT NULL, r_name VARCHAR(25) NOT NULL, r_comment VARCHAR(152));
CREATE TABLE nation (n_nationkey INTEGER NOT NULL, n_name VARCHAR(25) NOT NULL, n_regionkey INTEGER NOT NULL, n_comment VARCHAR(152));
CREATE TABLE supplier (s_suppkey INTEGER NOT NULL, s_name VARCHAR(25) NOT NULL, s_address VARCHAR(40), s_nationkey INTEGER NOT NULL, s_phone VARCHAR(15), s_acctbal DECIMAL(15,2), s_comment VARCHAR(101));
CREATE TABLE part (p_partkey INTEGER NOT NULL, p_name VARCHAR(55) NOT NULL, p_mfgr VARCHAR(25), p_brand VARCHAR(10), p_type VARCHAR(25), p_size INTEGER, p_container VARCHAR(10), p_retailprice DECIMAL(15,2), p_comment VARCHAR(23));
CREATE TABLE customer (c_custkey INTEGER NOT NULL, c_name VARCHAR(25) NOT NULL, c_address VARCHAR(40), c_nationkey INTEGER NOT NULL, c_phone VARCHAR(15), c_acctbal DECIMAL(15,2), c_mktsegment VARCHAR(10), c_comment VARCHAR(117));
CREATE TABLE partsupp (ps_partkey INTEGER NOT NULL, ps_suppkey INTEGER NOT NULL, ps_availqty INTEGER, ps_supplycost DECIMAL(15,2), ps_comment VARCHAR(199));
CREATE TABLE orders (o_orderkey INTEGER NOT NULL, o_custkey INTEGER NOT NULL, o_orderstatus VARCHAR(1), o_totalprice DECIMAL(15,2), o_orderdate DATE NOT NULL, o_orderpriority VARCHAR(15), o_clerk VARCHAR(15), o_shippriority INTEGER, o_comment VARCHAR(79));
CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, l_partkey INTEGER NOT NULL, l_suppkey INTEGER NOT NULL, l_linenumber INTEGER NOT NULL, l_quantity DECIMAL(15,2), l_extendedprice DECIMAL(15,2), l_discount DECIMAL(15,2), l_tax DECIMAL(15,2), l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE NOT NULL, l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR(25), l_shipmode VARCHAR(10), l_comment VARCHAR(44));
";

const Q1: &str = "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
sum(l_extendedprice) as sum_base_price, \
sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, avg(l_discount) as avg_disc, \
count(*) as count_order \
from lineitem \
where l_shipdate <= date '1998-12-01' - interval '90' day \
group by l_returnflag, l_linestatus \
order by l_returnflag, l_linestatus";

const Q2: &str =
    "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment \
from part, supplier, partsupp, nation, region \
where p_partkey = ps_partkey and s_suppkey = ps_suppkey and p_size = 15 \
and p_type like '%BRASS' and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
and r_name = 'EUROPE' \
and ps_supplycost = (select min(ps_supplycost) from partsupp, supplier, nation, region \
    where p_partkey = ps_partkey and s_suppkey = ps_suppkey and s_nationkey = n_nationkey \
    and n_regionkey = r_regionkey and r_name = 'EUROPE') \
order by s_acctbal desc, n_name, s_name, p_partkey limit 100";

const Q3: &str = "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
o_orderdate, o_shippriority \
from customer, orders, lineitem \
where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey \
and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15' \
group by l_orderkey, o_orderdate, o_shippriority \
order by revenue desc, o_orderdate limit 10";

const Q4: &str = "select o_orderpriority, count(*) as order_count from orders \
where o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-07-01' + interval '3' month \
and exists (select * from lineitem where l_orderkey = o_orderkey and l_commitdate < l_receiptdate) \
group by o_orderpriority order by o_orderpriority";

const Q5: &str = "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
from customer, orders, lineitem, supplier, nation, region \
where c_custkey = o_custkey and l_orderkey = o_orderkey and l_suppkey = s_suppkey \
and c_nationkey = s_nationkey and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
and r_name = 'ASIA' and o_orderdate >= date '1994-01-01' \
and o_orderdate < date '1994-01-01' + interval '1' year \
group by n_name order by revenue desc";

const Q6: &str = "select sum(l_extendedprice * l_discount) as revenue from lineitem \
where l_shipdate >= date '1994-01-01' and l_shipdate < date '1994-01-01' + interval '1' year \
and l_discount between 0.05 and 0.07 and l_quantity < 24";

const Q7: &str = "select supp_nation, cust_nation, l_year, sum(volume) as revenue from \
(select n1.n_name as supp_nation, n2.n_name as cust_nation, \
extract(year from l_shipdate) as l_year, l_extendedprice * (1 - l_discount) as volume \
from supplier, lineitem, orders, customer, nation n1, nation n2 \
where s_suppkey = l_suppkey and o_orderkey = l_orderkey and c_custkey = o_custkey \
and s_nationkey = n1.n_nationkey and c_nationkey = n2.n_nationkey \
and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY') or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE')) \
and l_shipdate between date '1995-01-01' and date '1996-12-31') as shipping \
group by supp_nation, cust_nation, l_year order by supp_nation, cust_nation, l_year";

const Q8: &str = "select o_year, sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume) as mkt_share \
from (select extract(year from o_orderdate) as o_year, \
l_extendedprice * (1 - l_discount) as volume, n2.n_name as nation \
from part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
where p_partkey = l_partkey and s_suppkey = l_suppkey and l_orderkey = o_orderkey \
and o_custkey = c_custkey and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey \
and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey \
and o_orderdate between date '1995-01-01' and date '1996-12-31' \
and p_type = 'ECONOMY ANODIZED STEEL') as all_nations \
group by o_year order by o_year";

const Q9: &str = "select nation, o_year, sum(amount) as sum_profit from \
(select n_name as nation, extract(year from o_orderdate) as o_year, \
l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount \
from part, supplier, lineitem, partsupp, orders, nation \
where s_suppkey = l_suppkey and ps_suppkey = l_suppkey and ps_partkey = l_partkey \
and p_partkey = l_partkey and o_orderkey = l_orderkey and s_nationkey = n_nationkey \
and p_name like '%green%') as profit \
group by nation, o_year order by nation, o_year desc";

const Q10: &str = "select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue, \
c_acctbal, n_name, c_address, c_phone, c_comment \
from customer, orders, lineitem, nation \
where c_custkey = o_custkey and l_orderkey = o_orderkey \
and o_orderdate >= date '1993-10-01' and o_orderdate < date '1993-10-01' + interval '3' month \
and l_returnflag = 'R' and c_nationkey = n_nationkey \
group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
order by revenue desc limit 20";

/// SQL text of query `n` (1–10).
pub fn sql(n: usize) -> &'static str {
    match n {
        1 => Q1,
        2 => Q2,
        3 => Q3,
        4 => Q4,
        5 => Q5,
        6 => Q6,
        7 => Q7,
        8 => Q8,
        9 => Q9,
        10 => Q10,
        _ => panic!("TPC-H queries 1-10 only"),
    }
}

/// All ten queries.
pub fn all() -> impl Iterator<Item = (usize, &'static str)> {
    (1..=10).map(|n| (n, sql(n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_parses() {
        for (n, q) in all() {
            let r = monetlite_sql::parse_statement(q);
            assert!(r.is_ok(), "Q{n} failed to parse: {r:?}");
        }
    }

    #[test]
    fn ddl_parses() {
        let stmts = monetlite_sql::parse_statements(DDL).unwrap();
        assert_eq!(stmts.len(), 8);
    }
}
