//! Shared helpers for cross-crate integration tests.
