//! Minimal local stand-in for `proptest` (no network in the build
//! environment). Supports the subset this workspace's property tests use:
//!
//! * the `proptest!` macro with an optional `#![proptest_config(...)]`
//!   attribute,
//! * integer/float range strategies (`-500i64..500`),
//! * `any::<T>()` for primitive integers,
//! * `proptest::collection::vec(elem, size_range)`,
//! * string strategies from a small regex subset (`".{0,40}"`,
//!   `"[a-c]{1,3}"`, literal characters),
//! * `prop_assert!` / `prop_assert_eq!`.
//!
//! Cases are generated from a fixed deterministic seed so failures are
//! reproducible; shrinking is not implemented.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Per-test configuration (`cases` is the only knob used here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 generator used for case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    x: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> TestRng {
        TestRng { x: seed ^ 0x5851f42d4c957f2d }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Types with a full-domain generator (for [`any`]).
pub trait Arbitrary {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for a primitive type. (Real proptest spells this
/// `arbitrary::StrategyFor`; the concrete return type of [`any`] must stay
/// public either way.)
// xlint: allow(shim-export, concrete return type of `any()`; real proptest uses arbitrary::StrategyFor)
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — the unconstrained strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: std::marker::PhantomData }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------------
// String strategies from a regex subset
// ---------------------------------------------------------------------------

/// `&str` regex patterns act as string strategies. Supported syntax: a
/// sequence of atoms, each a literal char, `.` (printable ASCII), or a
/// character class `[a-z0-9_]`, optionally repeated with `{m,n}`, `{n}`,
/// `*` (0..8), `+` (1..8) or `?`.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_matching(self, rng)
    }
}

fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut out = String::new();
    let mut i = 0usize;
    while i < chars.len() {
        // Parse one atom.
        let choices: Vec<char> = match chars[i] {
            '.' => {
                i += 1;
                (0x20u8..0x7f).map(|b| b as char).collect()
            }
            '[' => {
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        for c in lo..=hi {
                            if let Some(c) = char::from_u32(c) {
                                set.push(c);
                            }
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                i += 1; // closing ']'
                set
            }
            '\\' if i + 1 < chars.len() => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Parse an optional repetition.
        let (lo, hi) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..].iter().position(|&c| c == '}').map(|p| p + i);
            let close = close.expect("unclosed {} in pattern");
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((a, b)) => {
                    (a.trim().parse::<usize>().unwrap_or(0), b.trim().parse::<usize>().unwrap_or(8))
                }
                None => {
                    let n = body.trim().parse::<usize>().unwrap_or(1);
                    (n, n)
                }
            }
        } else if i < chars.len() && chars[i] == '*' {
            i += 1;
            (0, 8)
        } else if i < chars.len() && chars[i] == '+' {
            i += 1;
            (1, 8)
        } else if i < chars.len() && chars[i] == '?' {
            i += 1;
            (0, 1)
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            if choices.is_empty() {
                continue;
            }
            out.push(choices[rng.below(choices.len() as u64) as usize]);
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// `proptest::collection` equivalents.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Build a vector strategy.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let n = self.size.start + (rng.next_u64() as usize) % span;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// `proptest::option` equivalents.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option<S::Value>` (`None` in about a quarter of
    /// cases, matching real proptest's default weighting).
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Build an `Option` strategy around an inner value strategy.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// The glob-import surface tests pull in via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert within a property (panics on failure, like a failed case).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// The `proptest!` block: expands each contained `#[test] fn` into a
/// normal test that runs `cases` deterministic generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
// xlint: allow(shim-export, hidden expansion helper for the exported proptest! macro)
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( #[test] fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            #[test]
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                // Stable per-test seed: derived from the test name.
                let mut seed = 0xcbf29ce484222325u64;
                for b in stringify!($name).bytes() {
                    seed = (seed ^ b as u64).wrapping_mul(0x100000001b3);
                }
                for case in 0..cfg.cases as u64 {
                    let mut rng = $crate::TestRng::new(seed ^ case.wrapping_mul(0x9e3779b97f4a7c15));
                    $( let $arg = $crate::Strategy::generate(&$strat, &mut rng); )+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_subset() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-c]{1,3}", &mut rng);
            assert!((1..=3).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
            let t = Strategy::generate(&".{0,5}", &mut rng);
            assert!(t.chars().count() <= 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_in_range(a in -5i32..5, v in collection::vec(0usize..3, 1..4)) {
            prop_assert!((-5..5).contains(&a));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&x| x < 3));
        }
    }
}
