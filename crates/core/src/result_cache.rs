//! Result cache: full result sets for identical read-only statements,
//! keyed on the canonical statement *with* literals plus the same
//! option/stats/view fingerprint as the plan cache.
//!
//! A hit returns the stored columns by `Arc` clone — no parse, bind,
//! optimize, or execution. Correctness comes from the same lazy
//! `(name, id, version)` dependency validation as the plan cache: any
//! committed change to an input table (append, delete, compaction,
//! DROP/CREATE) moves the fingerprint and the entry is discarded on the
//! next lookup. Entries are byte-accounted via [`Bat::mem_bytes`] and
//! evicted least-recently-used past the configured budget
//! (`MONETLITE_RESULT_CACHE_BYTES`).

use crate::plan_cache::{deps_valid, Dep, Lru};
use monetlite_storage::bat::Bat;
use monetlite_storage::catalog::TableMeta;
use monetlite_types::LogicalType;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One cached result set.
pub struct ResultEntry {
    /// Output column names.
    pub names: Vec<String>,
    /// Output column types.
    pub types: Vec<LogicalType>,
    /// Result columns, shared with every hit.
    pub cols: Vec<Arc<Bat>>,
    /// Row count.
    pub rows: usize,
    /// Optimizer cardinality estimate recorded at store time (replayed
    /// into the hit's counter snapshot).
    pub estimated_rows: u64,
    /// Input-table fingerprints at store time.
    pub deps: Vec<Dep>,
}

impl ResultEntry {
    fn mem_bytes(&self) -> usize {
        let data: usize = self.cols.iter().map(|b| b.mem_bytes()).sum();
        let names: usize = self.names.iter().map(|n| n.len() + 24).sum();
        data + names + 256
    }
}

/// The shared result cache.
#[derive(Default)]
pub struct ResultCache {
    entries: Lru<ResultEntry>,
    /// Hits (execution skipped entirely).
    pub hits: AtomicU64,
    /// Misses (statement executed).
    pub misses: AtomicU64,
    /// Hits rejected because a dependency's id/version moved.
    pub invalidations: AtomicU64,
}

impl ResultCache {
    /// Fetch a result if its dependencies still hold for `tables`.
    pub fn get_valid(
        &self,
        key: &str,
        tables: &HashMap<String, Arc<TableMeta>>,
    ) -> Option<Arc<ResultEntry>> {
        let entry = self.entries.get(key)?;
        if deps_valid(&entry.deps, tables) {
            Some(entry)
        } else {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
            self.entries.remove(key);
            None
        }
    }

    /// Store a result under `key` within `budget` bytes.
    pub fn put(&self, key: String, entry: ResultEntry, budget: usize) {
        let bytes = key.len() + entry.mem_bytes();
        self.entries.put(key, Arc::new(entry), bytes, budget);
    }

    /// Number of cached results.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no results are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.len() == 0
    }

    /// Total accounted bytes.
    pub fn bytes(&self) -> usize {
        self.entries.bytes()
    }

    /// Drop everything (tests).
    pub fn clear(&self) {
        self.entries.clear();
    }
}
