//! TPC-H Q1–Q22 SQL text (validation parameters), per-query expected
//! result shapes, and the schema DDL.

/// CREATE TABLE statements for all eight tables.
pub const DDL: &str = "
CREATE TABLE region (r_regionkey INTEGER NOT NULL, r_name VARCHAR(25) NOT NULL, r_comment VARCHAR(152));
CREATE TABLE nation (n_nationkey INTEGER NOT NULL, n_name VARCHAR(25) NOT NULL, n_regionkey INTEGER NOT NULL, n_comment VARCHAR(152));
CREATE TABLE supplier (s_suppkey INTEGER NOT NULL, s_name VARCHAR(25) NOT NULL, s_address VARCHAR(40), s_nationkey INTEGER NOT NULL, s_phone VARCHAR(15), s_acctbal DECIMAL(15,2), s_comment VARCHAR(101));
CREATE TABLE part (p_partkey INTEGER NOT NULL, p_name VARCHAR(55) NOT NULL, p_mfgr VARCHAR(25), p_brand VARCHAR(10), p_type VARCHAR(25), p_size INTEGER, p_container VARCHAR(10), p_retailprice DECIMAL(15,2), p_comment VARCHAR(23));
CREATE TABLE customer (c_custkey INTEGER NOT NULL, c_name VARCHAR(25) NOT NULL, c_address VARCHAR(40), c_nationkey INTEGER NOT NULL, c_phone VARCHAR(15), c_acctbal DECIMAL(15,2), c_mktsegment VARCHAR(10), c_comment VARCHAR(117));
CREATE TABLE partsupp (ps_partkey INTEGER NOT NULL, ps_suppkey INTEGER NOT NULL, ps_availqty INTEGER, ps_supplycost DECIMAL(15,2), ps_comment VARCHAR(199));
CREATE TABLE orders (o_orderkey INTEGER NOT NULL, o_custkey INTEGER NOT NULL, o_orderstatus VARCHAR(1), o_totalprice DECIMAL(15,2), o_orderdate DATE NOT NULL, o_orderpriority VARCHAR(15), o_clerk VARCHAR(15), o_shippriority INTEGER, o_comment VARCHAR(79));
CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, l_partkey INTEGER NOT NULL, l_suppkey INTEGER NOT NULL, l_linenumber INTEGER NOT NULL, l_quantity DECIMAL(15,2), l_extendedprice DECIMAL(15,2), l_discount DECIMAL(15,2), l_tax DECIMAL(15,2), l_returnflag VARCHAR(1), l_linestatus VARCHAR(1), l_shipdate DATE NOT NULL, l_commitdate DATE, l_receiptdate DATE, l_shipinstruct VARCHAR(25), l_shipmode VARCHAR(10), l_comment VARCHAR(44));
";

const Q1: &str = "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
sum(l_extendedprice) as sum_base_price, \
sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, avg(l_discount) as avg_disc, \
count(*) as count_order \
from lineitem \
where l_shipdate <= date '1998-12-01' - interval '90' day \
group by l_returnflag, l_linestatus \
order by l_returnflag, l_linestatus";

const Q2: &str =
    "select s_acctbal, s_name, n_name, p_partkey, p_mfgr, s_address, s_phone, s_comment \
from part, supplier, partsupp, nation, region \
where p_partkey = ps_partkey and s_suppkey = ps_suppkey and p_size = 15 \
and p_type like '%BRASS' and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
and r_name = 'EUROPE' \
and ps_supplycost = (select min(ps_supplycost) from partsupp, supplier, nation, region \
    where p_partkey = ps_partkey and s_suppkey = ps_suppkey and s_nationkey = n_nationkey \
    and n_regionkey = r_regionkey and r_name = 'EUROPE') \
order by s_acctbal desc, n_name, s_name, p_partkey limit 100";

const Q3: &str = "select l_orderkey, sum(l_extendedprice * (1 - l_discount)) as revenue, \
o_orderdate, o_shippriority \
from customer, orders, lineitem \
where c_mktsegment = 'BUILDING' and c_custkey = o_custkey and l_orderkey = o_orderkey \
and o_orderdate < date '1995-03-15' and l_shipdate > date '1995-03-15' \
group by l_orderkey, o_orderdate, o_shippriority \
order by revenue desc, o_orderdate limit 10";

const Q4: &str = "select o_orderpriority, count(*) as order_count from orders \
where o_orderdate >= date '1993-07-01' and o_orderdate < date '1993-07-01' + interval '3' month \
and exists (select * from lineitem where l_orderkey = o_orderkey and l_commitdate < l_receiptdate) \
group by o_orderpriority order by o_orderpriority";

const Q5: &str = "select n_name, sum(l_extendedprice * (1 - l_discount)) as revenue \
from customer, orders, lineitem, supplier, nation, region \
where c_custkey = o_custkey and l_orderkey = o_orderkey and l_suppkey = s_suppkey \
and c_nationkey = s_nationkey and s_nationkey = n_nationkey and n_regionkey = r_regionkey \
and r_name = 'ASIA' and o_orderdate >= date '1994-01-01' \
and o_orderdate < date '1994-01-01' + interval '1' year \
group by n_name order by revenue desc";

const Q6: &str = "select sum(l_extendedprice * l_discount) as revenue from lineitem \
where l_shipdate >= date '1994-01-01' and l_shipdate < date '1994-01-01' + interval '1' year \
and l_discount between 0.05 and 0.07 and l_quantity < 24";

const Q7: &str = "select supp_nation, cust_nation, l_year, sum(volume) as revenue from \
(select n1.n_name as supp_nation, n2.n_name as cust_nation, \
extract(year from l_shipdate) as l_year, l_extendedprice * (1 - l_discount) as volume \
from supplier, lineitem, orders, customer, nation n1, nation n2 \
where s_suppkey = l_suppkey and o_orderkey = l_orderkey and c_custkey = o_custkey \
and s_nationkey = n1.n_nationkey and c_nationkey = n2.n_nationkey \
and ((n1.n_name = 'FRANCE' and n2.n_name = 'GERMANY') or (n1.n_name = 'GERMANY' and n2.n_name = 'FRANCE')) \
and l_shipdate between date '1995-01-01' and date '1996-12-31') as shipping \
group by supp_nation, cust_nation, l_year order by supp_nation, cust_nation, l_year";

const Q8: &str = "select o_year, sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume) as mkt_share \
from (select extract(year from o_orderdate) as o_year, \
l_extendedprice * (1 - l_discount) as volume, n2.n_name as nation \
from part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
where p_partkey = l_partkey and s_suppkey = l_suppkey and l_orderkey = o_orderkey \
and o_custkey = c_custkey and c_nationkey = n1.n_nationkey and n1.n_regionkey = r_regionkey \
and r_name = 'AMERICA' and s_nationkey = n2.n_nationkey \
and o_orderdate between date '1995-01-01' and date '1996-12-31' \
and p_type = 'ECONOMY ANODIZED STEEL') as all_nations \
group by o_year order by o_year";

const Q9: &str = "select nation, o_year, sum(amount) as sum_profit from \
(select n_name as nation, extract(year from o_orderdate) as o_year, \
l_extendedprice * (1 - l_discount) - ps_supplycost * l_quantity as amount \
from part, supplier, lineitem, partsupp, orders, nation \
where s_suppkey = l_suppkey and ps_suppkey = l_suppkey and ps_partkey = l_partkey \
and p_partkey = l_partkey and o_orderkey = l_orderkey and s_nationkey = n_nationkey \
and p_name like '%green%') as profit \
group by nation, o_year order by nation, o_year desc";

const Q10: &str = "select c_custkey, c_name, sum(l_extendedprice * (1 - l_discount)) as revenue, \
c_acctbal, n_name, c_address, c_phone, c_comment \
from customer, orders, lineitem, nation \
where c_custkey = o_custkey and l_orderkey = o_orderkey \
and o_orderdate >= date '1993-10-01' and o_orderdate < date '1993-10-01' + interval '3' month \
and l_returnflag = 'R' and c_nationkey = n_nationkey \
group by c_custkey, c_name, c_acctbal, c_phone, n_name, c_address, c_comment \
order by revenue desc limit 20";

const Q11: &str = "select ps_partkey, sum(ps_supplycost * ps_availqty) as value \
from partsupp, supplier, nation \
where ps_suppkey = s_suppkey and s_nationkey = n_nationkey and n_name = 'GERMANY' \
group by ps_partkey \
having sum(ps_supplycost * ps_availqty) > \
(select sum(ps_supplycost * ps_availqty) * 0.0001 from partsupp, supplier, nation \
    where ps_suppkey = s_suppkey and s_nationkey = n_nationkey and n_name = 'GERMANY') \
order by value desc, ps_partkey";

const Q12: &str = "select l_shipmode, \
sum(case when o_orderpriority = '1-URGENT' or o_orderpriority = '2-HIGH' then 1 else 0 end) as high_line_count, \
sum(case when o_orderpriority <> '1-URGENT' and o_orderpriority <> '2-HIGH' then 1 else 0 end) as low_line_count \
from orders, lineitem \
where o_orderkey = l_orderkey and l_shipmode in ('MAIL', 'SHIP') \
and l_commitdate < l_receiptdate and l_shipdate < l_commitdate \
and l_receiptdate >= date '1994-01-01' \
and l_receiptdate < date '1994-01-01' + interval '1' year \
group by l_shipmode order by l_shipmode";

const Q13: &str = "select c_count, count(*) as custdist from \
(select c_custkey, count(o_orderkey) from customer \
left outer join orders on c_custkey = o_custkey \
and o_comment not like '%special%requests%' \
group by c_custkey) as c_orders (c_custkey, c_count) \
group by c_count order by custdist desc, c_count desc";

const Q14: &str = "select 100.00 * sum(case when p_type like 'PROMO%' \
then l_extendedprice * (1 - l_discount) else 0 end) / \
sum(l_extendedprice * (1 - l_discount)) as promo_revenue \
from lineitem, part \
where l_partkey = p_partkey and l_shipdate >= date '1995-09-01' \
and l_shipdate < date '1995-09-01' + interval '1' month";

/// Q15's view definition (run before [`sql`]`(15)`, drop with
/// [`teardown_sql`]). The spec offers the view and WITH variants; we use
/// the view to exercise CREATE VIEW end to end.
const Q15_SETUP: &str = "create view revenue0 (supplier_no, total_revenue) as \
select l_suppkey, sum(l_extendedprice * (1 - l_discount)) from lineitem \
where l_shipdate >= date '1996-01-01' \
and l_shipdate < date '1996-01-01' + interval '3' month \
group by l_suppkey";

const Q15: &str = "select s_suppkey, s_name, s_address, s_phone, total_revenue \
from supplier, revenue0 \
where s_suppkey = supplier_no \
and total_revenue = (select max(total_revenue) from revenue0) \
order by s_suppkey";

const Q15_TEARDOWN: &str = "drop view revenue0";

const Q16: &str = "select p_brand, p_type, p_size, count(distinct ps_suppkey) as supplier_cnt \
from partsupp, part \
where p_partkey = ps_partkey and p_brand <> 'Brand#45' \
and p_type not like 'MEDIUM POLISHED%' \
and p_size in (49, 14, 23, 45, 19, 3, 36, 9) \
and ps_suppkey not in (select s_suppkey from supplier \
    where s_comment like '%Customer%Complaints%') \
group by p_brand, p_type, p_size \
order by supplier_cnt desc, p_brand, p_type, p_size";

const Q17: &str = "select sum(l_extendedprice) / 7.0 as avg_yearly from lineitem, part \
where p_partkey = l_partkey and p_brand = 'Brand#23' and p_container = 'MED BOX' \
and l_quantity < (select 0.2 * avg(l_quantity) from lineitem \
    where l_partkey = p_partkey)";

const Q18: &str = "select c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, \
sum(l_quantity) \
from customer, orders, lineitem \
where o_orderkey in (select l_orderkey from lineitem \
    group by l_orderkey having sum(l_quantity) > 300) \
and c_custkey = o_custkey and o_orderkey = l_orderkey \
group by c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice \
order by o_totalprice desc, o_orderdate limit 100";

const Q19: &str = "select sum(l_extendedprice * (1 - l_discount)) as revenue \
from lineitem, part where \
(p_partkey = l_partkey and p_brand = 'Brand#12' \
and p_container in ('SM CASE', 'SM BOX', 'SM PACK', 'SM PKG') \
and l_quantity >= 1 and l_quantity <= 1 + 10 and p_size between 1 and 5 \
and l_shipmode in ('AIR', 'AIR REG') and l_shipinstruct = 'DELIVER IN PERSON') \
or \
(p_partkey = l_partkey and p_brand = 'Brand#23' \
and p_container in ('MED BAG', 'MED BOX', 'MED PKG', 'MED PACK') \
and l_quantity >= 10 and l_quantity <= 10 + 10 and p_size between 1 and 10 \
and l_shipmode in ('AIR', 'AIR REG') and l_shipinstruct = 'DELIVER IN PERSON') \
or \
(p_partkey = l_partkey and p_brand = 'Brand#34' \
and p_container in ('LG CASE', 'LG BOX', 'LG PACK', 'LG PKG') \
and l_quantity >= 20 and l_quantity <= 20 + 10 and p_size between 1 and 15 \
and l_shipmode in ('AIR', 'AIR REG') and l_shipinstruct = 'DELIVER IN PERSON')";

const Q20: &str = "select s_name, s_address from supplier, nation \
where s_suppkey in (select ps_suppkey from partsupp \
    where ps_partkey in (select p_partkey from part where p_name like 'forest%') \
    and ps_availqty > (select 0.5 * sum(l_quantity) from lineitem \
        where l_partkey = ps_partkey and l_suppkey = ps_suppkey \
        and l_shipdate >= date '1994-01-01' \
        and l_shipdate < date '1994-01-01' + interval '1' year)) \
and s_nationkey = n_nationkey and n_name = 'CANADA' \
order by s_name";

const Q21: &str = "select s_name, count(*) as numwait \
from supplier, lineitem l1, orders, nation \
where s_suppkey = l1.l_suppkey and o_orderkey = l1.l_orderkey \
and o_orderstatus = 'F' and l1.l_receiptdate > l1.l_commitdate \
and exists (select * from lineitem l2 where l2.l_orderkey = l1.l_orderkey \
    and l2.l_suppkey <> l1.l_suppkey) \
and not exists (select * from lineitem l3 where l3.l_orderkey = l1.l_orderkey \
    and l3.l_suppkey <> l1.l_suppkey and l3.l_receiptdate > l3.l_commitdate) \
and s_nationkey = n_nationkey and n_name = 'SAUDI ARABIA' \
group by s_name order by numwait desc, s_name limit 100";

const Q22: &str = "select cntrycode, count(*) as numcust, sum(c_acctbal) as totacctbal from \
(select substring(c_phone from 1 for 2) as cntrycode, c_acctbal from customer \
where substring(c_phone from 1 for 2) in ('13', '31', '23', '29', '30', '18', '17') \
and c_acctbal > (select avg(c_acctbal) from customer \
    where c_acctbal > 0.00 \
    and substring(c_phone from 1 for 2) in ('13', '31', '23', '29', '30', '18', '17')) \
and not exists (select * from orders where o_custkey = c_custkey)) as custsale \
group by cntrycode order by cntrycode";

/// SQL text of query `n` (1–22).
pub fn sql(n: usize) -> &'static str {
    match n {
        1 => Q1,
        2 => Q2,
        3 => Q3,
        4 => Q4,
        5 => Q5,
        6 => Q6,
        7 => Q7,
        8 => Q8,
        9 => Q9,
        10 => Q10,
        11 => Q11,
        12 => Q12,
        13 => Q13,
        14 => Q14,
        15 => Q15,
        16 => Q16,
        17 => Q17,
        18 => Q18,
        19 => Q19,
        20 => Q20,
        21 => Q21,
        22 => Q22,
        _ => panic!("TPC-H queries 1-22 only"),
    }
}

/// DDL to run before query `n` (Q15's CREATE VIEW).
pub fn setup_sql(n: usize) -> Option<&'static str> {
    match n {
        15 => Some(Q15_SETUP),
        _ => None,
    }
}

/// DDL to run after query `n` (Q15's DROP VIEW).
pub fn teardown_sql(n: usize) -> Option<&'static str> {
    match n {
        15 => Some(Q15_TEARDOWN),
        _ => None,
    }
}

/// Expected shape of query `n`'s result (spec-derived, data-independent):
/// output arity, the key (identity) output columns, and the row cap of a
/// LIMIT query. The golden-answer harness checks these against the
/// checked-in answers.
#[derive(Debug, Clone, Copy)]
pub struct QueryShape {
    /// Output column count.
    pub cols: usize,
    /// Output columns identifying a row (group keys / ORDER BY identity).
    pub key_cols: &'static [&'static str],
    /// LIMIT row cap, when the query has one.
    pub limit: Option<u64>,
}

/// Shape of query `n` (1–22).
pub fn shape(n: usize) -> QueryShape {
    let s = |cols, key_cols, limit| QueryShape { cols, key_cols, limit };
    match n {
        1 => s(10, &["l_returnflag", "l_linestatus"][..], None),
        2 => s(8, &["p_partkey"][..], Some(100)),
        3 => s(4, &["l_orderkey"][..], Some(10)),
        4 => s(2, &["o_orderpriority"][..], None),
        5 => s(2, &["n_name"][..], None),
        6 => s(1, &[][..], None),
        7 => s(4, &["supp_nation", "cust_nation", "l_year"][..], None),
        8 => s(2, &["o_year"][..], None),
        9 => s(3, &["nation", "o_year"][..], None),
        10 => s(8, &["c_custkey"][..], Some(20)),
        11 => s(2, &["ps_partkey"][..], None),
        12 => s(3, &["l_shipmode"][..], None),
        13 => s(2, &["c_count"][..], None),
        14 => s(1, &[][..], None),
        15 => s(5, &["s_suppkey"][..], None),
        16 => s(4, &["p_brand", "p_type", "p_size"][..], None),
        17 => s(1, &[][..], None),
        18 => s(6, &["c_custkey", "o_orderkey"][..], Some(100)),
        19 => s(1, &[][..], None),
        20 => s(2, &["s_name"][..], None),
        21 => s(2, &["s_name"][..], Some(100)),
        22 => s(3, &["cntrycode"][..], None),
        _ => panic!("TPC-H queries 1-22 only"),
    }
}

/// All twenty-two queries.
pub fn all() -> impl Iterator<Item = (usize, &'static str)> {
    (1..=22).map(|n| (n, sql(n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_parses() {
        for (n, q) in all() {
            let r = monetlite_sql::parse_statement(q);
            assert!(r.is_ok(), "Q{n} failed to parse: {r:?}");
            if let Some(s) = setup_sql(n) {
                assert!(monetlite_sql::parse_statement(s).is_ok(), "Q{n} setup");
            }
            if let Some(s) = teardown_sql(n) {
                assert!(monetlite_sql::parse_statement(s).is_ok(), "Q{n} teardown");
            }
        }
    }

    #[test]
    fn shapes_cover_all_queries() {
        for (n, _) in all() {
            let sh = shape(n);
            assert!(sh.cols >= 1, "Q{n}");
            assert!(sh.key_cols.len() <= sh.cols, "Q{n}");
        }
    }

    #[test]
    fn ddl_parses() {
        let stmts = monetlite_sql::parse_statements(DDL).unwrap();
        assert_eq!(stmts.len(), 8);
    }
}
