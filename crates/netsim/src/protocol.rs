//! The row-wise text wire protocol.
//!
//! Messages are lines. Client → server:
//!
//! ```text
//! Q <sql>            execute a statement
//! X                  close the connection
//! ```
//!
//! Server → client:
//!
//! ```text
//! R <ncols>          result header, followed by:
//! N <name>\t...      column names
//! T <type>\t...      column types
//! D <v>\t<v>\t...    one line per row (values escaped, NULL = \N)
//! .                  end of result
//! A <n>              DML completed, n rows affected
//! E <message>        error
//! ```
//!
//! Values travel as text and are re-parsed on the other side — the
//! serialisation cost every row-wise client protocol pays (paper ref
//! \[15\]).

use bytes::BytesMut;
use monetlite_types::{Date, Decimal, LogicalType, MlError, Result, Value};

/// Escape one value into the line buffer.
pub fn encode_value(out: &mut BytesMut, v: &Value) {
    match v {
        Value::Null => out.extend_from_slice(b"\\N"),
        Value::Str(s) => {
            for b in s.bytes() {
                match b {
                    b'\\' => out.extend_from_slice(b"\\\\"),
                    b'\t' => out.extend_from_slice(b"\\t"),
                    b'\n' => out.extend_from_slice(b"\\n"),
                    other => out.extend_from_slice(&[other]),
                }
            }
        }
        other => out.extend_from_slice(other.to_string().as_bytes()),
    }
}

/// Encode one row as a `D` line.
pub fn encode_row(out: &mut BytesMut, row: &[Value]) {
    out.extend_from_slice(b"D ");
    for (i, v) in row.iter().enumerate() {
        if i > 0 {
            out.extend_from_slice(b"\t");
        }
        encode_value(out, v);
    }
    out.extend_from_slice(b"\n");
}

/// Parse one escaped field back into a value of the given type.
pub fn decode_value(field: &str, ty: LogicalType) -> Result<Value> {
    if field == "\\N" {
        return Ok(Value::Null);
    }
    let unescape = |s: &str| -> String {
        let mut out = String::with_capacity(s.len());
        let mut chars = s.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('t') => out.push('\t'),
                    Some('n') => out.push('\n'),
                    Some('\\') => out.push('\\'),
                    Some(other) => out.push(other),
                    None => {}
                }
            } else {
                out.push(c);
            }
        }
        out
    };
    let bad = |what: &str| MlError::Protocol(format!("bad {what} value '{field}'"));
    Ok(match ty {
        LogicalType::Bool => Value::Bool(field == "true"),
        LogicalType::Int => Value::Int(field.parse().map_err(|_| bad("int"))?),
        LogicalType::Bigint => Value::Bigint(field.parse().map_err(|_| bad("bigint"))?),
        LogicalType::Double => Value::Double(field.parse().map_err(|_| bad("double"))?),
        LogicalType::Decimal { .. } => Value::Decimal(Decimal::parse(field)?),
        LogicalType::Varchar => Value::Str(unescape(field)),
        LogicalType::Date => Value::Date(Date::parse(field)?),
    })
}

/// Render a type name for the `T` header line.
pub fn type_name(ty: LogicalType) -> String {
    match ty {
        LogicalType::Decimal { width, scale } => format!("decimal({width},{scale})"),
        LogicalType::Bool => "boolean".into(),
        LogicalType::Int => "int".into(),
        LogicalType::Bigint => "bigint".into(),
        LogicalType::Double => "double".into(),
        LogicalType::Varchar => "varchar".into(),
        LogicalType::Date => "date".into(),
    }
}

/// Parse a type name from the `T` header line.
pub fn parse_type(name: &str) -> Result<LogicalType> {
    if let Some(rest) = name.strip_prefix("decimal(") {
        let inner = rest
            .strip_suffix(')')
            .ok_or_else(|| MlError::Protocol(format!("bad type '{name}'")))?;
        let (w, s) =
            inner.split_once(',').ok_or_else(|| MlError::Protocol(format!("bad type '{name}'")))?;
        return Ok(LogicalType::Decimal {
            width: w.parse().map_err(|_| MlError::Protocol("bad decimal width".into()))?,
            scale: s.parse().map_err(|_| MlError::Protocol("bad decimal scale".into()))?,
        });
    }
    Ok(match name {
        "boolean" => LogicalType::Bool,
        "int" => LogicalType::Int,
        "bigint" => LogicalType::Bigint,
        "double" => LogicalType::Double,
        "varchar" => LogicalType::Varchar,
        "date" => LogicalType::Date,
        other => return Err(MlError::Protocol(format!("unknown type '{other}'"))),
    })
}

/// Escape a whole protocol line payload (queries may contain newlines).
pub fn escape_line(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n").replace('\r', "\\r")
}

/// Inverse of [`escape_line`].
pub fn unescape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => {}
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Render a value as a SQL literal (the client-side INSERT path).
pub fn sql_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("date '{d}'"),
        Value::Bool(b) => if *b { "true" } else { "false" }.to_string(),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip_via_text() {
        let cases = vec![
            (Value::Int(42), LogicalType::Int),
            (Value::Bigint(-7), LogicalType::Bigint),
            (Value::Double(1.5), LogicalType::Double),
            (Value::Decimal(Decimal::new(-10550, 2)), LogicalType::Decimal { width: 10, scale: 2 }),
            (Value::Str("tab\there\nnl\\bs".into()), LogicalType::Varchar),
            (Value::Date(Date::parse("1995-03-15").unwrap()), LogicalType::Date),
            (Value::Bool(true), LogicalType::Bool),
            (Value::Null, LogicalType::Int),
        ];
        for (v, ty) in cases {
            let mut buf = BytesMut::new();
            encode_value(&mut buf, &v);
            let text = String::from_utf8(buf.to_vec()).unwrap();
            let back = decode_value(&text, ty).unwrap();
            assert_eq!(back, v, "roundtrip of {v:?} via '{text}'");
        }
    }

    #[test]
    fn row_line_format() {
        let mut buf = BytesMut::new();
        encode_row(&mut buf, &[Value::Int(1), Value::Null, Value::Str("x".into())]);
        assert_eq!(&buf[..], b"D 1\t\\N\tx\n");
    }

    #[test]
    fn type_names_roundtrip() {
        for ty in [
            LogicalType::Bool,
            LogicalType::Int,
            LogicalType::Bigint,
            LogicalType::Double,
            LogicalType::Varchar,
            LogicalType::Date,
            LogicalType::Decimal { width: 15, scale: 2 },
        ] {
            assert_eq!(parse_type(&type_name(ty)).unwrap(), ty);
        }
        assert!(parse_type("blob").is_err());
    }

    #[test]
    fn sql_literals_escape() {
        assert_eq!(sql_literal(&Value::Str("it's".into())), "'it''s'");
        assert_eq!(sql_literal(&Value::Null), "NULL");
        assert_eq!(
            sql_literal(&Value::Date(Date::parse("1994-01-01").unwrap())),
            "date '1994-01-01'"
        );
    }
}
