//! Row-wise utilities over column sets: composite-key hashing, equality,
//! ordering, and NULL-padded gathers. Shared by the join, grouping and
//! sort kernels.

use monetlite_storage::heap::NULL_OFFSET;
use monetlite_storage::index::{fnv1a, key_at};
use monetlite_storage::Bat;
use monetlite_types::nulls::{NULL_I32, NULL_I64, NULL_I8};
use monetlite_types::Value;
use std::cmp::Ordering;

/// Marker for "no matching row" in padded selections (outer joins).
pub const NO_ROW: u32 = u32::MAX;

/// Combined hash of one row across key columns. Strings hash their bytes;
/// fixed types hash their order key. NULL hashes to a fixed tag so that
/// grouping can place NULLs together.
pub fn row_hash(cols: &[&Bat], row: usize) -> u64 {
    let mut h: u64 = 0x9E3779B97F4A7C15;
    for c in cols {
        let v = match c {
            Bat::Varchar { offsets, heap } => {
                if offsets[row] == NULL_OFFSET {
                    0x6e75_6c6c // "null"
                } else {
                    fnv1a(heap.get(offsets[row]).as_bytes())
                }
            }
            other => key_at(other, row) as u64,
        };
        h ^= v.wrapping_add(0x9E3779B97F4A7C15).wrapping_add(h << 6).wrapping_add(h >> 2);
    }
    h
}

/// Exact equality of two rows across aligned key column sets.
/// `null_eq_null` selects grouping semantics (true) or join semantics
/// (false).
pub fn rows_eq(a: &[&Bat], i: usize, b: &[&Bat], j: usize, null_eq_null: bool) -> bool {
    for (ca, cb) in a.iter().zip(b) {
        if !col_eq(ca, i, cb, j, null_eq_null) {
            return false;
        }
    }
    true
}

/// Equality of one column's values at two (possibly different) bats —
/// the single-column building block of [`rows_eq`], used directly by the
/// streaming group table to avoid per-row ref-slice allocation.
pub fn col_eq(a: &Bat, i: usize, b: &Bat, j: usize, null_eq_null: bool) -> bool {
    let (an, bn) = (a.is_null_at(i), b.is_null_at(j));
    if an || bn {
        return an && bn && null_eq_null;
    }
    match (a, b) {
        (Bat::Bool(x), Bat::Bool(y)) => x[i] == y[j],
        (Bat::Int(x), Bat::Int(y)) => x[i] == y[j],
        (Bat::Date(x), Bat::Date(y)) => x[i] == y[j],
        (Bat::Bigint(x), Bat::Bigint(y)) => x[i] == y[j],
        (Bat::Double(x), Bat::Double(y)) => x[i] == y[j],
        (Bat::Decimal { data: x, .. }, Bat::Decimal { data: y, .. }) => x[i] == y[j],
        (Bat::Varchar { .. }, Bat::Varchar { .. }) => a.str_at(i) == b.str_at(j),
        _ => false,
    }
}

/// True when any key column is NULL at `row` (join keys skip such rows).
pub fn any_null(cols: &[&Bat], row: usize) -> bool {
    cols.iter().any(|c| c.is_null_at(row))
}

/// Ordering of two rows of one column, NULLs smallest (MonetDB sorts
/// NULLs first ascending).
pub fn col_cmp(c: &Bat, i: usize, j: usize) -> Ordering {
    let (an, bn) = (c.is_null_at(i), c.is_null_at(j));
    match (an, bn) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        _ => {}
    }
    match c {
        Bat::Bool(v) => v[i].cmp(&v[j]),
        Bat::Int(v) | Bat::Date(v) => v[i].cmp(&v[j]),
        Bat::Bigint(v) => v[i].cmp(&v[j]),
        Bat::Double(v) => v[i].partial_cmp(&v[j]).unwrap_or(Ordering::Equal),
        Bat::Decimal { data, .. } => data[i].cmp(&data[j]),
        Bat::Varchar { .. } => c.str_at(i).cmp(&c.str_at(j)),
    }
}

/// Ordering of rows taken from two *different* columns of the same type
/// (the k-way merge of the external sort compares run heads across
/// chunks). Must match [`col_cmp`] exactly — NULLs smallest — or merged
/// output would diverge from the in-memory sort.
pub fn col_cmp2(a: &Bat, i: usize, b: &Bat, j: usize) -> Ordering {
    match (a.is_null_at(i), b.is_null_at(j)) {
        (true, true) => return Ordering::Equal,
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        _ => {}
    }
    match (a, b) {
        (Bat::Bool(x), Bat::Bool(y)) => x[i].cmp(&y[j]),
        (Bat::Int(x), Bat::Int(y)) | (Bat::Date(x), Bat::Date(y)) => x[i].cmp(&y[j]),
        (Bat::Bigint(x), Bat::Bigint(y)) => x[i].cmp(&y[j]),
        (Bat::Double(x), Bat::Double(y)) => x[i].partial_cmp(&y[j]).unwrap_or(Ordering::Equal),
        (Bat::Decimal { data: x, .. }, Bat::Decimal { data: y, .. }) => x[i].cmp(&y[j]),
        (Bat::Varchar { .. }, Bat::Varchar { .. }) => a.str_at(i).cmp(&b.str_at(j)),
        _ => a.get(i).cmp_sql(&b.get(j)),
    }
}

/// Gather with NULL padding: `NO_ROW` entries produce NULL (left-outer
/// join right side).
pub fn take_padded(bat: &Bat, sel: &[u32]) -> Bat {
    let mut out = Bat::with_capacity(bat.logical_type(), sel.len());
    for &s in sel {
        if s == NO_ROW {
            out.push(&Value::Null).expect("null always appends");
        } else {
            push_raw(&mut out, bat, s as usize);
        }
    }
    out
}

#[inline]
fn push_raw(out: &mut Bat, src: &Bat, row: usize) {
    match (out, src) {
        (Bat::Bool(o), Bat::Bool(v)) => o.push(v[row]),
        (Bat::Int(o), Bat::Int(v)) => o.push(v[row]),
        (Bat::Date(o), Bat::Date(v)) => o.push(v[row]),
        (Bat::Bigint(o), Bat::Bigint(v)) => o.push(v[row]),
        (Bat::Double(o), Bat::Double(v)) => o.push(v[row]),
        (Bat::Decimal { data: o, .. }, Bat::Decimal { data: v, .. }) => o.push(v[row]),
        (Bat::Varchar { offsets, heap }, src @ Bat::Varchar { .. }) => match src.str_at(row) {
            None => offsets.push(NULL_OFFSET),
            Some(s) => offsets.push(heap.add(s)),
        },
        _ => unreachable!("take_padded type mismatch"),
    }
}

/// Does the value at `row` equal the NULL sentinel of its own type —
/// diagnostic helper for tests.
pub fn sentinel_of(bat: &Bat) -> Value {
    match bat {
        Bat::Bool(_) => Value::Int(NULL_I8 as i32),
        Bat::Int(_) | Bat::Date(_) => Value::Int(NULL_I32),
        Bat::Bigint(_) | Bat::Decimal { .. } => Value::Bigint(NULL_I64),
        Bat::Double(_) => Value::Double(f64::NAN),
        Bat::Varchar { .. } => Value::Int(NULL_OFFSET as i32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::ColumnBuffer;

    #[test]
    fn hash_equal_rows_collide() {
        let a = Bat::Int(vec![5, 6]);
        let b = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("x".into()), Some("x".into())]));
        let cols: Vec<&Bat> = vec![&a, &b];
        // Row 0 vs row 0 must match trivially; differing int changes hash.
        assert_eq!(row_hash(&cols, 0), row_hash(&cols, 0));
        assert!(rows_eq(&cols, 0, &cols, 0, true));
        assert!(!rows_eq(&cols, 0, &cols, 1, true));
    }

    #[test]
    fn null_semantics_grouping_vs_join() {
        let a = Bat::Int(vec![NULL_I32, NULL_I32]);
        let cols: Vec<&Bat> = vec![&a];
        assert!(rows_eq(&cols, 0, &cols, 1, true), "grouping: NULLs together");
        assert!(!rows_eq(&cols, 0, &cols, 1, false), "joins: NULL never matches");
        assert!(any_null(&cols, 0));
    }

    #[test]
    fn ordering_nulls_first() {
        let a = Bat::Int(vec![3, NULL_I32, 1]);
        assert_eq!(col_cmp(&a, 1, 0), Ordering::Less);
        assert_eq!(col_cmp(&a, 2, 0), Ordering::Less);
        assert_eq!(col_cmp(&a, 0, 0), Ordering::Equal);
        let s = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("b".into()), None]));
        assert_eq!(col_cmp(&s, 1, 0), Ordering::Less);
    }

    #[test]
    fn take_padded_produces_nulls() {
        let a = Bat::Int(vec![10, 20]);
        let out = take_padded(&a, &[1, NO_ROW, 0]);
        assert_eq!(out.get(0), Value::Int(20));
        assert_eq!(out.get(1), Value::Null);
        assert_eq!(out.get(2), Value::Int(10));
        let s = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("x".into())]));
        let out = take_padded(&s, &[NO_ROW, 0]);
        assert_eq!(out.get(0), Value::Null);
        assert_eq!(out.get(1), Value::Str("x".into()));
    }
}
