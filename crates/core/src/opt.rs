//! High-level (relational-tree) optimizations, paper §3.1: "High level
//! optimizations, such as filter push down, are performed on the
//! relational tree."
//!
//! Passes, in order:
//! 1. **Join-key extraction** — equality conjuncts in ON residuals and in
//!    filters above cross joins become hash-join keys.
//! 2. **Filter push-down** — predicates sink through joins and projections
//!    into scans.
//! 3. **Join ordering** — greedy connected ordering of inner-join trees by
//!    estimated cardinality (filtered scans first), replacing the paper's
//!    cost-based ordering.
//! 4. **Projection push-down** — scans produce only the columns someone
//!    consumes (the column-store advantage on wide tables).
//! 5. **Constant folding** and **top-n fusion** (`ORDER BY`+`LIMIT` →
//!    TopN).

use crate::bind::CatalogAccess;
use crate::expr::BExpr;
use crate::kernels;
use crate::plan::{OutCol, PJoinKind, Plan};
use monetlite_types::{Result, Value};

/// Optimizer switches (ablation benches toggle these).
#[derive(Debug, Clone, Copy)]
pub struct OptFlags {
    /// Filter + projection push-down.
    pub pushdown: bool,
    /// Greedy join ordering.
    pub join_order: bool,
    /// ORDER BY + LIMIT fusion.
    pub topn: bool,
    /// Constant folding.
    pub fold: bool,
    /// Hash-join build-side selection: put the smaller input on the build
    /// side so the larger one streams through the (morsel-parallel) probe.
    pub build_side: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags { pushdown: true, join_order: true, topn: true, fold: true, build_side: true }
    }
}

/// Table cardinalities for the join-ordering heuristic.
pub trait Stats {
    /// Estimated (visible) row count of a base table.
    fn table_rows(&self, name: &str) -> usize;
}

/// A [`Stats`] that knows nothing (all tables equal).
pub struct NoStats;

impl Stats for NoStats {
    fn table_rows(&self, _name: &str) -> usize {
        1000
    }
}

/// Run all enabled passes.
pub fn optimize(
    plan: Plan,
    flags: OptFlags,
    stats: &dyn Stats,
    _catalog: &dyn CatalogAccess,
) -> Result<Plan> {
    let mut p = plan;
    if flags.fold {
        p = fold_constants(p)?;
    }
    p = extract_join_keys(p)?;
    if flags.pushdown {
        p = push_filters(p)?;
    }
    if flags.join_order {
        p = order_joins(p, stats)?;
        // Re-push filters that ordering may have lifted.
        if flags.pushdown {
            p = push_filters(p)?;
        }
    }
    if flags.pushdown {
        p = prune_projections(p)?;
    }
    if flags.build_side {
        p = choose_build_side(p, stats)?;
    }
    if flags.topn {
        p = fuse_topn(p);
    }
    Ok(p)
}

// ---------------------------------------------------------------------------
// Build-side selection (streaming pipelines)
// ---------------------------------------------------------------------------

/// The executor builds the hash table on the **right** input of every
/// equi-join and streams the left through the probe. For the pipeline
/// engine that choice decides which side is the breaker: the probe side
/// is carved into morsels and parallelised while the build side is fully
/// materialised. Swap any inner equi-join whose left (probe) estimate is
/// clearly smaller than its right (build) estimate, wrapping the result
/// in a projection that restores the original column order.
fn choose_build_side(p: Plan, stats: &dyn Stats) -> Result<Plan> {
    map_children(p, &mut |child| choose_build_side(child, stats)).map(|p| match p {
        Plan::Join {
            left,
            right,
            kind: PJoinKind::Inner,
            left_keys,
            right_keys,
            residual,
            schema,
        } if !left_keys.is_empty() => {
            let (le, re) = (estimate(&left, stats), estimate(&right, stats));
            // Hysteresis: only swap decisive imbalances — a swap costs a
            // restoring projection and can forfeit an automatic hash
            // index on the old build column.
            if le * 2.0 < re {
                let (nl, nr) = (left.schema().len(), right.schema().len());
                let remap = move |c: usize| if c < nl { c + nr } else { c - nl };
                let residual = residual.map(|r| r.remap_cols(&remap));
                let swapped_schema: Vec<OutCol> =
                    right.schema().iter().chain(left.schema()).cloned().collect();
                let exprs: Vec<BExpr> = (0..nl + nr)
                    .map(|c| {
                        let idx = remap(c);
                        BExpr::ColRef { idx, ty: swapped_schema[idx].ty }
                    })
                    .collect();
                Plan::Project {
                    input: Box::new(Plan::Join {
                        left: right,
                        right: left,
                        kind: PJoinKind::Inner,
                        left_keys: right_keys,
                        right_keys: left_keys,
                        residual,
                        schema: swapped_schema,
                    }),
                    exprs,
                    schema,
                }
            } else {
                Plan::Join {
                    left,
                    right,
                    kind: PJoinKind::Inner,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                }
            }
        }
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Pass 1: join-key extraction
// ---------------------------------------------------------------------------

fn extract_join_keys(p: Plan) -> Result<Plan> {
    Ok(match p {
        Plan::Join { left, right, kind, mut left_keys, mut right_keys, residual, schema } => {
            let left = Box::new(extract_join_keys(*left)?);
            let mut right = Box::new(extract_join_keys(*right)?);
            let nleft = left.schema().len();
            let mut rest = Vec::new();
            if let Some(res) = residual {
                for c in split_and(res) {
                    match classify_equi(&c, nleft) {
                        Some((lk, rk)) => {
                            left_keys.push(lk);
                            right_keys.push(rk);
                        }
                        None => rest.push(c),
                    }
                }
            }
            // LEFT JOIN: ON conjuncts touching only the build side
            // restrict which rows can match (never which probe rows
            // survive) — sink them into the right input (Q13's
            // `o_comment NOT LIKE ...`).
            if kind == PJoinKind::Left {
                let mut keep = Vec::new();
                let mut sank = false;
                for c in rest {
                    let mut cols = Vec::new();
                    c.collect_cols(&mut cols);
                    if !cols.is_empty() && cols.iter().all(|&x| x >= nleft) {
                        let pred = c.remap_cols(&|x| x - nleft);
                        right = Box::new(Plan::Filter { input: right, pred });
                        sank = true;
                    } else {
                        keep.push(c);
                    }
                }
                rest = keep;
                // A key-less LEFT join with no residual is the binder's
                // *scalar join* shape (right side must hold ≤ 1 row).
                // Sinking must not manufacture it from a user LEFT JOIN —
                // keep a vacuous residual so the executors take the
                // general cross-pair + pad path.
                if sank && left_keys.is_empty() && rest.is_empty() {
                    rest.push(BExpr::Lit(Value::Bool(true)));
                }
            }
            let kind = if kind == PJoinKind::Cross && !left_keys.is_empty() {
                PJoinKind::Inner
            } else {
                kind
            };
            let residual = rest.into_iter().reduce(|a, b| BExpr::And(Box::new(a), Box::new(b)));
            Plan::Join { left, right, kind, left_keys, right_keys, residual, schema }
        }
        other => map_children(other, &mut |c| extract_join_keys(c))?,
    })
}

/// If `e` is `l = r` with `l` touching only columns < nleft and `r` only
/// columns >= nleft (or vice versa), return the (left-side, right-side)
/// key pair with the right side remapped into right-plan coordinates.
fn classify_equi(e: &BExpr, nleft: usize) -> Option<(BExpr, BExpr)> {
    let BExpr::Cmp { op: crate::expr::CmpOp::Eq, left, right } = e else {
        return None;
    };
    let side = |x: &BExpr| -> Option<bool> {
        // Some(true) = pure left, Some(false) = pure right.
        let mut cols = Vec::new();
        x.collect_cols(&mut cols);
        if cols.is_empty() {
            return None; // constant: not a join key
        }
        if cols.iter().all(|&c| c < nleft) {
            Some(true)
        } else if cols.iter().all(|&c| c >= nleft) {
            Some(false)
        } else {
            None
        }
    };
    match (side(left), side(right)) {
        (Some(true), Some(false)) => Some((*left.clone(), right.remap_cols(&|c| c - nleft))),
        (Some(false), Some(true)) => Some((*right.clone(), left.remap_cols(&|c| c - nleft))),
        _ => None,
    }
}

fn split_and(e: BExpr) -> Vec<BExpr> {
    match e {
        BExpr::And(a, b) => {
            let mut v = split_and(*a);
            v.extend(split_and(*b));
            v
        }
        other => vec![other],
    }
}

// ---------------------------------------------------------------------------
// Pass 2: filter push-down
// ---------------------------------------------------------------------------

fn push_filters(p: Plan) -> Result<Plan> {
    Ok(match p {
        Plan::Filter { input, pred } => {
            let input = push_filters(*input)?;
            let mut out = input;
            for c in split_and(pred) {
                out = push_one_filter(out, c)?;
            }
            out
        }
        other => map_children(other, &mut |c| push_filters(c))?,
    })
}

fn push_one_filter(p: Plan, pred: BExpr) -> Result<Plan> {
    match p {
        Plan::Scan { table, projected, mut filters, schema } => {
            filters.push(pred);
            Ok(Plan::Scan { table, projected, filters, schema })
        }
        Plan::Filter { input, pred: inner } => {
            // Sink below the existing filter, then keep it.
            let pushed = push_one_filter(*input, pred)?;
            Ok(Plan::Filter { input: Box::new(pushed), pred: inner })
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => {
            let nleft = left.schema().len();
            let mut cols = Vec::new();
            pred.collect_cols(&mut cols);
            let pure_left = cols.iter().all(|&c| c < nleft);
            let pure_right = cols.iter().all(|&c| c >= nleft);
            // Outer joins: only left-side predicates can sink to the left;
            // right-side ones would change padding semantics.
            match kind {
                PJoinKind::Inner | PJoinKind::Cross | PJoinKind::Semi | PJoinKind::Anti
                    if pure_left =>
                {
                    let left = Box::new(push_one_filter(*left, pred)?);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    });
                }
                PJoinKind::Left if pure_left => {
                    let left = Box::new(push_one_filter(*left, pred)?);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    });
                }
                PJoinKind::Inner | PJoinKind::Cross if pure_right => {
                    let remapped = pred.remap_cols(&|c| c - nleft);
                    let right = Box::new(push_one_filter(*right, remapped)?);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    });
                }
                _ => {}
            }
            // Try as a new equi-key on inner/cross joins.
            if matches!(kind, PJoinKind::Inner | PJoinKind::Cross) {
                if let Some((lk, rk)) = classify_equi(&pred, nleft) {
                    let mut lks = left_keys;
                    let mut rks = right_keys;
                    lks.push(lk);
                    rks.push(rk);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind: PJoinKind::Inner,
                        left_keys: lks,
                        right_keys: rks,
                        residual,
                        schema,
                    });
                }
                // Cross-side residual.
                let residual = match residual {
                    None => Some(pred),
                    Some(r) => Some(BExpr::And(Box::new(r), Box::new(pred))),
                };
                return Ok(Plan::Join {
                    left,
                    right,
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                });
            }
            Ok(Plan::Filter {
                input: Box::new(Plan::Join {
                    left,
                    right,
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                }),
                pred,
            })
        }
        Plan::Project { input, exprs, schema } => {
            // Substitute output expressions into the predicate; always
            // safe because Project is pure.
            let substituted = substitute(&pred, &exprs);
            let input = push_one_filter(*input, substituted)?;
            Ok(Plan::Project { input: Box::new(input), exprs, schema })
        }
        other => Ok(Plan::Filter { input: Box::new(other), pred }),
    }
}

/// Replace every `ColRef { idx }` in `pred` with `exprs[idx]` (also used
/// by the binder to recompute a subquery's projected expression over
/// joined aggregate columns).
pub(crate) fn substitute(pred: &BExpr, exprs: &[BExpr]) -> BExpr {
    match pred {
        BExpr::ColRef { idx, .. } => exprs[*idx].clone(),
        BExpr::Lit(v) => BExpr::Lit(v.clone()),
        BExpr::Cast { input, ty } => {
            BExpr::Cast { input: Box::new(substitute(input, exprs)), ty: *ty }
        }
        BExpr::Arith { op, left, right, ty } => BExpr::Arith {
            op: *op,
            left: Box::new(substitute(left, exprs)),
            right: Box::new(substitute(right, exprs)),
            ty: *ty,
        },
        BExpr::Cmp { op, left, right } => BExpr::Cmp {
            op: *op,
            left: Box::new(substitute(left, exprs)),
            right: Box::new(substitute(right, exprs)),
        },
        BExpr::And(a, b) => {
            BExpr::And(Box::new(substitute(a, exprs)), Box::new(substitute(b, exprs)))
        }
        BExpr::Or(a, b) => {
            BExpr::Or(Box::new(substitute(a, exprs)), Box::new(substitute(b, exprs)))
        }
        BExpr::Not(a) => BExpr::Not(Box::new(substitute(a, exprs))),
        BExpr::IsNull { input, negated } => {
            BExpr::IsNull { input: Box::new(substitute(input, exprs)), negated: *negated }
        }
        BExpr::Like { input, pattern, negated } => BExpr::Like {
            input: Box::new(substitute(input, exprs)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        BExpr::Case { branches, else_expr, ty } => BExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (substitute(c, exprs), substitute(v, exprs)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(substitute(e, exprs))),
            ty: *ty,
        },
        BExpr::Func { func, args, ty } => BExpr::Func {
            func: *func,
            args: args.iter().map(|a| substitute(a, exprs)).collect(),
            ty: *ty,
        },
        BExpr::Neg { input, ty } => {
            BExpr::Neg { input: Box::new(substitute(input, exprs)), ty: *ty }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: join ordering
// ---------------------------------------------------------------------------

/// Greedy ordering of maximal inner/cross-join clusters: start from the
/// smallest estimated relation, repeatedly join the connected relation
/// with the smallest estimate (falling back to a cross join only when
/// nothing is connected).
fn order_joins(p: Plan, stats: &dyn Stats) -> Result<Plan> {
    let p = map_children(p, &mut |c| order_joins(c, stats))?;
    // Collect a flat cluster of inner/cross joined relations.
    let Plan::Join { kind: PJoinKind::Inner | PJoinKind::Cross, .. } = &p else {
        return Ok(p);
    };
    let mut rels: Vec<Plan> = Vec::new();
    let mut preds: Vec<BExpr> = Vec::new(); // over the flat concatenated schema
    flatten_join_cluster(p, &mut rels, &mut preds)?;
    if rels.len() <= 2 {
        return rebuild_cluster(rels, preds);
    }
    // Column offset of each relation in the flat schema.
    let mut offsets = Vec::with_capacity(rels.len());
    let mut acc = 0usize;
    for r in &rels {
        offsets.push(acc);
        acc += r.schema().len();
    }
    let total_cols = acc;
    let rel_of_col = |c: usize| -> usize {
        match offsets.binary_search(&c) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    // Estimated sizes: base rows shrunk per pushed filter.
    let est: Vec<f64> = rels.iter().map(|r| estimate(r, stats)).collect();
    // Greedy order.
    let n = rels.len();
    let mut used = vec![false; n];
    let start = (0..n).min_by(|&a, &b| est[a].total_cmp(&est[b])).unwrap();
    used[start] = true;
    let mut order = vec![start];
    for _ in 1..n {
        // Relations connected to the used set by some predicate.
        let mut connected: Vec<usize> = Vec::new();
        for (i, &u) in used.iter().enumerate() {
            if u {
                continue;
            }
            let is_conn = preds.iter().any(|p| {
                let mut cols = Vec::new();
                p.collect_cols(&mut cols);
                let touches_i = cols.iter().any(|&c| rel_of_col(c) == i);
                let touches_used = cols.iter().any(|&c| used[rel_of_col(c)]);
                touches_i && touches_used
            });
            if is_conn {
                connected.push(i);
            }
        }
        let pool: Vec<usize> =
            if connected.is_empty() { (0..n).filter(|&i| !used[i]).collect() } else { connected };
        let next = pool.into_iter().min_by(|&a, &b| est[a].total_cmp(&est[b])).unwrap();
        used[next] = true;
        order.push(next);
    }
    // Rebuild left-deep in the greedy order, remapping predicates from the
    // original flat schema to the new one.
    let mut new_offsets = vec![0usize; n];
    let mut acc = 0usize;
    for &r in &order {
        new_offsets[r] = acc;
        acc += rels[r].schema().len();
    }
    debug_assert_eq!(acc, total_cols);
    let col_map: Vec<usize> = (0..total_cols)
        .map(|c| {
            let r = rel_of_col(c);
            new_offsets[r] + (c - offsets[r])
        })
        .collect();
    let preds: Vec<BExpr> = preds.into_iter().map(|p| p.remap_cols(&|c| col_map[c])).collect();
    // Final projection restoring the original column order.
    let restore: Vec<usize> = (0..total_cols).map(|c| col_map[c]).collect();
    let mut rels_by_order: Vec<Plan> = Vec::with_capacity(n);
    for &r in &order {
        rels_by_order.push(rels[r].clone());
    }
    let joined = rebuild_cluster(rels_by_order, preds)?;
    let exprs: Vec<BExpr> = restore
        .iter()
        .map(|&newc| BExpr::ColRef { idx: newc, ty: joined.schema()[newc].ty })
        .collect();
    let schema: Vec<OutCol> =
        (0..total_cols).map(|c| joined.schema()[restore[c]].clone()).collect();
    Ok(Plan::Project { input: Box::new(joined), exprs, schema })
}

fn estimate(p: &Plan, stats: &dyn Stats) -> f64 {
    match p {
        Plan::Scan { table, filters, .. } => {
            let base = stats.table_rows(table) as f64;
            base / 4f64.powi(filters.len() as i32)
        }
        Plan::Filter { input, .. } => estimate(input, stats) / 4.0,
        Plan::Project { input, .. } | Plan::Sort { input, .. } | Plan::Distinct { input } => {
            estimate(input, stats)
        }
        Plan::Limit { input, n } | Plan::TopN { input, n, .. } => {
            estimate(input, stats).min(*n as f64)
        }
        Plan::Aggregate { input, groups, .. } => {
            if groups.is_empty() {
                1.0
            } else {
                (estimate(input, stats) / 10.0).max(1.0)
            }
        }
        Plan::Join { left, right, kind, .. } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            match kind {
                PJoinKind::Cross => l * r,
                PJoinKind::Semi | PJoinKind::Anti => l,
                _ => l.max(r),
            }
        }
        Plan::Values { rows, .. } => rows.len() as f64,
    }
}

/// Flatten a tree of inner/cross joins into relations + predicates over
/// the concatenated schema (keys turn back into equality predicates).
fn flatten_join_cluster(p: Plan, rels: &mut Vec<Plan>, preds: &mut Vec<BExpr>) -> Result<()> {
    match p {
        Plan::Join {
            left,
            right,
            kind: kind @ (PJoinKind::Inner | PJoinKind::Cross),
            left_keys,
            right_keys,
            residual,
            ..
        } => {
            let _ = kind;
            let before_left = col_count(rels);
            flatten_join_cluster(*left, rels, preds)?;
            let before_right = col_count(rels);
            flatten_join_cluster(*right, rels, preds)?;
            // Keys/residual were expressed over (left ++ right) of THIS
            // node; left columns started at before_left, right columns at
            // before_right in the flat schema.
            let nleft_local = before_right - before_left;
            let remap = |c: usize| {
                if c < nleft_local {
                    before_left + c
                } else {
                    before_right + (c - nleft_local)
                }
            };
            for (lk, rk) in left_keys.into_iter().zip(right_keys) {
                let l = lk.remap_cols(&|c| before_left + c);
                let r = rk.remap_cols(&|c| before_right + c);
                preds.push(BExpr::Cmp {
                    op: crate::expr::CmpOp::Eq,
                    left: Box::new(l),
                    right: Box::new(r),
                });
            }
            if let Some(res) = residual {
                preds.push(res.remap_cols(&remap));
            }
            Ok(())
        }
        other => {
            rels.push(other);
            Ok(())
        }
    }
}

fn col_count(rels: &[Plan]) -> usize {
    rels.iter().map(|r| r.schema().len()).sum()
}

/// Left-deep rebuild: join relations in order, attaching each predicate at
/// the lowest point where all its columns are available.
fn rebuild_cluster(rels: Vec<Plan>, mut preds: Vec<BExpr>) -> Result<Plan> {
    let mut iter = rels.into_iter();
    let mut acc = iter.next().expect("cluster has at least one relation");
    for right in iter {
        let nleft = acc.schema().len();
        let schema: Vec<OutCol> = acc.schema().iter().chain(right.schema()).cloned().collect();
        let avail = schema.len();
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual: Option<BExpr> = None;
        let mut remaining = Vec::new();
        for p in preds {
            let mut cols = Vec::new();
            p.collect_cols(&mut cols);
            if cols.iter().all(|&c| c < avail) {
                if let Some((lk, rk)) = classify_equi(&p, nleft) {
                    left_keys.push(lk);
                    right_keys.push(rk);
                } else {
                    residual = Some(match residual {
                        None => p,
                        Some(r) => BExpr::And(Box::new(r), Box::new(p)),
                    });
                }
            } else {
                remaining.push(p);
            }
        }
        preds = remaining;
        let kind = if left_keys.is_empty() { PJoinKind::Cross } else { PJoinKind::Inner };
        acc = Plan::Join {
            left: Box::new(acc),
            right: Box::new(right),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        };
    }
    // Any predicate not attachable inside (shouldn't happen) filters on top.
    for p in preds {
        acc = Plan::Filter { input: Box::new(acc), pred: p };
    }
    Ok(acc)
}

// ---------------------------------------------------------------------------
// Pass 4: projection push-down
// ---------------------------------------------------------------------------

fn prune_projections(p: Plan) -> Result<Plan> {
    let needed: Vec<usize> = (0..p.schema().len()).collect();
    let (plan, _map) = prune(p, &needed)?;
    Ok(plan)
}

/// Rewrite `p` to produce only `needed` output columns (sorted, deduped by
/// caller). Returns the new plan and a map old-output-index → new index.
fn prune(p: Plan, needed: &[usize]) -> Result<(Plan, Vec<usize>)> {
    let width = p.schema().len();
    let mut need_sorted: Vec<usize> = needed.to_vec();
    need_sorted.sort_unstable();
    need_sorted.dedup();
    let identity = need_sorted.len() == width;
    match p {
        Plan::Scan { table, projected, filters, schema } => {
            // Keep columns needed by outputs or by pushed filters.
            let mut keep = need_sorted.clone();
            for f in &filters {
                f.collect_cols(&mut keep);
            }
            keep.sort_unstable();
            keep.dedup();
            let map = build_map(&keep, width);
            let new_projected: Vec<usize> = keep.iter().map(|&c| projected[c]).collect();
            let new_schema: Vec<OutCol> = keep.iter().map(|&c| schema[c].clone()).collect();
            let new_filters: Vec<BExpr> =
                filters.iter().map(|f| f.remap_cols(&|c| map[c])).collect();
            Ok((
                Plan::Scan {
                    table,
                    projected: new_projected,
                    filters: new_filters,
                    schema: new_schema,
                },
                map,
            ))
        }
        Plan::Filter { input, pred } => {
            let mut need_in = need_sorted.clone();
            pred.collect_cols(&mut need_in);
            let (new_input, map) = prune(*input, &need_in)?;
            let pred = pred.remap_cols(&|c| map[c]);
            Ok((Plan::Filter { input: Box::new(new_input), pred }, map))
        }
        Plan::Project { input, exprs, schema } => {
            let kept: Vec<usize> = need_sorted.clone();
            let mut need_in = Vec::new();
            for &k in &kept {
                exprs[k].collect_cols(&mut need_in);
            }
            let (new_input, inmap) = prune(*input, &need_in)?;
            let new_exprs: Vec<BExpr> =
                kept.iter().map(|&k| exprs[k].remap_cols(&|c| inmap[c])).collect();
            let new_schema: Vec<OutCol> = kept.iter().map(|&k| schema[k].clone()).collect();
            let map = build_map(&kept, width);
            Ok((
                Plan::Project { input: Box::new(new_input), exprs: new_exprs, schema: new_schema },
                map,
            ))
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => {
            let nleft = left.schema().len();
            let semi_like = matches!(kind, PJoinKind::Semi | PJoinKind::Anti);
            let mut need_l = Vec::new();
            let mut need_r = Vec::new();
            for &c in &need_sorted {
                if c < nleft {
                    need_l.push(c);
                } else {
                    need_r.push(c - nleft);
                }
            }
            for k in &left_keys {
                k.collect_cols(&mut need_l);
            }
            for k in &right_keys {
                k.collect_cols(&mut need_r);
            }
            if let Some(res) = &residual {
                let mut cols = Vec::new();
                res.collect_cols(&mut cols);
                for c in cols {
                    if c < nleft {
                        need_l.push(c);
                    } else {
                        need_r.push(c - nleft);
                    }
                }
            }
            let (new_left, lmap) = prune(*left, &need_l)?;
            let (new_right, rmap) = prune(*right, &need_r)?;
            let new_nleft = new_left.schema().len();
            let left_keys: Vec<BExpr> =
                left_keys.iter().map(|k| k.remap_cols(&|c| lmap[c])).collect();
            let right_keys: Vec<BExpr> =
                right_keys.iter().map(|k| k.remap_cols(&|c| rmap[c])).collect();
            let residual = residual.map(|res| {
                res.remap_cols(&|c| {
                    if c < nleft {
                        lmap[c]
                    } else {
                        new_nleft + rmap[c - nleft]
                    }
                })
            });
            // Output schema and old→new map for parents.
            let mut map = vec![usize::MAX; width];
            let mut new_schema = Vec::new();
            if semi_like {
                for (old, &m) in lmap.iter().enumerate() {
                    if m != usize::MAX {
                        map[old] = m;
                        if new_schema.len() <= m {
                            new_schema
                                .resize(m + 1, OutCol { name: String::new(), ty: schema[0].ty });
                        }
                        new_schema[m] = schema[old].clone();
                    }
                }
            } else {
                for (old, &m) in lmap.iter().enumerate() {
                    if m != usize::MAX {
                        map[old] = m;
                    }
                }
                for (oldr, &m) in rmap.iter().enumerate() {
                    if m != usize::MAX {
                        map[nleft + oldr] = new_nleft + m;
                    }
                }
                let out_w = new_nleft + new_right.schema().len();
                new_schema =
                    vec![
                        OutCol { name: String::new(), ty: monetlite_types::LogicalType::Int };
                        out_w
                    ];
                for (old, &m) in map.iter().enumerate() {
                    if m != usize::MAX {
                        new_schema[m] = schema[old].clone();
                    }
                }
                // Columns kept only for keys/residual still need schema
                // entries.
                for (i, c) in new_left.schema().iter().enumerate() {
                    if new_schema[i].name.is_empty() {
                        new_schema[i] = c.clone();
                    }
                }
                for (i, c) in new_right.schema().iter().enumerate() {
                    if new_schema[new_nleft + i].name.is_empty() {
                        new_schema[new_nleft + i] = c.clone();
                    }
                }
            }
            if semi_like {
                // Schema is the pruned left schema.
                new_schema = new_left.schema().to_vec();
            }
            Ok((
                Plan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema: new_schema,
                },
                map,
            ))
        }
        Plan::Aggregate { input, groups, aggs, schema } => {
            // Aggregate outputs are positional (groups then aggs); keep
            // all of them (cheap — they are post-grouping) but prune the
            // input to what groups/args touch.
            let mut need_in = Vec::new();
            for g in &groups {
                g.collect_cols(&mut need_in);
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    arg.collect_cols(&mut need_in);
                }
            }
            let (new_input, inmap) = prune(*input, &need_in)?;
            let groups: Vec<BExpr> = groups.iter().map(|g| g.remap_cols(&|c| inmap[c])).collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|arg| arg.remap_cols(&|c| inmap[c]));
                    a
                })
                .collect();
            let map = (0..width).collect();
            Ok((Plan::Aggregate { input: Box::new(new_input), groups, aggs, schema }, map))
        }
        Plan::Sort { input, keys } => {
            let mut need_in = need_sorted.clone();
            need_in.extend(keys.iter().map(|(c, _)| *c));
            let (new_input, map) = prune(*input, &need_in)?;
            let keys = keys.into_iter().map(|(c, d)| (map[c], d)).collect();
            Ok((Plan::Sort { input: Box::new(new_input), keys }, map))
        }
        Plan::TopN { input, keys, n } => {
            let mut need_in = need_sorted.clone();
            need_in.extend(keys.iter().map(|(c, _)| *c));
            let (new_input, map) = prune(*input, &need_in)?;
            let keys = keys.into_iter().map(|(c, d)| (map[c], d)).collect();
            Ok((Plan::TopN { input: Box::new(new_input), keys, n }, map))
        }
        Plan::Limit { input, n } => {
            let (new_input, map) = prune(*input, &need_sorted)?;
            Ok((Plan::Limit { input: Box::new(new_input), n }, map))
        }
        Plan::Distinct { input } => {
            // Distinct semantics depend on every column: no pruning below.
            let all: Vec<usize> = (0..input.schema().len()).collect();
            let (new_input, map) = prune(*input, &all)?;
            Ok((Plan::Distinct { input: Box::new(new_input) }, map))
        }
        Plan::Values { rows, schema } => {
            let _ = identity;
            Ok((Plan::Values { rows, schema }, (0..width).collect()))
        }
    }
}

fn build_map(kept_sorted: &[usize], width: usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; width];
    for (newi, &old) in kept_sorted.iter().enumerate() {
        map[old] = newi;
    }
    map
}

// ---------------------------------------------------------------------------
// Pass 5: constant folding + top-n fusion
// ---------------------------------------------------------------------------

fn fold_constants(p: Plan) -> Result<Plan> {
    let p = map_children(p, &mut |c| fold_constants(c))?;
    Ok(match p {
        Plan::Filter { input, pred } => {
            let pred = fold_expr(pred)?;
            if let BExpr::Lit(Value::Bool(true)) = pred {
                return Ok(*input);
            }
            Plan::Filter { input, pred }
        }
        Plan::Project { input, exprs, schema } => {
            let exprs = exprs.into_iter().map(fold_expr).collect::<Result<_>>()?;
            Plan::Project { input, exprs, schema }
        }
        Plan::Scan { table, projected, filters, schema } => {
            let filters = filters.into_iter().map(fold_expr).collect::<Result<_>>()?;
            Plan::Scan { table, projected, filters, schema }
        }
        other => other,
    })
}

/// Evaluate constant subtrees via the vector kernels on a single row.
fn fold_expr(e: BExpr) -> Result<BExpr> {
    if matches!(e, BExpr::Lit(_)) {
        return Ok(e);
    }
    if e.is_const() {
        let out = kernels::eval(&e, &[], 1)?;
        return Ok(BExpr::Lit(out.get(0)));
    }
    // Fold children.
    Ok(match e {
        BExpr::Arith { op, left, right, ty } => BExpr::Arith {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
            ty,
        },
        BExpr::Cmp { op, left, right } => BExpr::Cmp {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
        },
        BExpr::And(a, b) => BExpr::And(Box::new(fold_expr(*a)?), Box::new(fold_expr(*b)?)),
        BExpr::Or(a, b) => BExpr::Or(Box::new(fold_expr(*a)?), Box::new(fold_expr(*b)?)),
        BExpr::Not(a) => BExpr::Not(Box::new(fold_expr(*a)?)),
        BExpr::Cast { input, ty } => BExpr::Cast { input: Box::new(fold_expr(*input)?), ty },
        other => other,
    })
}

fn fuse_topn(p: Plan) -> Plan {
    match p {
        Plan::Limit { input, n } => {
            let input = fuse_topn(*input);
            if let Plan::Sort { input: sort_in, keys } = input {
                Plan::TopN { input: sort_in, keys, n }
            } else {
                Plan::Limit { input: Box::new(input), n }
            }
        }
        other => map_children_infallible(other, &mut fuse_topn),
    }
}

// ---------------------------------------------------------------------------
// Tree plumbing
// ---------------------------------------------------------------------------

fn map_children(p: Plan, f: &mut dyn FnMut(Plan) -> Result<Plan>) -> Result<Plan> {
    Ok(match p {
        Plan::Scan { .. } | Plan::Values { .. } => p,
        Plan::Filter { input, pred } => Plan::Filter { input: Box::new(f(*input)?), pred },
        Plan::Project { input, exprs, schema } => {
            Plan::Project { input: Box::new(f(*input)?), exprs, schema }
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => Plan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        Plan::Aggregate { input, groups, aggs, schema } => {
            Plan::Aggregate { input: Box::new(f(*input)?), groups, aggs, schema }
        }
        Plan::Sort { input, keys } => Plan::Sort { input: Box::new(f(*input)?), keys },
        Plan::Limit { input, n } => Plan::Limit { input: Box::new(f(*input)?), n },
        Plan::TopN { input, keys, n } => Plan::TopN { input: Box::new(f(*input)?), keys, n },
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(f(*input)?) },
    })
}

fn map_children_infallible(p: Plan, f: &mut dyn FnMut(Plan) -> Plan) -> Plan {
    map_children(p, &mut |c| Ok(f(c))).expect("infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::{Binder, CatalogAccess};
    use monetlite_types::{Field, LogicalType, MlError, Schema};
    use std::collections::HashMap;

    struct Cat(HashMap<String, Schema>);

    impl CatalogAccess for Cat {
        fn table_schema(&self, name: &str) -> monetlite_types::Result<Schema> {
            self.0
                .get(name)
                .cloned()
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
        }
    }

    struct FixedStats(HashMap<String, usize>);

    impl Stats for FixedStats {
        fn table_rows(&self, name: &str) -> usize {
            *self.0.get(name).unwrap_or(&1000)
        }
    }

    fn setup() -> (Cat, FixedStats) {
        let mut t = HashMap::new();
        t.insert(
            "big".to_string(),
            Schema::new(vec![
                Field::not_null("id", LogicalType::Int),
                Field::new("k", LogicalType::Int),
                Field::new("v", LogicalType::Double),
                Field::new("s", LogicalType::Varchar),
            ])
            .unwrap(),
        );
        t.insert(
            "small".to_string(),
            Schema::new(vec![
                Field::not_null("id", LogicalType::Int),
                Field::new("name", LogicalType::Varchar),
            ])
            .unwrap(),
        );
        t.insert(
            "mid".to_string(),
            Schema::new(vec![
                Field::not_null("id", LogicalType::Int),
                Field::new("big_id", LogicalType::Int),
            ])
            .unwrap(),
        );
        let mut s = HashMap::new();
        s.insert("big".to_string(), 1_000_000);
        s.insert("small".to_string(), 100);
        s.insert("mid".to_string(), 10_000);
        (Cat(t), FixedStats(s))
    }

    fn optimize_sql(sql: &str) -> Plan {
        optimize_sql_with(sql, OptFlags::default())
    }

    fn optimize_sql_with(sql: &str, flags: OptFlags) -> Plan {
        let (cat, stats) = setup();
        let stmt = monetlite_sql::parse_statement(sql).unwrap();
        let monetlite_sql::Statement::Select(s) = stmt else { panic!() };
        let plan = Binder::new(&cat).bind_select(&s).unwrap();
        optimize(plan, flags, &stats, &cat).unwrap()
    }

    #[test]
    fn filters_sink_into_scans() {
        let p = optimize_sql("SELECT v FROM big WHERE k = 5 AND v > 1.5");
        let s = p.render();
        assert!(s.contains("scan big") && s.contains("where"), "{s}");
        assert!(!s.trim_start().starts_with("filter"), "no top-level filter left: {s}");
    }

    #[test]
    fn equality_becomes_join_key() {
        let p = optimize_sql("SELECT big.v FROM big, small WHERE big.k = small.id");
        let s = p.render();
        assert!(s.contains("inner join"), "{s}");
        assert!(!s.contains("cross"), "{s}");
    }

    #[test]
    fn join_order_puts_filtered_small_first() {
        // Greedy ordering in isolation (build-side selection off): the
        // deepest-left relation is the filtered small table.
        let p = optimize_sql_with(
            "SELECT big.v FROM big, small, mid \
             WHERE big.k = mid.big_id AND mid.id = small.id AND small.name = 'x'",
            OptFlags { build_side: false, ..OptFlags::default() },
        );
        let s = p.render();
        // The first scan line in render order is the deepest-left relation
        // (joins render left input first): it should be the filtered small
        // table.
        let first_scan = s.lines().find(|l| l.trim_start().starts_with("scan")).unwrap();
        assert!(first_scan.contains("small"), "small should lead: {s}");
        // No cross joins should remain.
        assert!(!s.contains("cross join"), "{s}");
    }

    #[test]
    fn build_side_selection_probes_the_big_table() {
        // With build-side selection on, the small/filtered side moves to
        // the build (right) input and the big table streams through the
        // probe — the shape morsel parallelism wants.
        let p = optimize_sql("SELECT big.v FROM big, small WHERE big.k = small.id");
        fn find_join(p: &Plan) -> Option<(&Plan, &Plan)> {
            match p {
                Plan::Join { left, right, .. } => Some((left, right)),
                Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::TopN { input, .. }
                | Plan::Distinct { input }
                | Plan::Aggregate { input, .. } => find_join(input),
                _ => None,
            }
        }
        let (left, right) = find_join(&p).expect("join survives");
        assert!(left.render().contains("big"), "probe side: {}", p.render());
        assert!(right.render().contains("small"), "build side: {}", p.render());
        // Output schema must be unchanged by the swap.
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema()[0].name, "v");
    }

    #[test]
    fn projection_pruned_to_needed_columns() {
        let p = optimize_sql("SELECT v FROM big WHERE k = 5");
        fn find_scan(p: &Plan) -> Option<&Plan> {
            match p {
                Plan::Scan { .. } => Some(p),
                Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::TopN { input, .. }
                | Plan::Distinct { input } => find_scan(input),
                Plan::Join { left, right, .. } => find_scan(left).or_else(|| find_scan(right)),
                Plan::Aggregate { input, .. } => find_scan(input),
                Plan::Values { .. } => None,
            }
        }
        let Plan::Scan { projected, .. } = find_scan(&p).unwrap() else { unreachable!() };
        // Only k (filter) and v (output) survive, not id or s.
        assert_eq!(projected.len(), 2, "{p:?}");
    }

    #[test]
    fn topn_fused() {
        let p = optimize_sql("SELECT v FROM big ORDER BY v DESC LIMIT 10");
        assert!(matches!(p, Plan::TopN { n: 10, .. }), "{}", p.render());
    }

    #[test]
    fn constants_folded() {
        let p = optimize_sql("SELECT v FROM big WHERE k = 2 + 3");
        let s = p.render();
        assert!(s.contains("= 5") || s.contains("5)"), "{s}");
        assert!(!s.contains("2 + 3"), "{s}");
    }

    #[test]
    fn true_filter_removed() {
        let p = optimize_sql("SELECT v FROM big WHERE 1 = 1");
        let s = p.render();
        assert!(!s.contains("filter"), "{s}");
    }

    #[test]
    fn semi_join_prunes_right() {
        let p =
            optimize_sql("SELECT v FROM big WHERE id IN (SELECT id FROM small WHERE name = 'x')");
        let s = p.render();
        assert!(s.contains("semi join"), "{s}");
    }

    #[test]
    fn output_order_preserved_after_reorder() {
        let p = optimize_sql(
            "SELECT big.id, small.name, mid.id FROM big, small, mid \
             WHERE big.k = mid.big_id AND mid.id = small.id",
        );
        assert_eq!(p.schema()[0].name, "id");
        assert_eq!(p.schema()[1].name, "name");
        assert_eq!(p.schema().len(), 3);
    }
}
