//! Minimal local stand-in for `tempfile` (no network in the build
//! environment): `tempdir()`/`TempDir` creating unique directories under
//! the system temp dir, removed recursively on drop.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};
use std::{env, fs, io};

static COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory that is deleted (recursively) when dropped.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Consume without deleting, returning the path.
    pub fn keep(self) -> PathBuf {
        let p = self.path.clone();
        std::mem::forget(self);
        p
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Create a fresh unique temporary directory.
pub fn tempdir() -> io::Result<TempDir> {
    let nanos = SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.subsec_nanos()).unwrap_or(0);
    let base = env::temp_dir();
    for _ in 0..64 {
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = base.join(format!("monetlite-tmp-{}-{}-{}", std::process::id(), nanos, n));
        match fs::create_dir(&path) {
            Ok(()) => return Ok(TempDir { path }),
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
    Err(io::Error::other("could not create unique temp dir"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_and_removes() {
        let keep;
        {
            let d = tempdir().unwrap();
            keep = d.path().to_path_buf();
            assert!(keep.is_dir());
        }
        assert!(!keep.exists(), "removed on drop");
    }

    #[test]
    fn dirs_are_unique() {
        let a = tempdir().unwrap();
        let b = tempdir().unwrap();
        assert_ne!(a.path(), b.path());
    }
}
