//! Fixed-point DECIMAL arithmetic on scaled 64-bit integers.
//!
//! TPC-H money columns are `DECIMAL(15,2)`. MonetDB stores them as scaled
//! integers in the smallest fitting word; we always use `i64` storage with
//! an explicit scale, widen to `i128` for intermediates, and surface
//! overflow as execution errors. `SUM` accumulates in `i128`; `AVG` and
//! division fall back to `f64`, matching MonetDB's observable behaviour on
//! the benchmarked queries.

use crate::error::{MlError, Result};
use std::fmt;

/// Powers of ten up to 10^18 (the largest that fits in i64).
pub const POW10: [i64; 19] = [
    1,
    10,
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
    10_000_000_000,
    100_000_000_000,
    1_000_000_000_000,
    10_000_000_000_000,
    100_000_000_000_000,
    1_000_000_000_000_000,
    10_000_000_000_000_000,
    100_000_000_000_000_000,
    1_000_000_000_000_000_000,
];

/// A fixed-point decimal: `raw / 10^scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Decimal {
    /// Scaled integer representation.
    pub raw: i64,
    /// Number of fractional digits, 0..=18.
    pub scale: u8,
}

impl Decimal {
    /// Build from raw scaled value.
    pub fn new(raw: i64, scale: u8) -> Decimal {
        debug_assert!(scale <= 18);
        Decimal { raw, scale }
    }

    /// Parse a decimal literal such as `1.07`, `-0.05`, `42`.
    ///
    /// The resulting scale is the number of digits after the point.
    pub fn parse(s: &str) -> Result<Decimal> {
        let bad = || MlError::Execution(format!("invalid decimal literal '{s}'"));
        let (neg, body) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() {
            return Err(bad());
        }
        let (int_part, frac_part) = match body.split_once('.') {
            Some((i, f)) => (i, f),
            None => (body, ""),
        };
        if frac_part.len() > 18 || (int_part.is_empty() && frac_part.is_empty()) {
            return Err(bad());
        }
        let mut raw: i128 = 0;
        for c in int_part.chars().chain(frac_part.chars()) {
            let d = c.to_digit(10).ok_or_else(bad)? as i128;
            raw = raw * 10 + d;
            if raw > i64::MAX as i128 {
                return Err(bad());
            }
        }
        let raw = if neg { -(raw as i64) } else { raw as i64 };
        Ok(Decimal::new(raw, frac_part.len() as u8))
    }

    /// Convert to `f64` (used by AVG, division and host export).
    pub fn to_f64(self) -> f64 {
        self.raw as f64 / POW10[self.scale as usize] as f64
    }

    /// Re-scale to `scale`, erroring on overflow; truncates toward zero when
    /// reducing scale (SQL CAST semantics).
    pub fn rescale(self, scale: u8) -> Result<Decimal> {
        if scale == self.scale {
            return Ok(self);
        }
        if scale > self.scale {
            let f = POW10[(scale - self.scale) as usize];
            let raw = self
                .raw
                .checked_mul(f)
                .ok_or_else(|| MlError::Execution("decimal rescale overflow".into()))?;
            Ok(Decimal::new(raw, scale))
        } else {
            let f = POW10[(self.scale - scale) as usize];
            Ok(Decimal::new(self.raw / f, scale))
        }
    }

    /// Addition after aligning scales.
    pub fn checked_add(self, rhs: Decimal) -> Result<Decimal> {
        let s = self.scale.max(rhs.scale);
        let a = self.rescale(s)?;
        let b = rhs.rescale(s)?;
        a.raw
            .checked_add(b.raw)
            .map(|r| Decimal::new(r, s))
            .ok_or_else(|| MlError::Execution("decimal add overflow".into()))
    }

    /// Subtraction after aligning scales.
    pub fn checked_sub(self, rhs: Decimal) -> Result<Decimal> {
        let s = self.scale.max(rhs.scale);
        let a = self.rescale(s)?;
        let b = rhs.rescale(s)?;
        a.raw
            .checked_sub(b.raw)
            .map(|r| Decimal::new(r, s))
            .ok_or_else(|| MlError::Execution("decimal sub overflow".into()))
    }

    /// Multiplication; scales add, intermediate in i128.
    pub fn checked_mul(self, rhs: Decimal) -> Result<Decimal> {
        let scale = self.scale + rhs.scale;
        if scale > 18 {
            // Renormalise: keep the result at 18 digits max by truncation.
            let wide = self.raw as i128 * rhs.raw as i128;
            let drop = (scale - 18) as usize;
            let raw = wide / POW10[drop] as i128;
            if raw > i64::MAX as i128 || raw < i64::MIN as i128 {
                return Err(MlError::Execution("decimal mul overflow".into()));
            }
            return Ok(Decimal::new(raw as i64, 18));
        }
        let wide = self.raw as i128 * rhs.raw as i128;
        if wide > i64::MAX as i128 || wide < i64::MIN as i128 {
            return Err(MlError::Execution("decimal mul overflow".into()));
        }
        Ok(Decimal::new(wide as i64, scale))
    }

    /// Comparison after aligning scales (widened, cannot overflow).
    pub fn cmp_scaled(self, rhs: Decimal) -> std::cmp::Ordering {
        let s = self.scale.max(rhs.scale);
        let a = self.raw as i128 * POW10[(s - self.scale) as usize] as i128;
        let b = rhs.raw as i128 * POW10[(s - rhs.scale) as usize] as i128;
        a.cmp(&b)
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.raw);
        }
        let p = POW10[self.scale as usize];
        let sign = if self.raw < 0 { "-" } else { "" };
        let abs = (self.raw as i128).unsigned_abs();
        let int = abs / p as u128;
        let frac = abs % p as u128;
        write!(f, "{sign}{int}.{frac:0width$}", width = self.scale as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parse_and_display_roundtrip() {
        for s in ["1.07", "-0.05", "42", "0.00", "123456.78", "-9999.999"] {
            let d = Decimal::parse(s).unwrap();
            // "42" has scale 0 so displays as "42"
            assert_eq!(d.to_string(), s.trim_start_matches('+'));
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        for s in ["", "-", "1.2.3", "abc", "1e5", "."] {
            assert!(Decimal::parse(s).is_err(), "{s} should not parse");
        }
    }

    #[test]
    fn tpch_revenue_expression() {
        // l_extendedprice * (1 - l_discount): DECIMAL(15,2) * DECIMAL(15,2)
        let price = Decimal::parse("901.00").unwrap();
        let disc = Decimal::parse("0.06").unwrap();
        let one = Decimal::parse("1.00").unwrap();
        let rev = price.checked_mul(one.checked_sub(disc).unwrap()).unwrap();
        assert_eq!(rev.scale, 4);
        assert_eq!(rev.to_string(), "846.9400");
    }

    #[test]
    fn rescale_truncates_toward_zero() {
        let d = Decimal::parse("1.99").unwrap();
        assert_eq!(d.rescale(0).unwrap().raw, 1);
        let d = Decimal::parse("-1.99").unwrap();
        assert_eq!(d.rescale(0).unwrap().raw, -1);
    }

    #[test]
    fn add_aligns_scales() {
        let a = Decimal::parse("1.5").unwrap();
        let b = Decimal::parse("2.25").unwrap();
        assert_eq!(a.checked_add(b).unwrap().to_string(), "3.75");
    }

    #[test]
    fn overflow_is_an_error_not_a_panic() {
        let big = Decimal::new(i64::MAX, 0);
        assert!(big.checked_add(Decimal::new(1, 0)).is_err());
        assert!(big.checked_mul(Decimal::new(10, 0)).is_err());
        assert!(big.rescale(2).is_err());
    }

    #[test]
    fn cmp_across_scales() {
        let a = Decimal::parse("1.5").unwrap();
        let b = Decimal::parse("1.50").unwrap();
        assert_eq!(a.cmp_scaled(b), std::cmp::Ordering::Equal);
        let c = Decimal::parse("1.51").unwrap();
        assert_eq!(a.cmp_scaled(c), std::cmp::Ordering::Less);
    }

    #[test]
    fn deep_scale_mul_renormalises() {
        let a = Decimal::new(123_456_789, 10);
        let b = Decimal::new(987_654_321, 10);
        let r = a.checked_mul(b).unwrap();
        assert_eq!(r.scale, 18);
    }

    proptest! {
        #[test]
        fn prop_add_matches_f64(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000,
                                sa in 0u8..4, sb in 0u8..4) {
            let x = Decimal::new(a, sa);
            let y = Decimal::new(b, sb);
            let sum = x.checked_add(y).unwrap();
            let expect = x.to_f64() + y.to_f64();
            prop_assert!((sum.to_f64() - expect).abs() < 1e-9);
        }

        #[test]
        fn prop_mul_matches_f64(a in -100_000i64..100_000, b in -100_000i64..100_000,
                                sa in 0u8..3, sb in 0u8..3) {
            let x = Decimal::new(a, sa);
            let y = Decimal::new(b, sb);
            let prod = x.checked_mul(y).unwrap();
            let expect = x.to_f64() * y.to_f64();
            prop_assert!((prod.to_f64() - expect).abs() < 1e-6);
        }

        #[test]
        fn prop_display_parse_roundtrip(raw in -1_000_000_000i64..1_000_000_000, scale in 0u8..6) {
            let d = Decimal::new(raw, scale);
            let back = Decimal::parse(&d.to_string()).unwrap();
            prop_assert_eq!(d.cmp_scaled(back), std::cmp::Ordering::Equal);
        }

        #[test]
        fn prop_cmp_matches_f64(a in -10_000i64..10_000, b in -10_000i64..10_000,
                                sa in 0u8..4, sb in 0u8..4) {
            let x = Decimal::new(a, sa);
            let y = Decimal::new(b, sb);
            let byf = x.to_f64().partial_cmp(&y.to_f64()).unwrap();
            prop_assert_eq!(x.cmp_scaled(y), byf);
        }
    }
}
