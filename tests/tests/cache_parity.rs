//! Cache-parity suite for the plan/result caching tier.
//!
//! * All 22 TPC-H goldens must be byte-identical with caches off, with
//!   caches on (cold), and on the second (cache-hit) execution.
//! * Counters prove the fast paths really fire: a plan-cache hit skips
//!   bind+optimize (`plan_cache_hits`), a result-cache hit skips
//!   execution entirely (`result_cache_hits`).
//! * Stale-plan coverage: DROP/CREATE of a same-named table or view,
//!   INSERTs bumping the table `version`, stats-mode flips, and
//!   `ExecOptions` changes must all prevent stale replays.
//! * Interrupt-then-cached-hit regression: a pending interrupt raised
//!   while the connection is idle must not poison a cached statement.

use monetlite::exec::ExecOptions;
use monetlite::opt::StatsMode;
use monetlite_tests::fmt_golden_rows;
use monetlite_tpch::{generate, load_monet, queries};
use std::path::PathBuf;

const GOLDEN_SF: f64 = 0.02;
const GOLDEN_SEED: u64 = 20260727;

fn golden_path(n: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(format!("q{n:02}.tbl"))
}

fn cached_opts() -> ExecOptions {
    ExecOptions { use_plan_cache: true, use_result_cache: true, ..Default::default() }
}

fn uncached_opts() -> ExecOptions {
    ExecOptions { use_plan_cache: false, use_result_cache: false, ..Default::default() }
}

/// Fresh single-table corpus for the invalidation tests.
fn tiny_db() -> (monetlite::Database, monetlite::Connection) {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.set_exec_options(cached_opts());
    conn.execute("CREATE TABLE t (x INTEGER, s VARCHAR)").unwrap();
    conn.execute("INSERT INTO t VALUES (1, 'a'), (5, 'b'), (10, 'c'), (50, 'd')").unwrap();
    (db, conn)
}

fn one_col(conn: &mut monetlite::Connection, sql: &str) -> Vec<String> {
    let r = conn.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    (0..r.nrows()).map(|i| r.value(i, 0).to_string()).collect()
}

#[test]
fn all_22_goldens_byte_identical_cache_on_off_and_hit() {
    if std::env::var("MONETLITE_BLESS").as_deref() == Ok("1") {
        return; // goldens are blessed by tpch_golden.rs
    }
    let data = generate(GOLDEN_SF, GOLDEN_SEED);
    let db = monetlite::Database::open_in_memory();
    let mut load_conn = db.connect();
    load_monet(&mut load_conn, &data).unwrap();
    let mut off = db.connect();
    off.set_exec_options(uncached_opts());
    let mut on = db.connect();
    on.set_exec_options(cached_opts());
    for (n, sql) in queries::all() {
        let want = std::fs::read_to_string(golden_path(n)).expect("answer goldens checked in");
        if let Some(s) = queries::setup_sql(n) {
            off.execute(s).unwrap_or_else(|e| panic!("Q{n} setup: {e}"));
        }
        let got_off = fmt_golden_rows(&off.query(sql).unwrap_or_else(|e| panic!("Q{n} off: {e}")));
        let got_cold = fmt_golden_rows(&on.query(sql).unwrap_or_else(|e| panic!("Q{n} cold: {e}")));
        let got_hit = fmt_golden_rows(&on.query(sql).unwrap_or_else(|e| panic!("Q{n} hit: {e}")));
        if let Some(s) = queries::teardown_sql(n) {
            off.execute(s).unwrap_or_else(|e| panic!("Q{n} teardown: {e}"));
        }
        assert_eq!(got_off, want, "Q{n}: caches-off answer diverged from golden");
        assert_eq!(got_cold, want, "Q{n}: cold cached answer diverged from golden");
        assert_eq!(got_hit, want, "Q{n}: cache-hit answer diverged from golden");
        // The second execution of the identical read must be a result
        // hit: execution was skipped, not redone.
        let counters = on.last_exec_counters().expect("counters after Q{n}");
        assert_eq!(counters.result_cache_hits, 1, "Q{n}: second run was not a result-cache hit");
    }
}

#[test]
fn plan_cache_hit_skips_bind_and_optimize_with_fresh_literals() {
    let (_db, mut conn) = tiny_db();
    // Cold: parse+bind+optimize, template stored.
    assert_eq!(one_col(&mut conn, "SELECT x FROM t WHERE x > 7 ORDER BY x"), ["10", "50"]);
    let cold = conn.last_exec_counters().unwrap();
    assert_eq!(cold.plan_cache_hits, 0);
    assert_eq!(cold.result_cache_hits, 0);
    // Same shape, different literal: the normalized template must be
    // replayed with the fresh binding — a plan hit, not a result hit,
    // and the answer must reflect the *new* literal.
    assert_eq!(one_col(&mut conn, "SELECT x FROM t WHERE x > 2 ORDER BY x"), ["5", "10", "50"]);
    let hit = conn.last_exec_counters().unwrap();
    assert_eq!(hit.plan_cache_hits, 1, "parameterized repeat must hit the plan cache");
    assert_eq!(hit.result_cache_hits, 0, "different literal must not hit the result cache");
}

#[test]
fn result_cache_hit_skips_execution_entirely() {
    let (db, mut conn) = tiny_db();
    let sql = "SELECT s FROM t WHERE x >= 5 ORDER BY s";
    assert_eq!(one_col(&mut conn, sql), ["b", "c", "d"]);
    assert_eq!(one_col(&mut conn, sql), ["b", "c", "d"]);
    let c = conn.last_exec_counters().unwrap();
    assert_eq!(c.result_cache_hits, 1, "identical repeat must be a result hit");
    // A result hit reports no fresh execution work besides the hit
    // itself (rows_scanned etc. stay zero in the snapshot).
    assert_eq!(c.plan_cache_hits, 0);
    assert!(!db.result_cache().is_empty());
}

#[test]
fn drop_create_same_named_table_is_not_stale() {
    let (_db, mut conn) = tiny_db();
    let sql = "SELECT x FROM t WHERE x > 0 ORDER BY x";
    assert_eq!(one_col(&mut conn, sql), ["1", "5", "10", "50"]);
    assert_eq!(one_col(&mut conn, sql), ["1", "5", "10", "50"]); // primes both caches
    conn.execute("DROP TABLE t").unwrap();
    conn.execute("CREATE TABLE t (x INTEGER, s VARCHAR)").unwrap();
    conn.execute("INSERT INTO t VALUES (7, 'z')").unwrap();
    // Same name, new table id: both caches must miss, not replay.
    assert_eq!(one_col(&mut conn, sql), ["7"]);
    let c = conn.last_exec_counters().unwrap();
    assert_eq!(c.result_cache_hits, 0, "stale result served after DROP/CREATE");
}

#[test]
fn drop_create_same_named_view_is_not_stale() {
    let (_db, mut conn) = tiny_db();
    conn.execute("CREATE VIEW v AS SELECT x FROM t WHERE x > 7").unwrap();
    let sql = "SELECT x FROM v ORDER BY x";
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
    conn.execute("DROP VIEW v").unwrap();
    conn.execute("CREATE VIEW v AS SELECT x FROM t WHERE x < 7").unwrap();
    // Identical statement text, new view definition: the views epoch
    // moved, so the old entry must not answer.
    assert_eq!(one_col(&mut conn, sql), ["1", "5"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 0);
}

#[test]
fn appends_bump_version_and_invalidate() {
    let (_db, mut conn) = tiny_db();
    let sql = "SELECT x FROM t WHERE x > 7 ORDER BY x";
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
    conn.execute("INSERT INTO t VALUES (99, 'e')").unwrap();
    // The INSERT bumped the table version: the cached result is stale
    // and must be recomputed with the new row.
    assert_eq!(one_col(&mut conn, sql), ["10", "50", "99"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 0);
    // ...and the recomputed result is cacheable again.
    assert_eq!(one_col(&mut conn, sql), ["10", "50", "99"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
}

#[test]
fn stats_mode_flip_moves_the_key_space() {
    let (_db, mut conn) = tiny_db();
    let sql = "SELECT x FROM t WHERE x > 7 ORDER BY x";
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
    // A stats flip can change the chosen plan; entries keyed under the
    // old mode must not answer.
    conn.set_stats_mode(StatsMode::TableRowsOnly);
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    let c = conn.last_exec_counters().unwrap();
    assert_eq!(c.result_cache_hits, 0, "stats flip must not serve the old entry");
    assert_eq!(c.plan_cache_hits, 0, "stats flip must re-optimize");
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
}

#[test]
fn exec_options_change_moves_the_key_space() {
    let (_db, mut conn) = tiny_db();
    let sql = "SELECT x FROM t WHERE x > 7 ORDER BY x";
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
    conn.set_exec_options(ExecOptions { vector_size: 1024, ..cached_opts() });
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(
        conn.last_exec_counters().unwrap().result_cache_hits,
        0,
        "an ExecOptions change must not serve entries from the old configuration"
    );
}

#[test]
fn interrupt_then_cached_hit_succeeds() {
    let (_db, mut conn) = tiny_db();
    let sql = "SELECT s FROM t WHERE x >= 5 ORDER BY s";
    assert_eq!(one_col(&mut conn, sql), ["b", "c", "d"]);
    assert_eq!(one_col(&mut conn, sql), ["b", "c", "d"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
    // An interrupt raised while the connection is idle targets no
    // statement; the next statement — even a pure cache hit — must
    // clear it and answer normally, like any real statement would.
    conn.interrupt_handle().interrupt();
    assert_eq!(one_col(&mut conn, sql), ["b", "c", "d"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
    // And the flag really was consumed: a fresh (uncached) statement
    // afterwards is not interrupted either.
    assert_eq!(one_col(&mut conn, "SELECT x FROM t WHERE x = 1"), ["1"]);
}

#[test]
fn explain_reports_cache_status_tags() {
    let (_db, mut conn) = tiny_db();
    let sql = "SELECT x FROM t WHERE x > 7 ORDER BY x";
    let explain = |conn: &mut monetlite::Connection| {
        let r = conn.query(&format!("EXPLAIN {sql}")).unwrap();
        (0..r.nrows()).map(|i| r.value(i, 0).to_string() + "\n").collect::<String>()
    };
    // Cold cache: no tags — the EXPLAIN text matches the uncached one.
    let cold = explain(&mut conn);
    assert!(!cold.contains("[plan-cache]"), "cold EXPLAIN must not claim a cached plan");
    assert!(!cold.contains("[result-cache]"), "cold EXPLAIN must not claim a cached result");
    // Prime both caches, then EXPLAIN again: both tags appear.
    conn.query(sql).unwrap();
    let hot = explain(&mut conn);
    assert!(hot.contains("[plan-cache]"), "primed EXPLAIN should report the cached template");
    assert!(hot.contains("[result-cache]"), "primed EXPLAIN should report the cached result");
    // EXPLAIN itself must not have populated or consumed the result
    // cache: the next real execution is still a hit.
    assert_eq!(one_col(&mut conn, sql), ["10", "50"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 1);
}

#[test]
fn writes_in_open_transaction_are_never_cached() {
    let (db, mut conn) = tiny_db();
    conn.execute("BEGIN").unwrap();
    conn.execute("INSERT INTO t VALUES (99, 'e')").unwrap();
    // Reads inside a writing transaction see the txn-local state and
    // must bypass both caches entirely.
    assert_eq!(one_col(&mut conn, "SELECT x FROM t WHERE x > 50 ORDER BY x"), ["99"]);
    assert_eq!(conn.last_exec_counters().unwrap().result_cache_hits, 0);
    assert_eq!(db.result_cache().len(), 0, "dirty read must not be published to the cache");
    conn.execute("ROLLBACK").unwrap();
    assert_eq!(one_col(&mut conn, "SELECT x FROM t WHERE x > 50 ORDER BY x"), Vec::<String>::new());
}
