//! Disk spilling for pipeline breakers (out-of-core execution).
//!
//! MonetDBLite runs *inside* the host process and shares memory with the
//! analytical environment (paper §1), so operators whose transient state
//! outgrows the memory budget must degrade gracefully instead of OOMing
//! the host. This module provides the low-level machinery the streaming
//! engine's breakers use when [`crate::exec::ExecContext::spill_budget`]
//! is exceeded:
//!
//! * [`SpillDir`] — a lazily created per-execution temp directory; every
//!   spill file lives (and dies) with the query.
//! * [`SpillFile`] / [`SpillReader`] — append-only sequences of column
//!   frames, reusing the column-file BAT encoding of
//!   [`monetlite_storage::persist`].
//! * [`PartitionWriter`] — hash-partitions incoming vectors into
//!   [`SPILL_FANOUT`] buffered partition files by a depth-seeded key
//!   hash. Re-seeding by depth lets an oversized partition be split
//!   again ([`MAX_SPILL_DEPTH`] caps the recursion).
//!
//! The orchestration — spillable hash aggregation, grace hash join and
//! external merge sort — lives in [`crate::pipeline`].

use crate::exec::Chunk;
use crate::rows::row_hash;
use monetlite_storage::fault;
use monetlite_storage::persist::{read_chunk_frame, write_chunk_frame};
use monetlite_storage::Bat;
use monetlite_types::{MlError, Result};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Fan-out of one hash-partitioning pass.
pub const SPILL_FANOUT: usize = 16;

/// Maximum re-partitioning depth. A partition that still exceeds the
/// budget after this many re-seeded splits is processed in memory anyway
/// (the alternative is unbounded recursion on pathological key sets, e.g.
/// a single group larger than the budget).
pub const MAX_SPILL_DEPTH: u32 = 4;

/// Buffered bytes per partition before a flush to its file.
const PART_FLUSH_BYTES: usize = 256 * 1024;

/// Partition id of one key row at a given recursion depth. The seed is
/// folded over [`row_hash`] so rows that collided into one partition at
/// depth `d` scatter differently at depth `d + 1`.
pub(crate) fn partition_of(keys: &[&Bat], row: usize, depth: u32) -> usize {
    let h = row_hash(keys, row) ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(depth as u64 + 1);
    (h.wrapping_mul(0xD1B5_4A32_D192_ED03) >> 33) as usize % SPILL_FANOUT
}

/// Lazily created spill directory, one per [`crate::exec::ExecContext`].
/// The directory (and every file still in it) is removed when the
/// context is dropped — spill state never outlives its query.
pub(crate) struct SpillDir {
    dir: Mutex<Option<Arc<tempfile::TempDir>>>,
    next: AtomicU64,
    /// Bytes written by every file of this directory, against `quota`.
    used: Arc<AtomicU64>,
    /// Per-query temp-disk cap (`MONETLITE_SPILL_QUOTA`); exceeding it
    /// aborts the owning query with [`MlError::SpillQuota`].
    quota: u64,
}

impl Default for SpillDir {
    fn default() -> Self {
        SpillDir {
            dir: Mutex::new(None),
            next: AtomicU64::new(0),
            used: Arc::new(AtomicU64::new(0)),
            quota: u64::MAX,
        }
    }
}

impl SpillDir {
    /// A directory whose files may hold at most `quota` bytes in total.
    pub fn with_quota(quota: u64) -> SpillDir {
        SpillDir { quota, ..SpillDir::default() }
    }

    /// A fresh unique file path inside the (lazily created) directory.
    fn fresh_path(&self) -> Result<PathBuf> {
        // Poison recovery is sound here: the slot is a single lazily set
        // Option, so no panic can leave it half-updated.
        let mut g = self.dir.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let dir = match &*g {
            Some(d) => d.clone(),
            None => {
                fault::hit("spill.tempdir")?;
                let d = Arc::new(tempfile::tempdir()?);
                *g = Some(d.clone());
                d
            }
        };
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        Ok(dir.path().join(format!("spill-{n}.bin")))
    }

    /// Create a new spill file.
    pub fn file(&self) -> Result<SpillFile> {
        let path = self.fresh_path()?;
        let w = BufWriter::new(fault::create("spill.create", &path)?);
        Ok(SpillFile {
            path,
            w: Some(w),
            bytes: 0,
            rows: 0,
            used: self.used.clone(),
            quota: self.quota,
        })
    }
}

/// An append-only sequence of column frames on disk.
pub(crate) struct SpillFile {
    path: PathBuf,
    w: Option<BufWriter<File>>,
    /// Bytes written so far (drives the `spill_bytes` counter).
    pub bytes: u64,
    /// Rows written so far.
    pub rows: u64,
    /// Shared byte counter of the owning [`SpillDir`].
    used: Arc<AtomicU64>,
    /// Copy of the owning directory's quota.
    quota: u64,
}

impl SpillFile {
    /// Append one frame of aligned columns. Fails with
    /// [`MlError::SpillQuota`] when the query's cumulative spill volume
    /// exceeds the directory's quota.
    pub fn write(&mut self, cols: &[&Bat]) -> Result<u64> {
        let w = self
            .w
            .as_mut()
            .ok_or_else(|| MlError::Execution("write into sealed spill file".into()))?;
        let n = write_chunk_frame(w, cols)?;
        self.bytes += n;
        self.rows += cols.first().map_or(0, |c| c.len()) as u64;
        let used = self.used.fetch_add(n, Ordering::Relaxed) + n;
        if used > self.quota {
            return Err(MlError::SpillQuota { used, quota: self.quota });
        }
        Ok(n)
    }

    /// Seal the file and reopen it for sequential reads. The underlying
    /// file is deleted when the reader is dropped.
    pub fn into_reader(mut self) -> Result<SpillReader> {
        let res = (|| -> Result<BufReader<File>> {
            if let Some(mut w) = self.w.take() {
                fault::flush("spill.seal.flush", &mut w)?;
            }
            Ok(BufReader::new(fault::open("spill.open", &self.path)?))
        })();
        match res {
            Ok(r) => Ok(SpillReader { r, path: std::mem::take(&mut self.path) }),
            // `self` still owns the path: its Drop removes the partial
            // file, so a failed seal leaves nothing behind.
            Err(e) => Err(e),
        }
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        // Reached only on error paths: a successful `into_reader` moved
        // the path out. Remove the partial file now instead of letting it
        // sit until the whole SpillDir goes away (a long-lived context
        // could otherwise pin dead bytes for its entire session).
        if !self.path.as_os_str().is_empty() {
            self.w = None;
            let _ = fault::remove_file("spill.remove", &self.path);
        }
    }
}

/// Sequential reader over a sealed [`SpillFile`]; removes the file when
/// dropped so re-partitioning recursion does not accumulate dead files.
pub(crate) struct SpillReader {
    r: BufReader<File>,
    path: PathBuf,
}

impl SpillReader {
    /// The next frame as a chunk, or `None` at end of file.
    pub fn next(&mut self) -> Result<Option<Chunk>> {
        match read_chunk_frame(&mut self.r)? {
            None => Ok(None),
            Some(cols) => {
                let rows = cols.first().map_or(0, |c| c.len());
                Ok(Some(Chunk::dense(cols.into_iter().map(Arc::new).collect(), rows)))
            }
        }
    }
}

impl Drop for SpillReader {
    fn drop(&mut self) {
        let _ = fault::remove_file("spill.remove", &self.path);
    }
}

/// One partition's buffered tail: rows accumulate in memory and flush to
/// the partition file in coarse frames (frame-per-vector files would pay
/// per-row framing overhead).
#[derive(Default)]
struct PartBuf {
    bufs: Option<Vec<Bat>>,
    buffered: usize,
    file: Option<SpillFile>,
}

impl PartBuf {
    fn append(&mut self, dir: &SpillDir, gathered: &Chunk) -> Result<()> {
        let bufs = self.bufs.get_or_insert_with(|| {
            gathered.cols.iter().map(|c| Bat::new(c.logical_type())).collect()
        });
        for (dst, src) in bufs.iter_mut().zip(&gathered.cols) {
            dst.append_bat(src)?;
        }
        self.buffered += gathered.mem_bytes();
        if self.buffered >= PART_FLUSH_BYTES {
            self.flush(dir)?;
        }
        Ok(())
    }

    fn flush(&mut self, dir: &SpillDir) -> Result<()> {
        let Some(bufs) = self.bufs.take() else {
            return Ok(());
        };
        if bufs.first().is_none_or(|b| b.is_empty()) {
            return Ok(());
        }
        let file = match &mut self.file {
            Some(f) => f,
            slot => slot.insert(dir.file()?),
        };
        let refs: Vec<&Bat> = bufs.iter().collect();
        file.write(&refs)?;
        self.buffered = 0;
        Ok(())
    }
}

/// Hash-partitions vectors into [`SPILL_FANOUT`] spill files by the
/// depth-seeded hash of their key columns.
pub(crate) struct PartitionWriter {
    parts: Vec<PartBuf>,
    depth: u32,
}

impl PartitionWriter {
    /// Empty writer partitioning at the given recursion depth.
    pub fn new(depth: u32) -> PartitionWriter {
        PartitionWriter { parts: (0..SPILL_FANOUT).map(|_| PartBuf::default()).collect(), depth }
    }

    /// Route every row of `chunk` to its partition. `keys` are the
    /// partitioning key columns, aligned with the chunk's rows (they may
    /// be — and for joins are — a suffix of the chunk's own columns).
    pub fn route(&mut self, dir: &SpillDir, chunk: &Chunk, keys: &[&Bat]) -> Result<()> {
        let mut sels: Vec<Vec<u32>> = vec![Vec::new(); SPILL_FANOUT];
        for row in 0..chunk.rows {
            sels[partition_of(keys, row, self.depth)].push(row as u32);
        }
        for (p, sel) in sels.iter().enumerate() {
            if sel.is_empty() {
                continue;
            }
            let gathered = if sel.len() == chunk.rows { chunk.clone() } else { chunk.take(sel) };
            self.parts[p].append(dir, &gathered)?;
        }
        Ok(())
    }

    /// Flush all buffers and return the partition files (`None` for
    /// partitions that never received a row) plus total bytes written.
    pub fn finish(mut self, dir: &SpillDir) -> Result<(Vec<Option<SpillFile>>, u64)> {
        let mut out = Vec::with_capacity(SPILL_FANOUT);
        let mut total = 0u64;
        for part in self.parts.iter_mut() {
            part.flush(dir)?;
            let f = part.file.take();
            if let Some(f) = &f {
                total += f.bytes;
            }
            out.push(f);
        }
        Ok((out, total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::Value;

    fn chunk(vals: Vec<i32>) -> Chunk {
        let rows = vals.len();
        Chunk::dense(vec![Arc::new(Bat::Int(vals))], rows)
    }

    #[test]
    fn spill_file_roundtrips_chunks() {
        let dir = SpillDir::default();
        let mut f = dir.file().unwrap();
        f.write(&[&Bat::Int(vec![1, 2, 3])]).unwrap();
        f.write(&[&Bat::Int(vec![4])]).unwrap();
        assert!(f.bytes > 0);
        assert_eq!(f.rows, 4);
        let mut r = f.into_reader().unwrap();
        assert_eq!(r.next().unwrap().unwrap().rows, 3);
        let c2 = r.next().unwrap().unwrap();
        assert_eq!(c2.cols[0].get(0), Value::Int(4));
        assert!(r.next().unwrap().is_none());
    }

    #[test]
    fn partitions_cover_input_exactly_once() {
        let dir = SpillDir::default();
        let mut w = PartitionWriter::new(0);
        let n = 10_000;
        let c = chunk((0..n).collect());
        let keys: Vec<&Bat> = vec![&*c.cols[0]];
        w.route(&dir, &c, &keys).unwrap();
        let (parts, bytes) = w.finish(&dir).unwrap();
        assert!(bytes > 0);
        let mut seen = Vec::new();
        let mut nonempty = 0;
        for f in parts.into_iter().flatten() {
            nonempty += 1;
            let mut r = f.into_reader().unwrap();
            while let Some(c) = r.next().unwrap() {
                for i in 0..c.rows {
                    match c.cols[0].get(i) {
                        Value::Int(v) => seen.push(v),
                        v => panic!("unexpected {v:?}"),
                    }
                }
            }
        }
        assert!(nonempty > 1, "10k distinct keys should span partitions");
        seen.sort_unstable();
        assert_eq!(seen, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn reseeded_depth_splits_a_partition() {
        // All rows of one depth-0 partition must scatter at depth 1.
        let keys = Bat::Int((0..100_000).collect());
        let kref: Vec<&Bat> = vec![&keys];
        let target = partition_of(&kref, 0, 0);
        let mut depth1 = std::collections::HashSet::new();
        for row in 0..keys.len() {
            if partition_of(&kref, row, 0) == target {
                depth1.insert(partition_of(&kref, row, 1));
            }
        }
        assert!(depth1.len() > 1, "re-seeded hash must split the partition");
    }

    // -----------------------------------------------------------------
    // Reader robustness: a damaged spill file must surface as an error
    // from `SpillReader::next`, never a panic or a misread — the same
    // corruption discipline the persistent sidecars follow.
    // -----------------------------------------------------------------

    /// Write one valid frame, let `mangle` damage the raw bytes, then
    /// read it back through a [`SpillReader`].
    fn read_mangled(mangle: impl Fn(&mut Vec<u8>)) -> Result<Option<Chunk>> {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("frame.bin");
        let mut buf = Vec::new();
        write_chunk_frame(&mut buf, &[&Bat::Int(vec![1, 2, 3, 4])]).unwrap();
        mangle(&mut buf);
        std::fs::write(&path, &buf).unwrap();
        let mut r =
            SpillReader { r: BufReader::new(File::open(&path).unwrap()), path: path.clone() };
        r.next()
    }

    #[test]
    fn truncated_frame_header_is_an_error() {
        // EOF in the middle of the length header is not a clean end.
        let res = read_mangled(|buf| buf.truncate(4));
        assert!(res.is_err(), "partial frame header must error, got {res:?}");
    }

    #[test]
    fn corrupt_frame_length_is_an_error() {
        // A length field past the sanity bound must be rejected before
        // any allocation or payload read.
        let res = read_mangled(|buf| buf[..8].copy_from_slice(&u64::MAX.to_le_bytes()));
        assert!(res.is_err(), "absurd frame length must error, got {res:?}");
        // A plausible length that overruns the actual payload must fail
        // the payload read, not misparse trailing garbage.
        let res = read_mangled(|buf| {
            let claimed = (buf.len() as u64) + 64;
            buf[..8].copy_from_slice(&claimed.to_le_bytes());
        });
        assert!(res.is_err(), "overlong frame length must error, got {res:?}");
    }

    #[test]
    fn short_read_mid_frame_is_an_error() {
        let res = read_mangled(|buf| {
            let n = buf.len();
            buf.truncate(n - 3);
        });
        assert!(res.is_err(), "short read mid-frame must error, got {res:?}");
    }

    #[test]
    fn valid_frame_then_truncated_frame_errors_on_the_second() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("frames.bin");
        let mut buf = Vec::new();
        write_chunk_frame(&mut buf, &[&Bat::Int(vec![1, 2])]).unwrap();
        let first_len = buf.len();
        write_chunk_frame(&mut buf, &[&Bat::Int(vec![3, 4])]).unwrap();
        buf.truncate(first_len + 9); // header + 1 byte of the second frame
        std::fs::write(&path, &buf).unwrap();
        let mut r =
            SpillReader { r: BufReader::new(File::open(&path).unwrap()), path: path.clone() };
        assert_eq!(r.next().unwrap().unwrap().rows, 2, "first frame intact");
        assert!(r.next().is_err(), "truncated second frame must error");
    }

    #[test]
    fn quota_exceeded_fails_the_write_with_both_numbers() {
        let dir = SpillDir::with_quota(16);
        let mut f = dir.file().unwrap();
        let err = f.write(&[&Bat::Int((0..1000).collect())]).unwrap_err();
        match err {
            MlError::SpillQuota { used, quota } => {
                assert_eq!(quota, 16);
                assert!(used > 16, "used {used} must exceed the quota");
            }
            e => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn quota_is_shared_across_files_of_one_directory() {
        let dir = SpillDir::with_quota(100);
        let mut a = dir.file().unwrap();
        let mut b = dir.file().unwrap();
        // Each file stays under the cap on its own; together they cross it.
        a.write(&[&Bat::Int((0..15).collect())]).unwrap();
        let err = b.write(&[&Bat::Int((0..15).collect())]).unwrap_err();
        assert!(matches!(err, MlError::SpillQuota { .. }), "unexpected {err:?}");
    }

    #[test]
    fn dropped_unsealed_file_is_removed() {
        let dir = SpillDir::default();
        let mut f = dir.file().unwrap();
        f.write(&[&Bat::Int(vec![1])]).unwrap();
        let path = f.path.clone();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists(), "error-path spill file removed on drop");
    }

    #[test]
    fn readers_remove_their_files() {
        let dir = SpillDir::default();
        let mut f = dir.file().unwrap();
        f.write(&[&Bat::Int(vec![1])]).unwrap();
        let path = f.path.clone();
        let r = f.into_reader().unwrap();
        assert!(path.exists());
        drop(r);
        assert!(!path.exists(), "spill file removed when reader drops");
    }
}
