//! # monetlite-types
//!
//! Foundation types shared by every crate in the `monetlite` workspace:
//! logical column types, the in-domain NULL sentinels that MonetDB(Lite)
//! uses instead of validity bitmaps, calendar dates, fixed-point decimals,
//! dynamically-typed [`Value`]s, table [`Schema`]s, error types, and the
//! plain [`ColumnBuffer`] used as the data interchange format between the
//! database engines, the host "analytical environment", the dataframe
//! library baseline and the network simulation.
//!
//! The paper (§3.1 *Data Storage*) stores missing values as "special values
//! within the domain of the type, i.e. a missing value in an INTEGER column
//! is stored internally as the value −2³¹". [`nulls`] reproduces exactly
//! that convention.

#![forbid(unsafe_code)]

pub mod buffer;
pub mod date;
pub mod decimal;
pub mod error;
pub mod logical;
pub mod nulls;
pub mod schema;
pub mod value;

pub use buffer::ColumnBuffer;
pub use date::Date;
pub use decimal::Decimal;
pub use error::{MlError, Result};
pub use logical::LogicalType;
pub use nulls::{NULL_DATE, NULL_I32, NULL_I64};
pub use schema::{Field, Schema};
pub use value::Value;
