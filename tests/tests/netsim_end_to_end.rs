//! Socket configuration end-to-end: the same workload through the wire
//! protocol against both engines, plus transfer-cost sanity.

use monetlite_netsim::{RemoteClient, Server, ServerEngine};
use monetlite_rowstore::RowDb;
use monetlite_types::{ColumnBuffer, Field, LogicalType, Schema, Value};

#[test]
fn tpch_q6_over_socket_matches_embedded() {
    let data = monetlite_tpch::generate(0.002, 5);
    // Embedded answer.
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    monetlite_tpch::load_monet(&mut conn, &data).unwrap();
    let q6 = monetlite_tpch::queries::sql(6);
    let expect = conn.query(q6).unwrap().value(0, 0);
    // Socket answer (same engine behind TCP).
    let db2 = monetlite::Database::open_in_memory();
    let mut c2 = db2.connect();
    monetlite_tpch::load_monet(&mut c2, &data).unwrap();
    drop(c2);
    let server = Server::start(ServerEngine::Monet(db2)).unwrap();
    let mut client = RemoteClient::connect(server.port()).unwrap();
    let got = client.query(q6).unwrap().rows[0][0].clone();
    match (expect, got) {
        (Value::Decimal(a), Value::Decimal(b)) => {
            assert!((a.to_f64() - b.to_f64()).abs() < 1e-6)
        }
        (a, b) => assert_eq!(a, b),
    }
    client.close();
}

#[test]
fn write_table_roundtrip_rowstore() {
    let server = Server::start(ServerEngine::Row(RowDb::in_memory())).unwrap();
    let mut client = RemoteClient::connect(server.port()).unwrap();
    let schema = Schema::new(vec![
        Field::not_null("id", LogicalType::Int),
        Field::new("note", LogicalType::Varchar),
        Field::new("when_", LogicalType::Date),
    ])
    .unwrap();
    let cols = vec![
        ColumnBuffer::Int(vec![1, 2]),
        ColumnBuffer::Varchar(vec![Some("tab\tand\nnewline".into()), None]),
        ColumnBuffer::Date(vec![0, 10_000]),
    ];
    client.write_table("notes", &schema, &cols).unwrap();
    let (_, back) = client.read_table("notes").unwrap();
    assert_eq!(back[0], cols[0]);
    assert_eq!(back[1], cols[1], "escaping must survive the wire");
    assert_eq!(back[2], cols[2]);
    client.close();
}

#[test]
fn socket_transfer_bytes_scale_with_result() {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE t (a INT)").unwrap();
    conn.append("t", vec![ColumnBuffer::Int((0..10_000).collect())]).unwrap();
    drop(conn);
    let server = Server::start(ServerEngine::Monet(db)).unwrap();
    let mut client = RemoteClient::connect(server.port()).unwrap();
    client.query("SELECT count(*) FROM t").unwrap();
    let small = client.bytes_received;
    client.query("SELECT * FROM t").unwrap();
    let big = client.bytes_received - small;
    assert!(big > 50 * small, "full export must dwarf the aggregate: {small} vs {big}");
    client.close();
}
