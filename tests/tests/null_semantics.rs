//! Three-valued-logic regression suite: the classic NULL traps of
//! `NOT IN`, `NOT EXISTS` and scalar subqueries, each asserted against
//! the SQL-standard answer — on the materialized engine, the streaming
//! engine, and the volcano rowstore.
//!
//! The trap matrix:
//! * `x NOT IN (empty)` is TRUE for every `x`, including NULL;
//! * `x NOT IN (S)` is never TRUE once S contains a NULL;
//! * `NULL NOT IN (non-empty S)` is UNKNOWN → the row drops;
//! * `EXISTS` cares about rows, not values: a subquery of all-NULL rows
//!   still exists;
//! * a scalar subquery over zero rows yields NULL — except COUNT, whose
//!   empty-group answer is 0;
//! * a scalar subquery yielding more than one row is an error.

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite_types::Value;

const DDL: &str = "CREATE TABLE probe (x INT); \
     INSERT INTO probe VALUES (1), (2), (NULL); \
     CREATE TABLE sub_empty (y INT); \
     CREATE TABLE sub_nulls (y INT); \
     INSERT INTO sub_nulls VALUES (NULL), (NULL); \
     CREATE TABLE sub_mixed (y INT); \
     INSERT INTO sub_mixed VALUES (1), (NULL); \
     CREATE TABLE sub_plain (y INT); \
     INSERT INTO sub_plain VALUES (1), (3);";

fn fmt(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        other => other.to_string(),
    }
}

/// Run `sql` on every engine; return each engine's sorted row images.
fn run_everywhere(sql: &str) -> Vec<(String, Vec<String>)> {
    let mut out = Vec::new();
    let db = monetlite::Database::open_in_memory();
    db.connect().run_script(DDL).unwrap();
    for (label, opts) in [
        ("materialized", ExecOptions { mode: ExecMode::Materialized, ..Default::default() }),
        (
            "streaming",
            ExecOptions {
                mode: ExecMode::Streaming,
                threads: 2,
                vector_size: 2,
                ..Default::default()
            },
        ),
    ] {
        let mut c = db.connect();
        c.set_exec_options(opts);
        let r = c.query(sql).unwrap_or_else(|e| panic!("{label}: {e}\nsql: {sql}"));
        let mut rows: Vec<String> = (0..r.nrows())
            .map(|i| (0..r.ncols()).map(|c| fmt(&r.value(i, c))).collect::<Vec<_>>().join("|"))
            .collect();
        rows.sort();
        out.push((label.to_string(), rows));
    }
    let rdb = monetlite_rowstore::RowDb::in_memory();
    rdb.run_script(DDL).unwrap();
    let r = rdb.query(sql).unwrap_or_else(|e| panic!("rowstore: {e}\nsql: {sql}"));
    let mut rows: Vec<String> =
        r.rows.iter().map(|row| row.iter().map(fmt).collect::<Vec<_>>().join("|")).collect();
    rows.sort();
    out.push(("rowstore".to_string(), rows));
    out
}

/// Assert the SQL-standard answer on every engine.
fn expect(sql: &str, want: &[&str]) {
    let mut want: Vec<String> = want.iter().map(|s| s.to_string()).collect();
    want.sort();
    for (label, got) in run_everywhere(sql) {
        assert_eq!(got, want, "{label} disagrees with the SQL standard for: {sql}");
    }
}

#[test]
fn not_in_empty_subquery_keeps_every_row() {
    // Vacuous NOT IN: TRUE for every probe value, including NULL.
    expect("SELECT x FROM probe WHERE x NOT IN (SELECT y FROM sub_empty)", &["1", "2", "NULL"]);
}

#[test]
fn not_in_all_null_subquery_keeps_nothing() {
    // x <> NULL is UNKNOWN for every x: nothing can prove non-membership.
    expect("SELECT x FROM probe WHERE x NOT IN (SELECT y FROM sub_nulls)", &[]);
}

#[test]
fn not_in_subquery_with_some_null_keeps_nothing() {
    // 1 is a member (FALSE); 2 vs {1, NULL} is UNKNOWN; NULL is UNKNOWN.
    expect("SELECT x FROM probe WHERE x NOT IN (SELECT y FROM sub_mixed)", &[]);
}

#[test]
fn not_in_plain_subquery_keeps_only_true_non_members() {
    // 1 is a member; NULL probe is UNKNOWN; 2 is a genuine non-member.
    expect("SELECT x FROM probe WHERE x NOT IN (SELECT y FROM sub_plain)", &["2"]);
}

#[test]
fn in_subquery_null_traps() {
    // IN: NULLs in the subquery can never make membership TRUE, and a
    // NULL probe is UNKNOWN.
    expect("SELECT x FROM probe WHERE x IN (SELECT y FROM sub_nulls)", &[]);
    expect("SELECT x FROM probe WHERE x IN (SELECT y FROM sub_mixed)", &["1"]);
    expect("SELECT x FROM probe WHERE x IN (SELECT y FROM sub_empty)", &[]);
}

#[test]
fn not_in_value_list_with_null_keeps_nothing() {
    // The desugared IN-list form hits the same trap.
    expect("SELECT x FROM probe WHERE x NOT IN (1, NULL)", &[]);
    expect("SELECT x FROM probe WHERE x NOT IN (1, 3)", &["2"]);
}

#[test]
fn exists_counts_rows_not_values() {
    // Two all-NULL rows still exist.
    expect("SELECT x FROM probe WHERE NOT EXISTS (SELECT * FROM sub_nulls)", &[]);
    expect("SELECT x FROM probe WHERE NOT EXISTS (SELECT * FROM sub_empty)", &["1", "2", "NULL"]);
    expect("SELECT x FROM probe WHERE EXISTS (SELECT * FROM sub_nulls)", &["1", "2", "NULL"]);
}

#[test]
fn correlated_not_exists_null_key_never_matches() {
    // A NULL outer key matches nothing, so NOT EXISTS is TRUE for it.
    expect(
        "SELECT x FROM probe WHERE NOT EXISTS (SELECT * FROM sub_mixed WHERE y = x)",
        &["2", "NULL"],
    );
    expect("SELECT x FROM probe WHERE EXISTS (SELECT * FROM sub_mixed WHERE y = x)", &["1"]);
}

#[test]
fn scalar_subquery_over_zero_rows_is_null() {
    // Aggregate over an empty table: NULL; the comparison is UNKNOWN.
    expect("SELECT x FROM probe WHERE x < (SELECT min(y) FROM sub_empty)", &[]);
    expect("SELECT x FROM probe WHERE x >= (SELECT max(y) FROM sub_empty)", &[]);
    // Non-aggregate scalar subquery over zero rows: also NULL.
    expect("SELECT x FROM probe WHERE x = (SELECT y FROM sub_empty)", &[]);
}

#[test]
fn scalar_count_over_zero_rows_is_zero_not_null() {
    // The COUNT exception: an empty (or absent, when correlated) group
    // answers 0, not NULL.
    expect("SELECT x FROM probe WHERE (SELECT count(*) FROM sub_empty) = 0", &["1", "2", "NULL"]);
    // Correlated: x = 2 and x = NULL have no matching sub_plain rows, so
    // their count is 0 — the classic decorrelation bug this guards.
    expect(
        "SELECT x FROM probe WHERE (SELECT count(*) FROM sub_plain WHERE y = x) = 0",
        &["2", "NULL"],
    );
    expect("SELECT x FROM probe WHERE (SELECT count(*) FROM sub_plain WHERE y = x) = 1", &["1"]);
}

#[test]
fn scalar_subquery_with_more_than_one_row_errors() {
    let sql = "SELECT x FROM probe WHERE x = (SELECT y FROM sub_plain)";
    let db = monetlite::Database::open_in_memory();
    db.connect().run_script(DDL).unwrap();
    for mode in [ExecMode::Materialized, ExecMode::Streaming] {
        let mut c = db.connect();
        c.set_exec_options(ExecOptions { mode, ..Default::default() });
        let e = c.query(sql).expect_err("two-row scalar subquery must error");
        assert!(e.to_string().contains("scalar subquery"), "{mode:?}: {e}");
    }
    let rdb = monetlite_rowstore::RowDb::in_memory();
    rdb.run_script(DDL).unwrap();
    let e = rdb.query(sql).expect_err("two-row scalar subquery must error (rowstore)");
    assert!(e.to_string().contains("scalar subquery"), "rowstore: {e}");
}

#[test]
fn aggregates_ignore_nulls_but_count_star_does_not() {
    // Not a subquery trap, but the NULL-vs-aggregate contract everything
    // above builds on.
    expect("SELECT count(*), count(y), min(y), max(y) FROM sub_mixed", &["2|1|1|1"]);
    expect("SELECT count(*), count(y) FROM sub_nulls", &["2|0"]);
    expect("SELECT count(*), count(y), sum(y) FROM sub_empty", &["0|0|NULL"]);
}
