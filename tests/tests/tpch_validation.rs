//! Golden validation: TPC-H answers checked against straight-line Rust
//! computations over the generated columns (independent of any engine).

use monetlite_tpch::{generate, load_monet, queries};
use monetlite_types::{ColumnBuffer, Date, Value};

fn data_and_conn() -> (monetlite_tpch::TpchData, monetlite::Database) {
    let data = generate(0.003, 777);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    (data, db)
}

#[test]
fn q6_matches_straight_line_computation() {
    let (data, db) = data_and_conn();
    let li = &data.lineitem;
    let (ColumnBuffer::Date(ship), ColumnBuffer::Decimal { data: disc, .. }) =
        (&li.cols[10], &li.cols[6])
    else {
        panic!()
    };
    let (ColumnBuffer::Decimal { data: qty, .. }, ColumnBuffer::Decimal { data: price, .. }) =
        (&li.cols[4], &li.cols[5])
    else {
        panic!()
    };
    let lo = Date::parse("1994-01-01").unwrap().0;
    let hi = Date::parse("1995-01-01").unwrap().0;
    // sum(extendedprice * discount): scales 2+2 → exact integer at 1e-4.
    let mut expect: i128 = 0;
    for i in 0..li.rows() {
        if ship[i] >= lo && ship[i] < hi && (5..=7).contains(&disc[i]) && qty[i] < 2400 {
            expect += price[i] as i128 * disc[i] as i128;
        }
    }
    let mut conn = db.connect();
    let r = conn.query(queries::sql(6)).unwrap();
    match r.value(0, 0) {
        Value::Decimal(d) => {
            assert_eq!(d.scale, 4);
            assert_eq!(d.raw as i128, expect);
        }
        Value::Null => assert_eq!(expect, 0),
        other => panic!("unexpected Q6 result {other:?}"),
    }
}

#[test]
fn q1_count_matches_filter_count() {
    let (data, db) = data_and_conn();
    let li = &data.lineitem;
    let ColumnBuffer::Date(ship) = &li.cols[10] else { panic!() };
    let cutoff = Date::parse("1998-09-02").unwrap().0;
    let expect_rows: i64 = ship.iter().filter(|&&d| d <= cutoff).count() as i64;
    let mut conn = db.connect();
    let r = conn.query(queries::sql(1)).unwrap();
    // Sum of count_order across groups equals the filtered row count.
    let count_col = r.names().iter().position(|n| n == "count_order").unwrap();
    let total: i64 = (0..r.nrows())
        .map(|i| match r.value(i, count_col) {
            Value::Bigint(c) => c,
            other => panic!("{other:?}"),
        })
        .sum();
    assert_eq!(total, expect_rows);
    // Groups are (returnflag, linestatus) pairs that actually occur.
    assert!(r.nrows() >= 3 && r.nrows() <= 6, "{} groups", r.nrows());
}

#[test]
fn q4_order_counts_match_semi_join_by_hand() {
    let (data, db) = data_and_conn();
    let ord = &data.orders;
    let li = &data.lineitem;
    let (ColumnBuffer::Int(o_key), ColumnBuffer::Date(o_date)) = (&ord.cols[0], &ord.cols[4])
    else {
        panic!()
    };
    let (ColumnBuffer::Int(l_order), ColumnBuffer::Date(commit), ColumnBuffer::Date(receipt)) =
        (&li.cols[0], &li.cols[11], &li.cols[12])
    else {
        panic!()
    };
    let late: std::collections::HashSet<i32> = l_order
        .iter()
        .zip(commit.iter().zip(receipt))
        .filter(|(_, (c, r))| c < r)
        .map(|(k, _)| *k)
        .collect();
    let lo = Date::parse("1993-07-01").unwrap().0;
    let hi = Date::parse("1993-10-01").unwrap().0;
    let expect: i64 =
        o_key.iter().zip(o_date).filter(|(k, d)| **d >= lo && **d < hi && late.contains(k)).count()
            as i64;
    let mut conn = db.connect();
    let r = conn.query(queries::sql(4)).unwrap();
    let total: i64 = (0..r.nrows())
        .map(|i| match r.value(i, 1) {
            Value::Bigint(c) => c,
            other => panic!("{other:?}"),
        })
        .sum();
    assert_eq!(total, expect, "Q4 EXISTS decorrelation must match hand semi-join");
}

#[test]
fn q2_minimum_cost_property() {
    // Every returned (partkey) must truly be served at the EUROPE-minimum
    // supply cost for that part.
    let (_data, db) = data_and_conn();
    let mut conn = db.connect();
    let r = conn.query(queries::sql(2)).unwrap();
    if r.nrows() == 0 {
        return; // tiny SF can legitimately return nothing
    }
    let pk_col = r.names().iter().position(|n| n == "p_partkey").unwrap();
    for i in 0..r.nrows() {
        let pk = match r.value(i, pk_col) {
            Value::Int(k) => k,
            other => panic!("{other:?}"),
        };
        // Recompute the min for this part among European suppliers via SQL.
        let q = format!(
            "SELECT min(ps_supplycost) FROM partsupp, supplier, nation, region \
             WHERE ps_partkey = {pk} AND s_suppkey = ps_suppkey \
             AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
             AND r_name = 'EUROPE'"
        );
        let min = conn.query(&q).unwrap().value(0, 0);
        // The row's supplier must be at that cost: verify it exists.
        let q2 = format!(
            "SELECT count(*) FROM partsupp, supplier, nation, region \
             WHERE ps_partkey = {pk} AND s_suppkey = ps_suppkey \
             AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey \
             AND r_name = 'EUROPE' AND ps_supplycost = {min}"
        );
        let n = conn.query(&q2).unwrap().value(0, 0);
        assert!(matches!(n, Value::Bigint(c) if c >= 1), "part {pk}");
    }
}

#[test]
fn q14_matches_straight_line_computation() {
    // promo_revenue = 100 * sum(PROMO% ext*(1-disc)) / sum(ext*(1-disc))
    // over September 1995 shipments — recomputed directly from the
    // generated columns (the third hand-reviewed golden anchor next to
    // Q1 and Q6).
    let (data, db) = data_and_conn();
    let li = &data.lineitem;
    let part = &data.part;
    let ColumnBuffer::Varchar(p_type) = &part.cols[4] else { panic!() };
    let ColumnBuffer::Int(l_part) = &li.cols[1] else { panic!() };
    let (ColumnBuffer::Decimal { data: price, .. }, ColumnBuffer::Decimal { data: disc, .. }) =
        (&li.cols[5], &li.cols[6])
    else {
        panic!()
    };
    let ColumnBuffer::Date(ship) = &li.cols[10] else { panic!() };
    let lo = Date::parse("1995-09-01").unwrap().0;
    let hi = Date::parse("1995-10-01").unwrap().0;
    let (mut promo, mut total) = (0f64, 0f64);
    for i in 0..li.rows() {
        if ship[i] >= lo && ship[i] < hi {
            let amount = (price[i] as f64 / 100.0) * (1.0 - disc[i] as f64 / 100.0);
            total += amount;
            let pt = p_type[(l_part[i] - 1) as usize].as_deref().unwrap_or("");
            if pt.starts_with("PROMO") {
                promo += amount;
            }
        }
    }
    let mut conn = db.connect();
    let r = conn.query(queries::sql(14)).unwrap();
    assert_eq!(r.nrows(), 1);
    match r.value(0, 0) {
        Value::Double(d) => {
            let want = 100.0 * promo / total;
            assert!(
                (d - want).abs() <= 1e-6 * want.abs().max(1.0),
                "Q14 promo_revenue {d} vs straight-line {want}"
            );
        }
        Value::Null => assert_eq!(total, 0.0),
        other => panic!("unexpected Q14 result {other:?}"),
    }
}

#[test]
fn q16_not_in_matches_hand_computed_exclusion() {
    // The NOT IN subquery excludes suppliers with Customer...Complaints
    // comments; recompute the excluded-supplier count by hand and check a
    // direct count query agrees (s_suppkey is NOT NULL, so the NULL
    // guard must not change the answer here).
    let (data, db) = data_and_conn();
    let sup = &data.supplier;
    let ColumnBuffer::Varchar(s_comment) = &sup.cols[6] else { panic!() };
    let excluded: i64 = s_comment
        .iter()
        .filter(|c| {
            c.as_deref()
                .is_some_and(|s| s.find("Customer").is_some_and(|i| s[i..].contains("Complaints")))
        })
        .count() as i64;
    let mut conn = db.connect();
    let r = conn
        .query(
            "SELECT count(*) FROM supplier WHERE s_suppkey IN \
             (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%')",
        )
        .unwrap();
    assert_eq!(r.value(0, 0), Value::Bigint(excluded));
    let r2 = conn
        .query(
            "SELECT count(*) FROM supplier WHERE s_suppkey NOT IN \
             (SELECT s_suppkey FROM supplier WHERE s_comment LIKE '%Customer%Complaints%')",
        )
        .unwrap();
    assert_eq!(r2.value(0, 0), Value::Bigint(sup.rows() as i64 - excluded));
}

#[test]
fn q10_is_top20_by_revenue() {
    let (_, db) = data_and_conn();
    let mut conn = db.connect();
    let r = conn.query(queries::sql(10)).unwrap();
    assert!(r.nrows() <= 20);
    let rev_col = r.names().iter().position(|n| n == "revenue").unwrap();
    let revs: Vec<f64> = (0..r.nrows()).map(|i| r.value(i, rev_col).as_f64().unwrap()).collect();
    assert!(revs.windows(2).all(|w| w[0] >= w[1]), "descending revenue: {revs:?}");
}
