//! Variable-sized string heaps with duplicate elimination (paper §3.1).
//!
//! "Columns that store variable-length fields ... are stored using a
//! variable-sized heap. The actual values are inserted into the heap. The
//! main column is a tightly packed array of offsets into that heap. These
//! heaps also perform duplicate elimination if the amount of distinct
//! values is below a threshold; if two fields share the same value it will
//! only appear once in the heap."
//!
//! Entry layout: `[len: u32 LE][bytes]`, entries start at offset 1 (offset
//! 0 is the reserved NULL marker byte). While duplicate elimination is
//! active a hash-bucket map (value hash → candidate offsets) resolves
//! existing entries without storing the strings twice; once the distinct
//! count exceeds the threshold the map is dropped and the heap degrades to
//! append-only (exactly MonetDB's behaviour).

use std::collections::HashMap;

/// Default distinct-value threshold beyond which dedup is abandoned.
pub const DEFAULT_DEDUP_LIMIT: usize = 1 << 16;

/// Offset value denoting NULL in the offsets array.
pub const NULL_OFFSET: u32 = 0;

/// FNV-1a, used for the dedup buckets (fast, dependency-free; HashDoS is
/// not a concern for a private heap).
#[inline]
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A string heap: concatenated length-prefixed entries plus an optional
/// duplicate-elimination map.
#[derive(Debug, Clone)]
pub struct StringHeap {
    buf: Vec<u8>,
    /// hash → offsets of entries with that hash; `None` once dedup is off.
    dedup: Option<HashMap<u64, Vec<u32>>>,
    distinct: usize,
    dedup_limit: usize,
}

impl Default for StringHeap {
    fn default() -> Self {
        Self::new()
    }
}

impl StringHeap {
    /// Fresh heap with the default dedup threshold.
    pub fn new() -> StringHeap {
        Self::with_dedup_limit(DEFAULT_DEDUP_LIMIT)
    }

    /// Fresh heap with an explicit dedup threshold (0 disables dedup; used
    /// by the dedup ablation bench).
    pub fn with_dedup_limit(limit: usize) -> StringHeap {
        StringHeap {
            buf: vec![0xFF], // offset 0 reserved for NULL
            dedup: if limit == 0 { None } else { Some(HashMap::new()) },
            distinct: 0,
            dedup_limit: limit,
        }
    }

    /// Insert a string, returning its offset. Re-uses an existing entry when
    /// duplicate elimination is still active.
    pub fn add(&mut self, s: &str) -> u32 {
        let bytes = s.as_bytes();
        if let Some(map) = &mut self.dedup {
            let h = fnv1a(bytes);
            if let Some(bucket) = map.get(&h) {
                for &off in bucket {
                    if heap_get(&self.buf, off) == s {
                        return off;
                    }
                }
            }
            let off = append_entry(&mut self.buf, bytes);
            map.entry(h).or_default().push(off);
            self.distinct += 1;
            if self.distinct > self.dedup_limit {
                // Threshold exceeded: abandon dedup from now on.
                self.dedup = None;
            }
            off
        } else {
            append_entry(&mut self.buf, bytes)
        }
    }

    /// Read the entry at `offset`. Panics on NULL_OFFSET (callers check the
    /// offsets array first) and on out-of-range offsets in debug builds.
    #[inline]
    pub fn get(&self, offset: u32) -> &str {
        debug_assert_ne!(offset, NULL_OFFSET, "NULL offset dereferenced");
        heap_get(&self.buf, offset)
    }

    /// Number of distinct entries inserted while dedup was active (after
    /// dedup is dropped this is a lower bound).
    pub fn distinct_seen(&self) -> usize {
        self.distinct
    }

    /// Whether duplicate elimination is still active.
    pub fn dedup_active(&self) -> bool {
        self.dedup.is_some()
    }

    /// Total heap bytes (entry payloads + length prefixes).
    pub fn size_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Approximate *resident* bytes: the packed heap plus the transient
    /// dedup map. [`StringHeap::size_bytes`] is the persisted image the
    /// vmem budget accounts; memory-budget decisions in the execution
    /// engine (spill-or-not) must also count the map, which can dominate
    /// for short strings.
    pub fn mem_bytes(&self) -> usize {
        let map = self.dedup.as_ref().map_or(0, |m| {
            // Every table slot (occupied or not) holds (hash, Vec header)
            // plus a control byte, and each bucket owns an out-of-line
            // offset allocation of at least 4 slots.
            let bucket_allocs: usize = m.values().map(|b| b.capacity().max(4) * 4).sum();
            m.capacity() * (8 + 24 + 1) + bucket_allocs
        });
        // `capacity`, not `len`: a heap past the dedup threshold grows
        // append-only through doubling, and the spill budget must see the
        // resident allocation, not just the packed image.
        self.buf.capacity() + map
    }

    /// Raw heap bytes, for persistence.
    pub fn raw(&self) -> &[u8] {
        &self.buf
    }

    /// Rebuild a heap from persisted raw bytes. The dedup map is *not*
    /// reconstructed (matching MonetDB: reloaded heaps are append-only
    /// until rewritten); offsets from the old heap stay valid.
    pub fn from_raw(buf: Vec<u8>) -> StringHeap {
        StringHeap { buf, dedup: None, distinct: 0, dedup_limit: DEFAULT_DEDUP_LIMIT }
    }
}

#[inline]
fn heap_get(buf: &[u8], offset: u32) -> &str {
    let off = offset as usize;
    let len = u32::from_le_bytes(buf[off..off + 4].try_into().unwrap()) as usize;
    // Heap entries are only ever written from &str, so they are valid UTF-8.
    std::str::from_utf8(&buf[off + 4..off + 4 + len]).expect("heap corruption: invalid utf-8")
}

fn append_entry(buf: &mut Vec<u8>, bytes: &[u8]) -> u32 {
    let off = buf.len() as u32;
    buf.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    buf.extend_from_slice(bytes);
    off
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn add_get_roundtrip() {
        let mut h = StringHeap::new();
        let a = h.add("hello");
        let b = h.add("world");
        assert_eq!(h.get(a), "hello");
        assert_eq!(h.get(b), "world");
        assert_ne!(a, NULL_OFFSET);
    }

    #[test]
    fn duplicates_share_storage() {
        let mut h = StringHeap::new();
        let a = h.add("FRANCE");
        let size_after_one = h.size_bytes();
        let b = h.add("FRANCE");
        assert_eq!(a, b);
        assert_eq!(h.size_bytes(), size_after_one);
        assert_eq!(h.distinct_seen(), 1);
    }

    #[test]
    fn empty_string_is_a_value_not_null() {
        let mut h = StringHeap::new();
        let off = h.add("");
        assert_ne!(off, NULL_OFFSET);
        assert_eq!(h.get(off), "");
    }

    #[test]
    fn dedup_abandoned_past_threshold() {
        let mut h = StringHeap::with_dedup_limit(4);
        for i in 0..5 {
            h.add(&format!("v{i}"));
        }
        assert!(!h.dedup_active());
        // Now identical values get fresh entries.
        let a = h.add("dup");
        let b = h.add("dup");
        assert_ne!(a, b);
        assert_eq!(h.get(a), "dup");
        assert_eq!(h.get(b), "dup");
    }

    #[test]
    fn mem_bytes_covers_resident_allocation_after_dedup_drop() {
        let mut h = StringHeap::with_dedup_limit(4);
        for i in 0..5 {
            h.add(&format!("v{i}"));
        }
        assert!(!h.dedup_active());
        // Append-only duplicates grow the buffer through doubling; make sure
        // we land mid-allocation so packed length and capacity differ.
        for _ in 0..1000 {
            h.add("abcdefghij");
        }
        while h.buf.len() == h.buf.capacity() {
            h.add("pad");
        }
        assert!(
            h.mem_bytes() >= h.buf.capacity(),
            "spill accounting must cover the resident allocation, not just buf.len()"
        );
    }

    #[test]
    fn mem_bytes_counts_bucket_allocations_while_dedup_active() {
        let mut h = StringHeap::new();
        for i in 0..1024 {
            h.add(&format!("{i:04}"));
        }
        assert!(h.dedup_active());
        // 1024 buckets, each owning a >= 4-slot offset Vec (16 bytes), plus
        // (hash, Vec header, control byte) per table slot: the map alone is
        // at least 1024 * (16 + 33) bytes on top of the packed heap.
        let map_lower_bound = 1024 * (16 + 33);
        assert!(
            h.mem_bytes() >= h.size_bytes() + map_lower_bound,
            "dedup map under-counted: mem={} packed={} need>={}",
            h.mem_bytes(),
            h.size_bytes(),
            h.size_bytes() + map_lower_bound
        );
    }

    #[test]
    fn zero_limit_disables_dedup() {
        let mut h = StringHeap::with_dedup_limit(0);
        let a = h.add("x");
        let b = h.add("x");
        assert_ne!(a, b);
    }

    #[test]
    fn raw_roundtrip_preserves_offsets() {
        let mut h = StringHeap::new();
        let offs: Vec<u32> = ["alpha", "beta", "gamma", "beta"].iter().map(|s| h.add(s)).collect();
        let h2 = StringHeap::from_raw(h.raw().to_vec());
        assert_eq!(h2.get(offs[0]), "alpha");
        assert_eq!(h2.get(offs[1]), "beta");
        assert_eq!(h2.get(offs[2]), "gamma");
        assert_eq!(offs[1], offs[3]); // dedup had collapsed them
    }

    #[test]
    fn hash_collisions_resolved_by_comparison() {
        // Different strings, same bucket is possible; correctness must not
        // depend on hash uniqueness. Force it by inserting many strings.
        let mut h = StringHeap::new();
        let mut offs = Vec::new();
        for i in 0..1000 {
            offs.push((format!("key-{i}"), h.add(&format!("key-{i}"))));
        }
        for (s, off) in offs {
            assert_eq!(h.get(off), s);
        }
        assert_eq!(h.distinct_seen(), 1000);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_strings(strings in proptest::collection::vec(".{0,40}", 1..60)) {
            let mut h = StringHeap::new();
            let offs: Vec<u32> = strings.iter().map(|s| h.add(s)).collect();
            for (s, &off) in strings.iter().zip(&offs) {
                prop_assert_eq!(h.get(off), s.as_str());
            }
        }

        #[test]
        fn prop_dedup_returns_same_offset(s in ".{0,24}", n in 2usize..6) {
            let mut h = StringHeap::new();
            let first = h.add(&s);
            for _ in 1..n {
                prop_assert_eq!(h.add(&s), first);
            }
            prop_assert_eq!(h.distinct_seen(), 1);
        }

        #[test]
        fn prop_heap_size_bounded_by_input(strings in proptest::collection::vec("[a-c]{1,3}", 1..200)) {
            // With ≤ 39 possible distinct strings, dedup keeps the heap tiny.
            let mut h = StringHeap::new();
            for s in &strings {
                h.add(s);
            }
            prop_assert!(h.distinct_seen() <= 39);
            prop_assert!(h.size_bytes() <= 1 + 39 * (4 + 3));
        }
    }
}
