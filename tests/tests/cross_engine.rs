//! Cross-engine result equality: the columnar engine, the volcano row
//! store and the hand-written dataframe scripts must agree on every TPC-H
//! query (Q1–Q22) over identical data — plus a property-based
//! differential fuzz over random small SELECTs with NULL-bearing tables.

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite::opt::{OptFlags, StatsMode};
use monetlite_tpch::{frames, generate, load_monet, load_rowdb, queries};
use monetlite_types::Value;
use proptest::prelude::*;

fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (x, y) => match (x.as_f64(), y.as_f64()) {
            (Ok(fx), Ok(fy)) => {
                let tol = 1e-6 * fx.abs().max(fy.abs()).max(1.0);
                (fx - fy).abs() <= tol
            }
            _ => x == y,
        },
    }
}

fn rows_match(qn: usize, a: &[Vec<Value>], b: &[Vec<Value>], what: &str) {
    assert_eq!(a.len(), b.len(), "Q{qn} ({what}): row count {} vs {}", a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "Q{qn} ({what}): row {i} arity");
        for (ca, cb) in ra.iter().zip(rb) {
            assert!(approx_eq(ca, cb), "Q{qn} ({what}): row {i}: {ca:?} vs {cb:?}");
        }
    }
}

#[test]
fn tpch_q1_to_q22_all_engines_agree() {
    let data = generate(0.004, 20260611);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    let rdb = monetlite_rowstore::RowDb::in_memory();
    load_rowdb(&rdb, &data).unwrap();
    let session = monetlite_frame::Session::unlimited();
    let fr = frames::TpchFrames::load(&session, &data).unwrap();

    // A second columnar connection planning under adversarially wrong
    // statistics: TPC-H-complexity plans may change shape, answers may
    // not.
    let mut adv = db.connect();
    adv.set_stats_mode(StatsMode::Adversarial(20260727));

    for (n, sql) in queries::all() {
        if let Some(ddl) = queries::setup_sql(n) {
            conn.execute(ddl).unwrap_or_else(|e| panic!("monetlite Q{n} setup: {e}"));
            rdb.execute(ddl).unwrap_or_else(|e| panic!("rowstore Q{n} setup: {e}"));
        }
        let m = conn.query(sql).unwrap_or_else(|e| panic!("monetlite Q{n}: {e}"));
        let mrows: Vec<Vec<Value>> = (0..m.nrows()).map(|i| m.row(i)).collect();
        let r = rdb.query(sql).unwrap_or_else(|e| panic!("rowstore Q{n}: {e}"));
        rows_match(n, &mrows, &r.rows, "monet vs rowstore");
        let a = adv.query(sql).unwrap_or_else(|e| panic!("adversarial Q{n}: {e}"));
        let arows: Vec<Vec<Value>> = (0..a.nrows()).map(|i| a.row(i)).collect();
        rows_match(n, &mrows, &arows, "real vs adversarial stats");
        if let Some(ddl) = queries::teardown_sql(n) {
            conn.execute(ddl).unwrap_or_else(|e| panic!("monetlite Q{n} teardown: {e}"));
            rdb.execute(ddl).unwrap_or_else(|e| panic!("rowstore Q{n} teardown: {e}"));
        }
        // Frame scripts cover Q1–Q10 and return the same aggregate values
        // (column order per script; compare row counts).
        if n <= 10 {
            let f = frames::run(n, &fr).unwrap_or_else(|e| panic!("frame Q{n}: {e}"));
            assert_eq!(f.rows(), mrows.len(), "Q{n}: frame row count");
        }
    }
}

// ---------------------------------------------------------------------------
// Differential fuzz: random small SELECTs over NULL-bearing tables
// ---------------------------------------------------------------------------

/// Query/data generator driven by the proptest case seed, so every case
/// is reproducible from the printed SQL + seed.
struct Gen {
    rng: proptest::TestRng,
}

impl Gen {
    fn below(&mut self, n: u64) -> u64 {
        self.rng.next_u64() % n.max(1)
    }

    /// Small int or NULL (NULL probability ~1/4 keeps three-valued logic
    /// hot in every clause).
    fn opt_int(&mut self) -> Option<i32> {
        if self.below(4) == 0 {
            None
        } else {
            Some(self.below(6) as i32)
        }
    }

    fn lit(&mut self) -> String {
        match self.opt_int() {
            None => "NULL".to_string(),
            Some(v) => v.to_string(),
        }
    }

    fn cmp(&mut self) -> &'static str {
        ["=", "<>", "<", "<=", ">", ">="][self.below(6) as usize]
    }

    /// Predicate over t's columns (a INT, b INT, s VARCHAR).
    fn pred(&mut self, depth: u32) -> String {
        if depth > 0 && self.below(3) == 0 {
            let l = self.pred(depth - 1);
            let r = self.pred(depth - 1);
            return match self.below(3) {
                0 => format!("({l} AND {r})"),
                1 => format!("({l} OR {r})"),
                _ => format!("NOT ({l})"),
            };
        }
        match self.below(7) {
            0 => format!("a {} {}", self.cmp(), self.below(6)),
            1 => format!("b {} {}", self.cmp(), self.below(6)),
            2 => format!("s = '{}'", ["x", "y", "z"][self.below(3) as usize]),
            3 => format!("{} IS NULL", ["a", "b", "s"][self.below(3) as usize]),
            4 => format!("{} IS NOT NULL", ["a", "b", "s"][self.below(3) as usize]),
            5 => {
                let (lo, hi) = (self.below(6), self.below(6));
                format!("a BETWEEN {} AND {}", lo.min(hi), lo.max(hi))
            }
            _ => format!("b IN ({}, {})", self.below(6), self.below(6)),
        }
    }

    /// One random SELECT over the fixed fuzz schema.
    fn query(&mut self) -> String {
        let p = self.pred(2);
        match self.below(10) {
            9 => {
                // Three-relation join cluster: the shape the join-order
                // DP actually enumerates (and mis-orders under
                // adversarial stats — harmlessly, per the assertions).
                format!(
                    "SELECT t.a, u.v, w.k FROM t, u, w \
                     WHERE t.a = u.k AND t.b = w.k AND {p}"
                )
            }
            0 => format!("SELECT a, b, s FROM t WHERE {p}"),
            1 => format!(
                "SELECT b, count(*), count(a), sum(a), min(a), max(b) FROM t WHERE {p} GROUP BY b"
            ),
            2 => format!("SELECT t.a, t.b, u.v FROM t, u WHERE t.a = u.k AND {p}"),
            3 => {
                // LEFT JOIN with a build-side-only ON conjunct.
                format!(
                    "SELECT t.a, t.b, u.v FROM t LEFT JOIN u ON t.a = u.k AND u.v >= {}",
                    self.below(5)
                )
            }
            4 => {
                // LEFT JOIN whose ON residual references both sides.
                "SELECT t.a, u.v FROM t LEFT JOIN u ON t.a = u.k AND u.v <> t.b".to_string()
            }
            5 => {
                let not = if self.below(2) == 0 { "NOT " } else { "" };
                let filter = if self.below(2) == 0 {
                    format!(" WHERE w.k >= {}", self.below(5))
                } else {
                    String::new()
                };
                format!("SELECT a, b FROM t WHERE a {not}IN (SELECT k FROM w{filter})")
            }
            6 => {
                let not = if self.below(2) == 0 { "NOT " } else { "" };
                let extra = if self.below(2) == 0 { " AND u.v <> t.b" } else { "" };
                format!(
                    "SELECT a, b FROM t WHERE {not}EXISTS \
                     (SELECT * FROM u WHERE u.k = t.a{extra})"
                )
            }
            7 => format!("SELECT DISTINCT b, s FROM t WHERE {p}"),
            _ => {
                // Scalar subqueries: uncorrelated aggregate or correlated
                // COUNT (the zero-group trap).
                if self.below(2) == 0 {
                    "SELECT a, b FROM t WHERE a >= (SELECT min(k) FROM w)".to_string()
                } else {
                    format!(
                        "SELECT a, b FROM t WHERE \
                         (SELECT count(*) FROM u WHERE u.k = t.a) {} {}",
                        self.cmp(),
                        self.below(3)
                    )
                }
            }
        }
    }
}

const FUZZ_DDL: &str = "CREATE TABLE t (a INT, b INT, s VARCHAR(8)); \
     CREATE TABLE u (k INT, v INT); \
     CREATE TABLE w (k INT);";

fn fuzz_inserts(g: &mut Gen) -> Vec<String> {
    let mut out = Vec::new();
    for _ in 0..g.below(12) {
        let s = match g.below(4) {
            0 => "NULL".to_string(),
            i => format!("'{}'", ["x", "y", "z"][(i - 1) as usize]),
        };
        out.push(format!("INSERT INTO t VALUES ({}, {}, {})", g.lit(), g.lit(), s));
    }
    for _ in 0..g.below(10) {
        out.push(format!("INSERT INTO u VALUES ({}, {})", g.lit(), g.lit()));
    }
    for _ in 0..g.below(8) {
        out.push(format!("INSERT INTO w VALUES ({})", g.lit()));
    }
    out
}

/// Canonical multiset image of a result: formatted rows, sorted. Row
/// ORDER is not asserted (the generated queries have no ORDER BY), the
/// exact row multiset is.
fn canonical(rows: &[Vec<Value>]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .map(|r| {
            r.iter()
                .map(|c| match c {
                    Value::Null => "NULL".to_string(),
                    Value::Double(d) => format!("{d:.4}"),
                    other => other.to_string(),
                })
                .collect::<Vec<_>>()
                .join("|")
        })
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_selects_agree_across_all_engines(seed in 0u64..u64::MAX) {
        let mut g = Gen { rng: proptest::TestRng::new(seed) };
        let inserts = fuzz_inserts(&mut g);
        let sql = g.query();

        // Columnar engine, materialized and streaming (tiny vectors force
        // chunk boundaries through every operator).
        let db = monetlite::Database::open_in_memory();
        let mut conn = db.connect();
        conn.run_script(FUZZ_DDL).unwrap();
        for ins in &inserts {
            conn.execute(ins).unwrap();
        }
        let mut engines: Vec<(&str, Vec<String>)> = Vec::new();
        for (label, opts, stats, flags) in [
            (
                "materialized",
                ExecOptions { mode: ExecMode::Materialized, ..Default::default() },
                StatsMode::Real,
                OptFlags::default(),
            ),
            (
                // `use_dict` forced on so the dict-off legs below stay a
                // true differential even under the MONETLITE_DICT=0 CI leg.
                "streaming v3",
                ExecOptions {
                    mode: ExecMode::Streaming,
                    threads: 1,
                    vector_size: 3,
                    use_dict: true,
                    ..Default::default()
                },
                StatsMode::Real,
                OptFlags::default(),
            ),
            (
                "streaming t2",
                ExecOptions { mode: ExecMode::Streaming, threads: 2, vector_size: 2, ..Default::default() },
                StatsMode::Real,
                OptFlags::default(),
            ),
            // Stats-fuzzing legs: no column statistics, adversarially
            // wrong statistics (random row counts / NDVs / ranges derived
            // from the case seed), and the greedy-ordering ablation.
            // Plans may differ — the row multiset must not.
            (
                "no column stats",
                ExecOptions::default(),
                StatsMode::TableRowsOnly,
                OptFlags::default(),
            ),
            (
                "adversarial stats",
                ExecOptions::default(),
                StatsMode::Adversarial(seed),
                OptFlags::default(),
            ),
            (
                "adversarial stats v3",
                ExecOptions { vector_size: 3, ..Default::default() },
                StatsMode::Adversarial(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                OptFlags::default(),
            ),
            // Dictionary-execution ablation: string predicates, joins and
            // group-bys run over the string kernels instead of dictionary
            // codes. Answers must be byte-identical to the dict-on legs
            // above (which run with the default `use_dict: true`).
            (
                "dict off v3",
                ExecOptions {
                    mode: ExecMode::Streaming,
                    threads: 1,
                    vector_size: 3,
                    use_dict: false,
                    ..Default::default()
                },
                StatsMode::Real,
                OptFlags::default(),
            ),
            (
                "dict off t2",
                ExecOptions { threads: 2, vector_size: 2, use_dict: false, ..Default::default() },
                StatsMode::Real,
                OptFlags::default(),
            ),
            (
                "greedy join order",
                ExecOptions::default(),
                StatsMode::Real,
                OptFlags { join_dp: false, ..OptFlags::default() },
            ),
            (
                "greedy adversarial",
                ExecOptions::default(),
                StatsMode::Adversarial(!seed),
                OptFlags { join_dp: false, ..OptFlags::default() },
            ),
            // Cache-tier legs forced on: the identical repeat below
            // replays the cached template/result even under the
            // MONETLITE_PLAN_CACHE=0 / MONETLITE_RESULT_CACHE=0 CI legs.
            (
                "caches forced on",
                ExecOptions { use_plan_cache: true, use_result_cache: true, ..Default::default() },
                StatsMode::Real,
                OptFlags::default(),
            ),
            (
                "plan cache only v3",
                ExecOptions {
                    vector_size: 3,
                    use_plan_cache: true,
                    use_result_cache: false,
                    ..Default::default()
                },
                StatsMode::Real,
                OptFlags::default(),
            ),
        ] {
            let mut c = db.connect();
            c.set_exec_options(opts);
            c.set_stats_mode(stats);
            c.set_opt_flags(flags);
            let r = c.query(&sql).unwrap_or_else(|e| panic!("{label}: {e}\nsql: {sql}"));
            let rows: Vec<Vec<Value>> = (0..r.nrows()).map(|i| r.row(i)).collect();
            let first = canonical(&rows);
            // Repeat-each-query-twice mode: the second execution of the
            // identical statement may be served by the plan or result
            // cache and must produce the same multiset as the first.
            let r2 = c.query(&sql).unwrap_or_else(|e| panic!("{label} repeat: {e}\nsql: {sql}"));
            let rows2: Vec<Vec<Value>> = (0..r2.nrows()).map(|i| r2.row(i)).collect();
            prop_assert_eq!(
                &first,
                &canonical(&rows2),
                "{} repeat diverged (seed {})\nsql: {}\ninserts: {:?}",
                label,
                seed,
                sql,
                inserts
            );
            engines.push((label, first));
        }

        // Volcano rowstore over identical data.
        let rdb = monetlite_rowstore::RowDb::in_memory();
        rdb.run_script(FUZZ_DDL).unwrap();
        for ins in &inserts {
            rdb.execute(ins).unwrap();
        }
        let r = rdb.query(&sql).unwrap_or_else(|e| panic!("rowstore: {e}\nsql: {sql}"));
        engines.push(("rowstore", canonical(&r.rows)));

        let (base_label, base) = &engines[0];
        for (label, got) in &engines[1..] {
            prop_assert_eq!(
                base, got,
                "{} vs {} diverge (seed {})\nsql: {}\ninserts: {:?}",
                base_label, label, seed, sql, inserts
            );
        }
    }
}

#[test]
fn keyless_left_join_with_build_only_on_is_not_a_scalar_join() {
    // Regression (review finding): the optimizer sinks build-side-only ON
    // conjuncts of LEFT joins into the build input; that must not leave
    // behind the binder's scalar-join shape (key-less LEFT + no
    // residual), which enforces "at most one build row". A user LEFT
    // JOIN like this must cross-pair matches and NULL-pad, never error.
    let ddl = "CREATE TABLE lt (a INT); INSERT INTO lt VALUES (1), (2); \
               CREATE TABLE rt (v INT); INSERT INTO rt VALUES (10), (20), (30);";
    for (sql, want_rows) in [
        // Every build row matches: 2 probe × 3 build pairs.
        ("SELECT lt.a, rt.v FROM lt LEFT JOIN rt ON rt.v >= 0", 6),
        // No build row matches: each probe row pads NULL once.
        ("SELECT lt.a, rt.v FROM lt LEFT JOIN rt ON rt.v > 100", 2),
    ] {
        let db = monetlite::Database::open_in_memory();
        db.connect().run_script(ddl).unwrap();
        for mode in [ExecMode::Materialized, ExecMode::Streaming] {
            let mut c = db.connect();
            c.set_exec_options(ExecOptions { mode, ..Default::default() });
            let r = c.query(sql).unwrap_or_else(|e| panic!("{mode:?}: {e} for {sql}"));
            assert_eq!(r.nrows(), want_rows, "{mode:?}: {sql}");
        }
        let rdb = monetlite_rowstore::RowDb::in_memory();
        rdb.run_script(ddl).unwrap();
        let r = rdb.query(sql).unwrap_or_else(|e| panic!("rowstore: {e} for {sql}"));
        assert_eq!(r.rows.len(), want_rows, "rowstore: {sql}");
    }
}

#[test]
fn table_and_view_names_cannot_collide() {
    // Tables shadow views at resolution, so both creation orders must be
    // rejected on both engines.
    let db = monetlite::Database::open_in_memory();
    let mut c = db.connect();
    c.execute("CREATE TABLE shared_name (a INT)").unwrap();
    assert!(c.execute("CREATE VIEW shared_name AS SELECT 1").is_err());
    c.execute("CREATE VIEW v2 AS SELECT a FROM shared_name").unwrap();
    assert!(c.execute("CREATE TABLE v2 (b INT)").is_err());
    assert!(c.execute("CREATE VIEW v2 AS SELECT 2").is_err(), "duplicate view");
    let rdb = monetlite_rowstore::RowDb::in_memory();
    rdb.execute("CREATE TABLE shared_name (a INT)").unwrap();
    assert!(rdb.execute("CREATE VIEW shared_name AS SELECT 1").is_err());
    rdb.execute("CREATE VIEW v2 AS SELECT a FROM shared_name").unwrap();
    assert!(rdb.execute("CREATE TABLE v2 (b INT)").is_err());
}
