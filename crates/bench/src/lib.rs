//! # monetlite-bench
//!
//! The reproduction harness: one function per table/figure of the paper's
//! evaluation (§4), shared by the `repro` binary and the Criterion
//! benches. See EXPERIMENTS.md for paper-vs-measured results.
//!
//! Systems under test (paper §4.1 → our substitutions, DESIGN.md §1):
//!
//! | paper        | here |
//! |--------------|------|
//! | MonetDBLite  | `monetlite` embedded |
//! | SQLite       | row store, hash joins, **no join reordering**, in-process |
//! | PostgreSQL   | row store, hash joins, full optimizer, behind TCP |
//! | MariaDB      | row store, nested-loop joins, full optimizer, behind TCP |
//! | MonetDB      | `monetlite` behind TCP |
//! | data.table / dplyr / Pandas / Julia | the `monetlite-frame` library |

#![forbid(unsafe_code)]

use monetlite::exec::ExecOptions;
use monetlite::host::{HostFrame, TransferMode};
use monetlite::Database;
use monetlite_acs::survey::{self, ColumnSource};

use monetlite_frame::Session;
use monetlite_netsim::{RemoteClient, Server, ServerEngine};
use monetlite_rowstore::{JoinStrategy, RowDb, RowDbOptions};
use monetlite_tpch::{frames, queries, TpchData};
use monetlite_types::{ColumnBuffer, MlError, Result, Schema};
use std::fmt;
use std::time::{Duration, Instant};

/// Global benchmark configuration.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// TPC-H scale factor standing in for the paper's SF1 (default 0.02).
    pub sf: f64,
    /// ACS row count (default 20_000).
    pub acs_rows: usize,
    /// Hot runs per measurement (median reported; a cold run is always
    /// discarded first, like the paper's protocol).
    pub runs: usize,
    /// Per-query timeout (the paper used 5 minutes at full scale).
    pub timeout: Duration,
    /// Data seed.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            sf: 0.02,
            acs_rows: 20_000,
            runs: 3,
            timeout: Duration::from_secs(20),
            seed: 20260611,
        }
    }
}

/// Default execution options with both caching layers disabled. Every
/// measurement loop in this crate repeats identical statements, so with
/// the caches on iteration 2+ would time a plan/result-cache hit instead
/// of planning + execution; the dedicated `cache` bench measures the
/// caches themselves.
pub fn uncached_opts() -> ExecOptions {
    ExecOptions { use_plan_cache: false, use_result_cache: false, ..Default::default() }
}

/// A connection with the caching tier disabled (see [`uncached_opts`]).
pub fn uncached_conn(db: &Database) -> monetlite::Connection {
    let mut conn = db.connect();
    conn.set_exec_options(uncached_opts());
    conn
}

/// An in-memory database whose connections default to caches-off, for
/// systems driven through opaque harnesses (the netsim server creates
/// its own connections).
pub fn uncached_db() -> Database {
    Database::open_with(monetlite::DbOptions { exec: uncached_opts(), ..Default::default() })
        .expect("in-memory open")
}

/// One measurement cell, Table-1 style: seconds, "T" or "E".
#[derive(Debug, Clone)]
pub enum Cell {
    /// Median wall-clock seconds.
    Time(f64),
    /// Timed out ("T").
    Timeout,
    /// Out of memory ("E").
    Oom,
    /// Other failure.
    Error(String),
}

impl fmt::Display for Cell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cell::Time(s) => write!(f, "{s:.3}"),
            Cell::Timeout => write!(f, "T"),
            Cell::Oom => write!(f, "E"),
            Cell::Error(e) => write!(f, "ERR({e})"),
        }
    }
}

impl Cell {
    /// Seconds if this is a time.
    pub fn seconds(&self) -> Option<f64> {
        match self {
            Cell::Time(s) => Some(*s),
            _ => None,
        }
    }

    fn from_result(times: Vec<Result<f64>>) -> Cell {
        let mut oks: Vec<f64> = Vec::new();
        for t in times {
            match t {
                Ok(s) => oks.push(s),
                Err(MlError::Timeout { .. }) => return Cell::Timeout,
                Err(MlError::OutOfMemory { .. }) => return Cell::Oom,
                Err(MlError::Protocol(m)) if m.contains("timeout") => return Cell::Timeout,
                Err(MlError::Protocol(m)) if m.contains("out of memory") => return Cell::Oom,
                Err(e) => return Cell::Error(e.to_string()),
            }
        }
        oks.sort_by(|a, b| a.total_cmp(b));
        Cell::Time(oks[oks.len() / 2])
    }
}

/// Time `f` over `runs` hot runs (after one discarded cold run), median.
pub fn measure(runs: usize, mut f: impl FnMut() -> Result<()>) -> Cell {
    // Cold run (ignored unless it fails).
    if let Err(e) = f() {
        return Cell::from_result(vec![Err(e)]);
    }
    let mut times = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed().as_secs_f64();
        times.push(r.map(|_| dt));
    }
    Cell::from_result(times)
}

/// Time `f` exactly once (for ingest-style one-shot phases).
pub fn measure_once(mut f: impl FnMut() -> Result<()>) -> Cell {
    let t0 = Instant::now();
    let r = f();
    let dt = t0.elapsed().as_secs_f64();
    Cell::from_result(vec![r.map(|_| dt)])
}

/// Print a labelled single-value figure (Figures 5–8 style).
pub fn print_figure(title: &str, rows: &[(String, Cell)]) {
    println!("\n=== {title} ===");
    let w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(10).max(12);
    for (label, cell) in rows {
        println!("  {label:<w$}  {cell}");
    }
}

/// Print a Table-1 style matrix.
pub fn print_matrix(title: &str, cols: &[String], rows: &[(String, Vec<Cell>)]) {
    println!("\n=== {title} ===");
    let w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(10).max(12);
    print!("  {:<w$}", "system");
    for c in cols {
        print!("  {c:>8}");
    }
    println!();
    for (label, cells) in rows {
        print!("  {label:<w$}");
        let mut total = 0.0;
        let mut clean = true;
        for c in cells {
            print!("  {:>8}", c.to_string());
            match c.seconds() {
                Some(s) => total += s,
                None => clean = false,
            }
        }
        if cols.len() > 1 {
            if clean {
                print!("  | total {total:.3}");
            } else {
                print!("  | total T/E");
            }
        }
        println!();
    }
}

// ---------------------------------------------------------------------------
// Shared system plumbing
// ---------------------------------------------------------------------------

/// Build lineitem-only host buffers (the Figure 5/6 workload).
pub fn lineitem_buffers(data: &TpchData) -> (Schema, Vec<ColumnBuffer>) {
    (data.lineitem.schema.clone(), data.lineitem.cols.clone())
}

fn map_remote_err(e: MlError) -> MlError {
    // The server stringifies errors; recover the classification.
    if let MlError::Protocol(m) = &e {
        if m.contains("timeout") {
            return MlError::Timeout { elapsed_ms: 0, limit_ms: 0 };
        }
        if m.contains("out of memory") {
            return MlError::OutOfMemory { requested: 0, budget: 0 };
        }
    }
    e
}

/// A uniform "run this SQL, discard the result" interface for Table 1.
pub enum SqlSystem {
    /// Embedded columnar engine.
    Monet(Database),
    /// Embedded row store.
    Row(RowDb),
    /// Any engine behind the socket.
    Socket(Server, RemoteClient),
}

impl SqlSystem {
    /// Execute and materialise a query.
    pub fn run_sql(&mut self, sql: &str) -> Result<()> {
        match self {
            SqlSystem::Monet(db) => {
                let mut conn = db.connect();
                conn.set_exec_options(ExecOptions {
                    timeout: None, // set by caller via with_timeout
                    use_plan_cache: false,
                    use_result_cache: false,
                    ..conn.exec_options()
                });
                conn.query(sql)?;
                Ok(())
            }
            SqlSystem::Row(db) => {
                db.query(sql)?;
                Ok(())
            }
            SqlSystem::Socket(_, client) => {
                client.query(sql).map_err(map_remote_err)?;
                Ok(())
            }
        }
    }

    /// Execute with a per-query timeout where the engine supports it.
    pub fn run_sql_timed(&mut self, sql: &str, timeout: Duration) -> Result<()> {
        match self {
            SqlSystem::Monet(db) => {
                let mut conn = db.connect();
                let mut opts = conn.exec_options();
                opts.timeout = Some(timeout);
                opts.use_plan_cache = false;
                opts.use_result_cache = false;
                conn.set_exec_options(opts);
                conn.query(sql)?;
                Ok(())
            }
            other => other.run_sql(sql),
        }
    }
}

/// The five Table-1 database systems, loaded with the dataset.
pub fn table1_systems(
    data: &TpchData,
    timeout: Duration,
    page_cache: usize,
) -> Result<Vec<(String, SqlSystem)>> {
    let mut out = Vec::new();
    // MonetDBLite: embedded columnar.
    let db = uncached_db();
    let mut conn = db.connect();
    monetlite_tpch::load_monet(&mut conn, data)?;
    drop(conn);
    out.push(("MonetDBLite".to_string(), SqlSystem::Monet(db)));
    // MonetDB: same engine behind the socket.
    let db = uncached_db();
    let mut conn = db.connect();
    monetlite_tpch::load_monet(&mut conn, data)?;
    drop(conn);
    let server = Server::start(ServerEngine::Monet(db))?;
    let client = RemoteClient::connect(server.port())?;
    out.push(("MonetDB".to_string(), SqlSystem::Socket(server, client)));
    // SQLite: embedded row store, weak planner.
    let db = RowDb::open_with(RowDbOptions {
        join_strategy: JoinStrategy::Hash,
        opt_flags: monetlite::opt::OptFlags { join_order: false, ..Default::default() },
        timeout: Some(timeout),
        page_cache_pages: page_cache,
        max_intermediate_rows: 40_000_000,
        ..Default::default()
    })?;
    monetlite_tpch::load_rowdb(&db, data)?;
    out.push(("SQLite".to_string(), SqlSystem::Row(db)));
    // PostgreSQL: row store + hash joins behind the socket.
    let db = RowDb::open_with(RowDbOptions {
        join_strategy: JoinStrategy::Hash,
        timeout: Some(timeout),
        page_cache_pages: page_cache,
        max_intermediate_rows: 40_000_000,
        ..Default::default()
    })?;
    monetlite_tpch::load_rowdb(&db, data)?;
    let server = Server::start(ServerEngine::Row(db))?;
    let client = RemoteClient::connect(server.port())?;
    out.push(("PostgreSQL".to_string(), SqlSystem::Socket(server, client)));
    // MariaDB: row store + nested loops behind the socket.
    let db = RowDb::open_with(RowDbOptions {
        join_strategy: JoinStrategy::NestedLoop,
        timeout: Some(timeout),
        page_cache_pages: page_cache,
        max_intermediate_rows: 40_000_000,
        ..Default::default()
    })?;
    monetlite_tpch::load_rowdb(&db, data)?;
    let server = Server::start(ServerEngine::Row(db))?;
    let client = RemoteClient::connect(server.port())?;
    out.push(("MariaDB".to_string(), SqlSystem::Socket(server, client)));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Figure 5: data ingestion (write lineitem from the host into each DB)
// ---------------------------------------------------------------------------

/// Figure 5: `dbWriteTable(lineitem)` into each system. Embedded engines
/// use their bulk paths and flush to disk; socket systems pay the
/// per-INSERT protocol.
pub fn fig5_ingestion(cfg: &BenchConfig) -> Vec<(String, Cell)> {
    let data = monetlite_tpch::generate(cfg.sf, cfg.seed);
    let (schema, cols) = lineitem_buffers(&data);
    let ddl = lineitem_ddl(&schema);
    let mut out = Vec::new();

    // MonetDBLite: persistent dir, bulk append, checkpoint = durable.
    out.push((
        "MonetDBLite".to_string(),
        measure_once(|| {
            let dir = tempfile::tempdir().map_err(|e| MlError::Io(e.to_string()))?;
            let db = Database::open(dir.path())?;
            let mut conn = db.connect();
            conn.execute(&ddl)?;
            conn.append("lineitem", cols.clone())?;
            db.checkpoint()?;
            Ok(())
        }),
    ));
    // SQLite: embedded row store, row-at-a-time insert + sync.
    out.push((
        "SQLite".to_string(),
        measure_once(|| {
            let db = RowDb::in_memory();
            db.execute(&ddl)?;
            let rows: Vec<Vec<monetlite_types::Value>> =
                (0..cols[0].len()).map(|r| cols.iter().map(|c| c.get(r)).collect()).collect();
            db.insert_rows("lineitem", rows)?;
            db.sync()?;
            Ok(())
        }),
    ));
    // Socket systems: CREATE + one INSERT statement per row over TCP.
    for (label, engine) in [
        ("PostgreSQL", ServerEngine::Row(RowDb::in_memory())),
        ("MonetDB", ServerEngine::Monet(uncached_db())),
        ("MariaDB", ServerEngine::Row(RowDb::mariadb_profile())),
    ] {
        let cell = measure_once(|| {
            let server = Server::start(engine_fresh(&engine)?)?;
            let mut client = RemoteClient::connect(server.port())?;
            client.write_table("lineitem", &schema, &cols).map_err(map_remote_err)?;
            client.close();
            Ok(())
        });
        out.push((label.to_string(), cell));
    }
    out
}

// Socket ingest engines are consumed per run; rebuild them fresh.
fn engine_fresh(like: &ServerEngine) -> Result<ServerEngine> {
    Ok(match like {
        ServerEngine::Monet(_) => ServerEngine::Monet(uncached_db()),
        ServerEngine::Row(db) => ServerEngine::Row(RowDb::open_with(db.options().clone())?),
    })
}

fn lineitem_ddl(schema: &Schema) -> String {
    let cols: Vec<String> = schema
        .fields()
        .iter()
        .map(|f| {
            let ty = match f.ty {
                monetlite_types::LogicalType::Decimal { width, scale } => {
                    format!("DECIMAL({width},{scale})")
                }
                monetlite_types::LogicalType::Int => "INTEGER".to_string(),
                monetlite_types::LogicalType::Date => "DATE".to_string(),
                _ => "VARCHAR(64)".to_string(),
            };
            format!("{} {}{}", f.name, ty, if f.nullable { "" } else { " NOT NULL" })
        })
        .collect();
    format!("CREATE TABLE lineitem ({})", cols.join(", "))
}

// ---------------------------------------------------------------------------
// Figure 6: data export (read lineitem from each DB into the host)
// ---------------------------------------------------------------------------

/// Figure 6: `dbReadTable(lineitem)` from each system into host arrays.
pub fn fig6_export(cfg: &BenchConfig) -> Vec<(String, Cell)> {
    let data = monetlite_tpch::generate(cfg.sf, cfg.seed);
    let (schema, cols) = lineitem_buffers(&data);
    let ddl = lineitem_ddl(&schema);
    let mut out = Vec::new();

    // MonetDBLite: in-process query + zero-copy import.
    {
        let db = uncached_db();
        let mut conn = db.connect();
        conn.execute(&ddl).unwrap();
        conn.append("lineitem", cols.clone()).unwrap();
        out.push((
            "MonetDBLite".to_string(),
            measure(cfg.runs, || {
                let r = conn.query("SELECT * FROM lineitem")?;
                let frame = HostFrame::import(&r, TransferMode::ZeroCopy);
                std::hint::black_box(frame.rows);
                Ok(())
            }),
        ));
    }
    // SQLite: in-process but row-major → column conversion.
    {
        let db = RowDb::in_memory();
        db.execute(&ddl).unwrap();
        let rows: Vec<Vec<monetlite_types::Value>> =
            (0..cols[0].len()).map(|r| cols.iter().map(|c| c.get(r)).collect()).collect();
        db.insert_rows("lineitem", rows).unwrap();
        out.push((
            "SQLite".to_string(),
            measure(cfg.runs, || {
                let r = db.read_table("lineitem")?;
                // Row-major to column-major conversion in the host driver.
                let mut bufs: Vec<ColumnBuffer> =
                    r.types.iter().map(|&t| ColumnBuffer::with_capacity(t, r.rows.len())).collect();
                for row in &r.rows {
                    for (b, v) in bufs.iter_mut().zip(row) {
                        b.push(v)?;
                    }
                }
                std::hint::black_box(bufs.len());
                Ok(())
            }),
        ));
    }
    // Socket systems.
    for (label, engine) in [
        ("PostgreSQL", socket_row_with_lineitem(&ddl, &cols, JoinStrategy::Hash)),
        ("MonetDB", socket_monet_with_lineitem(&ddl, &cols)),
        ("MariaDB", socket_row_with_lineitem(&ddl, &cols, JoinStrategy::NestedLoop)),
    ] {
        let (server, mut client) = engine;
        out.push((
            label.to_string(),
            measure(cfg.runs, || {
                let (_, bufs) = client.read_table("lineitem").map_err(map_remote_err)?;
                std::hint::black_box(bufs.len());
                Ok(())
            }),
        ));
        client.close();
        drop(server);
    }
    out
}

fn socket_row_with_lineitem(
    ddl: &str,
    cols: &[ColumnBuffer],
    js: JoinStrategy,
) -> (Server, RemoteClient) {
    let db = RowDb::open_with(RowDbOptions { join_strategy: js, ..Default::default() }).unwrap();
    db.execute(ddl).unwrap();
    let rows: Vec<Vec<monetlite_types::Value>> =
        (0..cols[0].len()).map(|r| cols.iter().map(|c| c.get(r)).collect()).collect();
    db.insert_rows("lineitem", rows).unwrap();
    let server = Server::start(ServerEngine::Row(db)).unwrap();
    let client = RemoteClient::connect(server.port()).unwrap();
    (server, client)
}

fn socket_monet_with_lineitem(ddl: &str, cols: &[ColumnBuffer]) -> (Server, RemoteClient) {
    let db = uncached_db();
    let mut conn = db.connect();
    conn.execute(ddl).unwrap();
    conn.append("lineitem", cols.to_vec()).unwrap();
    drop(conn);
    let server = Server::start(ServerEngine::Monet(db)).unwrap();
    let client = RemoteClient::connect(server.port()).unwrap();
    (server, client)
}

// ---------------------------------------------------------------------------
// Table 1: TPC-H Q1–Q10 across systems (+ the library)
// ---------------------------------------------------------------------------

/// One Table-1 run. `sf10` scales the data ×10, bounds the library's
/// memory, and restricts the row stores' page caches (the swap effect).
pub fn table1(cfg: &BenchConfig, sf10: bool) -> (Vec<String>, Vec<(String, Vec<Cell>)>) {
    let sf = if sf10 { cfg.sf * 10.0 } else { cfg.sf };
    let data = monetlite_tpch::generate(sf, cfg.seed);
    let page_cache = if sf10 {
        // Simulated memory pressure: the row stores keep only ~1/4 of the
        // dataset's pages resident.
        (data.bytes() / monetlite_rowstore::page::PAGE_SIZE / 4).max(64)
    } else {
        usize::MAX
    };
    let cols: Vec<String> = (1..=10).map(|n| format!("Q{n}")).collect();
    let mut rows = Vec::new();
    let systems = table1_systems(&data, cfg.timeout, page_cache).expect("load systems");
    for (label, mut sys) in systems {
        let mut cells = Vec::new();
        for n in 1..=10 {
            let sql = queries::sql(n);
            let timeout = cfg.timeout;
            cells.push(measure(cfg.runs, || sys.run_sql_timed(sql, timeout)));
        }
        rows.push((label, cells));
    }
    // The library baseline (one stands in for data.table/dplyr/Pandas/
    // Julia, DESIGN.md §1): memory budget = 2× the dataset at "SF10".
    let budget = if sf10 { data.bytes() * 2 } else { usize::MAX };
    let session = Session::with_budget(budget);
    let loaded = frames::TpchFrames::load(&session, &data);
    let mut cells = Vec::new();
    match loaded {
        Err(MlError::OutOfMemory { .. }) => {
            cells = vec![Cell::Oom; 10];
        }
        Err(e) => cells = vec![Cell::Error(e.to_string()); 10],
        Ok(fr) => {
            for n in 1..=10 {
                cells.push(measure(cfg.runs, || {
                    frames::run(n, &fr)?;
                    Ok(())
                }));
            }
        }
    }
    rows.push(("library".to_string(), cells));
    (cols, rows)
}

// ---------------------------------------------------------------------------
// Figure 2: mitosis (SELECT MEDIAN(SQRT(i*2)) FROM tbl)
// ---------------------------------------------------------------------------

/// Figure 2: the parallel-execution example. Returns (threads, seconds)
/// plus the EXPLAIN text showing the packed plan.
pub fn fig2_mitosis(rows: usize, threads: &[usize]) -> (Vec<(String, Cell)>, String) {
    let db = uncached_db();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE tbl (i INTEGER NOT NULL)").unwrap();
    conn.append("tbl", vec![ColumnBuffer::Int((0..rows as i32).map(|x| x % 100_000).collect())])
        .unwrap();
    let sql = "SELECT median(sqrt(i * 2)) FROM tbl";
    let mut out = Vec::new();
    // Figure 2 reproduces the paper's mitosis, which lives in the
    // materialized (operator-at-a-time) engine; the streaming engine's
    // parallelism is measured by the pipeline benches instead.
    for &t in threads {
        let mut opts = ExecOptions {
            mode: monetlite::exec::ExecMode::Materialized,
            threads: t,
            mitosis_min_rows: 16 * 1024,
            ..uncached_opts()
        };
        opts.timeout = None;
        conn.set_exec_options(opts);
        out.push((
            format!("{t} thread(s)"),
            measure(3, || {
                conn.query(sql)?;
                Ok(())
            }),
        ));
    }
    let mut opts = ExecOptions {
        mode: monetlite::exec::ExecMode::Materialized,
        threads: 8,
        ..uncached_opts()
    };
    opts.mitosis_min_rows = 16 * 1024;
    conn.set_exec_options(opts);
    let explain = conn.query(&format!("EXPLAIN {sql}")).unwrap();
    let text: Vec<String> = (0..explain.nrows()).map(|i| explain.value(i, 0).to_string()).collect();
    (out, text.join("\n"))
}

// ---------------------------------------------------------------------------
// Figures 7/8: the ACS benchmark
// ---------------------------------------------------------------------------

/// Figure 7: wrangle + load the 274-column census table into each DB.
pub fn fig7_acs_load(cfg: &BenchConfig) -> Vec<(String, Cell)> {
    let mut out = Vec::new();
    // MonetDBLite.
    out.push((
        "MonetDBLite".to_string(),
        measure_once(|| {
            let d = monetlite_acs::wrangle(monetlite_acs::generate(cfg.acs_rows, cfg.seed))?;
            let db = uncached_db();
            let mut conn = db.connect();
            conn.execute(&monetlite_acs::ddl(&d))?;
            conn.append("acs", d.cols.clone())?;
            Ok(())
        }),
    ));
    // SQLite (embedded row store).
    out.push((
        "SQLite".to_string(),
        measure_once(|| {
            let d = monetlite_acs::wrangle(monetlite_acs::generate(cfg.acs_rows, cfg.seed))?;
            let db = RowDb::in_memory();
            db.execute(&monetlite_acs::ddl(&d))?;
            let rows: Vec<Vec<monetlite_types::Value>> =
                (0..d.rows).map(|r| d.cols.iter().map(|c| c.get(r)).collect()).collect();
            db.insert_rows("acs", rows)?;
            db.sync()?;
            Ok(())
        }),
    ));
    // Socket systems (fewer rows would be dishonest: same workload, the
    // INSERT stream is simply what these systems cost).
    for (label, js) in [("PostgreSQL", JoinStrategy::Hash), ("MariaDB", JoinStrategy::NestedLoop)] {
        out.push((
            label.to_string(),
            measure_once(|| {
                let d = monetlite_acs::wrangle(monetlite_acs::generate(cfg.acs_rows, cfg.seed))?;
                let db =
                    RowDb::open_with(RowDbOptions { join_strategy: js, ..Default::default() })?;
                let server = Server::start(ServerEngine::Row(db))?;
                let mut client = RemoteClient::connect(server.port())?;
                client.write_table("acs", &d.schema, &d.cols).map_err(map_remote_err)?;
                client.close();
                Ok(())
            }),
        ));
    }
    out
}

/// A [`ColumnSource`] over an embedded monetlite connection: per-column
/// SQL export (zero-copy for fixed-width columns).
pub struct MonetSource<'a> {
    /// The connection.
    pub conn: &'a mut monetlite::Connection,
}

impl ColumnSource for MonetSource<'_> {
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>> {
        let sql = format!("SELECT {} FROM acs", names.join(", "));
        let r = self.conn.query(&sql)?;
        let frame = HostFrame::import(&r, TransferMode::ZeroCopy);
        Ok(frame.cols.iter().map(|c| c.native()).collect())
    }
}

/// A [`ColumnSource`] over the row store (row-major export + conversion).
pub struct RowSource<'a> {
    /// The database.
    pub db: &'a RowDb,
}

impl ColumnSource for RowSource<'_> {
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>> {
        let sql = format!("SELECT {} FROM acs", names.join(", "));
        let r = self.db.query(&sql)?;
        let mut bufs: Vec<ColumnBuffer> =
            r.types.iter().map(|&t| ColumnBuffer::with_capacity(t, r.rows.len())).collect();
        for row in &r.rows {
            for (b, v) in bufs.iter_mut().zip(row) {
                b.push(v)?;
            }
        }
        Ok(bufs)
    }
}

/// A [`ColumnSource`] over a remote client (socket export).
pub struct SocketSource {
    /// The client.
    pub client: RemoteClient,
}

impl ColumnSource for SocketSource {
    fn columns(&mut self, names: &[&str]) -> Result<Vec<ColumnBuffer>> {
        let sql = format!("SELECT {} FROM acs", names.join(", "));
        let r = self.client.query(&sql).map_err(map_remote_err)?;
        let mut bufs: Vec<ColumnBuffer> =
            r.types.iter().map(|&t| ColumnBuffer::with_capacity(t, r.rows.len())).collect();
        for row in &r.rows {
            for (b, v) in bufs.iter_mut().zip(row) {
                b.push(v)?;
            }
        }
        Ok(bufs)
    }
}

/// Figure 8: the survey-statistics battery over each backend. Most time
/// is host-side (the 80-replicate loops), so differences stay small.
pub fn fig8_acs_stats(cfg: &BenchConfig) -> Vec<(String, Cell)> {
    let d = monetlite_acs::wrangle(monetlite_acs::generate(cfg.acs_rows, cfg.seed)).unwrap();
    let mut out = Vec::new();

    // MonetDBLite.
    {
        let db = uncached_db();
        let mut conn = db.connect();
        conn.execute(&monetlite_acs::ddl(&d)).unwrap();
        conn.append("acs", d.cols.clone()).unwrap();
        out.push((
            "MonetDBLite".to_string(),
            measure(cfg.runs, || {
                let mut src = MonetSource { conn: &mut conn };
                let stats = survey::analysis(&mut src)?;
                std::hint::black_box(stats.len());
                Ok(())
            }),
        ));
    }
    // SQLite.
    {
        let db = RowDb::in_memory();
        db.execute(&monetlite_acs::ddl(&d)).unwrap();
        let rows: Vec<Vec<monetlite_types::Value>> =
            (0..d.rows).map(|r| d.cols.iter().map(|c| c.get(r)).collect()).collect();
        db.insert_rows("acs", rows).unwrap();
        out.push((
            "SQLite".to_string(),
            measure(cfg.runs, || {
                let mut src = RowSource { db: &db };
                let stats = survey::analysis(&mut src)?;
                std::hint::black_box(stats.len());
                Ok(())
            }),
        ));
    }
    // Socket systems.
    for (label, js) in [("PostgreSQL", JoinStrategy::Hash), ("MariaDB", JoinStrategy::NestedLoop)] {
        let db =
            RowDb::open_with(RowDbOptions { join_strategy: js, ..Default::default() }).unwrap();
        db.execute(&monetlite_acs::ddl(&d)).unwrap();
        let rows: Vec<Vec<monetlite_types::Value>> =
            (0..d.rows).map(|r| d.cols.iter().map(|c| c.get(r)).collect()).collect();
        db.insert_rows("acs", rows).unwrap();
        let server = Server::start(ServerEngine::Row(db)).unwrap();
        let client = RemoteClient::connect(server.port()).unwrap();
        let mut src = SocketSource { client };
        out.push((
            label.to_string(),
            measure(cfg.runs, || {
                let stats = survey::analysis(&mut src)?;
                std::hint::black_box(stats.len());
                Ok(())
            }),
        ));
        drop(server);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            sf: 0.001,
            acs_rows: 300,
            runs: 1,
            timeout: Duration::from_secs(30),
            ..Default::default()
        }
    }

    #[test]
    fn fig5_runs_all_systems() {
        let cells = fig5_ingestion(&tiny());
        assert_eq!(cells.len(), 5);
        for (label, cell) in &cells {
            assert!(cell.seconds().is_some(), "{label}: {cell}");
        }
    }

    #[test]
    fn fig6_runs_all_systems() {
        let cells = fig6_export(&tiny());
        assert_eq!(cells.len(), 5);
        for (label, cell) in &cells {
            assert!(cell.seconds().is_some(), "{label}: {cell}");
        }
    }

    #[test]
    fn table1_sf1_shape() {
        let (cols, rows) = table1(&tiny(), false);
        assert_eq!(cols.len(), 10);
        assert_eq!(rows.len(), 6); // 5 DBs + library
        for (label, cells) in &rows {
            for (i, c) in cells.iter().enumerate() {
                assert!(c.seconds().is_some(), "{label} Q{}: {c}", i + 1);
            }
        }
    }

    #[test]
    fn fig2_parallel_speedup_shape() {
        let (cells, explain) = fig2_mitosis(400_000, &[1, 4]);
        assert!(explain.contains("mitosis"));
        let t1 = cells[0].1.seconds().unwrap();
        let t4 = cells[1].1.seconds().unwrap();
        // Parallel must not be dramatically slower (allow noise).
        assert!(t4 < t1 * 1.5, "1 thread {t1}s vs 4 threads {t4}s");
    }

    #[test]
    fn fig7_and_fig8_run() {
        let cfg = tiny();
        for (label, cell) in fig7_acs_load(&cfg) {
            assert!(cell.seconds().is_some(), "{label}: {cell}");
        }
        for (label, cell) in fig8_acs_stats(&cfg) {
            assert!(cell.seconds().is_some(), "{label}: {cell}");
        }
    }
}
