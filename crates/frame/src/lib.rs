//! # monetlite-frame
//!
//! The "analytical library" baseline of the paper's evaluation —
//! data.table / dplyr / Pandas / Julia DataFrames rolled into one eager,
//! fully materialising, in-memory dataframe library.
//!
//! Two properties drive its Table 1 behaviour, and both are reproduced
//! here deliberately:
//!
//! * operations are **vectorised but eager**: every op allocates its full
//!   output (and its intermediates) immediately, which makes single-table
//!   scans/aggregations fast (the libraries beat the DBs on Q1/Q6)…
//! * …but "these libraries require not only the entire dataset to fit in
//!   memory, but also require any intermediates created while processing
//!   to fit in memory" (§4.2). Every allocation is charged against a
//!   [`Session`] budget; exceeding it raises [`MlError::OutOfMemory`] —
//!   the "E" entries of Table 1 at SF10.
//!
//! There is no query optimizer: the *caller* hand-optimises join order and
//! pushdowns, exactly as the paper did for its library scripts ("we
//! manually perform the high-level optimizations performed by a RDBMS").

#![forbid(unsafe_code)]

pub mod ops;

use monetlite_types::{ColumnBuffer, LogicalType, MlError, Result, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tracks live bytes against a budget; shared by every frame of a
/// session.
pub struct MemTracker {
    used: AtomicUsize,
    peak: AtomicUsize,
    budget: usize,
}

impl MemTracker {
    fn reserve(self: &Arc<Self>, bytes: usize) -> Result<Reservation> {
        let prev = self.used.fetch_add(bytes, Ordering::Relaxed);
        let now = prev + bytes;
        if now > self.budget {
            // The failed allocation is rolled back before it ever becomes
            // observable as resident memory (malloc failed, nothing
            // mapped) — the peak only tracks successful reservations.
            self.used.fetch_sub(bytes, Ordering::Relaxed);
            return Err(MlError::OutOfMemory { requested: bytes, budget: self.budget });
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Ok(Reservation { tracker: self.clone(), bytes })
    }
}

/// RAII accounting for one frame's memory.
pub struct Reservation {
    tracker: Arc<MemTracker>,
    bytes: usize,
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.tracker.used.fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

/// A library session: the budget under which all frames live.
#[derive(Clone)]
pub struct Session {
    tracker: Arc<MemTracker>,
}

impl Session {
    /// Unlimited session.
    pub fn unlimited() -> Session {
        Session::with_budget(usize::MAX)
    }

    /// Session with a byte budget (the machine's RAM in the paper's SF10
    /// experiment).
    pub fn with_budget(budget: usize) -> Session {
        Session {
            tracker: Arc::new(MemTracker {
                used: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                budget,
            }),
        }
    }

    /// Build a frame from columns (charged against the budget).
    pub fn frame(
        &self,
        names: Vec<impl Into<String>>,
        cols: Vec<ColumnBuffer>,
    ) -> Result<DataFrame> {
        let names: Vec<String> = names.into_iter().map(|n| n.into().to_lowercase()).collect();
        if names.len() != cols.len() {
            return Err(MlError::Execution("frame arity mismatch".into()));
        }
        let rows = cols.first().map_or(0, |c| c.len());
        if cols.iter().any(|c| c.len() != rows) {
            return Err(MlError::Execution("frame columns have unequal lengths".into()));
        }
        let bytes: usize = cols.iter().map(|c| c.size_bytes()).sum();
        let reservation = self.tracker.reserve(bytes)?;
        Ok(DataFrame { session: self.clone(), names, cols, rows, _reservation: reservation })
    }

    /// Live bytes.
    pub fn mem_used(&self) -> usize {
        self.tracker.used.load(Ordering::Relaxed)
    }

    /// High-water mark.
    pub fn mem_peak(&self) -> usize {
        self.tracker.peak.load(Ordering::Relaxed)
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.tracker.budget
    }
}

/// Aggregations for [`DataFrame::group_by`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Sum (f64 accumulation — what R/pandas do).
    Sum,
    /// Mean.
    Mean,
    /// Non-null count.
    Count,
    /// Row count (ignores the column).
    CountStar,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Median.
    Median,
    /// First value per group (dplyr's `first`).
    First,
}

/// Join types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinHow {
    /// Inner join.
    Inner,
    /// Left outer join.
    Left,
    /// Semi join (filtering join).
    Semi,
    /// Anti join.
    Anti,
}

/// An eager, fully materialised data frame.
pub struct DataFrame {
    session: Session,
    names: Vec<String>,
    cols: Vec<ColumnBuffer>,
    rows: usize,
    _reservation: Reservation,
}

impl DataFrame {
    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Column by name.
    pub fn col(&self, name: &str) -> Result<&ColumnBuffer> {
        let lower = name.to_lowercase();
        self.names
            .iter()
            .position(|n| *n == lower)
            .map(|i| &self.cols[i])
            .ok_or_else(|| MlError::Catalog(format!("unknown column '{name}'")))
    }

    /// Cell accessor (tests and result checking).
    pub fn get(&self, row: usize, name: &str) -> Result<Value> {
        Ok(self.col(name)?.get(row))
    }

    /// The session this frame belongs to.
    pub fn session(&self) -> &Session {
        &self.session
    }

    /// All columns (for export paths).
    pub fn columns(&self) -> &[ColumnBuffer] {
        &self.cols
    }

    /// Keep only the named columns.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut out_names = Vec::with_capacity(names.len());
        let mut out_cols = Vec::with_capacity(names.len());
        for n in names {
            out_names.push(n.to_lowercase());
            out_cols.push(self.col(n)?.clone());
        }
        self.session.frame(out_names, out_cols)
    }

    /// Attach/overwrite a column.
    pub fn with_column(&self, name: &str, col: ColumnBuffer) -> Result<DataFrame> {
        if col.len() != self.rows {
            return Err(MlError::Execution("column length mismatch".into()));
        }
        let lower = name.to_lowercase();
        let mut names = self.names.clone();
        let mut cols = self.cols.clone();
        match names.iter().position(|n| *n == lower) {
            Some(i) => cols[i] = col,
            None => {
                names.push(lower);
                cols.push(col);
            }
        }
        self.session.frame(names, cols)
    }

    /// Keep rows where `mask` is true (allocates the filtered copy).
    pub fn filter(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.rows {
            return Err(MlError::Execution("mask length mismatch".into()));
        }
        let idx: Vec<u32> =
            mask.iter().enumerate().filter(|(_, &m)| m).map(|(i, _)| i as u32).collect();
        self.take(&idx)
    }

    /// Gather rows by index.
    pub fn take(&self, idx: &[u32]) -> Result<DataFrame> {
        let cols: Vec<ColumnBuffer> = self.cols.iter().map(|c| c.take(idx)).collect();
        self.session.frame(self.names.clone(), cols)
    }

    /// First `n` rows.
    pub fn head(&self, n: usize) -> Result<DataFrame> {
        let idx: Vec<u32> = (0..n.min(self.rows) as u32).collect();
        self.take(&idx)
    }

    /// Hash join. Output columns: left columns then right columns (minus
    /// right key columns and name clashes, dplyr-style).
    pub fn join(
        &self,
        right: &DataFrame,
        left_on: &[&str],
        right_on: &[&str],
        how: JoinHow,
    ) -> Result<DataFrame> {
        if left_on.len() != right_on.len() || left_on.is_empty() {
            return Err(MlError::Execution("join keys must align".into()));
        }
        let lkeys: Vec<&ColumnBuffer> =
            left_on.iter().map(|n| self.col(n)).collect::<Result<_>>()?;
        let rkeys: Vec<&ColumnBuffer> =
            right_on.iter().map(|n| right.col(n)).collect::<Result<_>>()?;
        // Build side: the hash table is an intermediate that must fit in
        // memory — charge it.
        let build_bytes = right.rows * (16 + 8 * rkeys.len());
        let _build = self.session.tracker.reserve(build_bytes)?;
        let mut table: HashMap<String, Vec<u32>> = HashMap::with_capacity(right.rows);
        for r in 0..right.rows {
            let key = composite_key(&rkeys, r);
            let Some(key) = key else { continue };
            table.entry(key).or_default().push(r as u32);
        }
        let mut lsel: Vec<u32> = Vec::new();
        let mut rsel: Vec<u32> = Vec::new();
        const NO_ROW: u32 = u32::MAX;
        for l in 0..self.rows {
            let key = composite_key(&lkeys, l);
            let matches: Option<&Vec<u32>> = key.as_ref().and_then(|k| table.get(k));
            match how {
                JoinHow::Inner => {
                    if let Some(ms) = matches {
                        for &r in ms {
                            lsel.push(l as u32);
                            rsel.push(r);
                        }
                    }
                }
                JoinHow::Left => match matches {
                    Some(ms) => {
                        for &r in ms {
                            lsel.push(l as u32);
                            rsel.push(r);
                        }
                    }
                    None => {
                        lsel.push(l as u32);
                        rsel.push(NO_ROW);
                    }
                },
                JoinHow::Semi => {
                    if matches.is_some_and(|m| !m.is_empty()) {
                        lsel.push(l as u32);
                    }
                }
                JoinHow::Anti => {
                    if matches.is_none_or(|m| m.is_empty()) {
                        lsel.push(l as u32);
                    }
                }
            }
        }
        let mut names = self.names.clone();
        let mut cols: Vec<ColumnBuffer> = self.cols.iter().map(|c| c.take(&lsel)).collect();
        if matches!(how, JoinHow::Inner | JoinHow::Left) {
            let right_keyset: Vec<String> = right_on.iter().map(|n| n.to_lowercase()).collect();
            for (n, c) in right.names.iter().zip(&right.cols) {
                if right_keyset.contains(n) || names.contains(n) {
                    continue;
                }
                names.push(n.clone());
                cols.push(take_padded(c, &rsel));
            }
        }
        self.session.frame(names, cols)
    }

    /// Grouped aggregation. `aggs`: (input column, op, output name).
    pub fn group_by(&self, keys: &[&str], aggs: &[(&str, AggOp, &str)]) -> Result<DataFrame> {
        let key_cols: Vec<&ColumnBuffer> =
            keys.iter().map(|n| self.col(n)).collect::<Result<_>>()?;
        // The grouping hash table is a charged intermediate.
        let _groups_mem = self.session.tracker.reserve(self.rows * 24)?;
        let mut table: HashMap<String, u32> = HashMap::new();
        let mut group_ids: Vec<u32> = Vec::with_capacity(self.rows);
        let mut repr: Vec<u32> = Vec::new();
        for r in 0..self.rows {
            let key = composite_key_nulls(&key_cols, r);
            let next = repr.len() as u32;
            let gid = *table.entry(key).or_insert_with(|| {
                repr.push(r as u32);
                next
            });
            group_ids.push(gid);
        }
        let n_groups = repr.len();
        let mut out_names: Vec<String> = keys.iter().map(|k| k.to_lowercase()).collect();
        let mut out_cols: Vec<ColumnBuffer> = key_cols.iter().map(|c| c.take(&repr)).collect();
        for (colname, op, outname) in aggs {
            let col = if *op == AggOp::CountStar { None } else { Some(self.col(colname)?) };
            out_names.push(outname.to_lowercase());
            out_cols.push(aggregate_column(col, *op, &group_ids, n_groups)?);
        }
        self.session.frame(out_names, out_cols)
    }

    /// Sort (allocates the permuted copy).
    pub fn sort_by(&self, keys: &[(&str, bool)]) -> Result<DataFrame> {
        let key_cols: Vec<(&ColumnBuffer, bool)> =
            keys.iter().map(|(n, d)| Ok((self.col(n)?, *d))).collect::<Result<_>>()?;
        let mut perm: Vec<u32> = (0..self.rows as u32).collect();
        perm.sort_by(|&a, &b| {
            for (c, desc) in &key_cols {
                let ord = c.get(a as usize).cmp_sql(&c.get(b as usize));
                let ord = if *desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.take(&perm)
    }

    /// Distinct rows over the named columns.
    pub fn distinct(&self, keys: &[&str]) -> Result<DataFrame> {
        let key_cols: Vec<&ColumnBuffer> =
            keys.iter().map(|n| self.col(n)).collect::<Result<_>>()?;
        let mut seen = std::collections::HashSet::new();
        let mut idx = Vec::new();
        for r in 0..self.rows {
            if seen.insert(composite_key_nulls(&key_cols, r)) {
                idx.push(r as u32);
            }
        }
        self.select(keys)?.take_named(&idx, keys)
    }

    fn take_named(&self, idx: &[u32], keys: &[&str]) -> Result<DataFrame> {
        let cols: Vec<ColumnBuffer> =
            keys.iter().map(|n| Ok(self.col(n)?.take(idx))).collect::<Result<_>>()?;
        self.session.frame(keys.iter().map(|k| k.to_string()).collect(), cols)
    }
}

/// NULL-rejecting composite key (join semantics).
fn composite_key(cols: &[&ColumnBuffer], row: usize) -> Option<String> {
    let mut s = String::new();
    for c in cols {
        let v = c.get(row);
        if v.is_null() {
            return None;
        }
        s.push_str(&v.to_string());
        s.push('\u{0}');
    }
    Some(s)
}

/// NULL-grouping composite key (group-by semantics).
fn composite_key_nulls(cols: &[&ColumnBuffer], row: usize) -> String {
    let mut s = String::new();
    for c in cols {
        let v = c.get(row);
        if v.is_null() {
            s.push('\u{1}');
        } else {
            s.push_str(&v.to_string());
        }
        s.push('\u{0}');
    }
    s
}

fn take_padded(c: &ColumnBuffer, sel: &[u32]) -> ColumnBuffer {
    let mut out = ColumnBuffer::with_capacity(c.logical_type(), sel.len());
    for &s in sel {
        if s == u32::MAX {
            out.push(&Value::Null).expect("null appends");
        } else {
            out.push(&c.get(s as usize)).expect("same type");
        }
    }
    out
}

fn aggregate_column(
    col: Option<&ColumnBuffer>,
    op: AggOp,
    gids: &[u32],
    n: usize,
) -> Result<ColumnBuffer> {
    match op {
        AggOp::CountStar => {
            let mut counts = vec![0i64; n];
            for &g in gids {
                counts[g as usize] += 1;
            }
            Ok(ColumnBuffer::Bigint(counts))
        }
        AggOp::Count => {
            let c = col.expect("count has a column");
            let mut counts = vec![0i64; n];
            for (r, &g) in gids.iter().enumerate() {
                if !c.get(r).is_null() {
                    counts[g as usize] += 1;
                }
            }
            Ok(ColumnBuffer::Bigint(counts))
        }
        AggOp::Sum | AggOp::Mean | AggOp::Median => {
            let c = col.expect("numeric agg has a column");
            let mut bufs: Vec<Vec<f64>> = vec![Vec::new(); n];
            for (r, &g) in gids.iter().enumerate() {
                let v = c.get(r);
                if !v.is_null() {
                    bufs[g as usize].push(v.as_f64()?);
                }
            }
            let out: Vec<f64> = bufs
                .into_iter()
                .map(|mut vals| {
                    if vals.is_empty() {
                        return f64::NAN;
                    }
                    match op {
                        AggOp::Sum => vals.iter().sum(),
                        AggOp::Mean => vals.iter().sum::<f64>() / vals.len() as f64,
                        _ => {
                            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
                            let m = vals.len();
                            if m % 2 == 1 {
                                vals[m / 2]
                            } else {
                                (vals[m / 2 - 1] + vals[m / 2]) / 2.0
                            }
                        }
                    }
                })
                .collect();
            Ok(ColumnBuffer::Double(out))
        }
        AggOp::Min | AggOp::Max | AggOp::First => {
            let c = col.expect("agg has a column");
            let mut best: Vec<Value> = vec![Value::Null; n];
            for (r, &g) in gids.iter().enumerate() {
                let v = c.get(r);
                if v.is_null() {
                    continue;
                }
                let cur = &best[g as usize];
                let replace = match (op, cur) {
                    (AggOp::First, Value::Null) => true,
                    (AggOp::First, _) => false,
                    (_, Value::Null) => true,
                    (AggOp::Min, cur) => v.cmp_sql(cur) == std::cmp::Ordering::Less,
                    (AggOp::Max, cur) => v.cmp_sql(cur) == std::cmp::Ordering::Greater,
                    _ => false,
                };
                if replace {
                    best[g as usize] = v;
                }
            }
            let mut out = ColumnBuffer::with_capacity(c.logical_type(), n);
            for v in best {
                out.push(&v)?;
            }
            Ok(out)
        }
    }
}

/// Loader convenience.
pub fn empty_col(ty: LogicalType, cap: usize) -> ColumnBuffer {
    ColumnBuffer::with_capacity(ty, cap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo(session: &Session) -> DataFrame {
        session
            .frame(
                vec!["k", "v", "s"],
                vec![
                    ColumnBuffer::Int(vec![1, 2, 1, 3]),
                    ColumnBuffer::Double(vec![10.0, 20.0, 30.0, 40.0]),
                    ColumnBuffer::Varchar(vec![
                        Some("a".into()),
                        Some("b".into()),
                        None,
                        Some("a".into()),
                    ]),
                ],
            )
            .unwrap()
    }

    #[test]
    fn filter_select_head() {
        let s = Session::unlimited();
        let f = demo(&s);
        let mask: Vec<bool> = vec![true, false, true, false];
        let g = f.filter(&mask).unwrap();
        assert_eq!(g.rows(), 2);
        assert_eq!(g.get(1, "v").unwrap(), Value::Double(30.0));
        let h = g.select(&["v"]).unwrap().head(1).unwrap();
        assert_eq!(h.rows(), 1);
        assert_eq!(h.names(), &["v".to_string()]);
    }

    #[test]
    fn group_by_aggs() {
        let s = Session::unlimited();
        let f = demo(&s);
        let g = f
            .group_by(
                &["k"],
                &[
                    ("v", AggOp::Sum, "total"),
                    ("v", AggOp::Mean, "avg"),
                    ("s", AggOp::Count, "ns"),
                    ("v", AggOp::CountStar, "n"),
                ],
            )
            .unwrap()
            .sort_by(&[("k", false)])
            .unwrap();
        assert_eq!(g.rows(), 3);
        assert_eq!(g.get(0, "total").unwrap(), Value::Double(40.0));
        assert_eq!(g.get(0, "ns").unwrap(), Value::Bigint(1), "NULL not counted");
        assert_eq!(g.get(0, "n").unwrap(), Value::Bigint(2));
    }

    #[test]
    fn joins_all_kinds() {
        let s = Session::unlimited();
        let left = demo(&s);
        let right = s
            .frame(
                vec!["k", "name"],
                vec![
                    ColumnBuffer::Int(vec![1, 2]),
                    ColumnBuffer::Varchar(vec![Some("one".into()), Some("two".into())]),
                ],
            )
            .unwrap();
        let inner = left.join(&right, &["k"], &["k"], JoinHow::Inner).unwrap();
        assert_eq!(inner.rows(), 3);
        assert!(inner.names().contains(&"name".to_string()));
        let l = left.join(&right, &["k"], &["k"], JoinHow::Left).unwrap();
        assert_eq!(l.rows(), 4);
        assert_eq!(l.get(3, "name").unwrap(), Value::Null);
        let semi = left.join(&right, &["k"], &["k"], JoinHow::Semi).unwrap();
        assert_eq!(semi.rows(), 3);
        let anti = left.join(&right, &["k"], &["k"], JoinHow::Anti).unwrap();
        assert_eq!(anti.rows(), 1);
        assert_eq!(anti.get(0, "k").unwrap(), Value::Int(3));
    }

    #[test]
    fn sort_and_distinct() {
        let s = Session::unlimited();
        let f = demo(&s);
        let sorted = f.sort_by(&[("v", true)]).unwrap();
        assert_eq!(sorted.get(0, "v").unwrap(), Value::Double(40.0));
        let d = f.distinct(&["k"]).unwrap();
        assert_eq!(d.rows(), 3);
    }

    #[test]
    fn out_of_memory_on_budget() {
        // Budget fits the base frame but not a self-join blowup.
        let s = Session::with_budget(64 * 1024);
        let n = 1500usize;
        let f = s
            .frame(vec!["k"], vec![ColumnBuffer::Int((0..n as i32).map(|i| i % 3).collect())])
            .unwrap();
        // 1500 rows joined on k%3 → 750k output rows → way over budget.
        let e = f.join(&f, &["k"], &["k"], JoinHow::Inner);
        match e {
            Err(MlError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {:?}", other.map(|f| f.rows())),
        }
        assert!(s.mem_peak() <= s.budget(), "peak never exceeds budget");
    }

    #[test]
    fn memory_released_on_drop() {
        let s = Session::with_budget(1 << 20);
        let before = s.mem_used();
        {
            let _f = demo(&s);
            assert!(s.mem_used() > before);
        }
        assert_eq!(s.mem_used(), before);
    }

    #[test]
    fn with_column_replaces() {
        let s = Session::unlimited();
        let f = demo(&s);
        let g = f.with_column("v", ColumnBuffer::Double(vec![1.0, 2.0, 3.0, 4.0])).unwrap();
        assert_eq!(g.get(0, "v").unwrap(), Value::Double(1.0));
        assert_eq!(g.names().len(), 3);
        let h = g.with_column("extra", ColumnBuffer::Int(vec![9, 9, 9, 9])).unwrap();
        assert_eq!(h.names().len(), 4);
    }
}
