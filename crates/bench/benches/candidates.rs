//! Candidate-list execution microbenchmarks: selective filter → aggregate
//! with selection pass-through + zonemap skipping versus the
//! gather-at-the-filter baseline (`use_candidates`/`use_zonemaps` off).
//!
//! Two data layouts at selectivities 0.1% / 1% / 10% / 90%:
//!
//! * `candidates_clustered` — the filter key is ingest-ordered (a
//!   date-clustered fact table). Zonemaps prove most vectors empty before
//!   any kernel runs, and the surviving vectors ride their candidate
//!   lists into the aggregate. This is the headline number the
//!   acceptance criterion measures.
//! * `candidates_scattered` — the key is scattered, so zonemaps cannot
//!   skip anything; the delta isolates pure selection pass-through (no
//!   per-vector gather of the payload columns).
//!
//! Imprints and order indexes are disabled for both sides so the
//! comparison isolates the new machinery. The 90% case exercises the
//! density cutoff: candidate execution must stay within noise of the
//! baseline when the filter keeps almost everything.
//!
//! Run with `MONETLITE_BENCH_JSON=BENCH_candidates.json cargo bench
//! --bench candidates` to record results; CI runs `cargo bench --bench
//! candidates -- --test` as a smoke check.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::ExecOptions;
use monetlite_types::ColumnBuffer;

const N: i32 = 1_000_000;

fn opts(candidates: bool) -> ExecOptions {
    ExecOptions {
        threads: 1,
        vector_size: 64 * 1024,
        use_imprints: false,
        use_order_index: false,
        use_candidates: candidates,
        use_zonemaps: candidates,
        ..monetlite_bench::uncached_opts()
    }
}

fn label(candidates: bool) -> &'static str {
    if candidates {
        "candidates"
    } else {
        "baseline"
    }
}

/// facts(k, v, w): `k` drives the filter (clustered or scattered), `v`
/// and `w` are payload columns the aggregate touches.
fn load(clustered: bool) -> monetlite::Database {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE facts (k INTEGER NOT NULL, v INTEGER NOT NULL, w INTEGER NOT NULL)")
        .unwrap();
    let k: Vec<i32> = if clustered {
        (0..N).collect()
    } else {
        // Multiplicative scatter: every zone spans nearly the full domain.
        (0..N).map(|i| (i.wrapping_mul(0x9E37_79B9u32 as i32)).rem_euclid(N)).collect()
    };
    conn.append(
        "facts",
        vec![
            ColumnBuffer::Int(k),
            ColumnBuffer::Int((0..N).map(|i| i % 10_000).collect()),
            ColumnBuffer::Int((0..N).map(|i| i % 97).collect()),
        ],
    )
    .unwrap();
    db
}

fn bench_layout(c: &mut Criterion, group: &str, clustered: bool) {
    let db = load(clustered);
    let mut conn = db.connect();
    let mut grp = c.benchmark_group(group);
    grp.sample_size(10);
    // Selectivity → filter bound over k ∈ [0, N).
    for (sel_label, bound) in
        [("0.1pct", N / 1000), ("1pct", N / 100), ("10pct", N / 10), ("90pct", N / 10 * 9)]
    {
        let sql = format!("SELECT sum(v), sum(w), count(*) FROM facts WHERE k < {bound}");
        for candidates in [false, true] {
            conn.set_exec_options(opts(candidates));
            grp.bench_function(format!("filter_agg_{sel_label}_{}", label(candidates)), |b| {
                b.iter(|| conn.query(&sql).unwrap())
            });
        }
    }
    grp.finish();
}

fn bench_clustered(c: &mut Criterion) {
    bench_layout(c, "candidates_clustered", true);
}

fn bench_scattered(c: &mut Criterion) {
    bench_layout(c, "candidates_scattered", false);
}

criterion_group!(benches, bench_clustered, bench_scattered);
criterion_main!(benches);
