//! Criterion bench for Figure 6 (data export): zero-copy in-process vs
//! row-major conversion vs socket transfer.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::host::{HostFrame, TransferMode};
use monetlite_bench::lineitem_buffers;
use monetlite_netsim::{RemoteClient, Server, ServerEngine};
use monetlite_rowstore::RowDb;
use monetlite_types::{ColumnBuffer, Value};

fn bench_export(c: &mut Criterion) {
    let data = monetlite_tpch::generate(0.002, 1);
    let (schema, cols) = lineitem_buffers(&data);
    let coldefs: Vec<String> =
        schema.fields().iter().map(|f| format!("{} {}", f.name, f.ty)).collect();
    let ddl = format!("CREATE TABLE lineitem ({})", coldefs.join(", "));

    let mut g = c.benchmark_group("fig6_export");
    g.sample_size(10);

    let db = monetlite::Database::open_in_memory();
    // Caches off: each iteration re-issues the same SELECT.
    let mut conn = monetlite_bench::uncached_conn(&db);
    conn.execute(&ddl).unwrap();
    conn.append("lineitem", cols.clone()).unwrap();
    g.bench_function("monetlite_zero_copy", |b| {
        b.iter(|| {
            let r = conn.query("SELECT * FROM lineitem").unwrap();
            let f = HostFrame::import(&r, TransferMode::ZeroCopy);
            std::hint::black_box(f.rows);
        })
    });

    let rdb = RowDb::in_memory();
    rdb.execute(&ddl).unwrap();
    let rows: Vec<Vec<Value>> =
        (0..cols[0].len()).map(|r| cols.iter().map(|c| c.get(r)).collect()).collect();
    rdb.insert_rows("lineitem", rows).unwrap();
    g.bench_function("rowstore_row_to_column", |b| {
        b.iter(|| {
            let r = rdb.read_table("lineitem").unwrap();
            let mut bufs: Vec<ColumnBuffer> =
                r.types.iter().map(|&t| ColumnBuffer::with_capacity(t, r.rows.len())).collect();
            for row in &r.rows {
                for (bf, v) in bufs.iter_mut().zip(row) {
                    bf.push(v).unwrap();
                }
            }
            std::hint::black_box(bufs.len());
        })
    });

    let db2 = monetlite_bench::uncached_db();
    let mut conn2 = db2.connect();
    conn2.execute(&ddl).unwrap();
    conn2.append("lineitem", cols.clone()).unwrap();
    drop(conn2);
    let server = Server::start(ServerEngine::Monet(db2)).unwrap();
    let mut client = RemoteClient::connect(server.port()).unwrap();
    g.bench_function("socket_text_protocol", |b| {
        b.iter(|| {
            let (_, bufs) = client.read_table("lineitem").unwrap();
            std::hint::black_box(bufs.len());
        })
    });
    g.finish();
}

criterion_group!(benches, bench_export);
criterion_main!(benches);
