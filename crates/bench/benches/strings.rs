//! String-execution benchmarks: dictionary-encoded VARCHAR execution
//! (predicates compiled to code ranges/bitmaps, zone skipping on codes,
//! group-by over codes, join bloom pushdown) versus the plain
//! string-kernel baseline (`MONETLITE_DICT=0`).
//!
//! Microbenchmark axes, each dict vs nodict:
//!
//! * `strings_clustered` — 1M rows, 24 categories ingested in category
//!   order (the clustered fact-table shape). Equality / LIKE-prefix /
//!   range predicates compile to code ranges and skip whole morsels by
//!   code zone bounds; group-by runs over dense `u32` codes.
//! * `strings_highndv` — 1M rows, ~262k distinct keys, scattered. No
//!   zones can be skipped and bitmap-shaped plans fall back to the
//!   string kernel, so this bounds the overhead of the dict path where
//!   it cannot win.
//! * `strings_join` — a selectively filtered dimension joined to the
//!   fact on its string key: the build side's bloom filter prunes fact
//!   rows at the scan, before they enter the pipeline (hash index off so
//!   the hash-join path under measurement is the one that runs).
//!
//! Plus the string-heavy TPC-H queries the issue names — Q2 (MIN
//! subquery + multi-way dimension join), Q9 (LIKE over part + 6-way
//! join), Q16 (NOT LIKE, COUNT DISTINCT group-by over brand/type/size)
//! — at SF 0.02, both legs.
//!
//! Run with `MONETLITE_BENCH_JSON=BENCH_strings.json cargo bench
//! --bench strings` to record results; CI runs `cargo bench --bench
//! strings -- --test` as a smoke check.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::ExecOptions;
use monetlite_tpch::{generate, load_monet, queries};
use monetlite_types::ColumnBuffer;

const N: i32 = 1_000_000;

fn opts(dict: bool) -> ExecOptions {
    ExecOptions {
        threads: 1,
        vector_size: 64 * 1024,
        use_hash_index: false,
        use_dict: dict,
        ..monetlite_bench::uncached_opts()
    }
}

fn label(dict: bool) -> &'static str {
    if dict {
        "dict"
    } else {
        "nodict"
    }
}

/// facts(name, v): `name` is the string filter/group key, `v` a payload
/// the aggregates touch. Clustered = long runs of each category (24
/// categories); high-NDV = ~262k distinct keys, scattered.
fn load(clustered: bool) -> monetlite::Database {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE facts (name VARCHAR(32) NOT NULL, v INTEGER NOT NULL)").unwrap();
    let name: Vec<Option<String>> = if clustered {
        (0..N).map(|i| Some(format!("category-{:02}-label", (i * 24) / N))).collect()
    } else {
        (0..N)
            .map(|i| {
                let h = (i.wrapping_mul(0x9E37_79B9u32 as i32)).rem_euclid(1 << 18);
                Some(format!("key-{h:06x}"))
            })
            .collect()
    };
    conn.append(
        "facts",
        vec![ColumnBuffer::Varchar(name), ColumnBuffer::Int((0..N).map(|i| i % 97).collect())],
    )
    .unwrap();
    db
}

fn bench_layout(c: &mut Criterion, group: &str, clustered: bool) {
    let db = load(clustered);
    let mut conn = db.connect();
    let mut grp = c.benchmark_group(group);
    grp.sample_size(10);
    let filters: &[(&str, String)] = &[
        (
            "filter_eq",
            format!(
                "SELECT count(*), sum(v) FROM facts WHERE name = '{}'",
                if clustered { "category-07-label" } else { "key-00beef" }
            ),
        ),
        (
            "filter_like_prefix",
            format!(
                "SELECT count(*), sum(v) FROM facts WHERE name LIKE '{}%'",
                if clustered { "category-1" } else { "key-00b" }
            ),
        ),
        (
            "filter_range",
            format!(
                "SELECT count(*), sum(v) FROM facts WHERE name >= '{0}' AND name < '{1}'",
                if clustered { "category-05" } else { "key-040" },
                if clustered { "category-08" } else { "key-042" }
            ),
        ),
        (
            "group_by",
            "SELECT name, count(*), sum(v) FROM facts GROUP BY name ORDER BY 2 DESC LIMIT 5"
                .to_string(),
        ),
    ];
    for (name, sql) in filters {
        for dict in [false, true] {
            conn.set_exec_options(opts(dict));
            grp.bench_function(format!("{name}_{}", label(dict)), |b| {
                b.iter(|| conn.query(sql).unwrap())
            });
        }
    }
    grp.finish();
}

fn bench_clustered(c: &mut Criterion) {
    bench_layout(c, "strings_clustered", true);
}

fn bench_highndv(c: &mut Criterion) {
    bench_layout(c, "strings_highndv", false);
}

/// A 64-row filtered dimension joined to the 1M-row fact on the string
/// key: the bloom filter built from the dimension prunes ~97% of fact
/// rows at the scan.
fn bench_join(c: &mut Criterion) {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE fact (name VARCHAR(32) NOT NULL, v INTEGER NOT NULL)").unwrap();
    conn.execute("CREATE TABLE dim (name VARCHAR(32) NOT NULL, grp INTEGER NOT NULL)").unwrap();
    let ndim: i32 = 2048;
    conn.append(
        "fact",
        vec![
            ColumnBuffer::Varchar(
                (0..N)
                    .map(|i| {
                        let k = (i.wrapping_mul(0x9E37_79B9u32 as i32)).rem_euclid(ndim);
                        Some(format!("sku-{k:05}"))
                    })
                    .collect(),
            ),
            ColumnBuffer::Int((0..N).map(|i| i % 97).collect()),
        ],
    )
    .unwrap();
    conn.append(
        "dim",
        vec![
            ColumnBuffer::Varchar((0..ndim).map(|k| Some(format!("sku-{k:05}"))).collect()),
            ColumnBuffer::Int((0..ndim).collect()),
        ],
    )
    .unwrap();
    let sql = "SELECT count(*), sum(f.v) FROM fact f, dim d \
               WHERE f.name = d.name AND d.grp < 64";
    let mut grp = c.benchmark_group("strings_join");
    grp.sample_size(10);
    for dict in [false, true] {
        conn.set_exec_options(opts(dict));
        grp.bench_function(format!("bloom_probe_{}", label(dict)), |b| {
            b.iter(|| conn.query(sql).unwrap())
        });
    }
    grp.finish();
}

/// The string-heavy TPC-H queries at SF 0.02, dict on vs off.
fn bench_tpch(c: &mut Criterion) {
    let data = generate(0.02, 20260727);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    let mut grp = c.benchmark_group("strings_tpch");
    grp.sample_size(10);
    for n in [2usize, 9, 16] {
        let sql = queries::sql(n);
        for dict in [false, true] {
            conn.set_exec_options(opts(dict));
            grp.bench_function(format!("q{n:02}_{}", label(dict)), |b| {
                b.iter(|| conn.query(sql).unwrap())
            });
        }
    }
    grp.finish();
}

criterion_group!(benches, bench_clustered, bench_highndv, bench_join, bench_tpch);
criterion_main!(benches);
