//! Column-at-a-time execution kernels.
//!
//! Every kernel processes a full column before returning (paper §3.1:
//! "MAL instructions process the data in a column-at-a-time model. Each
//! MAL operator processes the full column before moving on to the next
//! operator."). Predicates produce BOOLEAN columns which
//! [`bool_to_sel`] turns into candidate lists (`Vec<u32>` row ids), the
//! monetlite equivalent of MonetDB candidate lists.
//!
//! Every dense kernel has a candidate-list twin reachable through
//! [`eval_sel`]: instead of processing the full vector it evaluates only
//! the selected positions, producing a *compacted* result aligned with
//! the selection. The hot predicate shapes (column-vs-constant and
//! column-vs-column comparisons, `IS NULL`, `LIKE` over a bare column)
//! index the base arrays directly; everything else gathers its column
//! operands once (`Bat::take`) and reuses the dense kernel over the
//! compacted operands — either way, work is proportional to the
//! selection, not the vector.

use crate::expr::{ArithOp, BExpr, CmpOp, ScalarFunc};
use monetlite_storage::heap::NULL_OFFSET;
use monetlite_storage::Bat;
use monetlite_types::nulls::{NULL_I32, NULL_I64, NULL_I8};
use monetlite_types::{Date, LogicalType, MlError, Result, Value};
use std::sync::Arc;

/// Evaluate a bound expression over `cols` (each `rows` long), producing a
/// materialised result column.
pub fn eval(e: &BExpr, cols: &[Arc<Bat>], rows: usize) -> Result<Bat> {
    match e {
        BExpr::ColRef { idx, .. } => Ok((*cols[*idx]).clone()),
        BExpr::Lit(v) => materialize_const(v, e.ty(), rows),
        // The plan cache substitutes fresh literals before execution; a
        // Param reaching a kernel is a caching-layer bug, not a query error.
        BExpr::Param { idx, .. } => {
            Err(MlError::Execution(format!("unsubstituted plan-cache parameter ?{idx}")))
        }
        BExpr::Cast { input, ty } => {
            let b = eval(input, cols, rows)?;
            cast(&b, *ty)
        }
        BExpr::Arith { op, left, right, ty } => {
            let l = eval(left, cols, rows)?;
            let r = eval(right, cols, rows)?;
            arith(*op, &l, &r, *ty)
        }
        BExpr::Cmp { op, left, right } => {
            // Fast path: column versus constant avoids materialising the
            // constant side.
            if let BExpr::Lit(v) = right.as_ref() {
                let l = eval(left, cols, rows)?;
                return cmp_const(*op, &l, v);
            }
            if let BExpr::Lit(v) = left.as_ref() {
                let r = eval(right, cols, rows)?;
                return cmp_const(op.flip(), &r, v);
            }
            let l = eval(left, cols, rows)?;
            let r = eval(right, cols, rows)?;
            cmp(*op, &l, &r)
        }
        BExpr::And(a, b) => {
            let l = eval(a, cols, rows)?;
            let r = eval(b, cols, rows)?;
            bool_and(&l, &r)
        }
        BExpr::Or(a, b) => {
            let l = eval(a, cols, rows)?;
            let r = eval(b, cols, rows)?;
            bool_or(&l, &r)
        }
        BExpr::Not(a) => {
            let l = eval(a, cols, rows)?;
            bool_not(&l)
        }
        BExpr::IsNull { input, negated } => {
            let b = eval(input, cols, rows)?;
            let mut out = Vec::with_capacity(b.len());
            for i in 0..b.len() {
                let isnull = b.is_null_at(i);
                out.push((isnull != *negated) as i8);
            }
            Ok(Bat::Bool(out))
        }
        BExpr::Like { input, pattern, negated } => {
            let b = eval(input, cols, rows)?;
            like_kernel(&b, pattern, *negated)
        }
        BExpr::Case { branches, else_expr, ty } => {
            case_kernel(branches, else_expr.as_deref(), *ty, rows, &|e| eval(e, cols, rows))
        }
        BExpr::Func { func, args, ty } => {
            let bats: Vec<Bat> = args.iter().map(|a| eval(a, cols, rows)).collect::<Result<_>>()?;
            func_kernel(*func, &bats, *ty)
        }
        BExpr::Neg { input, .. } => {
            let b = eval(input, cols, rows)?;
            neg(&b)
        }
    }
}

/// Like [`eval`], but returns a shared column: a bare column reference is
/// an `Arc` clone of the input (the §3.3 "shared pointer" discipline),
/// never a data copy. Computed expressions allocate as usual. The
/// streaming pipeline's per-vector projections lean on this — a
/// pass-through projection costs O(1) per vector instead of O(vector).
pub fn eval_shared(e: &BExpr, cols: &[Arc<Bat>], rows: usize) -> Result<Arc<Bat>> {
    match e {
        BExpr::ColRef { idx, .. } => Ok(cols[*idx].clone()),
        other => Ok(Arc::new(eval(other, cols, rows)?)),
    }
}

/// Candidate-list evaluation: compute `e` at only the `sel` positions of
/// `cols`, returning a compacted column of `sel.len()` rows (result row
/// `i` is `e` evaluated at physical row `sel[i]`). Agrees with dense
/// evaluation over gathered inputs byte for byte; the predicate shapes
/// are evaluated in place on the base arrays (no gather at all).
pub fn eval_sel(e: &BExpr, cols: &[Arc<Bat>], sel: &[u32]) -> Result<Bat> {
    match e {
        BExpr::ColRef { idx, .. } => Ok(cols[*idx].take(sel)),
        BExpr::Lit(v) => materialize_const(v, e.ty(), sel.len()),
        BExpr::Param { idx, .. } => {
            Err(MlError::Execution(format!("unsubstituted plan-cache parameter ?{idx}")))
        }
        BExpr::Cast { input, ty } => {
            let b = eval_sel(input, cols, sel)?;
            cast(&b, *ty)
        }
        BExpr::Arith { op, left, right, ty } => {
            let l = eval_sel(left, cols, sel)?;
            let r = eval_sel(right, cols, sel)?;
            arith(*op, &l, &r, *ty)
        }
        BExpr::Cmp { op, left, right } => {
            // Constant comparisons over a bare column read the base array
            // in place — the canonical candidate-list kernel.
            if let BExpr::Lit(v) = right.as_ref() {
                if let BExpr::ColRef { idx, .. } = left.as_ref() {
                    return cmp_const_sel(*op, &cols[*idx], v, sel);
                }
                let l = eval_sel(left, cols, sel)?;
                return cmp_const(*op, &l, v);
            }
            if let BExpr::Lit(v) = left.as_ref() {
                if let BExpr::ColRef { idx, .. } = right.as_ref() {
                    return cmp_const_sel(op.flip(), &cols[*idx], v, sel);
                }
                let r = eval_sel(right, cols, sel)?;
                return cmp_const(op.flip(), &r, v);
            }
            if let (BExpr::ColRef { idx: li, .. }, BExpr::ColRef { idx: ri, .. }) =
                (left.as_ref(), right.as_ref())
            {
                return cmp_sel(*op, &cols[*li], &cols[*ri], sel);
            }
            let l = eval_sel(left, cols, sel)?;
            let r = eval_sel(right, cols, sel)?;
            cmp(*op, &l, &r)
        }
        BExpr::And(a, b) => {
            let l = eval_sel(a, cols, sel)?;
            let r = eval_sel(b, cols, sel)?;
            bool_and(&l, &r)
        }
        BExpr::Or(a, b) => {
            let l = eval_sel(a, cols, sel)?;
            let r = eval_sel(b, cols, sel)?;
            bool_or(&l, &r)
        }
        BExpr::Not(a) => {
            let l = eval_sel(a, cols, sel)?;
            bool_not(&l)
        }
        BExpr::IsNull { input, negated } => {
            if let BExpr::ColRef { idx, .. } = input.as_ref() {
                let b = &cols[*idx];
                let out = sel.iter().map(|&i| (b.is_null_at(i as usize) != *negated) as i8);
                return Ok(Bat::Bool(out.collect()));
            }
            let b = eval_sel(input, cols, sel)?;
            let mut out = Vec::with_capacity(b.len());
            for i in 0..b.len() {
                out.push((b.is_null_at(i) != *negated) as i8);
            }
            Ok(Bat::Bool(out))
        }
        BExpr::Like { input, pattern, negated } => {
            if let BExpr::ColRef { idx, .. } = input.as_ref() {
                return like_kernel_sel(&cols[*idx], pattern, *negated, sel);
            }
            let b = eval_sel(input, cols, sel)?;
            like_kernel(&b, pattern, *negated)
        }
        BExpr::Case { branches, else_expr, ty } => {
            case_kernel(branches, else_expr.as_deref(), *ty, sel.len(), &|e| eval_sel(e, cols, sel))
        }
        BExpr::Func { func, args, ty } => {
            let bats: Vec<Bat> =
                args.iter().map(|a| eval_sel(a, cols, sel)).collect::<Result<_>>()?;
            func_kernel(*func, &bats, *ty)
        }
        BExpr::Neg { input, .. } => {
            let b = eval_sel(input, cols, sel)?;
            neg(&b)
        }
    }
}

/// Materialise a constant column (used when no fast path applies).
pub fn materialize_const(v: &Value, ty: LogicalType, rows: usize) -> Result<Bat> {
    let mut b = Bat::with_capacity(ty, rows);
    for _ in 0..rows {
        b.push(v)?;
    }
    Ok(b)
}

/// Convert a BOOLEAN column into a candidate list of matching row ids
/// (`NULL` counts as not matching, per SQL semantics).
///
/// Candidate lists are `u32` row positions throughout the engine (half
/// the memory traffic of `u64`, matching MonetDB's `oid` discipline on
/// 32-bit candidate columns). The executor enforces the resulting
/// 2³²-row ceiling with a checked error at scan setup
/// (`crate::exec`): a table larger than 4Gi physical rows refuses to
/// scan rather than silently truncating positions.
pub fn bool_to_sel(b: &Bat) -> Result<Vec<u32>> {
    match b {
        Bat::Bool(v) => {
            Ok(v.iter().enumerate().filter(|(_, &x)| x == 1).map(|(i, _)| i as u32).collect())
        }
        other => Err(MlError::Execution(format!(
            "predicate evaluated to {} instead of BOOLEAN",
            other.logical_type()
        ))),
    }
}

// ---------------------------------------------------------------------------
// Casts
// ---------------------------------------------------------------------------

/// Cast a column to a target logical type.
pub fn cast(b: &Bat, ty: LogicalType) -> Result<Bat> {
    use LogicalType as T;
    if b.logical_type() == ty {
        return Ok(b.clone());
    }
    Ok(match (b, ty) {
        (Bat::Int(v), T::Bigint) => Bat::Bigint(
            v.iter().map(|&x| if x == NULL_I32 { NULL_I64 } else { x as i64 }).collect(),
        ),
        (Bat::Int(v), T::Double) => Bat::Double(
            v.iter().map(|&x| if x == NULL_I32 { f64::NAN } else { x as f64 }).collect(),
        ),
        (Bat::Bigint(v), T::Double) => Bat::Double(
            v.iter().map(|&x| if x == NULL_I64 { f64::NAN } else { x as f64 }).collect(),
        ),
        (Bat::Int(v), T::Decimal { scale, .. }) => {
            let f = monetlite_types::decimal::POW10[scale as usize];
            let data = v
                .iter()
                .map(|&x| {
                    if x == NULL_I32 {
                        Ok(NULL_I64)
                    } else {
                        (x as i64)
                            .checked_mul(f)
                            .ok_or_else(|| MlError::Execution("decimal cast overflow".into()))
                    }
                })
                .collect::<Result<Vec<i64>>>()?;
            Bat::Decimal { data, scale }
        }
        (Bat::Bigint(v), T::Decimal { scale, .. }) => {
            let f = monetlite_types::decimal::POW10[scale as usize];
            let data = v
                .iter()
                .map(|&x| {
                    if x == NULL_I64 {
                        Ok(NULL_I64)
                    } else {
                        x.checked_mul(f)
                            .ok_or_else(|| MlError::Execution("decimal cast overflow".into()))
                    }
                })
                .collect::<Result<Vec<i64>>>()?;
            Bat::Decimal { data, scale }
        }
        (Bat::Decimal { data, scale }, T::Double) => {
            let f = monetlite_types::decimal::POW10[*scale as usize] as f64;
            Bat::Double(
                data.iter().map(|&x| if x == NULL_I64 { f64::NAN } else { x as f64 / f }).collect(),
            )
        }
        (Bat::Decimal { data, scale }, T::Decimal { scale: s2, .. }) => {
            let (s1, s2v) = (*scale, s2);
            if s2v >= s1 {
                let f = monetlite_types::decimal::POW10[(s2v - s1) as usize];
                let data = data
                    .iter()
                    .map(|&x| {
                        if x == NULL_I64 {
                            Ok(NULL_I64)
                        } else {
                            x.checked_mul(f).ok_or_else(|| {
                                MlError::Execution("decimal rescale overflow".into())
                            })
                        }
                    })
                    .collect::<Result<Vec<i64>>>()?;
                Bat::Decimal { data, scale: s2v }
            } else {
                let f = monetlite_types::decimal::POW10[(s1 - s2v) as usize];
                Bat::Decimal {
                    data: data
                        .iter()
                        .map(|&x| if x == NULL_I64 { NULL_I64 } else { x / f })
                        .collect(),
                    scale: s2v,
                }
            }
        }
        (Bat::Double(v), T::Int) => {
            Bat::Int(v.iter().map(|&x| if x.is_nan() { NULL_I32 } else { x as i32 }).collect())
        }
        (Bat::Double(v), T::Bigint) => {
            Bat::Bigint(v.iter().map(|&x| if x.is_nan() { NULL_I64 } else { x as i64 }).collect())
        }
        (Bat::Bigint(v), T::Int) => {
            Bat::Int(v.iter().map(|&x| if x == NULL_I64 { NULL_I32 } else { x as i32 }).collect())
        }
        (Bat::Varchar { .. }, T::Date) => {
            let mut out = Vec::with_capacity(b.len());
            for i in 0..b.len() {
                match b.str_at(i) {
                    None => out.push(NULL_I32),
                    Some(s) => out.push(Date::parse(s)?.0),
                }
            }
            Bat::Date(out)
        }
        (from, to) => {
            return Err(MlError::TypeMismatch(format!(
                "unsupported cast {} -> {}",
                from.logical_type(),
                to
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// Comparisons
// ---------------------------------------------------------------------------

macro_rules! cmp_loop {
    ($l:expr, $r:expr, $op:expr, $null:expr) => {{
        let mut out = Vec::with_capacity($l.len());
        for (a, b) in $l.iter().zip($r.iter()) {
            if $null(*a) || $null(*b) {
                out.push(NULL_I8);
            } else {
                // xlint: allow(panic, NaN operands are screened by the NULL check above)
                out.push(apply_cmp($op, a.partial_cmp(b).unwrap()) as i8);
            }
        }
        Bat::Bool(out)
    }};
}

macro_rules! cmp_const_loop {
    ($l:expr, $k:expr, $op:expr, $null:expr) => {{
        let k = $k;
        let mut out = Vec::with_capacity($l.len());
        for a in $l.iter() {
            if $null(*a) {
                out.push(NULL_I8);
            } else {
                // xlint: allow(panic, NaN operands are screened by the NULL check above)
                out.push(apply_cmp($op, a.partial_cmp(&k).unwrap()) as i8);
            }
        }
        Bat::Bool(out)
    }};
}

macro_rules! cmp_const_sel_loop {
    ($l:expr, $k:expr, $op:expr, $null:expr, $sel:expr) => {{
        let k = $k;
        let mut out = Vec::with_capacity($sel.len());
        for &i in $sel {
            let a = $l[i as usize];
            if $null(a) {
                out.push(NULL_I8);
            } else {
                // xlint: allow(panic, NaN operands are screened by the NULL check above)
                out.push(apply_cmp($op, a.partial_cmp(&k).unwrap()) as i8);
            }
        }
        Bat::Bool(out)
    }};
}

macro_rules! cmp_sel_loop {
    ($l:expr, $r:expr, $op:expr, $null:expr, $sel:expr) => {{
        let mut out = Vec::with_capacity($sel.len());
        for &i in $sel {
            let (a, b) = ($l[i as usize], $r[i as usize]);
            if $null(a) || $null(b) {
                out.push(NULL_I8);
            } else {
                // xlint: allow(panic, NaN operands are screened by the NULL check above)
                out.push(apply_cmp($op, a.partial_cmp(&b).unwrap()) as i8);
            }
        }
        Bat::Bool(out)
    }};
}

#[inline]
fn apply_cmp(op: CmpOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        CmpOp::Eq => ord == Equal,
        CmpOp::NotEq => ord != Equal,
        CmpOp::Lt => ord == Less,
        CmpOp::LtEq => ord != Greater,
        CmpOp::Gt => ord == Greater,
        CmpOp::GtEq => ord != Less,
    }
}

/// Same-type column-column comparison → BOOLEAN column.
pub fn cmp(op: CmpOp, l: &Bat, r: &Bat) -> Result<Bat> {
    if l.len() != r.len() {
        return Err(MlError::Execution("comparison operand length mismatch".into()));
    }
    Ok(match (l, r) {
        (Bat::Int(a), Bat::Int(b)) => cmp_loop!(a, b, op, |x: i32| x == NULL_I32),
        (Bat::Date(a), Bat::Date(b)) => cmp_loop!(a, b, op, |x: i32| x == NULL_I32),
        (Bat::Bigint(a), Bat::Bigint(b)) => cmp_loop!(a, b, op, |x: i64| x == NULL_I64),
        (Bat::Double(a), Bat::Double(b)) => cmp_loop!(a, b, op, |x: f64| x.is_nan()),
        (Bat::Bool(a), Bat::Bool(b)) => cmp_loop!(a, b, op, |x: i8| x == NULL_I8),
        (Bat::Decimal { data: a, scale: s1 }, Bat::Decimal { data: b, scale: s2 }) => {
            if s1 != s2 {
                return Err(MlError::Execution(
                    "decimal comparison requires aligned scales (binder bug)".into(),
                ));
            }
            cmp_loop!(a, b, op, |x: i64| x == NULL_I64)
        }
        (Bat::Varchar { .. }, Bat::Varchar { .. }) => {
            let mut out = Vec::with_capacity(l.len());
            for i in 0..l.len() {
                match (l.str_at(i), r.str_at(i)) {
                    (Some(a), Some(b)) => out.push(apply_cmp(op, a.cmp(b)) as i8),
                    _ => out.push(NULL_I8),
                }
            }
            Bat::Bool(out)
        }
        (a, b) => {
            return Err(MlError::Execution(format!(
                "comparison over mismatched types {} / {} (binder bug)",
                a.logical_type(),
                b.logical_type()
            )))
        }
    })
}

/// Column-constant comparison (fast path; `v` must be NULL or match the
/// column's type family, which the binder guarantees).
pub fn cmp_const(op: CmpOp, l: &Bat, v: &Value) -> Result<Bat> {
    if v.is_null() {
        return Ok(Bat::Bool(vec![NULL_I8; l.len()]));
    }
    Ok(match (l, v) {
        (Bat::Int(a), Value::Int(k)) => cmp_const_loop!(a, *k, op, |x: i32| x == NULL_I32),
        (Bat::Date(a), Value::Date(k)) => cmp_const_loop!(a, k.0, op, |x: i32| x == NULL_I32),
        (Bat::Bigint(a), Value::Bigint(k)) => cmp_const_loop!(a, *k, op, |x: i64| x == NULL_I64),
        (Bat::Double(a), Value::Double(k)) => cmp_const_loop!(a, *k, op, |x: f64| x.is_nan()),
        (Bat::Bool(a), Value::Bool(k)) => {
            cmp_const_loop!(a, *k as i8, op, |x: i8| x == NULL_I8)
        }
        (Bat::Decimal { data, scale }, Value::Decimal(d)) => {
            let k = d.rescale(*scale)?.raw;
            cmp_const_loop!(data, k, op, |x: i64| x == NULL_I64)
        }
        (Bat::Varchar { offsets, heap }, Value::Str(s)) => {
            let mut out = Vec::with_capacity(offsets.len());
            for &o in offsets {
                if o == NULL_OFFSET {
                    out.push(NULL_I8);
                } else {
                    out.push(apply_cmp(op, heap.get(o).cmp(s.as_str())) as i8);
                }
            }
            Bat::Bool(out)
        }
        (a, v) => {
            return Err(MlError::Execution(format!(
                "constant comparison over mismatched types {} vs {v:?} (binder bug)",
                a.logical_type()
            )))
        }
    })
}

/// Candidate-list twin of [`cmp`]: compare two base columns at only the
/// selected positions, producing a compacted BOOLEAN column.
pub fn cmp_sel(op: CmpOp, l: &Bat, r: &Bat, sel: &[u32]) -> Result<Bat> {
    if l.len() != r.len() {
        return Err(MlError::Execution("comparison operand length mismatch".into()));
    }
    Ok(match (l, r) {
        (Bat::Int(a), Bat::Int(b)) => cmp_sel_loop!(a, b, op, |x: i32| x == NULL_I32, sel),
        (Bat::Date(a), Bat::Date(b)) => cmp_sel_loop!(a, b, op, |x: i32| x == NULL_I32, sel),
        (Bat::Bigint(a), Bat::Bigint(b)) => cmp_sel_loop!(a, b, op, |x: i64| x == NULL_I64, sel),
        (Bat::Double(a), Bat::Double(b)) => cmp_sel_loop!(a, b, op, |x: f64| x.is_nan(), sel),
        (Bat::Bool(a), Bat::Bool(b)) => cmp_sel_loop!(a, b, op, |x: i8| x == NULL_I8, sel),
        (Bat::Decimal { data: a, scale: s1 }, Bat::Decimal { data: b, scale: s2 }) => {
            if s1 != s2 {
                return Err(MlError::Execution(
                    "decimal comparison requires aligned scales (binder bug)".into(),
                ));
            }
            cmp_sel_loop!(a, b, op, |x: i64| x == NULL_I64, sel)
        }
        (Bat::Varchar { .. }, Bat::Varchar { .. }) => {
            let mut out = Vec::with_capacity(sel.len());
            for &i in sel {
                match (l.str_at(i as usize), r.str_at(i as usize)) {
                    (Some(a), Some(b)) => out.push(apply_cmp(op, a.cmp(b)) as i8),
                    _ => out.push(NULL_I8),
                }
            }
            Bat::Bool(out)
        }
        (a, b) => {
            return Err(MlError::Execution(format!(
                "comparison over mismatched types {} / {} (binder bug)",
                a.logical_type(),
                b.logical_type()
            )))
        }
    })
}

/// Candidate-list twin of [`cmp_const`]: compare a base column against a
/// constant at only the selected positions (no gather — the base array is
/// read in place).
pub fn cmp_const_sel(op: CmpOp, l: &Bat, v: &Value, sel: &[u32]) -> Result<Bat> {
    if v.is_null() {
        return Ok(Bat::Bool(vec![NULL_I8; sel.len()]));
    }
    Ok(match (l, v) {
        (Bat::Int(a), Value::Int(k)) => cmp_const_sel_loop!(a, *k, op, |x: i32| x == NULL_I32, sel),
        (Bat::Date(a), Value::Date(k)) => {
            cmp_const_sel_loop!(a, k.0, op, |x: i32| x == NULL_I32, sel)
        }
        (Bat::Bigint(a), Value::Bigint(k)) => {
            cmp_const_sel_loop!(a, *k, op, |x: i64| x == NULL_I64, sel)
        }
        (Bat::Double(a), Value::Double(k)) => {
            cmp_const_sel_loop!(a, *k, op, |x: f64| x.is_nan(), sel)
        }
        (Bat::Bool(a), Value::Bool(k)) => {
            cmp_const_sel_loop!(a, *k as i8, op, |x: i8| x == NULL_I8, sel)
        }
        (Bat::Decimal { data, scale }, Value::Decimal(d)) => {
            let k = d.rescale(*scale)?.raw;
            cmp_const_sel_loop!(data, k, op, |x: i64| x == NULL_I64, sel)
        }
        (Bat::Varchar { offsets, heap }, Value::Str(s)) => {
            let mut out = Vec::with_capacity(sel.len());
            for &i in sel {
                let o = offsets[i as usize];
                if o == NULL_OFFSET {
                    out.push(NULL_I8);
                } else {
                    out.push(apply_cmp(op, heap.get(o).cmp(s.as_str())) as i8);
                }
            }
            Bat::Bool(out)
        }
        (a, v) => {
            return Err(MlError::Execution(format!(
                "constant comparison over mismatched types {} vs {v:?} (binder bug)",
                a.logical_type()
            )))
        }
    })
}

// ---------------------------------------------------------------------------
// Arithmetic
// ---------------------------------------------------------------------------

/// Same-type arithmetic. The binder guarantees aligned operand types
/// (decimal multiplication excepted: operand scales sum into `ty`).
pub fn arith(op: ArithOp, l: &Bat, r: &Bat, ty: LogicalType) -> Result<Bat> {
    if l.len() != r.len() {
        return Err(MlError::Execution("arithmetic operand length mismatch".into()));
    }
    let overflow = || MlError::Execution(format!("overflow in {op}"));
    Ok(match (l, r) {
        (Bat::Int(a), Bat::Int(b)) => {
            let mut out = Vec::with_capacity(a.len());
            for (&x, &y) in a.iter().zip(b) {
                if x == NULL_I32 || y == NULL_I32 {
                    out.push(NULL_I32);
                    continue;
                }
                let v = match op {
                    ArithOp::Add => x.checked_add(y),
                    ArithOp::Sub => x.checked_sub(y),
                    ArithOp::Mul => x.checked_mul(y),
                    ArithOp::Mod => {
                        if y == 0 {
                            return Err(MlError::Execution("division by zero".into()));
                        }
                        Some(x % y)
                    }
                    ArithOp::Div => {
                        return Err(MlError::Execution(
                            "integer division must lower to double".into(),
                        ))
                    }
                };
                out.push(v.ok_or_else(overflow)?);
            }
            // DATE - DATE produces Int through the same i32 path.
            Bat::Int(out)
        }
        (Bat::Date(a), Bat::Date(b)) if op == ArithOp::Sub => {
            let mut out = Vec::with_capacity(a.len());
            for (&x, &y) in a.iter().zip(b) {
                if x == NULL_I32 || y == NULL_I32 {
                    out.push(NULL_I32);
                } else {
                    out.push(x - y);
                }
            }
            Bat::Int(out)
        }
        (Bat::Bigint(a), Bat::Bigint(b)) => {
            let mut out = Vec::with_capacity(a.len());
            for (&x, &y) in a.iter().zip(b) {
                if x == NULL_I64 || y == NULL_I64 {
                    out.push(NULL_I64);
                    continue;
                }
                let v = match op {
                    ArithOp::Add => x.checked_add(y),
                    ArithOp::Sub => x.checked_sub(y),
                    ArithOp::Mul => x.checked_mul(y),
                    ArithOp::Mod => {
                        if y == 0 {
                            return Err(MlError::Execution("division by zero".into()));
                        }
                        Some(x % y)
                    }
                    ArithOp::Div => {
                        return Err(MlError::Execution(
                            "integer division must lower to double".into(),
                        ))
                    }
                };
                out.push(v.ok_or_else(overflow)?);
            }
            Bat::Bigint(out)
        }
        (Bat::Double(a), Bat::Double(b)) => {
            let mut out = Vec::with_capacity(a.len());
            for (&x, &y) in a.iter().zip(b) {
                // NaN operands propagate NULL naturally.
                let v = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => {
                        if y == 0.0 {
                            f64::NAN // SQL: division by zero → NULL-ish; kept total
                        } else {
                            x / y
                        }
                    }
                    ArithOp::Mod => x % y,
                };
                out.push(v);
            }
            Bat::Double(out)
        }
        (Bat::Decimal { data: a, .. }, Bat::Decimal { data: b, .. }) => {
            let out_scale = match ty {
                LogicalType::Decimal { scale, .. } => scale,
                other => {
                    return Err(MlError::Execution(format!(
                        "decimal arithmetic with non-decimal result {other}"
                    )))
                }
            };
            let mut out = Vec::with_capacity(a.len());
            for (&x, &y) in a.iter().zip(b) {
                if x == NULL_I64 || y == NULL_I64 {
                    out.push(NULL_I64);
                    continue;
                }
                let v = match op {
                    ArithOp::Add => x.checked_add(y).ok_or_else(overflow)?,
                    ArithOp::Sub => x.checked_sub(y).ok_or_else(overflow)?,
                    ArithOp::Mul => {
                        let wide = x as i128 * y as i128;
                        if wide > i64::MAX as i128 || wide < i64::MIN as i128 {
                            return Err(overflow());
                        }
                        wide as i64
                    }
                    _ => return Err(MlError::Execution(format!("{op} not defined on DECIMAL"))),
                };
                out.push(v);
            }
            Bat::Decimal { data: out, scale: out_scale }
        }
        (a, b) => {
            return Err(MlError::Execution(format!(
                "arithmetic over mismatched types {} / {} (binder bug)",
                a.logical_type(),
                b.logical_type()
            )))
        }
    })
}

/// Arithmetic negation.
pub fn neg(b: &Bat) -> Result<Bat> {
    Ok(match b {
        Bat::Int(v) => Bat::Int(v.iter().map(|&x| if x == NULL_I32 { x } else { -x }).collect()),
        Bat::Bigint(v) => {
            Bat::Bigint(v.iter().map(|&x| if x == NULL_I64 { x } else { -x }).collect())
        }
        Bat::Double(v) => Bat::Double(v.iter().map(|&x| -x).collect()),
        Bat::Decimal { data, scale } => Bat::Decimal {
            data: data.iter().map(|&x| if x == NULL_I64 { x } else { -x }).collect(),
            scale: *scale,
        },
        other => return Err(MlError::Execution(format!("negation over {}", other.logical_type()))),
    })
}

// ---------------------------------------------------------------------------
// Boolean logic (three-valued)
// ---------------------------------------------------------------------------

fn as_bools(b: &Bat) -> Result<&[i8]> {
    match b {
        Bat::Bool(v) => Ok(v),
        other => Err(MlError::Execution(format!("expected BOOLEAN, got {}", other.logical_type()))),
    }
}

/// Three-valued AND: `NULL AND FALSE = FALSE`, `NULL AND TRUE = NULL`.
pub fn bool_and(l: &Bat, r: &Bat) -> Result<Bat> {
    let (a, b) = (as_bools(l)?, as_bools(r)?);
    Ok(Bat::Bool(
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                if x == 0 || y == 0 {
                    0
                } else if x == NULL_I8 || y == NULL_I8 {
                    NULL_I8
                } else {
                    1
                }
            })
            .collect(),
    ))
}

/// Three-valued OR: `NULL OR TRUE = TRUE`, `NULL OR FALSE = NULL`.
pub fn bool_or(l: &Bat, r: &Bat) -> Result<Bat> {
    let (a, b) = (as_bools(l)?, as_bools(r)?);
    Ok(Bat::Bool(
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                if x == 1 || y == 1 {
                    1
                } else if x == NULL_I8 || y == NULL_I8 {
                    NULL_I8
                } else {
                    0
                }
            })
            .collect(),
    ))
}

/// Three-valued NOT.
pub fn bool_not(l: &Bat) -> Result<Bat> {
    let a = as_bools(l)?;
    Ok(Bat::Bool(a.iter().map(|&x| if x == NULL_I8 { NULL_I8 } else { 1 - x }).collect()))
}

// ---------------------------------------------------------------------------
// LIKE (dependency-free, paper §3.4)
// ---------------------------------------------------------------------------

/// SQL LIKE with `%` (any run) and `_` (any single char), implemented with
/// iterative backtracking — no regex library, exactly MonetDBLite's
/// approach of replacing PCRE with its own matcher.
pub fn like_match(s: &str, pattern: &str) -> bool {
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut si, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_s) = (usize::MAX, 0usize);
    while si < s.len() {
        // `%` must be tested first: a literal '%' in the *data* would
        // otherwise consume the pattern's wildcard.
        if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_s = si;
            pi += 1;
        } else if pi < p.len() && (p[pi] == '_' || p[pi] == s[si]) {
            si += 1;
            pi += 1;
        } else if star_p != usize::MAX {
            // Backtrack: extend the last % by one character.
            pi = star_p + 1;
            star_s += 1;
            si = star_s;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// A LIKE pattern compiled once per kernel call. The Q13-style shapes
/// (`'foo%'` / `'%foo'` / `'%foo%'` / no wildcards at all) dispatch to
/// `starts_with`/`ends_with`/substring search instead of running the
/// backtracking state machine per row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LikePlan {
    /// No wildcards: exact string equality.
    Exact(String),
    /// `'foo%'`: prefix match.
    Prefix(String),
    /// `'%foo'`: suffix match.
    Suffix(String),
    /// `'%foo%'`: substring search.
    Contains(String),
    /// Anything else (embedded `%` runs or `_`): the general matcher.
    Generic,
}

/// Classify a LIKE pattern into its fast-path shape.
pub fn compile_like(pattern: &str) -> LikePlan {
    if pattern.contains('_') {
        return LikePlan::Generic;
    }
    // Runs of consecutive '%' collapse, so trimming every leading and
    // trailing '%' is semantics-preserving.
    let inner = pattern.trim_matches('%');
    if inner.contains('%') {
        return LikePlan::Generic;
    }
    let starts = pattern.starts_with('%');
    let ends = pattern.ends_with('%');
    match (starts, ends) {
        (false, false) => LikePlan::Exact(inner.to_string()),
        (false, true) => LikePlan::Prefix(inner.to_string()),
        (true, false) => LikePlan::Suffix(inner.to_string()),
        (true, true) => LikePlan::Contains(inner.to_string()),
    }
}

/// Match one string against a compiled plan (`pattern` is consulted only
/// by the `Generic` arm). Shared with the dictionary-domain LIKE path in
/// `exec`, which evaluates the plan once per distinct dictionary entry.
#[inline]
pub(crate) fn like_plan_match(plan: &LikePlan, pattern: &str, s: &str) -> bool {
    match plan {
        LikePlan::Exact(p) => s == p,
        LikePlan::Prefix(p) => s.starts_with(p.as_str()),
        LikePlan::Suffix(p) => s.ends_with(p.as_str()),
        LikePlan::Contains(p) => s.contains(p.as_str()),
        LikePlan::Generic => like_match(s, pattern),
    }
}

fn like_kernel(b: &Bat, pattern: &str, negated: bool) -> Result<Bat> {
    let plan = compile_like(pattern);
    match b {
        Bat::Varchar { offsets, heap } => {
            let mut out = Vec::with_capacity(offsets.len());
            for &o in offsets {
                if o == NULL_OFFSET {
                    out.push(NULL_I8);
                } else {
                    out.push((like_plan_match(&plan, pattern, heap.get(o)) != negated) as i8);
                }
            }
            Ok(Bat::Bool(out))
        }
        other => Err(MlError::Execution(format!("LIKE over {}", other.logical_type()))),
    }
}

/// Candidate-list twin of [`like_kernel`]: match only the selected rows
/// of a base column, reading offsets in place.
fn like_kernel_sel(b: &Bat, pattern: &str, negated: bool, sel: &[u32]) -> Result<Bat> {
    let plan = compile_like(pattern);
    match b {
        Bat::Varchar { offsets, heap } => {
            let mut out = Vec::with_capacity(sel.len());
            for &i in sel {
                let o = offsets[i as usize];
                if o == NULL_OFFSET {
                    out.push(NULL_I8);
                } else {
                    out.push((like_plan_match(&plan, pattern, heap.get(o)) != negated) as i8);
                }
            }
            Ok(Bat::Bool(out))
        }
        other => Err(MlError::Execution(format!("LIKE over {}", other.logical_type()))),
    }
}

// ---------------------------------------------------------------------------
// CASE
// ---------------------------------------------------------------------------

/// CASE over `rows` rows; `evalf` supplies sub-expression evaluation so
/// the dense and candidate-list paths share the row-selection logic.
fn case_kernel(
    branches: &[(BExpr, BExpr)],
    else_expr: Option<&BExpr>,
    ty: LogicalType,
    rows: usize,
    evalf: &dyn Fn(&BExpr) -> Result<Bat>,
) -> Result<Bat> {
    // Evaluate all conditions and branch values, then select row-wise.
    let conds: Vec<Bat> = branches.iter().map(|(c, _)| evalf(c)).collect::<Result<_>>()?;
    let vals: Vec<Bat> = branches.iter().map(|(_, v)| evalf(v)).collect::<Result<_>>()?;
    let else_vals = else_expr.map(evalf).transpose()?;
    let mut out = Bat::with_capacity(ty, rows);
    'rows: for i in 0..rows {
        for (c, v) in conds.iter().zip(&vals) {
            let hit = match c {
                Bat::Bool(cv) => cv[i] == 1,
                _ => false,
            };
            if hit {
                out.push(&v.get(i))?;
                continue 'rows;
            }
        }
        match &else_vals {
            Some(ev) => out.push(&ev.get(i))?,
            None => out.push(&Value::Null)?,
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Scalar functions
// ---------------------------------------------------------------------------

fn func_kernel(func: ScalarFunc, args: &[Bat], ty: LogicalType) -> Result<Bat> {
    match func {
        ScalarFunc::Sqrt | ScalarFunc::Floor | ScalarFunc::Ceil => {
            let a = match &args[0] {
                Bat::Double(v) => v,
                other => {
                    return Err(MlError::Execution(format!("{func} over {}", other.logical_type())))
                }
            };
            let f = match func {
                ScalarFunc::Sqrt => f64::sqrt,
                ScalarFunc::Floor => f64::floor,
                _ => f64::ceil,
            };
            Ok(Bat::Double(a.iter().map(|&x| f(x)).collect()))
        }
        ScalarFunc::Abs => Ok(match &args[0] {
            Bat::Int(v) => {
                Bat::Int(v.iter().map(|&x| if x == NULL_I32 { x } else { x.abs() }).collect())
            }
            Bat::Bigint(v) => {
                Bat::Bigint(v.iter().map(|&x| if x == NULL_I64 { x } else { x.abs() }).collect())
            }
            Bat::Double(v) => Bat::Double(v.iter().map(|&x| x.abs()).collect()),
            Bat::Decimal { data, scale } => Bat::Decimal {
                data: data.iter().map(|&x| if x == NULL_I64 { x } else { x.abs() }).collect(),
                scale: *scale,
            },
            other => return Err(MlError::Execution(format!("abs over {}", other.logical_type()))),
        }),
        ScalarFunc::Upper | ScalarFunc::Lower => {
            let a = &args[0];
            let mut out = Bat::with_capacity(LogicalType::Varchar, a.len());
            for i in 0..a.len() {
                match a.str_at(i) {
                    None => out.push(&Value::Null)?,
                    Some(s) => {
                        let t = if func == ScalarFunc::Upper {
                            s.to_uppercase()
                        } else {
                            s.to_lowercase()
                        };
                        out.push(&Value::Str(t))?;
                    }
                }
            }
            Ok(out)
        }
        ScalarFunc::Length => {
            let a = &args[0];
            let mut out = Vec::with_capacity(a.len());
            for i in 0..a.len() {
                match a.str_at(i) {
                    None => out.push(NULL_I32),
                    Some(s) => out.push(s.chars().count() as i32),
                }
            }
            Ok(Bat::Int(out))
        }
        ScalarFunc::Substring => {
            let s = &args[0];
            let (from, len) = match (&args[1], &args[2]) {
                (Bat::Int(f), Bat::Int(l)) => (f, l),
                _ => return Err(MlError::Execution("substring bounds must be INTEGER".into())),
            };
            let mut out = Bat::with_capacity(LogicalType::Varchar, s.len());
            for i in 0..s.len() {
                match s.str_at(i) {
                    None => out.push(&Value::Null)?,
                    Some(txt) => {
                        if from[i] == NULL_I32 || len[i] == NULL_I32 {
                            out.push(&Value::Null)?;
                            continue;
                        }
                        // SQL window semantics: the window is [from, from+len)
                        // in 1-based character positions, then clamped to the
                        // string. A FROM below 1 therefore *shrinks* the
                        // window rather than silently rebasing it:
                        // substring('abc' FROM -1 FOR 3) keeps only position 1.
                        let from64 = from[i] as i64;
                        let end1 = from64.saturating_add((len[i] as i64).max(0));
                        let start1 = from64.max(1);
                        let take = (end1 - start1).max(0) as usize;
                        let skip = (start1 - 1) as usize;
                        // Single pass over char boundaries: locate the byte
                        // bounds of chars [skip, skip+take) without rescanning.
                        let mut start_b = txt.len();
                        let mut end_b = txt.len();
                        for (ci, (b, _)) in txt.char_indices().enumerate() {
                            if ci == skip {
                                start_b = b;
                            }
                            if ci == skip + take {
                                end_b = b;
                                break;
                            }
                        }
                        let sub = &txt[start_b.min(end_b)..end_b];
                        out.push(&Value::Str(sub.to_string()))?;
                    }
                }
            }
            Ok(out)
        }
        ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Day => {
            let a = match &args[0] {
                Bat::Date(v) => v,
                other => {
                    return Err(MlError::Execution(format!("{func} over {}", other.logical_type())))
                }
            };
            let mut out = Vec::with_capacity(a.len());
            for &d in a {
                if d == NULL_I32 {
                    out.push(NULL_I32);
                    continue;
                }
                let (y, m, dd) = Date(d).ymd();
                out.push(match func {
                    ScalarFunc::Year => y,
                    ScalarFunc::Month => m as i32,
                    _ => dd as i32,
                });
            }
            Ok(Bat::Int(out))
        }
        ScalarFunc::AddDays | ScalarFunc::AddMonths | ScalarFunc::AddYears => {
            let dates = match &args[0] {
                Bat::Date(v) => v,
                other => {
                    return Err(MlError::Execution(format!(
                        "date shift over {}",
                        other.logical_type()
                    )))
                }
            };
            let amounts = match &args[1] {
                Bat::Int(v) => v,
                _ => return Err(MlError::Execution("date shift amount must be INTEGER".into())),
            };
            let mut out = Vec::with_capacity(dates.len());
            for (&d, &n) in dates.iter().zip(amounts) {
                if d == NULL_I32 || n == NULL_I32 {
                    out.push(NULL_I32);
                    continue;
                }
                let nd = match func {
                    ScalarFunc::AddDays => Date(d).add_days(n),
                    ScalarFunc::AddMonths => Date(d).add_months(n),
                    _ => Date(d).add_years(n),
                };
                out.push(nd.0);
            }
            let _ = ty;
            Ok(Bat::Date(out))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::ColumnBuffer;
    use proptest::prelude::*;

    fn ints(v: Vec<i32>) -> Arc<Bat> {
        Arc::new(Bat::Int(v))
    }

    #[test]
    fn colref_and_literal() {
        let cols = vec![ints(vec![1, 2, 3])];
        let e = BExpr::ColRef { idx: 0, ty: LogicalType::Int };
        assert_eq!(eval(&e, &cols, 3).unwrap().get(1), Value::Int(2));
        let l = BExpr::Lit(Value::Int(7));
        let b = eval(&l, &cols, 3).unwrap();
        assert_eq!(b.len(), 3);
        assert_eq!(b.get(2), Value::Int(7));
    }

    #[test]
    fn cmp_const_fast_path_with_nulls() {
        let cols = vec![ints(vec![1, NULL_I32, 3])];
        let e = BExpr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        let b = eval(&e, &cols, 3).unwrap();
        assert_eq!(b.get(0), Value::Bool(false));
        assert_eq!(b.get(1), Value::Null);
        assert_eq!(b.get(2), Value::Bool(true));
        assert_eq!(bool_to_sel(&b).unwrap(), vec![2]);
    }

    #[test]
    fn flipped_const_comparison() {
        // 2 < col  ≡  col > 2
        let cols = vec![ints(vec![1, 2, 3])];
        let e = BExpr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(BExpr::Lit(Value::Int(2))),
            right: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
        };
        let b = eval(&e, &cols, 3).unwrap();
        assert_eq!(bool_to_sel(&b).unwrap(), vec![2]);
    }

    #[test]
    fn int_overflow_is_error() {
        let cols = vec![ints(vec![i32::MAX])];
        let e = BExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
            right: Box::new(BExpr::Lit(Value::Int(1))),
            ty: LogicalType::Int,
        };
        assert!(matches!(eval(&e, &cols, 1), Err(MlError::Execution(_))));
    }

    #[test]
    fn decimal_mul_scales() {
        // 1.50 * 0.06 (scales 2+2=4) = 0.0900
        let l = Bat::Decimal { data: vec![150], scale: 2 };
        let r = Bat::Decimal { data: vec![6], scale: 2 };
        let out =
            arith(ArithOp::Mul, &l, &r, LogicalType::Decimal { width: 18, scale: 4 }).unwrap();
        assert_eq!(out.get(0), Value::Decimal(monetlite_types::Decimal::new(900, 4)));
    }

    #[test]
    fn three_valued_logic() {
        let t = Bat::Bool(vec![1]);
        let f = Bat::Bool(vec![0]);
        let n = Bat::Bool(vec![NULL_I8]);
        assert_eq!(bool_and(&n, &f).unwrap().get(0), Value::Bool(false));
        assert_eq!(bool_and(&n, &t).unwrap().get(0), Value::Null);
        assert_eq!(bool_or(&n, &t).unwrap().get(0), Value::Bool(true));
        assert_eq!(bool_or(&n, &f).unwrap().get(0), Value::Null);
        assert_eq!(bool_not(&n).unwrap().get(0), Value::Null);
        assert_eq!(bool_not(&t).unwrap().get(0), Value::Bool(false));
    }

    #[test]
    fn like_matcher_cases() {
        assert!(like_match("forest green metallic", "%green%"));
        assert!(!like_match("blue", "%green%"));
        assert!(like_match("abc", "abc"));
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("abc", "a_d"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("anything", "%"));
        assert!(like_match("xyz", "%z"));
        assert!(like_match("xyz", "x%"));
        assert!(!like_match("xyz", "%q%"));
        assert!(like_match("aXbXc", "a%b%c"));
        // Tricky backtracking: % must be able to re-expand.
        assert!(like_match("aabab", "a%ab"));
    }

    #[test]
    fn case_kernel_with_else_and_null() {
        let cols = vec![ints(vec![1, 2, 3])];
        let e = BExpr::Case {
            branches: vec![(
                BExpr::Cmp {
                    op: CmpOp::Eq,
                    left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                    right: Box::new(BExpr::Lit(Value::Int(2))),
                },
                BExpr::Lit(Value::Int(100)),
            )],
            else_expr: Some(Box::new(BExpr::Lit(Value::Int(0)))),
            ty: LogicalType::Int,
        };
        let b = eval(&e, &cols, 3).unwrap();
        assert_eq!(b.to_buffer(None), ColumnBuffer::Int(vec![0, 100, 0]));
    }

    #[test]
    fn extract_year_kernel() {
        let d = Date::parse("1995-03-17").unwrap();
        let cols = vec![Arc::new(Bat::Date(vec![d.0, NULL_I32]))];
        let e = BExpr::Func {
            func: ScalarFunc::Year,
            args: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Date }],
            ty: LogicalType::Int,
        };
        let b = eval(&e, &cols, 2).unwrap();
        assert_eq!(b.get(0), Value::Int(1995));
        assert_eq!(b.get(1), Value::Null);
    }

    #[test]
    fn date_shift_kernel() {
        let d = Date::parse("1995-01-31").unwrap();
        let cols = vec![Arc::new(Bat::Date(vec![d.0]))];
        let e = BExpr::Func {
            func: ScalarFunc::AddMonths,
            args: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Date }, BExpr::Lit(Value::Int(1))],
            ty: LogicalType::Date,
        };
        let b = eval(&e, &cols, 1).unwrap();
        assert_eq!(b.get(0).to_string(), "1995-02-28");
    }

    #[test]
    fn cast_chain() {
        let b = Bat::Int(vec![3, NULL_I32]);
        let d = cast(&b, LogicalType::Decimal { width: 18, scale: 2 }).unwrap();
        assert_eq!(d.get(0), Value::Decimal(monetlite_types::Decimal::new(300, 2)));
        assert_eq!(d.get(1), Value::Null);
        let f = cast(&d, LogicalType::Double).unwrap();
        assert_eq!(f.get(0), Value::Double(3.0));
        assert_eq!(f.get(1), Value::Null);
    }

    #[test]
    fn varchar_comparison_and_nulls() {
        let col = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("apple".into()),
            None,
            Some("pear".into()),
        ]));
        let b = cmp_const(CmpOp::Eq, &col, &Value::Str("pear".into())).unwrap();
        assert_eq!(bool_to_sel(&b).unwrap(), vec![2]);
        assert_eq!(b.get(1), Value::Null);
    }

    #[test]
    fn like_compile_shapes() {
        assert_eq!(compile_like("foo"), LikePlan::Exact("foo".into()));
        assert_eq!(compile_like("foo%"), LikePlan::Prefix("foo".into()));
        assert_eq!(compile_like("%foo"), LikePlan::Suffix("foo".into()));
        assert_eq!(compile_like("%foo%"), LikePlan::Contains("foo".into()));
        assert_eq!(compile_like("%%foo%%"), LikePlan::Contains("foo".into()));
        assert_eq!(compile_like("%"), LikePlan::Contains("".into()));
        assert_eq!(compile_like(""), LikePlan::Exact("".into()));
        assert_eq!(compile_like("a%b"), LikePlan::Generic);
        assert_eq!(compile_like("f_o%"), LikePlan::Generic);
    }

    /// Character-at-a-time reference for SQL substring: keep 1-based
    /// positions p with max(1, from) <= p < from + len.
    fn ref_substring(s: &str, from: i32, len: i32) -> String {
        let (from, len) = (from as i64, (len as i64).max(0));
        s.chars()
            .enumerate()
            .filter(|(i, _)| {
                let p = *i as i64 + 1;
                p >= from && p < from.saturating_add(len)
            })
            .map(|(_, c)| c)
            .collect()
    }

    fn run_substring(s: &str, from: i32, len: i32) -> Value {
        let col = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some(s.into())]));
        let args = vec![col, Bat::Int(vec![from]), Bat::Int(vec![len])];
        func_kernel(ScalarFunc::Substring, &args, LogicalType::Varchar).unwrap().get(0)
    }

    #[test]
    fn substring_window_semantics() {
        // FROM below 1 must shrink the window, not rebase it: the old
        // `from.max(1) - 1` clamp returned 'abc' here instead of 'a'.
        assert_eq!(run_substring("abc", -1, 3), Value::Str("a".into()));
        assert_eq!(run_substring("abc", 0, 3), Value::Str("ab".into()));
        assert_eq!(run_substring("abc", -2, 2), Value::Str("".into()));
        for s in ["", "a", "abc", "héllo·wörld"] {
            let n = s.chars().count() as i32;
            for from in [-2, -1, 0, 1, 2, n, n + 1] {
                for len in [0, 1, n, i32::MAX] {
                    assert_eq!(
                        run_substring(s, from, len),
                        Value::Str(ref_substring(s, from, len)),
                        "substring({s:?} FROM {from} FOR {len})"
                    );
                }
            }
        }
    }

    #[test]
    fn substring_null_propagation() {
        let col = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("abc".into()), None]));
        let args = vec![col, Bat::Int(vec![NULL_I32, 1]), Bat::Int(vec![2, 2])];
        let out = func_kernel(ScalarFunc::Substring, &args, LogicalType::Varchar).unwrap();
        assert_eq!(out.get(0), Value::Null);
        assert_eq!(out.get(1), Value::Null);
    }

    /// Exponential-but-obviously-correct reference LIKE matcher used to pin
    /// both the backtracking matcher and the compiled fast paths.
    fn ref_like(s: &[char], p: &[char]) -> bool {
        match p.split_first() {
            None => s.is_empty(),
            Some((&'%', rest)) => ref_like(s, rest) || (!s.is_empty() && ref_like(&s[1..], p)),
            Some((&c, rest)) => match s.split_first() {
                Some((&sc, srest)) => (c == '_' || c == sc) && ref_like(srest, rest),
                None => false,
            },
        }
    }

    #[test]
    fn like_degenerate_patterns() {
        // Empty pattern matches only the empty string; all-% patterns match
        // everything; a trailing backslash is a literal character (this
        // dialect has no LIKE escape).
        for s in ["", "a", "%", "_", "ab", "a\\"] {
            for p in ["", "%", "%%", "%%%", "\\", "a\\", "%\\", "\\%", "a%\\"] {
                let plan = compile_like(p);
                let sc: Vec<char> = s.chars().collect();
                let pc: Vec<char> = p.chars().collect();
                assert_eq!(like_plan_match(&plan, p, s), ref_like(&sc, &pc), "{s:?} LIKE {p:?}");
                assert_eq!(like_match(s, p), ref_like(&sc, &pc), "generic {s:?} LIKE {p:?}");
            }
        }
    }

    #[test]
    fn like_kernel_null_rows_stay_null_even_negated() {
        let col = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("apple".into()),
            None,
            Some("".into()),
        ]));
        for negated in [false, true] {
            let out = like_kernel(&col, "%", negated).unwrap();
            assert_eq!(out.get(0), Value::Bool(!negated));
            assert_eq!(out.get(1), Value::Null, "NULL-offset row must stay NULL");
            assert_eq!(out.get(2), Value::Bool(!negated));
            let sel_out = like_kernel_sel(&col, "%", negated, &[0, 1, 2]).unwrap();
            assert_eq!(out.to_buffer(None), sel_out.to_buffer(None));
        }
    }

    #[test]
    fn eval_sel_matches_dense_on_predicates() {
        use monetlite_types::ColumnBuffer;
        let a = Bat::Int(vec![5, NULL_I32, 7, 1, 9, 3]);
        let s = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("apple pie".into()),
            None,
            Some("pear".into()),
            Some("applet".into()),
            Some("grape".into()),
            Some("app".into()),
        ]));
        let cols = vec![Arc::new(a), Arc::new(s)];
        let sel: Vec<u32> = vec![0, 2, 3, 5];
        let exprs = vec![
            BExpr::Cmp {
                op: CmpOp::Gt,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(4))),
            },
            BExpr::Like {
                input: Box::new(BExpr::ColRef { idx: 1, ty: LogicalType::Varchar }),
                pattern: "app%".into(),
                negated: false,
            },
            BExpr::IsNull {
                input: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                negated: true,
            },
        ];
        let gathered: Vec<Arc<Bat>> = cols.iter().map(|c| Arc::new(c.take(&sel))).collect();
        for e in &exprs {
            let lazy = eval_sel(e, &cols, &sel).unwrap();
            let dense = eval(e, &gathered, sel.len()).unwrap();
            assert_eq!(lazy.to_buffer(None), dense.to_buffer(None), "{e:?}");
        }
    }

    proptest! {
        #[test]
        fn prop_like_fast_paths_agree_with_matcher(
            s in "[ab%_]{0,12}",
            core in "[ab]{0,4}",
            shape in 0usize..5,
        ) {
            let pattern = match shape {
                0 => core.clone(),
                1 => format!("{core}%"),
                2 => format!("%{core}"),
                3 => format!("%{core}%"),
                _ => format!("%%{core}"),
            };
            let plan = compile_like(&pattern);
            prop_assert!(plan != LikePlan::Generic, "shape {} must compile to a fast path", pattern);
            prop_assert_eq!(like_plan_match(&plan, &pattern, &s), like_match(&s, &pattern),
                "pattern {} over {}", pattern, s);
        }

        #[test]
        fn prop_like_any_pattern_agrees_with_reference(
            s in "[ab%]{0,10}",
            pattern in "[ab%_]{0,8}",
        ) {
            // Arbitrary patterns — including degenerate ones ('', '%', '%%')
            // and Generic shapes — must agree with the reference matcher on
            // both the compiled plan and the backtracking matcher.
            let sc: Vec<char> = s.chars().collect();
            let pc: Vec<char> = pattern.chars().collect();
            let expect = ref_like(&sc, &pc);
            prop_assert_eq!(like_match(&s, &pattern), expect, "generic {} over {}", pattern, s);
            let plan = compile_like(&pattern);
            prop_assert_eq!(like_plan_match(&plan, &pattern, &s), expect,
                "plan {:?} for {} over {}", plan, pattern, s);
        }

        #[test]
        fn prop_eval_sel_agrees_with_dense_gather(
            a in proptest::collection::vec(-50i32..50, 1..60),
            b in proptest::collection::vec(-50i64..50, 1..60),
            picks in proptest::collection::vec(0usize..60, 0..30),
            k1 in -50i32..50,
            k2 in -50i64..50,
        ) {
            let n = a.len().min(b.len());
            // Values divisible by 5 become NULL sentinels (the vendored
            // proptest shim has no Option strategy).
            let ac: Vec<i32> = a[..n].iter().map(|&v| if v % 5 == 0 { NULL_I32 } else { v }).collect();
            let bc: Vec<i64> = b[..n].iter().map(|&v| if v % 5 == 0 { NULL_I64 } else { v }).collect();
            let cols = vec![Arc::new(Bat::Int(ac)), Arc::new(Bat::Bigint(bc))];
            let sel: Vec<u32> = picks.into_iter().filter(|&p| p < n).map(|p| p as u32).collect();
            let col0 = || Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int });
            let col1 = || Box::new(BExpr::ColRef { idx: 1, ty: LogicalType::Bigint });
            // A chain mixing const-cmp, col-col cmp, casts, arithmetic and
            // three-valued logic: (CAST(a AS BIGINT) < b AND a >= k1) OR b = k2
            let e = BExpr::Or(
                Box::new(BExpr::And(
                    Box::new(BExpr::Cmp {
                        op: CmpOp::Lt,
                        left: Box::new(BExpr::Cast { input: col0(), ty: LogicalType::Bigint }),
                        right: col1(),
                    }),
                    Box::new(BExpr::Cmp {
                        op: CmpOp::GtEq,
                        left: col0(),
                        right: Box::new(BExpr::Lit(Value::Int(k1))),
                    }),
                )),
                Box::new(BExpr::Cmp {
                    op: CmpOp::Eq,
                    left: col1(),
                    right: Box::new(BExpr::Lit(Value::Bigint(k2))),
                }),
            );
            let lazy = eval_sel(&e, &cols, &sel).unwrap();
            let gathered: Vec<Arc<Bat>> = cols.iter().map(|c| Arc::new(c.take(&sel))).collect();
            let dense = eval(&e, &gathered, sel.len()).unwrap();
            prop_assert_eq!(lazy.to_buffer(None), dense.to_buffer(None));
            // And the derived candidate lists agree too.
            prop_assert_eq!(bool_to_sel(&lazy).unwrap(), bool_to_sel(&dense).unwrap());
        }

        #[test]
        fn prop_like_percent_always_matches(s in ".{0,30}") {
            prop_assert!(like_match(&s, "%"));
        }

        #[test]
        fn prop_like_exact_match(s in "[a-z]{0,20}") {
            prop_assert!(like_match(&s, &s));
        }

        #[test]
        fn prop_like_contains(hay in "[a-z]{0,10}", needle in "[a-z]{1,4}") {
            let s = format!("{hay}{needle}{hay}");
            let pat = format!("%{needle}%");
            prop_assert!(like_match(&s, &pat));
        }

        #[test]
        fn prop_cmp_matches_scalar(a in proptest::collection::vec(-50i32..50, 1..40), k in -50i32..50) {
            let col = Bat::Int(a.clone());
            let b = cmp_const(CmpOp::Lt, &col, &Value::Int(k)).unwrap();
            let sel = bool_to_sel(&b).unwrap();
            let expect: Vec<u32> = a.iter().enumerate().filter(|(_, &x)| x < k).map(|(i, _)| i as u32).collect();
            prop_assert_eq!(sel, expect);
        }

        #[test]
        fn prop_arith_add_matches_scalar(a in proptest::collection::vec(-1000i64..1000, 1..40)) {
            let l = Bat::Bigint(a.clone());
            let r = Bat::Bigint(a.iter().map(|x| x * 2).collect());
            let out = arith(ArithOp::Add, &l, &r, LogicalType::Bigint).unwrap();
            for (i, &x) in a.iter().enumerate() {
                prop_assert_eq!(out.get(i), Value::Bigint(x * 3));
            }
        }
    }
}
