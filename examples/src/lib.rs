//! Example binaries live in `examples/examples/`.

#![forbid(unsafe_code)]
