//! `ColumnBuffer`: the plain, contiguous, C-style array representation used
//! as the data interchange format of the workspace.
//!
//! This is the stand-in for the host language's native array format (R
//! vectors / NumPy arrays in the paper, §3.3): tightly packed `Vec<T>` with
//! in-domain NULL sentinels for fixed-width types. The engines convert to
//! and from this representation at the embedding boundary; the dataframe
//! baseline and the generators produce it directly.

use crate::date::Date;
use crate::decimal::Decimal;
use crate::error::{MlError, Result};
use crate::logical::LogicalType;
use crate::nulls::{NULL_I32, NULL_I64, NULL_I8};
use crate::value::Value;

/// A single column of data in native array form.
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnBuffer {
    /// BOOLEAN: 0 = false, 1 = true, i8::MIN = NULL.
    Bool(Vec<i8>),
    /// INTEGER with NULL = i32::MIN.
    Int(Vec<i32>),
    /// BIGINT with NULL = i64::MIN.
    Bigint(Vec<i64>),
    /// DOUBLE with NULL = NaN.
    Double(Vec<f64>),
    /// DECIMAL as scaled i64 with NULL = i64::MIN.
    Decimal {
        /// Scaled raw values.
        data: Vec<i64>,
        /// Shared fractional-digit count.
        scale: u8,
    },
    /// VARCHAR; `None` = NULL.
    Varchar(Vec<Option<String>>),
    /// DATE as days since epoch with NULL = i32::MIN.
    Date(Vec<i32>),
}

impl ColumnBuffer {
    /// Create an empty buffer of the given logical type.
    pub fn new(ty: LogicalType) -> ColumnBuffer {
        Self::with_capacity(ty, 0)
    }

    /// Create an empty buffer with reserved capacity.
    pub fn with_capacity(ty: LogicalType, cap: usize) -> ColumnBuffer {
        match ty {
            LogicalType::Bool => ColumnBuffer::Bool(Vec::with_capacity(cap)),
            LogicalType::Int => ColumnBuffer::Int(Vec::with_capacity(cap)),
            LogicalType::Bigint => ColumnBuffer::Bigint(Vec::with_capacity(cap)),
            LogicalType::Double => ColumnBuffer::Double(Vec::with_capacity(cap)),
            LogicalType::Decimal { scale, .. } => {
                ColumnBuffer::Decimal { data: Vec::with_capacity(cap), scale }
            }
            LogicalType::Varchar => ColumnBuffer::Varchar(Vec::with_capacity(cap)),
            LogicalType::Date => ColumnBuffer::Date(Vec::with_capacity(cap)),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuffer::Bool(v) => v.len(),
            ColumnBuffer::Int(v) => v.len(),
            ColumnBuffer::Bigint(v) => v.len(),
            ColumnBuffer::Double(v) => v.len(),
            ColumnBuffer::Decimal { data, .. } => data.len(),
            ColumnBuffer::Varchar(v) => v.len(),
            ColumnBuffer::Date(v) => v.len(),
        }
    }

    /// True when the buffer holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The logical type of the buffer.
    pub fn logical_type(&self) -> LogicalType {
        match self {
            ColumnBuffer::Bool(_) => LogicalType::Bool,
            ColumnBuffer::Int(_) => LogicalType::Int,
            ColumnBuffer::Bigint(_) => LogicalType::Bigint,
            ColumnBuffer::Double(_) => LogicalType::Double,
            ColumnBuffer::Decimal { scale, .. } => {
                LogicalType::Decimal { width: 18, scale: *scale }
            }
            ColumnBuffer::Varchar(_) => LogicalType::Varchar,
            ColumnBuffer::Date(_) => LogicalType::Date,
        }
    }

    /// Approximate heap footprint in bytes (used by the dataframe library's
    /// memory-budget accounting and the vmem simulation).
    pub fn size_bytes(&self) -> usize {
        match self {
            ColumnBuffer::Bool(v) => v.len(),
            ColumnBuffer::Int(v) => v.len() * 4,
            ColumnBuffer::Bigint(v) => v.len() * 8,
            ColumnBuffer::Double(v) => v.len() * 8,
            ColumnBuffer::Decimal { data, .. } => data.len() * 8,
            ColumnBuffer::Varchar(v) => v
                .iter()
                .map(|s| std::mem::size_of::<Option<String>>() + s.as_ref().map_or(0, |s| s.len()))
                .sum(),
            ColumnBuffer::Date(v) => v.len() * 4,
        }
    }

    /// Read row `i` as a dynamically-typed [`Value`].
    pub fn get(&self, i: usize) -> Value {
        match self {
            ColumnBuffer::Bool(v) => {
                if v[i] == NULL_I8 {
                    Value::Null
                } else {
                    Value::Bool(v[i] != 0)
                }
            }
            ColumnBuffer::Int(v) => {
                if v[i] == NULL_I32 {
                    Value::Null
                } else {
                    Value::Int(v[i])
                }
            }
            ColumnBuffer::Bigint(v) => {
                if v[i] == NULL_I64 {
                    Value::Null
                } else {
                    Value::Bigint(v[i])
                }
            }
            ColumnBuffer::Double(v) => {
                if v[i].is_nan() {
                    Value::Null
                } else {
                    Value::Double(v[i])
                }
            }
            ColumnBuffer::Decimal { data, scale } => {
                if data[i] == NULL_I64 {
                    Value::Null
                } else {
                    Value::Decimal(Decimal::new(data[i], *scale))
                }
            }
            ColumnBuffer::Varchar(v) => match &v[i] {
                None => Value::Null,
                Some(s) => Value::Str(s.clone()),
            },
            ColumnBuffer::Date(v) => {
                if v[i] == NULL_I32 {
                    Value::Null
                } else {
                    Value::Date(Date(v[i]))
                }
            }
        }
    }

    /// Append a [`Value`], coercing compatible numerics; NULL always works.
    pub fn push(&mut self, v: &Value) -> Result<()> {
        match (self, v) {
            (ColumnBuffer::Bool(c), Value::Bool(b)) => c.push(*b as i8),
            (ColumnBuffer::Bool(c), Value::Null) => c.push(NULL_I8),
            (ColumnBuffer::Int(c), Value::Int(x)) => c.push(*x),
            (ColumnBuffer::Int(c), Value::Null) => c.push(NULL_I32),
            (ColumnBuffer::Bigint(c), Value::Bigint(x)) => c.push(*x),
            (ColumnBuffer::Bigint(c), Value::Int(x)) => c.push(*x as i64),
            (ColumnBuffer::Bigint(c), Value::Null) => c.push(NULL_I64),
            (ColumnBuffer::Double(c), Value::Double(x)) => c.push(*x),
            (ColumnBuffer::Double(c), Value::Int(x)) => c.push(*x as f64),
            (ColumnBuffer::Double(c), Value::Bigint(x)) => c.push(*x as f64),
            (ColumnBuffer::Double(c), Value::Decimal(d)) => c.push(d.to_f64()),
            (ColumnBuffer::Double(c), Value::Null) => c.push(f64::NAN),
            (ColumnBuffer::Decimal { data, scale }, Value::Decimal(d)) => {
                data.push(d.rescale(*scale)?.raw)
            }
            (ColumnBuffer::Decimal { data, scale }, Value::Int(x)) => {
                data.push(Decimal::new(*x as i64, 0).rescale(*scale)?.raw)
            }
            (ColumnBuffer::Decimal { data, .. }, Value::Null) => data.push(NULL_I64),
            (ColumnBuffer::Varchar(c), Value::Str(s)) => c.push(Some(s.clone())),
            (ColumnBuffer::Varchar(c), Value::Null) => c.push(None),
            (ColumnBuffer::Date(c), Value::Date(d)) => c.push(d.0),
            (ColumnBuffer::Date(c), Value::Null) => c.push(NULL_I32),
            (buf, v) => {
                return Err(MlError::TypeMismatch(format!(
                    "cannot append {v:?} to {} column",
                    buf.logical_type()
                )))
            }
        }
        Ok(())
    }

    /// Gather rows by index into a new buffer (the host-side analogue of a
    /// positional fetch).
    pub fn take(&self, idx: &[u32]) -> ColumnBuffer {
        match self {
            ColumnBuffer::Bool(v) => {
                ColumnBuffer::Bool(idx.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnBuffer::Int(v) => ColumnBuffer::Int(idx.iter().map(|&i| v[i as usize]).collect()),
            ColumnBuffer::Bigint(v) => {
                ColumnBuffer::Bigint(idx.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnBuffer::Double(v) => {
                ColumnBuffer::Double(idx.iter().map(|&i| v[i as usize]).collect())
            }
            ColumnBuffer::Decimal { data, scale } => ColumnBuffer::Decimal {
                data: idx.iter().map(|&i| data[i as usize]).collect(),
                scale: *scale,
            },
            ColumnBuffer::Varchar(v) => {
                ColumnBuffer::Varchar(idx.iter().map(|&i| v[i as usize].clone()).collect())
            }
            ColumnBuffer::Date(v) => {
                ColumnBuffer::Date(idx.iter().map(|&i| v[i as usize]).collect())
            }
        }
    }

    /// Append all rows of `other` (must have the same physical variant).
    pub fn append(&mut self, other: &ColumnBuffer) -> Result<()> {
        match (self, other) {
            (ColumnBuffer::Bool(a), ColumnBuffer::Bool(b)) => a.extend_from_slice(b),
            (ColumnBuffer::Int(a), ColumnBuffer::Int(b)) => a.extend_from_slice(b),
            (ColumnBuffer::Bigint(a), ColumnBuffer::Bigint(b)) => a.extend_from_slice(b),
            (ColumnBuffer::Double(a), ColumnBuffer::Double(b)) => a.extend_from_slice(b),
            (
                ColumnBuffer::Decimal { data: a, scale: sa },
                ColumnBuffer::Decimal { data: b, scale: sb },
            ) => {
                if sa == sb {
                    a.extend_from_slice(b);
                } else {
                    for &raw in b {
                        if raw == NULL_I64 {
                            a.push(NULL_I64);
                        } else {
                            a.push(Decimal::new(raw, *sb).rescale(*sa)?.raw);
                        }
                    }
                }
            }
            (ColumnBuffer::Varchar(a), ColumnBuffer::Varchar(b)) => a.extend(b.iter().cloned()),
            (ColumnBuffer::Date(a), ColumnBuffer::Date(b)) => a.extend_from_slice(b),
            (a, b) => {
                return Err(MlError::TypeMismatch(format!(
                    "cannot append {} column to {} column",
                    b.logical_type(),
                    a.logical_type()
                )))
            }
        }
        Ok(())
    }

    /// Count of NULL rows.
    pub fn null_count(&self) -> usize {
        match self {
            ColumnBuffer::Bool(v) => v.iter().filter(|&&x| x == NULL_I8).count(),
            ColumnBuffer::Int(v) => v.iter().filter(|&&x| x == NULL_I32).count(),
            ColumnBuffer::Bigint(v) => v.iter().filter(|&&x| x == NULL_I64).count(),
            ColumnBuffer::Double(v) => v.iter().filter(|x| x.is_nan()).count(),
            ColumnBuffer::Decimal { data, .. } => data.iter().filter(|&&x| x == NULL_I64).count(),
            ColumnBuffer::Varchar(v) => v.iter().filter(|x| x.is_none()).count(),
            ColumnBuffer::Date(v) => v.iter().filter(|&&x| x == NULL_I32).count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let mut c = ColumnBuffer::new(LogicalType::Int);
        c.push(&Value::Int(5)).unwrap();
        c.push(&Value::Null).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(0), Value::Int(5));
        assert_eq!(c.get(1), Value::Null);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn decimal_rescales_on_push() {
        let mut c = ColumnBuffer::new(LogicalType::Decimal { width: 15, scale: 2 });
        c.push(&Value::Decimal(Decimal::parse("1.5").unwrap())).unwrap();
        c.push(&Value::Int(3)).unwrap();
        assert_eq!(c.get(0), Value::Decimal(Decimal::new(150, 2)));
        assert_eq!(c.get(1), Value::Decimal(Decimal::new(300, 2)));
    }

    #[test]
    fn type_mismatch_errors() {
        let mut c = ColumnBuffer::new(LogicalType::Int);
        assert!(c.push(&Value::Str("x".into())).is_err());
        let mut d = ColumnBuffer::new(LogicalType::Date);
        assert!(d.push(&Value::Double(1.0)).is_err());
    }

    #[test]
    fn take_gathers() {
        let c = ColumnBuffer::Int(vec![10, 20, 30, 40]);
        let t = c.take(&[3, 1, 1]);
        assert_eq!(t, ColumnBuffer::Int(vec![40, 20, 20]));
        let s = ColumnBuffer::Varchar(vec![Some("a".into()), None, Some("c".into())]);
        let t = s.take(&[2, 0]);
        assert_eq!(t.get(0), Value::Str("c".into()));
    }

    #[test]
    fn append_same_type() {
        let mut a = ColumnBuffer::Int(vec![1]);
        a.append(&ColumnBuffer::Int(vec![2, 3])).unwrap();
        assert_eq!(a, ColumnBuffer::Int(vec![1, 2, 3]));
        assert!(a.append(&ColumnBuffer::Double(vec![1.0])).is_err());
    }

    #[test]
    fn append_decimal_rescales() {
        let mut a = ColumnBuffer::Decimal { data: vec![100], scale: 2 };
        a.append(&ColumnBuffer::Decimal { data: vec![5, NULL_I64], scale: 1 }).unwrap();
        assert_eq!(a, ColumnBuffer::Decimal { data: vec![100, 50, NULL_I64], scale: 2 });
    }

    #[test]
    fn size_accounting_counts_string_heap() {
        let c = ColumnBuffer::Varchar(vec![Some("hello".into()), None]);
        assert!(c.size_bytes() >= 5);
        let c = ColumnBuffer::Int(vec![0; 10]);
        assert_eq!(c.size_bytes(), 40);
    }

    #[test]
    fn double_null_is_nan() {
        let mut c = ColumnBuffer::new(LogicalType::Double);
        c.push(&Value::Null).unwrap();
        c.push(&Value::Double(2.5)).unwrap();
        assert_eq!(c.get(0), Value::Null);
        assert_eq!(c.get(1), Value::Double(2.5));
        assert_eq!(c.null_count(), 1);
    }
}
