//! Randomised cross-engine parity: generated predicates/aggregations must
//! return identical results from the columnar engine and the row store.

use monetlite_rowstore::RowDb;
use monetlite_types::{ColumnBuffer, Value};
use proptest::prelude::*;

fn setup(seed: i32) -> (monetlite::Database, RowDb) {
    let n = 300;
    let ints: Vec<i32> = (0..n).map(|i| (i * seed.wrapping_add(7)) % 50).collect();
    let strs: Vec<Option<String>> =
        (0..n).map(|i| if i % 11 == 0 { None } else { Some(format!("s{}", i % 13)) }).collect();
    let dbls: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25).collect();
    let ddl = "CREATE TABLE t (a INT, b VARCHAR(8), c DOUBLE)";
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute(ddl).unwrap();
    conn.append(
        "t",
        vec![
            ColumnBuffer::Int(ints.clone()),
            ColumnBuffer::Varchar(strs.clone()),
            ColumnBuffer::Double(dbls.clone()),
        ],
    )
    .unwrap();
    drop(conn);
    let rdb = RowDb::in_memory();
    rdb.execute(ddl).unwrap();
    let rows: Vec<Vec<Value>> = (0..n as usize)
        .map(|i| {
            vec![
                Value::Int(ints[i]),
                strs[i].clone().map(Value::Str).unwrap_or(Value::Null),
                Value::Double(dbls[i]),
            ]
        })
        .collect();
    rdb.insert_rows("t", rows).unwrap();
    (db, rdb)
}

fn both(db: &monetlite::Database, rdb: &RowDb, sql: &str) -> (Vec<Vec<Value>>, Vec<Vec<Value>>) {
    let mut conn = db.connect();
    let m = conn.query(sql).unwrap_or_else(|e| panic!("monet: {e} for {sql}"));
    let mrows: Vec<Vec<Value>> = (0..m.nrows()).map(|i| m.row(i)).collect();
    let r = rdb.query(sql).unwrap_or_else(|e| panic!("rowstore: {e} for {sql}"));
    (mrows, r.rows)
}

fn assert_same(sql: &str, a: Vec<Vec<Value>>, b: Vec<Vec<Value>>) {
    assert_eq!(a.len(), b.len(), "row count for {sql}");
    for (x, y) in a.iter().zip(&b) {
        for (u, v) in x.iter().zip(y) {
            let ok = match (u.as_f64(), v.as_f64()) {
                (Ok(a), Ok(b)) => (a - b).abs() < 1e-9 * a.abs().max(1.0),
                _ => u == v,
            };
            assert!(ok, "{sql}: {u:?} vs {v:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn filters_agree(k in -10i32..60, op in 0usize..4, seed in 1i32..5) {
        let (db, rdb) = setup(seed);
        let ops = ["<", "<=", ">", "="];
        let sql = format!("SELECT a, c FROM t WHERE a {} {} ORDER BY a, c", ops[op], k);
        let (a, b) = both(&db, &rdb, &sql);
        assert_same(&sql, a, b);
    }

    #[test]
    fn aggregates_agree(lo in 0i32..40, seed in 1i32..5) {
        let (db, rdb) = setup(seed);
        let sql = format!(
            "SELECT b, count(*), sum(a), avg(c), min(a), max(c) FROM t \
             WHERE a >= {lo} GROUP BY b ORDER BY b"
        );
        let (a, b) = both(&db, &rdb, &sql);
        assert_same(&sql, a, b);
    }

    #[test]
    fn like_and_null_predicates_agree(pct in 0usize..3, seed in 1i32..5) {
        let (db, rdb) = setup(seed);
        let pat = ["s1%", "%2", "s_"][pct];
        let sql = format!(
            "SELECT count(*) FROM t WHERE b LIKE '{pat}' OR b IS NULL"
        );
        let (a, b) = both(&db, &rdb, &sql);
        assert_same(&sql, a, b);
    }

    #[test]
    fn self_join_agrees(k in 0i32..20, seed in 1i32..4) {
        let (db, rdb) = setup(seed);
        let sql = format!(
            "SELECT count(*) FROM t x, t y WHERE x.a = y.a AND x.a < {k}"
        );
        let (a, b) = both(&db, &rdb, &sql);
        assert_same(&sql, a, b);
    }
}

#[test]
fn distinct_and_topn_agree() {
    let (db, rdb) = setup(3);
    for sql in [
        "SELECT DISTINCT b FROM t ORDER BY b",
        "SELECT a, c FROM t ORDER BY c DESC, a LIMIT 7",
        "SELECT b, sum(a) AS s FROM t GROUP BY b HAVING sum(a) > 100 ORDER BY s DESC",
    ] {
        let (a, b) = both(&db, &rdb, sql);
        assert_same(sql, a, b);
    }
}
