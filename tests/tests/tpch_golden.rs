//! Golden-answer harness: all 22 TPC-H queries run at a fixed scale
//! factor and seed, and their formatted output must match the checked-in
//! answer files byte for byte (`tests/golden/q01.tbl` … `q22.tbl`).
//!
//! The files were generated once by this harness (Q1/Q6/Q14 reviewed by
//! hand against the spec's arithmetic — see `tpch_validation.rs` for the
//! straight-line recomputations) and lock the semantics in: any later
//! engine change (pipeline, spill, candidates, optimizer) that alters a
//! result fails here. Regeneration is deliberately gated:
//!
//! ```sh
//! MONETLITE_BLESS=1 cargo test -p monetlite-tests --test tpch_golden
//! ```
//!
//! DOUBLE columns are formatted at 4 decimal places: enough to catch any
//! semantic change, while tolerating the last-bit float-sum reassociation
//! of morsel-parallel aggregation under the CI thread matrix.

use monetlite_tests::fmt_golden_rows;
use monetlite_tpch::{generate, load_monet, queries};
use std::path::PathBuf;

/// Fixed golden corpus parameters. Changing either invalidates every
/// answer file — regenerate with MONETLITE_BLESS=1 and re-review.
const GOLDEN_SF: f64 = 0.02;
const GOLDEN_SEED: u64 = 20260727;

fn golden_path(n: usize) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("golden").join(format!("q{n:02}.tbl"))
}

fn run_query(conn: &mut monetlite::Connection, n: usize) -> String {
    if let Some(s) = queries::setup_sql(n) {
        conn.execute(s).unwrap_or_else(|e| panic!("Q{n} setup: {e}"));
    }
    // EXPLAIN must render every query's plan (MAL + pipelines section).
    let ex = conn
        .query(&format!("EXPLAIN {}", queries::sql(n)))
        .unwrap_or_else(|e| panic!("EXPLAIN Q{n}: {e}"));
    assert!(ex.nrows() > 0, "EXPLAIN Q{n} produced no output");
    let r = conn.query(queries::sql(n)).unwrap_or_else(|e| panic!("Q{n}: {e}"));
    if let Some(s) = queries::teardown_sql(n) {
        conn.execute(s).unwrap_or_else(|e| panic!("Q{n} teardown: {e}"));
    }
    let shape = queries::shape(n);
    assert_eq!(r.ncols(), shape.cols, "Q{n}: output arity vs spec shape");
    if let Some(cap) = shape.limit {
        assert!(r.nrows() as u64 <= cap, "Q{n}: {} rows exceed LIMIT {cap}", r.nrows());
    }
    for key in shape.key_cols {
        assert!(
            r.names().iter().any(|c| c == key),
            "Q{n}: key column '{key}' missing from {:?}",
            r.names()
        );
    }
    fmt_golden_rows(&r)
}

#[test]
fn all_22_queries_match_golden_answers() {
    let bless = std::env::var("MONETLITE_BLESS").as_deref() == Ok("1");
    let data = generate(GOLDEN_SF, GOLDEN_SEED);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    let mut failures = Vec::new();
    for (n, _) in queries::all() {
        let got = run_query(&mut conn, n);
        let path = golden_path(n);
        if bless {
            std::fs::create_dir_all(path.parent().unwrap()).unwrap();
            std::fs::write(&path, &got).unwrap();
            eprintln!("blessed {} ({} rows)", path.display(), got.lines().count());
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("Q{n}: missing golden file {} ({e}); run with MONETLITE_BLESS=1", path.display())
        });
        if got != want {
            let diff_at = got
                .lines()
                .zip(want.lines())
                .position(|(g, w)| g != w)
                .map(|i| {
                    format!(
                        "first diff at row {}:\n  got:  {}\n  want: {}",
                        i,
                        got.lines().nth(i).unwrap_or("<eof>"),
                        want.lines().nth(i).unwrap_or("<eof>")
                    )
                })
                .unwrap_or_else(|| {
                    format!(
                        "row counts differ: got {}, want {}",
                        got.lines().count(),
                        want.lines().count()
                    )
                });
            failures.push(format!("Q{n}: {diff_at}"));
        }
    }
    assert!(failures.is_empty(), "golden mismatches:\n{}", failures.join("\n"));
}

#[test]
fn golden_corpus_is_nontrivial() {
    // The corpus must actually exercise the queries: most answers are
    // non-empty at the golden scale factor, so an engine regression that
    // silently returns nothing cannot hide behind an empty golden file.
    if std::env::var("MONETLITE_BLESS").as_deref() == Ok("1") {
        return;
    }
    let mut nonempty = 0;
    for (n, _) in queries::all() {
        let want = std::fs::read_to_string(golden_path(n)).expect("golden files checked in");
        if !want.trim().is_empty() {
            nonempty += 1;
        }
    }
    assert!(nonempty >= 18, "only {nonempty}/22 golden answers are non-empty");
}
