//! Streaming-vs-materialized engine parity: the chunk-at-a-time pipeline
//! engine must produce exactly the results of the paper's
//! operator-at-a-time engine on every workload -- the full TPC-H Q1-Q22
//! suite under the thread/vector matrix, a 24kB spill budget, and
//! candidates on/off -- at every thread count, including chunk-boundary
//! edge cases (empty tables, sub-vector tables, NULL sentinels straddling
//! vector boundaries, LIMIT early-exit).

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite_tpch::{generate, load_monet, queries};
use monetlite_types::{ColumnBuffer, Value};

/// Run `sql` under the given options, returning all rows.
fn run(db: &monetlite::Database, sql: &str, opts: ExecOptions) -> Vec<Vec<Value>> {
    let mut conn = db.connect();
    conn.set_exec_options(opts);
    let r = conn.query(sql).unwrap_or_else(|e| panic!("{e} for {sql}"));
    (0..r.nrows()).map(|i| r.row(i)).collect()
}

/// Run `sql` and also return the execution counters (spill assertions).
fn run_counting(
    db: &monetlite::Database,
    sql: &str,
    opts: ExecOptions,
) -> (Vec<Vec<Value>>, monetlite::exec::CountersSnapshot) {
    let mut conn = db.connect();
    conn.set_exec_options(opts);
    let r = conn.query(sql).unwrap_or_else(|e| panic!("{e} for {sql}"));
    let rows = (0..r.nrows()).map(|i| r.row(i)).collect();
    (rows, conn.last_exec_counters().expect("counters after query"))
}

/// Run per-query DDL (Q15's CREATE VIEW) around `f`. Views are
/// database-level, so one setup covers every engine-option variant run
/// inside `f`.
fn with_query_setup(db: &monetlite::Database, n: usize, f: impl FnOnce()) {
    if let Some(ddl) = queries::setup_sql(n) {
        db.connect().execute(ddl).unwrap_or_else(|e| panic!("Q{n} setup: {e}"));
    }
    f();
    if let Some(ddl) = queries::teardown_sql(n) {
        db.connect().execute(ddl).unwrap_or_else(|e| panic!("Q{n} teardown: {e}"));
    }
}

fn materialized() -> ExecOptions {
    ExecOptions { mode: ExecMode::Materialized, ..Default::default() }
}

fn streaming(threads: usize, vector_size: usize) -> ExecOptions {
    ExecOptions { mode: ExecMode::Streaming, threads, vector_size, ..Default::default() }
}

/// Compare row-for-row (both engines must agree on order too: all the
/// compared queries either ORDER BY or aggregate to one row).
fn assert_rows_eq(sql: &str, a: &[Vec<Value>], b: &[Vec<Value>], label: &str) {
    assert_eq!(a.len(), b.len(), "row count for {sql} ({label})");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        for (u, v) in x.iter().zip(y) {
            let ok = match (u, v) {
                (Value::Double(p), Value::Double(q)) => {
                    (p - q).abs() <= 1e-9 * p.abs().max(1.0) || (p.is_nan() && q.is_nan())
                }
                _ => u == v,
            };
            assert!(ok, "{sql} ({label}) row {i}: {u:?} vs {v:?}");
        }
    }
}

#[test]
fn tpch_queries_agree_across_engines_and_threads() {
    let data = generate(0.005, 42);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    for (n, sql) in queries::all() {
        with_query_setup(&db, n, || {
            let base = run(&db, sql, materialized());
            // Single-thread streaming must match row-for-row; tiny vectors
            // force many chunk boundaries.
            for (threads, vs) in [(1, 64 * 1024), (1, 1000), (4, 1000), (8, 512)] {
                let got = run(&db, sql, streaming(threads, vs));
                assert_rows_eq(sql, &base, &got, &format!("Q{n} t={threads} v={vs}"));
            }
        });
    }
}

#[test]
fn tpch_queries_agree_spilled_vs_unspilled() {
    // Out-of-core execution: an artificially tiny memory budget forces
    // the pipeline breakers (hash-aggregate group tables, hash-join build
    // sides, sort buffers) to spill partitions/runs to disk. Results must
    // match the unbounded run row for row on TPC-H Q1–Q10.
    let data = generate(0.005, 42);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    let total_spilled = std::cell::Cell::new(0u64);
    for (n, sql) in queries::all() {
        with_query_setup(&db, n, || {
            let base = run(&db, sql, streaming(1, 1024));
            for threads in [1, 4] {
                let mut tiny = streaming(threads, 1024);
                tiny.memory_budget = 24 * 1024;
                let (got, counters) = run_counting(&db, sql, tiny);
                assert_rows_eq(sql, &base, &got, &format!("Q{n} spilled t={threads}"));
                total_spilled.set(total_spilled.get() + counters.spilled_partitions);
            }
        });
    }
    assert!(total_spilled.get() > 0, "a 24kB budget must force spilling somewhere in Q1–Q22");
}

/// Streaming options with candidate lists and zonemaps forced off (the
/// gather-at-the-filter baseline).
fn candidates_off(mut o: ExecOptions) -> ExecOptions {
    o.use_candidates = false;
    o.use_zonemaps = false;
    o
}

/// Streaming options with candidate lists and zonemaps forced on,
/// regardless of the CI env matrix (MONETLITE_CANDIDATES=0 leg).
fn candidates_on(mut o: ExecOptions) -> ExecOptions {
    o.use_candidates = true;
    o.use_zonemaps = true;
    o
}

#[test]
fn tpch_queries_agree_with_candidates_on_and_off() {
    // Candidate-list execution must be invisible in results: every TPC-H
    // query returns identical rows with selection pass-through + zonemap
    // skipping enabled and disabled, across thread counts and vector
    // sizes that force many chunk boundaries.
    let data = generate(0.005, 42);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    for (n, sql) in queries::all() {
        with_query_setup(&db, n, || {
            let base = run(&db, sql, candidates_off(streaming(1, 1024)));
            for (threads, vs) in [(1, 1024), (1, 333), (4, 1024)] {
                let got = run(&db, sql, candidates_on(streaming(threads, vs)));
                assert_rows_eq(sql, &base, &got, &format!("Q{n} candidates t={threads} v={vs}"));
            }
        });
    }
}

/// Reorder a generated table's rows by the permutation (applied to every
/// column buffer) — used to simulate date-clustered ingest order.
fn permute_table(t: &mut monetlite_tpch::gen::Table, perm: &[usize]) {
    use monetlite_types::ColumnBuffer as C;
    for c in &mut t.cols {
        *c = match c {
            C::Bool(v) => C::Bool(perm.iter().map(|&i| v[i]).collect()),
            C::Int(v) => C::Int(perm.iter().map(|&i| v[i]).collect()),
            C::Bigint(v) => C::Bigint(perm.iter().map(|&i| v[i]).collect()),
            C::Double(v) => C::Double(perm.iter().map(|&i| v[i]).collect()),
            C::Decimal { data, scale } => {
                C::Decimal { data: perm.iter().map(|&i| data[i]).collect(), scale: *scale }
            }
            C::Varchar(v) => C::Varchar(perm.iter().map(|&i| v[i].clone()).collect()),
            C::Date(v) => C::Date(perm.iter().map(|&i| v[i]).collect()),
        };
    }
}

#[test]
fn q6_zonemap_skips_on_date_clustered_lineitem() {
    // The acceptance shape: lineitem ingested in ship-date order (the
    // canonical clustered fact table) lets Q6's one-year date range skip
    // whole vectors via zonemaps — with results identical to the
    // gather-based baseline. SF 0.02 gives ~120k lineitem rows, i.e.
    // many 8Ki-row zones.
    let mut data = generate(0.02, 7);
    let ship_col = data.lineitem.schema.index_of("l_shipdate").expect("lineitem has l_shipdate");
    let monetlite_types::ColumnBuffer::Date(dates) = &data.lineitem.cols[ship_col] else {
        panic!("l_shipdate must be DATE");
    };
    let mut perm: Vec<usize> = (0..dates.len()).collect();
    perm.sort_by_key(|&i| dates[i]);
    permute_table(&mut data.lineitem, &perm);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    let sql = queries::sql(6);
    let base = run(&db, sql, candidates_off(streaming(1, 2048)));
    let (got, counters) = run_counting(&db, sql, candidates_on(streaming(1, 2048)));
    assert_rows_eq(sql, &base, &got, "Q6 date-clustered");
    assert!(
        counters.vectors_skipped > 0,
        "Q6's shipdate range must skip zones on date-clustered lineitem (got {counters:?})"
    );
    assert!(counters.sel_vectors > 0, "Q6's selective filter must carry candidate lists");
}

#[test]
fn zonemap_skipping_correct_across_deletes_and_vector_boundaries() {
    // Deletes shrink the set of matches but never invalidate a zonemap
    // skip; probes landing exactly on zone / vector boundaries must not
    // lose rows. Compare candidates+zonemaps on vs off at awkward vector
    // sizes, over a clustered key with a deleted stripe.
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE t (k INTEGER NOT NULL, v INTEGER NOT NULL)").unwrap();
    let n: i32 = 40_000;
    conn.append(
        "t",
        vec![
            ColumnBuffer::Int((0..n).collect()),
            ColumnBuffer::Int((0..n).map(|x| x * 3).collect()),
        ],
    )
    .unwrap();
    // Delete a stripe straddling the first 8Ki zone boundary and a few
    // scattered rows (every 97th).
    conn.execute("DELETE FROM t WHERE k >= 8000 AND k < 8500").unwrap();
    conn.execute("DELETE FROM t WHERE k % 97 = 0").unwrap();
    drop(conn);
    // Probes at and around zone boundaries (8192-row zones), including
    // empty ranges and ranges entirely within the deleted stripe.
    let queries = [
        "SELECT count(*), sum(v) FROM t WHERE k < 100".to_string(),
        "SELECT count(*), sum(v) FROM t WHERE k < 8192".to_string(),
        "SELECT count(*), sum(v) FROM t WHERE k >= 8191 AND k <= 8193".to_string(),
        "SELECT count(*), sum(v) FROM t WHERE k >= 8100 AND k < 8400".to_string(),
        "SELECT count(*), sum(v) FROM t WHERE k >= 16384 AND k < 16390".to_string(),
        "SELECT count(*), sum(v) FROM t WHERE k >= 39999".to_string(),
        "SELECT count(*), sum(v) FROM t WHERE k >= 40000".to_string(),
        "SELECT count(*) FROM t WHERE k = 8192".to_string(),
    ];
    let mut any_skipped = 0u64;
    for sql in &queries {
        let base = run(&db, sql, candidates_off(streaming(1, 1024)));
        for vs in [512, 1000, 1024, 8192, 64 * 1024] {
            let (got, counters) = run_counting(&db, sql, candidates_on(streaming(1, vs)));
            assert_rows_eq(sql, &base, &got, &format!("v={vs}"));
            any_skipped += counters.vectors_skipped;
        }
    }
    assert!(any_skipped > 0, "selective probes over clustered data must skip vectors");
}

#[test]
fn grouped_aggregate_and_join_spill_with_vmem_budget_smaller_than_state() {
    // The acceptance shape: a Vmem budget smaller than the query's
    // build/group state makes a grouped-aggregate + hash-join TPC-H query
    // spill (counters > 0) while returning results identical to the
    // unbounded run. Q10 groups by customer attributes (thousands of
    // groups with VARCHAR keys) on top of a three-way join; Q3 builds on
    // filtered orders and groups by l_orderkey.
    let data = generate(0.005, 42);
    let unbounded = monetlite::Database::open_in_memory();
    let mut conn = unbounded.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    let budgeted = monetlite::Database::open_with(monetlite::DbOptions {
        vmem_budget: 8 * 1024,
        ..Default::default()
    })
    .unwrap();
    let mut conn = budgeted.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    // Pin the operator budget to "unset": this test exercises the *vmem
    // headroom* fallback, which an explicit MONETLITE_MEMORY_BUDGET from
    // the CI env matrix would otherwise pre-empt (24kB > the state these
    // queries build at this scale factor, so nothing would spill).
    let mut opts = streaming(1, 1024);
    opts.memory_budget = usize::MAX;
    for n in [3usize, 10] {
        let sql = queries::sql(n);
        let base = run(&unbounded, sql, opts);
        let (got, counters) = run_counting(&budgeted, sql, opts);
        assert_rows_eq(sql, &base, &got, &format!("Q{n} vmem-budgeted"));
        assert!(
            counters.spilled_partitions > 0,
            "Q{n}: group/build state exceeds the 8kB vmem budget, spill expected \
             (got {counters:?})"
        );
        assert!(counters.spill_bytes > 0, "Q{n}");
    }
}

#[test]
fn external_sort_spills_and_matches_unbounded_order() {
    let data = generate(0.005, 42);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    drop(conn);
    let sql = "SELECT l_orderkey, l_extendedprice FROM lineitem \
               ORDER BY l_extendedprice DESC, l_orderkey";
    let base = run(&db, sql, streaming(1, 1024));
    for threads in [1, 4] {
        let mut tiny = streaming(threads, 1024);
        tiny.memory_budget = 32 * 1024;
        let (got, counters) = run_counting(&db, sql, tiny);
        assert_rows_eq(sql, &base, &got, &format!("external sort t={threads}"));
        assert!(
            counters.spilled_partitions > 0,
            "lineitem sort must spill runs under a 32kB budget"
        );
    }
}

#[test]
fn acs_style_wide_aggregation_agrees() {
    // Grouped aggregation over a wider table with NULLs mixed in.
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE p (st INT, age INT, wt DOUBLE, inc DOUBLE)").unwrap();
    let n = 10_000;
    let st: Vec<i32> = (0..n).map(|i| i % 7).collect();
    let age: Vec<Option<i32>> =
        (0..n).map(|i| if i % 97 == 0 { None } else { Some(i % 95) }).collect();
    let wt: Vec<f64> = (0..n).map(|i| 1.0 + (i % 200) as f64).collect();
    let inc: Vec<f64> = (0..n).map(|i| (i % 1000) as f64 * 13.5).collect();
    let age_buf = ColumnBuffer::Int(
        age.iter().map(|v| v.unwrap_or(monetlite_types::nulls::NULL_I32)).collect(),
    );
    conn.append(
        "p",
        vec![ColumnBuffer::Int(st), age_buf, ColumnBuffer::Double(wt), ColumnBuffer::Double(inc)],
    )
    .unwrap();
    drop(conn);
    let sql = "SELECT st, count(*), count(age), sum(inc), avg(wt), min(age), max(inc), \
               median(inc) FROM p GROUP BY st ORDER BY st";
    let base = run(&db, sql, materialized());
    for (threads, vs) in [(1, 512), (4, 512), (4, 333)] {
        let got = run(&db, sql, streaming(threads, vs));
        assert_rows_eq(sql, &base, &got, &format!("t={threads} v={vs}"));
    }
}

#[test]
fn distinct_count_agrees_in_parallel() {
    // COUNT(DISTINCT) is mergeable in the streaming engine (sets union),
    // unlike mitosis which skips it.
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE t (g INT, x INT)").unwrap();
    let n = 5_000;
    conn.append(
        "t",
        vec![
            ColumnBuffer::Int((0..n).map(|i| i % 3).collect()),
            ColumnBuffer::Int((0..n).map(|i| i % 41).collect()),
        ],
    )
    .unwrap();
    drop(conn);
    let sql = "SELECT g, count(DISTINCT x) FROM t GROUP BY g ORDER BY g";
    let base = run(&db, sql, materialized());
    let got = run(&db, sql, streaming(4, 256));
    assert_rows_eq(sql, &base, &got, "count distinct");
}

// ---------------------------------------------------------------------------
// Chunk-boundary edge cases
// ---------------------------------------------------------------------------

fn edge_db() -> monetlite::Database {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE empty_t (a INT, b VARCHAR(8))").unwrap();
    conn.execute("CREATE TABLE tiny (a INT, b VARCHAR(8))").unwrap();
    conn.execute("INSERT INTO tiny VALUES (1, 'x'), (2, NULL), (3, 'z')").unwrap();
    // A table whose NULL sentinels land exactly at vector boundaries when
    // vector_size divides the positions.
    conn.execute("CREATE TABLE edge (a INT, d DOUBLE)").unwrap();
    let n = 4_096;
    let a: Vec<i32> = (0..n)
        .map(|i| {
            // NULL at every multiple of 512: first/last row of each
            // 512-row vector.
            if i % 512 == 0 || i % 512 == 511 {
                monetlite_types::nulls::NULL_I32
            } else {
                i % 100
            }
        })
        .collect();
    let d: Vec<f64> = (0..n).map(|i| if i % 512 == 1 { f64::NAN } else { i as f64 }).collect();
    conn.append("edge", vec![ColumnBuffer::Int(a), ColumnBuffer::Double(d)]).unwrap();
    db
}

#[test]
fn empty_and_subvector_tables_agree() {
    let db = edge_db();
    for sql in [
        "SELECT * FROM empty_t",
        "SELECT a FROM empty_t WHERE a > 0",
        "SELECT count(*), sum(a), min(b) FROM empty_t",
        "SELECT b, count(*) FROM empty_t GROUP BY b",
        "SELECT DISTINCT a FROM empty_t",
        "SELECT * FROM empty_t ORDER BY a LIMIT 3",
        "SELECT t.a, e.b FROM tiny t, empty_t e WHERE t.a = e.a",
        "SELECT * FROM tiny ORDER BY a",
        "SELECT count(*) FROM tiny WHERE b IS NULL",
    ] {
        let base = run(&db, sql, materialized());
        for (threads, vs) in [(1, 2), (4, 2), (4, 64 * 1024)] {
            let got = run(&db, sql, streaming(threads, vs));
            assert_rows_eq(sql, &base, &got, &format!("t={threads} v={vs}"));
        }
    }
}

#[test]
fn null_sentinels_straddling_vector_boundaries_agree() {
    let db = edge_db();
    for sql in [
        "SELECT count(*), count(a), sum(a) FROM edge",
        "SELECT count(*) FROM edge WHERE a IS NULL",
        "SELECT count(*) FROM edge WHERE a IS NOT NULL AND a < 50",
        "SELECT a, count(*) FROM edge GROUP BY a ORDER BY a",
        "SELECT sum(d) FROM edge WHERE d > 100.0",
    ] {
        let base = run(&db, sql, materialized());
        // vector=512 puts every sentinel at a chunk edge; 511/513 shift
        // them off-by-one in both directions.
        for vs in [512, 511, 513] {
            for threads in [1, 4] {
                let got = run(&db, sql, streaming(threads, vs));
                assert_rows_eq(sql, &base, &got, &format!("t={threads} v={vs}"));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deleted-rows visibility: streaming scans and the morsel cursor size
// morsels from *physical* table rows, so the deletion mask must be applied
// identically in every ranged morsel, including masks crossing vector
// boundaries, fully-deleted morsels, and deletes + LIMIT early-exit.
// ---------------------------------------------------------------------------

fn deletion_db() -> monetlite::Database {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE del_t (a INT, g INT, s VARCHAR(8))").unwrap();
    let n = 4_096;
    conn.append(
        "del_t",
        vec![
            ColumnBuffer::Int((0..n).collect()),
            ColumnBuffer::Int((0..n).map(|i| i % 7).collect()),
            ColumnBuffer::Varchar((0..n).map(|i| Some(format!("s{}", i % 13))).collect()),
        ],
    )
    .unwrap();
    // Masks straddling every 512-row vector boundary (first/last row of
    // each vector) ...
    conn.execute("DELETE FROM del_t WHERE a % 512 = 0 OR a % 512 = 511").unwrap();
    // ... plus one entire morsel deleted (rows 1024..1536 at vector=512).
    conn.execute("DELETE FROM del_t WHERE a >= 1024 AND a < 1536").unwrap();
    db
}

#[test]
fn deletion_masks_crossing_vector_boundaries_agree() {
    let db = deletion_db();
    for sql in [
        "SELECT count(*) FROM del_t",
        "SELECT count(*), sum(a), min(a), max(a) FROM del_t",
        "SELECT count(*) FROM del_t WHERE a % 512 = 0",
        "SELECT count(*) FROM del_t WHERE a >= 1000 AND a < 1600",
        "SELECT g, count(*), sum(a) FROM del_t GROUP BY g ORDER BY g",
        "SELECT s, count(*) FROM del_t GROUP BY s ORDER BY s",
        "SELECT a FROM del_t WHERE a < 600 ORDER BY a",
        "SELECT DISTINCT g FROM del_t ORDER BY g",
        "SELECT a FROM del_t ORDER BY a DESC LIMIT 9",
        "SELECT x.a, y.g FROM del_t x, del_t y WHERE x.a = y.a AND x.a < 700 ORDER BY 1",
    ] {
        let base = run(&db, sql, materialized());
        // vector=512 aligns morsels with the deletion pattern; 511/513
        // shift the mask off-by-one in both directions; 2 makes nearly
        // every morsel boundary interact with the mask.
        for vs in [512, 511, 513, 2, 64 * 1024] {
            for threads in [1, 4] {
                let got = run(&db, sql, streaming(threads, vs));
                assert_rows_eq(sql, &base, &got, &format!("deletes t={threads} v={vs}"));
            }
        }
    }
}

#[test]
fn fully_deleted_table_and_morsel_agree() {
    let db = deletion_db();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE gone (a INT)").unwrap();
    conn.append("gone", vec![ColumnBuffer::Int((0..2_000).collect())]).unwrap();
    conn.execute("DELETE FROM gone").unwrap();
    drop(conn);
    for sql in [
        "SELECT * FROM gone",
        "SELECT count(*), sum(a) FROM gone",
        "SELECT a, count(*) FROM gone GROUP BY a",
        "SELECT * FROM gone ORDER BY a LIMIT 3",
    ] {
        let base = run(&db, sql, materialized());
        for (threads, vs) in [(1, 512), (4, 512), (4, 64 * 1024)] {
            let got = run(&db, sql, streaming(threads, vs));
            assert_rows_eq(sql, &base, &got, &format!("all-deleted t={threads} v={vs}"));
        }
    }
}

#[test]
fn deletes_with_limit_early_exit_agree() {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE big_del (a INT, b INT)").unwrap();
    let n = 100_000;
    conn.append(
        "big_del",
        vec![
            ColumnBuffer::Int((0..n).collect()),
            ColumnBuffer::Int((0..n).map(|i| i % 17).collect()),
        ],
    )
    .unwrap();
    // The first ~5 morsels (vector=1024) become fully deleted, so the
    // early-exit prefix logic must walk across empty morsels; a later
    // stripe is deleted mid-table.
    conn.execute("DELETE FROM big_del WHERE a < 5000").unwrap();
    conn.execute("DELETE FROM big_del WHERE a >= 50000 AND a < 51000").unwrap();
    drop(conn);
    for sql in [
        "SELECT a FROM big_del LIMIT 5",
        "SELECT a, b FROM big_del WHERE b = 3 LIMIT 7",
        "SELECT a FROM big_del ORDER BY a LIMIT 4",
        "SELECT a FROM big_del LIMIT 0",
    ] {
        let base = run(&db, sql, materialized());
        for (threads, vs) in [(1, 1024), (4, 1024), (1, 333)] {
            let got = run(&db, sql, streaming(threads, vs));
            assert_rows_eq(sql, &base, &got, &format!("del+limit t={threads} v={vs}"));
        }
    }
    // Early exit still happens despite the deleted prefix.
    let mut conn = db.connect();
    conn.set_exec_options(streaming(1, 1024));
    let r = conn.query("SELECT a FROM big_del LIMIT 5").unwrap();
    assert_eq!(r.nrows(), 5);
    assert_eq!(r.value(0, 0), Value::Int(5000));
    let counters = conn.last_exec_counters().unwrap();
    assert!(
        counters.morsels < 98,
        "limit must early-exit even when leading morsels are fully deleted \
         (dispatched {})",
        counters.morsels
    );
}

#[test]
fn limit_and_topn_agree_and_exit_early() {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE big (a INT, b INT)").unwrap();
    let n = 100_000;
    conn.append(
        "big",
        vec![
            ColumnBuffer::Int((0..n).collect()),
            ColumnBuffer::Int((0..n).map(|i| i % 17).collect()),
        ],
    )
    .unwrap();
    drop(conn);
    for sql in [
        "SELECT a FROM big LIMIT 5",
        "SELECT a, b FROM big WHERE b = 3 LIMIT 7",
        "SELECT a, b FROM big ORDER BY b, a LIMIT 10",
        "SELECT a FROM big ORDER BY a DESC LIMIT 3",
        "SELECT a FROM big LIMIT 0",
    ] {
        let base = run(&db, sql, materialized());
        for (threads, vs) in [(1, 1024), (4, 1024)] {
            let got = run(&db, sql, streaming(threads, vs));
            assert_rows_eq(sql, &base, &got, &format!("t={threads} v={vs}"));
        }
    }
    // Early exit: LIMIT 5 over ~98 morsels must stop after a handful.
    let mut conn = db.connect();
    conn.set_exec_options(streaming(1, 1024));
    let r = conn.query("SELECT a FROM big LIMIT 5").unwrap();
    assert_eq!(r.nrows(), 5);
    // The counters live per-execution inside the connection; assert via
    // the plan-level API instead: a fresh context processing the same
    // shape dispatches far fewer morsels than the full scan would need.
    // (Covered more directly in crates/core pipeline unit tests.)
}
