//! # monetlite-sql
//!
//! SQL frontend shared by the `monetlite` columnar engine and the
//! `monetlite-rowstore` baseline: a hand-written lexer ([`lexer`]), the
//! abstract syntax tree ([`ast`]) and a recursive-descent parser
//! ([`parser`]).
//!
//! The dialect covers what the paper's workloads require (§4): the full
//! TPC-H Q1–Q22 feature set — multi-way joins (inner and left outer),
//! grouped aggregation with HAVING, ORDER BY/LIMIT, scalar and
//! EXISTS/IN subqueries (correlated), `WITH` common table expressions,
//! derived tables with column alias lists, CASE, LIKE, BETWEEN,
//! `substring(x FROM a FOR b)`, EXTRACT and DATE/INTERVAL arithmetic —
//! plus the DDL/DML surface of an embedded store: CREATE/DROP TABLE,
//! CREATE/DROP VIEW, CREATE \[ORDER\] INDEX, INSERT/UPDATE/DELETE, and
//! explicit transactions.

#![forbid(unsafe_code)]

pub mod ast;
pub mod canon;
pub mod lexer;
pub mod parser;

pub use ast::*;
pub use parser::{parse_statement, parse_statements};
