//! Cross-engine result equality: the columnar engine, the volcano row
//! store and the hand-written dataframe scripts must agree on every TPC-H
//! query over identical data.

use monetlite_tpch::{frames, generate, load_monet, load_rowdb, queries};
use monetlite_types::Value;

fn approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Null, Value::Null) => true,
        (x, y) => match (x.as_f64(), y.as_f64()) {
            (Ok(fx), Ok(fy)) => {
                let tol = 1e-6 * fx.abs().max(fy.abs()).max(1.0);
                (fx - fy).abs() <= tol
            }
            _ => x == y,
        },
    }
}

fn rows_match(qn: usize, a: &[Vec<Value>], b: &[Vec<Value>], what: &str) {
    assert_eq!(a.len(), b.len(), "Q{qn} ({what}): row count {} vs {}", a.len(), b.len());
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "Q{qn} ({what}): row {i} arity");
        for (ca, cb) in ra.iter().zip(rb) {
            assert!(approx_eq(ca, cb), "Q{qn} ({what}): row {i}: {ca:?} vs {cb:?}");
        }
    }
}

#[test]
fn tpch_q1_to_q10_all_engines_agree() {
    let data = generate(0.004, 20260611);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    let rdb = monetlite_rowstore::RowDb::in_memory();
    load_rowdb(&rdb, &data).unwrap();
    let session = monetlite_frame::Session::unlimited();
    let fr = frames::TpchFrames::load(&session, &data).unwrap();

    for n in 1..=10 {
        let sql = queries::sql(n);
        let m = conn.query(sql).unwrap_or_else(|e| panic!("monetlite Q{n}: {e}"));
        let mrows: Vec<Vec<Value>> = (0..m.nrows()).map(|i| m.row(i)).collect();
        let r = rdb.query(sql).unwrap_or_else(|e| panic!("rowstore Q{n}: {e}"));
        rows_match(n, &mrows, &r.rows, "monet vs rowstore");
        // Frame scripts return the same aggregate values (column order per
        // script; compare the sorted set of first+last columns loosely):
        let f = frames::run(n, &fr).unwrap_or_else(|e| panic!("frame Q{n}: {e}"));
        assert_eq!(f.rows(), mrows.len(), "Q{n}: frame row count");
    }
}
