//! The database server side of the socket configuration.

use crate::protocol::{encode_row, type_name, unescape_line};
use bytes::BytesMut;
use monetlite::Database;
use monetlite_rowstore::RowDb;
use monetlite_types::{LogicalType, Result, Value};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which engine runs inside the server process.
pub enum ServerEngine {
    /// The columnar engine ("MonetDB server" bar in Figures 5/6).
    Monet(Database),
    /// The row store ("PostgreSQL"/"MariaDB" bars, by join profile).
    Row(RowDb),
}

/// A row-wise result set: (names, types, rows, rows_affected).
type RowResult = (Vec<String>, Vec<LogicalType>, Vec<Vec<Value>>, u64);

impl ServerEngine {
    /// Execute SQL, producing a row-wise result (the server always
    /// serialises row-at-a-time regardless of engine layout).
    fn run(&self, sql: &str) -> Result<RowResult> {
        match self {
            ServerEngine::Monet(db) => {
                // A connection per statement keeps the server stateless
                // (autocommit), like the paper's benchmark clients.
                let mut conn = db.connect();
                let r = conn.query(sql)?;
                let rows: Vec<Vec<Value>> = (0..r.nrows()).map(|i| r.row(i)).collect();
                Ok((r.names().to_vec(), r.types().to_vec(), rows, r.rows_affected()))
            }
            ServerEngine::Row(db) => {
                let r = db.query(sql)?;
                Ok((r.names, r.types, r.rows, r.rows_affected))
            }
        }
    }
}

/// A database server listening on localhost.
pub struct Server {
    port: u16,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Start serving `engine` on an ephemeral localhost port.
    pub fn start(engine: ServerEngine) -> Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let port = listener.local_addr()?.port();
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = stop.clone();
        let engine = Arc::new(engine);
        let handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Relaxed) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let engine = engine.clone();
                let stop3 = stop2.clone();
                std::thread::spawn(move || {
                    let _ = serve_connection(stream, &engine, &stop3);
                });
            }
        });
        Ok(Server { port, stop, handle: Some(handle) })
    }

    /// The port clients connect to.
    pub fn port(&self) -> u16 {
        self.port
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept loop.
        let _ = TcpStream::connect(("127.0.0.1", self.port));
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    engine: &ServerEngine,
    stop: &AtomicBool,
) -> std::io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        if stop.load(Ordering::Relaxed) {
            return Ok(());
        }
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(()); // client hung up
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if let Some(sql) = line.strip_prefix("Q ") {
            let sql = unescape_line(sql);
            match engine.run(&sql) {
                Err(e) => {
                    writeln!(writer, "E {}", e.to_string().replace('\n', " "))?;
                }
                Ok((names, types, rows, affected)) => {
                    if names.is_empty() {
                        writeln!(writer, "A {affected}")?;
                    } else {
                        writeln!(writer, "R {}", names.len())?;
                        writeln!(writer, "N {}", names.join("\t"))?;
                        writeln!(
                            writer,
                            "T {}",
                            types.iter().map(|&t| type_name(t)).collect::<Vec<_>>().join("\t")
                        )?;
                        // Row-at-a-time serialisation: the client-protocol
                        // cost of paper ref [15].
                        let mut buf = BytesMut::with_capacity(8192);
                        for row in &rows {
                            encode_row(&mut buf, row);
                            if buf.len() >= 8192 {
                                writer.write_all(&buf)?;
                                buf.clear();
                            }
                        }
                        writer.write_all(&buf)?;
                        writeln!(writer, ".")?;
                    }
                }
            }
            writer.flush()?;
        } else if line == "X" || line.is_empty() {
            return Ok(());
        } else {
            writeln!(writer, "E protocol violation")?;
            writer.flush()?;
        }
    }
}
