//! Criterion bench for Figures 7/8: ACS load + survey statistics.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite_bench::{MonetSource, RowSource};
use monetlite_types::Value;

fn bench_acs(c: &mut Criterion) {
    let rows = 5_000;
    let d = monetlite_acs::wrangle(monetlite_acs::generate(rows, 1)).unwrap();

    let mut g = c.benchmark_group("acs");
    g.sample_size(10);
    g.bench_function("fig7_load_monetlite", |b| {
        b.iter(|| {
            let db = monetlite::Database::open_in_memory();
            let mut conn = db.connect();
            conn.execute(&monetlite_acs::ddl(&d)).unwrap();
            conn.append("acs", d.cols.clone()).unwrap();
        })
    });
    g.bench_function("fig7_load_rowstore", |b| {
        let rows: Vec<Vec<Value>> =
            (0..d.rows).map(|r| d.cols.iter().map(|c| c.get(r)).collect()).collect();
        b.iter(|| {
            let db = monetlite_rowstore::RowDb::in_memory();
            db.execute(&monetlite_acs::ddl(&d)).unwrap();
            db.insert_rows("acs", rows.clone()).unwrap();
        })
    });

    let db = monetlite::Database::open_in_memory();
    // Caches off: each iteration re-issues the same survey queries.
    let mut conn = monetlite_bench::uncached_conn(&db);
    conn.execute(&monetlite_acs::ddl(&d)).unwrap();
    conn.append("acs", d.cols.clone()).unwrap();
    g.bench_function("fig8_stats_monetlite", |b| {
        b.iter(|| {
            let mut src = MonetSource { conn: &mut conn };
            monetlite_acs::survey::analysis(&mut src).unwrap()
        })
    });
    let rdb = monetlite_rowstore::RowDb::in_memory();
    rdb.execute(&monetlite_acs::ddl(&d)).unwrap();
    let rws: Vec<Vec<Value>> =
        (0..d.rows).map(|r| d.cols.iter().map(|c| c.get(r)).collect()).collect();
    rdb.insert_rows("acs", rws).unwrap();
    g.bench_function("fig8_stats_rowstore", |b| {
        b.iter(|| {
            let mut src = RowSource { db: &rdb };
            monetlite_acs::survey::analysis(&mut src).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_acs);
criterion_main!(benches);
