//! Table schemas: ordered, named, typed column lists.

use crate::error::{MlError, Result};
use crate::logical::LogicalType;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name (stored lower-cased; SQL identifiers are
    /// case-insensitive unless quoted).
    pub name: String,
    /// Logical type.
    pub ty: LogicalType,
    /// Whether NULLs are admitted (NOT NULL constraint).
    pub nullable: bool,
}

impl Field {
    /// Construct a nullable field.
    pub fn new(name: impl Into<String>, ty: LogicalType) -> Field {
        Field { name: name.into().to_ascii_lowercase(), ty, nullable: true }
    }

    /// Construct a NOT NULL field.
    pub fn not_null(name: impl Into<String>, ty: LogicalType) -> Field {
        Field { nullable: false, ..Field::new(name, ty) }
    }
}

/// An ordered collection of fields describing a table or result set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Build from fields, rejecting duplicate column names.
    pub fn new(fields: Vec<Field>) -> Result<Schema> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(MlError::Catalog(format!("duplicate column name '{}'", f.name)));
            }
        }
        Ok(Schema { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Index of a column by (case-insensitive) name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.fields.iter().position(|f| f.name == lower)
    }

    /// Field by name.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.index_of(name)
            .map(|i| &self.fields[i])
            .ok_or_else(|| MlError::Catalog(format!("unknown column '{name}'")))
    }

    /// Field by position.
    pub fn field_at(&self, idx: usize) -> &Field {
        &self.fields[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LogicalType::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let s = Schema::new(vec![Field::new("L_ORDERKEY", Int), Field::new("l_comment", Varchar)])
            .unwrap();
        assert_eq!(s.index_of("l_orderkey"), Some(0));
        assert_eq!(s.index_of("L_COMMENT"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert!(s.field("l_comment").is_ok());
        assert!(s.field("ghost").is_err());
    }

    #[test]
    fn duplicates_rejected() {
        let r = Schema::new(vec![Field::new("a", Int), Field::new("A", Double)]);
        assert!(r.is_err());
    }

    #[test]
    fn not_null_flag() {
        let f = Field::not_null("k", Int);
        assert!(!f.nullable);
        assert!(Field::new("v", Int).nullable);
    }
}
