//! Shared helpers for cross-crate integration tests.

#![forbid(unsafe_code)]

use monetlite_types::Value;

/// The golden-answer cell format shared by the TPC-H answer goldens
/// (`tpch_golden.rs`) and every sweep that compares against them
/// (`plan_golden.rs`): NULL spelled out, DOUBLEs at 4 decimal places —
/// enough to catch any semantic change while tolerating the last-bit
/// float-sum reassociation of morsel-parallel aggregation.
pub fn fmt_golden_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Double(d) => format!("{d:.4}"),
        other => other.to_string(),
    }
}

/// A full result as golden-answer text: pipe-joined cells, one row per
/// line.
pub fn fmt_golden_rows(r: &monetlite::QueryResult) -> String {
    let mut out = String::new();
    for i in 0..r.nrows() {
        let row: Vec<String> = (0..r.ncols()).map(|c| fmt_golden_value(&r.value(i, c))).collect();
        out.push_str(&row.join("|"));
        out.push('\n');
    }
    out
}
