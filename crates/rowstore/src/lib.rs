//! # monetlite-rowstore
//!
//! The traditional-RDBMS baseline of the paper's evaluation (§4): a
//! **row-store** with a **volcano** (tuple-at-a-time) execution model,
//! standing in for SQLite (nested-loop joins, in-process) and
//! PostgreSQL/MariaDB (hash joins, behind the socket simulation).
//!
//! Design axes reproduced deliberately:
//! * rows live **row-major** in fixed-size pages behind a B-tree row
//!   index — every scan deserialises entire rows even when one column is
//!   needed ("its row-wise storage layout forces it to always scan entire
//!   tables", §2);
//! * execution is tuple-at-a-time over dynamically typed values — the
//!   per-tuple interpretation overhead of the volcano model ("they invoke
//!   a lot of overhead for each tuple that passes through the pipeline",
//!   §4.2);
//! * pages beyond the configured cache budget spill to disk and are read
//!   back through real file I/O — the SF10 "entire dataset plus the
//!   constructed indices do not fit in memory anymore and have to be
//!   swapped to disk" effect.
//!
//! The SQL frontend (parser, binder, optimizer) is shared with
//! `monetlite`; only storage and execution differ — which is exactly the
//! comparison the paper makes.

#![forbid(unsafe_code)]

pub mod page;
pub mod scalar;
pub mod table;
pub mod volcano;

use monetlite::bind::{Binder, CatalogAccess, ViewDef};
use monetlite::opt::{self, OptFlags, Stats};
use monetlite_sql::ast;
use monetlite_types::{Field, LogicalType, MlError, Result, Schema, Value};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};
use table::RowTable;

/// Join algorithm profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Block nested loops (SQLite-like): quadratic joins, the source of
    /// the paper's Q7–Q9 timeouts at SF10.
    NestedLoop,
    /// Classic hash join (PostgreSQL-like).
    Hash,
}

/// Row-store configuration.
#[derive(Debug, Clone)]
pub struct RowDbOptions {
    /// Join algorithm.
    pub join_strategy: JoinStrategy,
    /// Resident page budget (pages beyond it spill to disk).
    pub page_cache_pages: usize,
    /// Directory for the database/spill file (None = anonymous temp dir).
    pub path: Option<PathBuf>,
    /// Per-query timeout.
    pub timeout: Option<Duration>,
    /// Optimizer switches: the SQLite profile disables join ordering,
    /// reproducing its weak planner (the paper's Q8 timeout at SF1 comes
    /// from a bad plan, not a slow operator).
    pub opt_flags: OptFlags,
    /// Intermediate-result row ceiling; exceeding it aborts the query as a
    /// timeout (the real system would thrash swap until the 5-minute
    /// limit).
    pub max_intermediate_rows: usize,
}

impl Default for RowDbOptions {
    fn default() -> Self {
        RowDbOptions {
            join_strategy: JoinStrategy::Hash,
            page_cache_pages: usize::MAX,
            path: None,
            timeout: None,
            opt_flags: OptFlags::default(),
            max_intermediate_rows: usize::MAX,
        }
    }
}

/// A row-store database instance.
pub struct RowDb {
    inner: Mutex<Inner>,
    opts: RowDbOptions,
}

struct Inner {
    tables: HashMap<String, RowTable>,
    /// View definitions (database-lifetime, not persisted).
    views: HashMap<String, ViewDef>,
    /// Kept alive for anonymous spill files.
    _tmp: Option<tempfile::TempDir>,
}

/// A fully materialised row-wise result set.
#[derive(Debug, Clone)]
pub struct RowsResult {
    /// Column names.
    pub names: Vec<String>,
    /// Column types.
    pub types: Vec<LogicalType>,
    /// Rows.
    pub rows: Vec<Vec<Value>>,
    /// Rows affected by DML.
    pub rows_affected: u64,
}

struct CatalogView<'a> {
    tables: &'a HashMap<String, RowTable>,
    views: &'a HashMap<String, ViewDef>,
}

impl CatalogAccess for CatalogView<'_> {
    fn table_schema(&self, name: &str) -> Result<Schema> {
        self.tables
            .get(&name.to_ascii_lowercase())
            .map(|t| t.schema().clone())
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
    }

    fn view_def(&self, name: &str) -> Option<ViewDef> {
        self.views.get(name).cloned()
    }
}

impl Stats for CatalogView<'_> {
    fn table_rows(&self, name: &str) -> usize {
        self.tables.get(&name.to_ascii_lowercase()).map_or(1000, |t| t.row_count().max(1))
    }
}

impl RowDb {
    /// In-memory database with default options (spills use a temp dir).
    pub fn in_memory() -> RowDb {
        Self::open_with(RowDbOptions::default()).expect("in-memory rowstore cannot fail")
    }

    /// SQLite-profile database: automatic-index (hash) joins but a weak
    /// planner that never reorders joins.
    pub fn sqlite_profile() -> RowDb {
        Self::open_with(RowDbOptions {
            join_strategy: JoinStrategy::Hash,
            opt_flags: OptFlags { join_order: false, ..OptFlags::default() },
            ..Default::default()
        })
        .expect("in-memory rowstore cannot fail")
    }

    /// MariaDB-profile database: block-nested-loop joins with a full
    /// optimizer (the slowest Table 1 system).
    pub fn mariadb_profile() -> RowDb {
        Self::open_with(RowDbOptions {
            join_strategy: JoinStrategy::NestedLoop,
            ..Default::default()
        })
        .expect("in-memory rowstore cannot fail")
    }

    /// Open with explicit options.
    pub fn open_with(opts: RowDbOptions) -> Result<RowDb> {
        let tmp = if opts.path.is_none() {
            Some(tempfile::tempdir().map_err(|e| MlError::Io(e.to_string()))?)
        } else {
            None
        };
        Ok(RowDb {
            inner: Mutex::new(Inner { tables: HashMap::new(), views: HashMap::new(), _tmp: tmp }),
            opts,
        })
    }

    /// The configured options.
    pub fn options(&self) -> &RowDbOptions {
        &self.opts
    }

    fn spill_dir(&self, inner: &Inner) -> PathBuf {
        match (&self.opts.path, &inner._tmp) {
            (Some(p), _) => p.clone(),
            (None, Some(t)) => t.path().to_path_buf(),
            (None, None) => std::env::temp_dir(),
        }
    }

    /// Execute one statement for its side effect.
    pub fn execute(&self, sql: &str) -> Result<u64> {
        Ok(self.query(sql)?.rows_affected)
    }

    /// Execute a `;`-separated script; returns the last result.
    pub fn run_script(&self, sql: &str) -> Result<RowsResult> {
        let stmts = monetlite_sql::parse_statements(sql)?;
        let mut last = RowsResult { names: vec![], types: vec![], rows: vec![], rows_affected: 0 };
        for s in stmts {
            last = self.run_statement(s)?;
        }
        Ok(last)
    }

    /// Execute one SQL statement.
    pub fn query(&self, sql: &str) -> Result<RowsResult> {
        let stmt = monetlite_sql::parse_statement(sql)?;
        self.run_statement(stmt)
    }

    fn run_statement(&self, stmt: ast::Statement) -> Result<RowsResult> {
        let empty =
            |n: u64| RowsResult { names: vec![], types: vec![], rows: vec![], rows_affected: n };
        match stmt {
            ast::Statement::Select(sel) => self.run_select(&sel),
            ast::Statement::CreateTable { name, columns } => {
                let fields: Vec<Field> = columns
                    .iter()
                    .map(|c| {
                        if c.nullable {
                            Field::new(&c.name, c.ty)
                        } else {
                            Field::not_null(&c.name, c.ty)
                        }
                    })
                    .collect();
                let schema = Schema::new(fields)?;
                let mut g = self.inner.lock();
                let lname = name.to_ascii_lowercase();
                if g.tables.contains_key(&lname) {
                    return Err(MlError::Catalog(format!("table '{name}' already exists")));
                }
                if g.views.contains_key(&lname) {
                    return Err(MlError::Catalog(format!("'{name}' already exists as a view")));
                }
                let spill = self.spill_dir(&g).join(format!("{lname}.rsdb"));
                g.tables.insert(lname, RowTable::new(schema, spill, self.opts.page_cache_pages)?);
                Ok(empty(0))
            }
            ast::Statement::DropTable { name, if_exists } => {
                let mut g = self.inner.lock();
                let removed = g.tables.remove(&name.to_ascii_lowercase()).is_some();
                if !removed && !if_exists {
                    return Err(MlError::Catalog(format!("unknown table '{name}'")));
                }
                Ok(empty(0))
            }
            ast::Statement::Insert { table, columns, rows } => {
                let n = self.run_insert(&table, columns.as_deref(), &rows)?;
                Ok(empty(n))
            }
            ast::Statement::Delete { table, filter } => {
                let n = self.run_delete(&table, filter.as_ref())?;
                Ok(empty(n))
            }
            ast::Statement::Update { table, sets, filter } => {
                let n = self.run_update(&table, &sets, filter.as_ref())?;
                Ok(empty(n))
            }
            ast::Statement::CreateView { name, columns, query } => {
                let lname = name.to_ascii_lowercase();
                let vd = ViewDef { columns, query: *query };
                let mut g = self.inner.lock();
                if g.tables.contains_key(&lname) {
                    return Err(MlError::Catalog(format!("'{name}' already exists as a table")));
                }
                if g.views.contains_key(&lname) {
                    return Err(MlError::Catalog(format!("view '{name}' already exists")));
                }
                {
                    // Validate the definition eagerly, like the columnar
                    // engine does.
                    let view = CatalogView { tables: &g.tables, views: &g.views };
                    let plan = Binder::new(&view).bind_select(&vd.query)?;
                    if let Some(cols) = &vd.columns {
                        if cols.len() != plan.schema().len() {
                            return Err(MlError::Bind(format!(
                                "view '{name}' selects {} column(s) but {} alias(es) were given",
                                plan.schema().len(),
                                cols.len()
                            )));
                        }
                    }
                }
                g.views.insert(lname, vd);
                Ok(empty(0))
            }
            ast::Statement::DropView { name, if_exists } => {
                let mut g = self.inner.lock();
                let removed = g.views.remove(&name.to_ascii_lowercase()).is_some();
                if !removed && !if_exists {
                    return Err(MlError::Catalog(format!("unknown view '{name}'")));
                }
                Ok(empty(0))
            }
            ast::Statement::CreateIndex { .. } => Ok(empty(0)), // B-tree exists anyway
            ast::Statement::Begin | ast::Statement::Commit | ast::Statement::Rollback => {
                Ok(empty(0)) // autocommit engine: transaction statements are no-ops
            }
            ast::Statement::Explain(inner) => {
                let ast::Statement::Select(sel) = *inner else {
                    return Err(MlError::Unsupported("EXPLAIN requires SELECT".into()));
                };
                let g = self.inner.lock();
                let view = CatalogView { tables: &g.tables, views: &g.views };
                let plan = Binder::new(&view).bind_select(&sel)?;
                let plan = opt::optimize(plan, OptFlags::default(), &view, &view)?;
                let text = plan.render();
                Ok(RowsResult {
                    names: vec!["plan".into()],
                    types: vec![LogicalType::Varchar],
                    rows: text.lines().map(|l| vec![Value::Str(l.to_string())]).collect(),
                    rows_affected: 0,
                })
            }
        }
    }

    fn run_select(&self, sel: &ast::SelectStmt) -> Result<RowsResult> {
        let g = self.inner.lock();
        let view = CatalogView { tables: &g.tables, views: &g.views };
        let plan = Binder::new(&view).bind_select(sel)?;
        let plan = opt::optimize(plan, self.opts.opt_flags, &view, &view)?;
        let deadline = self.opts.timeout.map(|t| Instant::now() + t);
        let mut exec = volcano::VolcanoExec {
            tables: &g.tables,
            join_strategy: self.opts.join_strategy,
            deadline,
            timeout: self.opts.timeout,
            max_rows: self.opts.max_intermediate_rows,
        };
        let rows = exec.run(&plan)?;
        Ok(RowsResult {
            names: plan.schema().iter().map(|c| c.name.clone()).collect(),
            types: plan.schema().iter().map(|c| c.ty).collect(),
            rows,
            rows_affected: 0,
        })
    }

    /// Programmatic row insertion (the netsim server's per-INSERT path and
    /// `dbWriteTable`).
    pub fn insert_rows(&self, table: &str, rows: Vec<Vec<Value>>) -> Result<u64> {
        let mut g = self.inner.lock();
        let lname = table.to_ascii_lowercase();
        let t = g
            .tables
            .get_mut(&lname)
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
        let n = rows.len() as u64;
        for row in rows {
            t.insert(row)?;
        }
        Ok(n)
    }

    /// Read an entire table row-wise (`dbReadTable` over the baseline).
    pub fn read_table(&self, table: &str) -> Result<RowsResult> {
        let g = self.inner.lock();
        let lname = table.to_ascii_lowercase();
        let t = g
            .tables
            .get(&lname)
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
        let mut rows = Vec::with_capacity(t.row_count());
        t.scan(|row| {
            rows.push(row);
            Ok(true)
        })?;
        Ok(RowsResult {
            names: t.schema().fields().iter().map(|f| f.name.clone()).collect(),
            types: t.schema().fields().iter().map(|f| f.ty).collect(),
            rows,
            rows_affected: 0,
        })
    }

    /// Flush all pages to disk (`dbWriteTable`'s durability step; the disk
    /// write is the bottleneck the paper identifies for embedded
    /// ingestion).
    pub fn sync(&self) -> Result<()> {
        let mut g = self.inner.lock();
        for t in g.tables.values_mut() {
            t.sync()?;
        }
        Ok(())
    }

    /// Total page reads from spill files (the swap traffic of Table 1
    /// SF10).
    pub fn io_reads(&self) -> u64 {
        let g = self.inner.lock();
        g.tables.values().map(|t| t.io_reads()).sum()
    }

    fn run_insert(
        &self,
        table: &str,
        columns: Option<&[String]>,
        rows: &[Vec<ast::Expr>],
    ) -> Result<u64> {
        let lname = table.to_ascii_lowercase();
        let schema = {
            let g = self.inner.lock();
            CatalogView { tables: &g.tables, views: &g.views }.table_schema(&lname)?
        };
        let positions: Vec<usize> = match columns {
            None => (0..schema.len()).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| {
                    schema
                        .index_of(c)
                        .ok_or_else(|| MlError::Catalog(format!("unknown column '{c}'")))
                })
                .collect::<Result<_>>()?,
        };
        let mut materialized = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != positions.len() {
                return Err(MlError::Execution(format!(
                    "INSERT expects {} values, got {}",
                    positions.len(),
                    row.len()
                )));
            }
            let mut vals = vec![Value::Null; schema.len()];
            for (e, &pos) in row.iter().zip(&positions) {
                vals[pos] = scalar::eval_const_ast(e)?;
            }
            for (i, f) in schema.fields().iter().enumerate() {
                if vals[i].is_null() && !f.nullable {
                    return Err(MlError::Execution(format!(
                        "NULL in NOT NULL column '{}'",
                        f.name
                    )));
                }
                vals[i] = scalar::coerce_to(std::mem::replace(&mut vals[i], Value::Null), f.ty)?;
            }
            materialized.push(vals);
        }
        self.insert_rows(&lname, materialized)
    }

    fn run_delete(&self, table: &str, filter: Option<&ast::Expr>) -> Result<u64> {
        let lname = table.to_ascii_lowercase();
        let pred = {
            let g = self.inner.lock();
            let view = CatalogView { tables: &g.tables, views: &g.views };
            filter
                .map(|f| Binder::new(&view).bind_table_expr(&lname, f))
                .transpose()?
                .map(|(b, _)| b)
        };
        let mut g = self.inner.lock();
        let t = g
            .tables
            .get_mut(&lname)
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
        t.delete_where(|row| match &pred {
            None => Ok(true),
            Some(p) => Ok(scalar::eval_row(p, row)? == Value::Bool(true)),
        })
    }

    fn run_update(
        &self,
        table: &str,
        sets: &[(String, ast::Expr)],
        filter: Option<&ast::Expr>,
    ) -> Result<u64> {
        let lname = table.to_ascii_lowercase();
        let (pred, set_bound, schema) = {
            let g = self.inner.lock();
            let view = CatalogView { tables: &g.tables, views: &g.views };
            let schema = view.table_schema(&lname)?;
            let binder = Binder::new(&view);
            let pred =
                filter.map(|f| binder.bind_table_expr(&lname, f)).transpose()?.map(|(b, _)| b);
            let mut bound = Vec::new();
            for (col, e) in sets {
                let idx = schema
                    .index_of(col)
                    .ok_or_else(|| MlError::Catalog(format!("unknown column '{col}'")))?;
                let (b, _) = binder.bind_table_expr(&lname, e)?;
                bound.push((idx, b));
            }
            (pred, bound, schema)
        };
        let mut g = self.inner.lock();
        let t = g
            .tables
            .get_mut(&lname)
            .ok_or_else(|| MlError::Catalog(format!("unknown table '{table}'")))?;
        t.update_where(
            |row| match &pred {
                None => Ok(true),
                Some(p) => Ok(scalar::eval_row(p, row)? == Value::Bool(true)),
            },
            |row| {
                let mut new = row.to_vec();
                for (idx, e) in &set_bound {
                    let v = scalar::eval_row(e, row)?;
                    if v.is_null() && !schema.field_at(*idx).nullable {
                        return Err(MlError::Execution(format!(
                            "NULL in NOT NULL column '{}'",
                            schema.field_at(*idx).name
                        )));
                    }
                    new[*idx] = scalar::coerce_to(v, schema.field_at(*idx).ty)?;
                }
                Ok(new)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RowDb {
        let db = RowDb::in_memory();
        db.run_script(
            "CREATE TABLE t (a INT NOT NULL, b VARCHAR(20), p DECIMAL(10,2));
             INSERT INTO t VALUES (1, 'one', 1.50), (2, 'two', 2.50), (3, NULL, 3.00);",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_where_order() {
        let db = sample();
        let r = db.query("SELECT a, b FROM t WHERE a >= 2 ORDER BY a DESC").unwrap();
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.rows[0][0], Value::Int(3));
        assert_eq!(r.rows[1][1], Value::Str("two".into()));
    }

    #[test]
    fn aggregates() {
        let db = sample();
        let r = db.query("SELECT count(*), sum(p), avg(a) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Bigint(3));
        assert_eq!(r.rows[0][1].to_string(), "7.00");
        assert_eq!(r.rows[0][2], Value::Double(2.0));
    }

    #[test]
    fn group_by() {
        let db = sample();
        db.execute("INSERT INTO t VALUES (4, 'one', 0.50)").unwrap();
        let r = db.query("SELECT b, count(*) AS c FROM t GROUP BY b ORDER BY c DESC, b").unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0][1], Value::Bigint(2));
    }

    #[test]
    fn joins_both_strategies() {
        for db in [RowDb::in_memory(), RowDb::sqlite_profile()] {
            db.run_script(
                "CREATE TABLE n (k INT, name VARCHAR(10));
                 CREATE TABLE c (ck INT, nk INT, bal DECIMAL(8,2));
                 INSERT INTO n VALUES (1, 'FR'), (2, 'DE');
                 INSERT INTO c VALUES (10, 1, 5.00), (11, 2, 7.00), (12, 1, 3.00);",
            )
            .unwrap();
            let r = db
                .query(
                    "SELECT name, sum(bal) AS s FROM c, n WHERE nk = k \
                     GROUP BY name ORDER BY s DESC",
                )
                .unwrap();
            assert_eq!(r.rows.len(), 2);
            assert_eq!(r.rows[0][0], Value::Str("FR".into()));
            assert_eq!(r.rows[0][1].to_string(), "8.00");
        }
    }

    #[test]
    fn delete_update() {
        let db = sample();
        assert_eq!(db.execute("DELETE FROM t WHERE a = 2").unwrap(), 1);
        assert_eq!(db.query("SELECT a FROM t").unwrap().rows.len(), 2);
        assert_eq!(db.execute("UPDATE t SET p = p + 1.00 WHERE a = 1").unwrap(), 1);
        let r = db.query("SELECT p FROM t WHERE a = 1").unwrap();
        assert_eq!(r.rows[0][0].to_string(), "2.50");
    }

    #[test]
    fn insert_rows_and_read_table() {
        let db = sample();
        db.insert_rows(
            "t",
            vec![vec![
                Value::Int(9),
                Value::Null,
                Value::Decimal(monetlite_types::Decimal::new(900, 2)),
            ]],
        )
        .unwrap();
        let r = db.read_table("t").unwrap();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.names[2], "p");
    }

    #[test]
    fn not_null_enforced() {
        let db = sample();
        assert!(db.execute("INSERT INTO t VALUES (NULL, 'x', 0.00)").is_err());
    }

    #[test]
    fn timeout_fires_on_nested_loop_join() {
        let db = RowDb::open_with(RowDbOptions {
            join_strategy: JoinStrategy::NestedLoop,
            timeout: Some(Duration::from_millis(10)),
            ..Default::default()
        })
        .unwrap();
        db.execute("CREATE TABLE big (x INT)").unwrap();
        let rows: Vec<Vec<Value>> = (0..3000).map(|i| vec![Value::Int(i)]).collect();
        db.insert_rows("big", rows).unwrap();
        let r = db.query("SELECT count(*) FROM big a, big b WHERE a.x + b.x = 100000");
        assert!(matches!(r, Err(MlError::Timeout { .. })), "{r:?}");
    }

    #[test]
    fn spill_to_disk_and_read_back() {
        let db =
            RowDb::open_with(RowDbOptions { page_cache_pages: 2, ..Default::default() }).unwrap();
        db.execute("CREATE TABLE s (x INT, pad VARCHAR(100))").unwrap();
        let pad = "p".repeat(100);
        let rows: Vec<Vec<Value>> =
            (0..2000).map(|i| vec![Value::Int(i), Value::Str(pad.clone())]).collect();
        db.insert_rows("s", rows).unwrap();
        // Scanning must reload spilled pages from disk.
        let r = db.query("SELECT count(*) FROM s").unwrap();
        assert_eq!(r.rows[0][0], Value::Bigint(2000));
        assert!(db.io_reads() > 0, "expected page reads from spill file");
    }

    #[test]
    fn persistent_sync() {
        let dir = tempfile::tempdir().unwrap();
        let db = RowDb::open_with(RowDbOptions {
            path: Some(dir.path().to_path_buf()),
            ..Default::default()
        })
        .unwrap();
        db.execute("CREATE TABLE k (x INT)").unwrap();
        db.insert_rows("k", vec![vec![Value::Int(42)]]).unwrap();
        db.sync().unwrap();
        assert!(dir.path().join("k.rsdb").exists());
    }
}
