//! Write-ahead logging and recovery.
//!
//! Committed transactions append framed records to `wal.log`; a checkpoint
//! writes all table data to column files, rewrites the catalog file and
//! truncates the log. On startup the log is replayed on top of the last
//! checkpoint: only transactions whose `Commit` record made it to disk are
//! applied, so a torn tail (crash mid-write) silently rolls back — this is
//! what gives the embedded database "the transactional guarantees and ACID
//! properties of a standard relational system" (paper §1) without a
//! server.
//!
//! Frame format: `[len: u32][payload][fnv1a(payload): u64]`, where payload
//! starts with a one-byte record tag.

use crate::bat::Bat;
use crate::fault;
use crate::index::fnv1a;
use crate::persist::{decode_bat, encode_bat};
use monetlite_types::{Field, LogicalType, MlError, Result, Schema};
use std::fs::File;
use std::io::BufWriter;
use std::path::{Path, PathBuf};

/// One logical write operation, as logged and as applied to the catalog.
#[derive(Debug)]
pub enum WalRecord {
    /// Transaction start.
    Begin(u64),
    /// Transaction end; everything since the matching Begin becomes
    /// durable.
    Commit(u64),
    /// CREATE TABLE.
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        schema: Schema,
    },
    /// DROP TABLE.
    DropTable {
        /// Table name.
        name: String,
    },
    /// Bulk append of column data.
    Append {
        /// Target table.
        table: String,
        /// One BAT per schema column.
        cols: Vec<Bat>,
    },
    /// Row deletions by physical row id.
    Delete {
        /// Target table.
        table: String,
        /// Physical row ids.
        rows: Vec<u32>,
    },
    /// CREATE ORDER INDEX marker (so the index is re-created after
    /// restart).
    CreateOrderIndex {
        /// Target table.
        table: String,
        /// Column position.
        col: u32,
    },
}

const TAG_BEGIN: u8 = 1;
const TAG_COMMIT: u8 = 2;
const TAG_CREATE: u8 = 3;
const TAG_DROP: u8 = 4;
const TAG_APPEND: u8 = 5;
const TAG_DELETE: u8 = 6;
const TAG_ORDERIDX: u8 = 7;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(r: &mut &[u8]) -> Result<String> {
    let len = get_u32(r)? as usize;
    if r.len() < len {
        return Err(MlError::Corrupt("truncated string in wal".into()));
    }
    let (s, rest) = r.split_at(len);
    *r = rest;
    String::from_utf8(s.to_vec()).map_err(|_| MlError::Corrupt("invalid utf-8 in wal".into()))
}

fn get_u32(r: &mut &[u8]) -> Result<u32> {
    if r.len() < 4 {
        return Err(MlError::Corrupt("truncated u32 in wal".into()));
    }
    let (b, rest) = r.split_at(4);
    *r = rest;
    Ok(u32::from_le_bytes(b.try_into().unwrap()))
}

fn get_u64(r: &mut &[u8]) -> Result<u64> {
    if r.len() < 8 {
        return Err(MlError::Corrupt("truncated u64 in wal".into()));
    }
    let (b, rest) = r.split_at(8);
    *r = rest;
    Ok(u64::from_le_bytes(b.try_into().unwrap()))
}

/// Encode a logical type (paired with [`decode_type`]).
pub fn encode_type(out: &mut Vec<u8>, ty: LogicalType) {
    match ty {
        LogicalType::Bool => out.push(0),
        LogicalType::Int => out.push(1),
        LogicalType::Bigint => out.push(2),
        LogicalType::Double => out.push(3),
        LogicalType::Decimal { width, scale } => {
            out.push(4);
            out.push(width);
            out.push(scale);
        }
        LogicalType::Varchar => out.push(5),
        LogicalType::Date => out.push(6),
    }
}

/// Decode a logical type.
pub fn decode_type(r: &mut &[u8]) -> Result<LogicalType> {
    let bad = || MlError::Corrupt("truncated type in wal".into());
    if r.is_empty() {
        return Err(bad());
    }
    let (tag, rest) = r.split_at(1);
    *r = rest;
    Ok(match tag[0] {
        0 => LogicalType::Bool,
        1 => LogicalType::Int,
        2 => LogicalType::Bigint,
        3 => LogicalType::Double,
        4 => {
            if r.len() < 2 {
                return Err(bad());
            }
            let (ws, rest) = r.split_at(2);
            *r = rest;
            LogicalType::Decimal { width: ws[0], scale: ws[1] }
        }
        5 => LogicalType::Varchar,
        6 => LogicalType::Date,
        t => return Err(MlError::Corrupt(format!("unknown type tag {t}"))),
    })
}

/// Encode a schema (paired with [`decode_schema`]).
pub fn encode_schema(out: &mut Vec<u8>, schema: &Schema) {
    out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    for f in schema.fields() {
        put_str(out, &f.name);
        encode_type(out, f.ty);
        out.push(f.nullable as u8);
    }
}

/// Decode a schema.
pub fn decode_schema(r: &mut &[u8]) -> Result<Schema> {
    let n = get_u32(r)? as usize;
    if n > 100_000 {
        return Err(MlError::Corrupt("schema too wide".into()));
    }
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let name = get_str(r)?;
        let ty = decode_type(r)?;
        if r.is_empty() {
            return Err(MlError::Corrupt("truncated field".into()));
        }
        let (nb, rest) = r.split_at(1);
        *r = rest;
        let f = if nb[0] != 0 { Field::new(name, ty) } else { Field::not_null(name, ty) };
        fields.push(f);
    }
    Schema::new(fields)
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::new();
    match rec {
        WalRecord::Begin(tx) => {
            out.push(TAG_BEGIN);
            out.extend_from_slice(&tx.to_le_bytes());
        }
        WalRecord::Commit(tx) => {
            out.push(TAG_COMMIT);
            out.extend_from_slice(&tx.to_le_bytes());
        }
        WalRecord::CreateTable { name, schema } => {
            out.push(TAG_CREATE);
            put_str(&mut out, name);
            encode_schema(&mut out, schema);
        }
        WalRecord::DropTable { name } => {
            out.push(TAG_DROP);
            put_str(&mut out, name);
        }
        WalRecord::Append { table, cols } => {
            out.push(TAG_APPEND);
            put_str(&mut out, table);
            out.extend_from_slice(&(cols.len() as u32).to_le_bytes());
            for c in cols {
                encode_bat(&mut out, c);
            }
        }
        WalRecord::Delete { table, rows } => {
            out.push(TAG_DELETE);
            put_str(&mut out, table);
            out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
            for r in rows {
                out.extend_from_slice(&r.to_le_bytes());
            }
        }
        WalRecord::CreateOrderIndex { table, col } => {
            out.push(TAG_ORDERIDX);
            put_str(&mut out, table);
            out.extend_from_slice(&col.to_le_bytes());
        }
    }
    out
}

fn decode_record(mut payload: &[u8]) -> Result<WalRecord> {
    let r = &mut payload;
    if r.is_empty() {
        return Err(MlError::Corrupt("empty wal record".into()));
    }
    let (tag, rest) = r.split_at(1);
    *r = rest;
    Ok(match tag[0] {
        TAG_BEGIN => WalRecord::Begin(get_u64(r)?),
        TAG_COMMIT => WalRecord::Commit(get_u64(r)?),
        TAG_CREATE => {
            let name = get_str(r)?;
            let schema = decode_schema(r)?;
            WalRecord::CreateTable { name, schema }
        }
        TAG_DROP => WalRecord::DropTable { name: get_str(r)? },
        TAG_APPEND => {
            let table = get_str(r)?;
            let n = get_u32(r)? as usize;
            if n > 100_000 {
                return Err(MlError::Corrupt("append too wide".into()));
            }
            let mut cols = Vec::with_capacity(n);
            let mut cursor = std::io::Cursor::new(*r);
            for _ in 0..n {
                cols.push(decode_bat(&mut cursor)?);
            }
            WalRecord::Append { table, cols }
        }
        TAG_DELETE => {
            let table = get_str(r)?;
            let n = get_u32(r)? as usize;
            let mut rows = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                rows.push(get_u32(r)?);
            }
            WalRecord::Delete { table, rows }
        }
        TAG_ORDERIDX => {
            let table = get_str(r)?;
            let col = get_u32(r)?;
            WalRecord::CreateOrderIndex { table, col }
        }
        t => return Err(MlError::Corrupt(format!("unknown wal tag {t}"))),
    })
}

/// Appends framed records to the log file.
///
/// A failed append or flush may have left *part* of a frame on disk (the
/// `BufWriter` flushes whenever its buffer fills, so even a buffered
/// `append` can do real I/O). If we kept appending after that, every later
/// commit would land behind the torn frame and replay — which stops at the
/// first bad frame — would silently drop acknowledged transactions. So on
/// any append/flush error the writer discards its buffer and truncates the
/// file back to `synced`, the length at the last successful flush. If even
/// that repair fails the writer poisons itself: all further operations
/// error until the database is reopened.
pub struct WalWriter {
    path: PathBuf,
    /// `None` after an unrecoverable I/O failure (poisoned).
    w: Option<BufWriter<File>>,
    bytes: u64,
    /// File length at the last successful flush — the truncation target
    /// when a later write fails partway through a frame.
    synced: u64,
}

impl WalWriter {
    /// Open (appending) or create the log at `path`.
    pub fn open(path: &Path) -> Result<WalWriter> {
        let f = fault::open_append("wal.open", path)?;
        let bytes = fault::file_len("wal.len", &f)?;
        Ok(WalWriter { path: path.to_path_buf(), w: Some(BufWriter::new(f)), bytes, synced: bytes })
    }

    fn poisoned() -> MlError {
        MlError::Io("wal writer poisoned after an earlier I/O failure; reopen the database".into())
    }

    /// Discard buffered (possibly half-written) frames and truncate the
    /// log back to the last flushed length. On success the writer is ready
    /// for new appends; on failure it stays poisoned.
    fn recover(&mut self) {
        // into_parts() hands back the File *without* flushing, dropping
        // whatever partial frame is still buffered. Letting the BufWriter
        // drop normally would flush those stale bytes after truncation.
        if let Some(w) = self.w.take() {
            let (_f, _buf) = w.into_parts();
        }
        let res = (|| -> Result<File> {
            let f = fault::open_append("wal.recover.open", &self.path)?;
            fault::set_len("wal.recover.truncate", &f, self.synced)?;
            Ok(f)
        })();
        if let Ok(f) = res {
            self.w = Some(BufWriter::new(f));
            self.bytes = self.synced;
        }
    }

    /// Append one record (buffered; call [`WalWriter::flush`] at commit).
    pub fn append(&mut self, rec: &WalRecord) -> Result<()> {
        let w = self.w.as_mut().ok_or_else(Self::poisoned)?;
        let payload = encode_record(rec);
        let res = (|| -> Result<()> {
            fault::write_all("wal.append", w, &(payload.len() as u32).to_le_bytes())?;
            fault::write_all("wal.append", w, &payload)?;
            fault::write_all("wal.append", w, &fnv1a(&payload).to_le_bytes())?;
            Ok(())
        })();
        match res {
            Ok(()) => {
                self.bytes += 4 + payload.len() as u64 + 8;
                Ok(())
            }
            Err(e) => {
                self.recover();
                Err(e)
            }
        }
    }

    /// Flush buffered records to the OS.
    pub fn flush(&mut self) -> Result<()> {
        let w = self.w.as_mut().ok_or_else(Self::poisoned)?;
        match fault::flush("wal.flush", w) {
            Ok(()) => {
                self.synced = self.bytes;
                Ok(())
            }
            Err(e) => {
                self.recover();
                Err(e.into())
            }
        }
    }

    /// Bytes written since the log was created/truncated (drives the
    /// auto-checkpoint policy).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

/// Read all *committed* transactions from a log, each tagged with its
/// transaction id. Torn tails (truncated or checksum-failing trailing
/// records) end replay silently; a missing trailing `Commit` discards
/// that transaction's records — uncommitted work never becomes visible.
///
/// The ids are what make replay idempotent across a checkpoint crash
/// window: the catalog file records the highest transaction id included
/// in its image, and recovery skips replayed transactions at or below
/// that watermark instead of double-applying them.
pub fn replay(path: &Path) -> Result<Vec<(u64, Vec<WalRecord>)>> {
    let mut f = match fault::open("wal.replay.open", path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(e.into()),
    };
    let mut buf = Vec::new();
    fault::read_to_end("wal.replay.read", &mut f, &mut buf)?;
    let mut committed = Vec::new();
    let mut pending: Option<Vec<WalRecord>> = None;
    let mut pos = 0usize;
    while pos + 4 <= buf.len() {
        let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
        if pos + 4 + len + 8 > buf.len() {
            break; // torn tail
        }
        let payload = &buf[pos + 4..pos + 4 + len];
        let ck = u64::from_le_bytes(buf[pos + 4 + len..pos + 4 + len + 8].try_into().unwrap());
        if fnv1a(payload) != ck {
            break; // torn/corrupt tail: stop applying
        }
        pos += 4 + len + 8;
        match decode_record(payload)? {
            WalRecord::Begin(_) => pending = Some(Vec::new()),
            WalRecord::Commit(tx) => {
                if let Some(recs) = pending.take() {
                    committed.push((tx, recs));
                }
            }
            rec => {
                if let Some(p) = &mut pending {
                    p.push(rec);
                }
            }
        }
    }
    Ok(committed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::ColumnBuffer;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::not_null("id", LogicalType::Int),
            Field::new("name", LogicalType::Varchar),
            Field::new("price", LogicalType::Decimal { width: 15, scale: 2 }),
        ])
        .unwrap()
    }

    #[test]
    fn schema_roundtrip() {
        let s = sample_schema();
        let mut buf = Vec::new();
        encode_schema(&mut buf, &s);
        let got = decode_schema(&mut buf.as_slice()).unwrap();
        assert_eq!(got, s);
    }

    #[test]
    fn committed_txns_replay() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Begin(1)).unwrap();
            w.append(&WalRecord::CreateTable { name: "t".into(), schema: sample_schema() })
                .unwrap();
            w.append(&WalRecord::Commit(1)).unwrap();
            w.append(&WalRecord::Begin(2)).unwrap();
            w.append(&WalRecord::Append {
                table: "t".into(),
                cols: vec![
                    Bat::Int(vec![1, 2]),
                    Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("a".into()), None])),
                    Bat::Decimal { data: vec![100, 250], scale: 2 },
                ],
            })
            .unwrap();
            w.append(&WalRecord::Commit(2)).unwrap();
            w.flush().unwrap();
        }
        let txns = replay(&path).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0].0, 1, "commit tx id surfaces for the watermark check");
        assert_eq!(txns[1].0, 2);
        assert!(matches!(&txns[0].1[0], WalRecord::CreateTable { name, .. } if name == "t"));
        match &txns[1].1[0] {
            WalRecord::Append { table, cols } => {
                assert_eq!(table, "t");
                assert_eq!(cols.len(), 3);
                assert_eq!(cols[0].len(), 2);
            }
            r => panic!("unexpected {r:?}"),
        }
    }

    #[test]
    fn uncommitted_tail_discarded() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Begin(1)).unwrap();
            w.append(&WalRecord::DropTable { name: "t".into() }).unwrap();
            // No commit: crash before commit record.
            w.flush().unwrap();
        }
        assert!(replay(&path).unwrap().is_empty());
    }

    #[test]
    fn torn_record_stops_replay() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Begin(1)).unwrap();
            w.append(&WalRecord::DropTable { name: "a".into() }).unwrap();
            w.append(&WalRecord::Commit(1)).unwrap();
            w.append(&WalRecord::Begin(2)).unwrap();
            w.append(&WalRecord::DropTable { name: "b".into() }).unwrap();
            w.append(&WalRecord::Commit(2)).unwrap();
            w.flush().unwrap();
        }
        // Truncate mid-way through the last commit record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let txns = replay(&path).unwrap();
        assert_eq!(txns.len(), 1, "only the first fully-committed txn survives");
    }

    #[test]
    fn missing_wal_is_empty() {
        let dir = tempfile::tempdir().unwrap();
        assert!(replay(&dir.path().join("nope.log")).unwrap().is_empty());
    }

    #[test]
    fn corrupt_checksum_stops_replay_cleanly() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        {
            let mut w = WalWriter::open(&path).unwrap();
            w.append(&WalRecord::Begin(1)).unwrap();
            w.append(&WalRecord::Commit(1)).unwrap();
            w.flush().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0xFF; // corrupt last checksum
        std::fs::write(&path, &bytes).unwrap();
        let txns = replay(&path).unwrap();
        assert!(txns.is_empty());
    }

    #[test]
    fn wal_bytes_counter_grows() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("wal.log");
        let mut w = WalWriter::open(&path).unwrap();
        let b0 = w.bytes();
        w.append(&WalRecord::Begin(1)).unwrap();
        assert!(w.bytes() > b0);
    }
}
