//! Tuple-at-a-time expression interpretation.
//!
//! This is the volcano model's per-tuple cost made explicit: every operator
//! call dispatches dynamically on the value type for every row — the
//! overhead that makes "traditional database systems perform many orders
//! of magnitude worse than the analytical database systems" on scans
//! (paper §4.2). Contrast with `monetlite::kernels`, which dispatches once
//! per *column*.

use monetlite::expr::{ArithOp, BExpr, CmpOp, ScalarFunc};
use monetlite::kernels::like_match;
use monetlite_sql::ast;
use monetlite_types::{Date, Decimal, LogicalType, MlError, Result, Value};

/// Evaluate a bound expression against one row.
pub fn eval_row(e: &BExpr, row: &[Value]) -> Result<Value> {
    match e {
        BExpr::ColRef { idx, .. } => Ok(row
            .get(*idx)
            .cloned()
            .ok_or_else(|| MlError::Execution(format!("column #{idx} out of row")))?),
        BExpr::Lit(v) => Ok(v.clone()),
        BExpr::Param { idx, .. } => {
            Err(MlError::Execution(format!("unsubstituted plan-cache parameter ?{idx}")))
        }
        BExpr::Cast { input, ty } => {
            let v = eval_row(input, row)?;
            cast_value(v, *ty)
        }
        BExpr::Arith { op, left, right, ty } => {
            let l = eval_row(left, row)?;
            let r = eval_row(right, row)?;
            arith_value(*op, l, r, *ty)
        }
        BExpr::Cmp { op, left, right } => {
            let l = eval_row(left, row)?;
            let r = eval_row(right, row)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let ord = l.cmp_sql(&r);
            Ok(Value::Bool(match op {
                CmpOp::Eq => ord == std::cmp::Ordering::Equal,
                CmpOp::NotEq => ord != std::cmp::Ordering::Equal,
                CmpOp::Lt => ord == std::cmp::Ordering::Less,
                CmpOp::LtEq => ord != std::cmp::Ordering::Greater,
                CmpOp::Gt => ord == std::cmp::Ordering::Greater,
                CmpOp::GtEq => ord != std::cmp::Ordering::Less,
            }))
        }
        BExpr::And(a, b) => {
            let l = eval_row(a, row)?;
            let r = eval_row(b, row)?;
            Ok(match (l, r) {
                (Value::Bool(false), _) | (_, Value::Bool(false)) => Value::Bool(false),
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                _ => Value::Bool(true),
            })
        }
        BExpr::Or(a, b) => {
            let l = eval_row(a, row)?;
            let r = eval_row(b, row)?;
            Ok(match (l, r) {
                (Value::Bool(true), _) | (_, Value::Bool(true)) => Value::Bool(true),
                (Value::Null, _) | (_, Value::Null) => Value::Null,
                _ => Value::Bool(false),
            })
        }
        BExpr::Not(a) => Ok(match eval_row(a, row)? {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => return Err(MlError::Execution(format!("NOT over {other:?}"))),
        }),
        BExpr::IsNull { input, negated } => {
            let v = eval_row(input, row)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        BExpr::Like { input, pattern, negated } => match eval_row(input, row)? {
            Value::Null => Ok(Value::Null),
            Value::Str(s) => Ok(Value::Bool(like_match(&s, pattern) != *negated)),
            other => Err(MlError::Execution(format!("LIKE over {other:?}"))),
        },
        BExpr::Case { branches, else_expr, .. } => {
            for (c, v) in branches {
                if eval_row(c, row)? == Value::Bool(true) {
                    return eval_row(v, row);
                }
            }
            match else_expr {
                Some(e) => eval_row(e, row),
                None => Ok(Value::Null),
            }
        }
        BExpr::Func { func, args, .. } => {
            let vals: Vec<Value> = args.iter().map(|a| eval_row(a, row)).collect::<Result<_>>()?;
            func_value(*func, vals)
        }
        BExpr::Neg { input, .. } => Ok(match eval_row(input, row)? {
            Value::Null => Value::Null,
            Value::Int(x) => Value::Int(-x),
            Value::Bigint(x) => Value::Bigint(-x),
            Value::Double(x) => Value::Double(-x),
            Value::Decimal(d) => Value::Decimal(Decimal::new(-d.raw, d.scale)),
            other => return Err(MlError::Execution(format!("negate {other:?}"))),
        }),
    }
}

/// Evaluate a constant AST expression (INSERT literals).
pub fn eval_const_ast(e: &ast::Expr) -> Result<Value> {
    match e {
        ast::Expr::Literal(v) => Ok(v.clone()),
        ast::Expr::Neg(inner) => Ok(match eval_const_ast(inner)? {
            Value::Int(x) => Value::Int(-x),
            Value::Bigint(x) => Value::Bigint(-x),
            Value::Double(x) => Value::Double(-x),
            Value::Decimal(d) => Value::Decimal(Decimal::new(-d.raw, d.scale)),
            other => return Err(MlError::Execution(format!("negate {other:?}"))),
        }),
        ast::Expr::Binary { op, left, right } => {
            let l = eval_const_ast(left)?;
            let r = eval_const_ast(right)?;
            if l.is_null() || r.is_null() {
                return Ok(Value::Null);
            }
            let aop = match op {
                ast::BinOp::Add => ArithOp::Add,
                ast::BinOp::Sub => ArithOp::Sub,
                ast::BinOp::Mul => ArithOp::Mul,
                ast::BinOp::Div => ArithOp::Div,
                ast::BinOp::Mod => ArithOp::Mod,
                other => {
                    return Err(MlError::Execution(format!(
                        "non-constant operator {other:?} in INSERT"
                    )))
                }
            };
            arith_value(aop, l, r, LogicalType::Double)
        }
        other => Err(MlError::Execution(format!("non-constant INSERT value {other:?}"))),
    }
}

/// Cast one value.
pub fn cast_value(v: Value, ty: LogicalType) -> Result<Value> {
    use LogicalType as T;
    if v.is_null() {
        return Ok(Value::Null);
    }
    Ok(match (v, ty) {
        (Value::Int(x), T::Int) => Value::Int(x),
        (Value::Int(x), T::Bigint) => Value::Bigint(x as i64),
        (Value::Int(x), T::Double) => Value::Double(x as f64),
        (Value::Int(x), T::Decimal { scale, .. }) => {
            Value::Decimal(Decimal::new(x as i64, 0).rescale(scale)?)
        }
        (Value::Bigint(x), T::Bigint) => Value::Bigint(x),
        (Value::Bigint(x), T::Double) => Value::Double(x as f64),
        (Value::Bigint(x), T::Int) => Value::Int(x as i32),
        (Value::Bigint(x), T::Decimal { scale, .. }) => {
            Value::Decimal(Decimal::new(x, 0).rescale(scale)?)
        }
        (Value::Double(x), T::Double) => Value::Double(x),
        (Value::Double(x), T::Int) => Value::Int(x as i32),
        (Value::Double(x), T::Bigint) => Value::Bigint(x as i64),
        (Value::Decimal(d), T::Double) => Value::Double(d.to_f64()),
        (Value::Decimal(d), T::Decimal { scale, .. }) => Value::Decimal(d.rescale(scale)?),
        (Value::Str(s), T::Date) => Value::Date(Date::parse(&s)?),
        (Value::Str(s), T::Varchar) => Value::Str(s),
        (Value::Date(d), T::Date) => Value::Date(d),
        (Value::Bool(b), T::Bool) => Value::Bool(b),
        (v, ty) => return Err(MlError::TypeMismatch(format!("cast {v:?} -> {ty}"))),
    })
}

/// Coerce an INSERT literal to a column type (alias of cast).
pub fn coerce_to(v: Value, ty: LogicalType) -> Result<Value> {
    cast_value(v, ty)
}

fn arith_value(op: ArithOp, l: Value, r: Value, ty: LogicalType) -> Result<Value> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Date − Date → day count.
    if let (Value::Date(a), Value::Date(b), ArithOp::Sub) = (&l, &r, op) {
        return Ok(Value::Int(a.0 - b.0));
    }
    let overflow = || MlError::Execution(format!("overflow in {op}"));
    Ok(match (&l, &r) {
        (Value::Int(a), Value::Int(b)) => match op {
            ArithOp::Add => Value::Int(a.checked_add(*b).ok_or_else(overflow)?),
            ArithOp::Sub => Value::Int(a.checked_sub(*b).ok_or_else(overflow)?),
            ArithOp::Mul => Value::Int(a.checked_mul(*b).ok_or_else(overflow)?),
            ArithOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Double(*a as f64 / *b as f64)
                }
            }
            ArithOp::Mod => {
                if *b == 0 {
                    return Err(MlError::Execution("division by zero".into()));
                }
                Value::Int(a % b)
            }
        },
        (Value::Bigint(_), _) | (_, Value::Bigint(_)) if matches!(ty, LogicalType::Bigint) => {
            let (a, b) = (l.as_i64()?, r.as_i64()?);
            match op {
                ArithOp::Add => Value::Bigint(a.checked_add(b).ok_or_else(overflow)?),
                ArithOp::Sub => Value::Bigint(a.checked_sub(b).ok_or_else(overflow)?),
                ArithOp::Mul => Value::Bigint(a.checked_mul(b).ok_or_else(overflow)?),
                ArithOp::Div => Value::Double(a as f64 / b as f64),
                ArithOp::Mod => Value::Bigint(a % b),
            }
        }
        (Value::Decimal(a), Value::Decimal(b)) => match op {
            ArithOp::Add => Value::Decimal(a.checked_add(*b)?),
            ArithOp::Sub => Value::Decimal(a.checked_sub(*b)?),
            ArithOp::Mul => Value::Decimal(a.checked_mul(*b)?),
            ArithOp::Div => Value::Double(a.to_f64() / b.to_f64()),
            ArithOp::Mod => return Err(MlError::Execution("% not defined on DECIMAL".into())),
        },
        _ => {
            // Fall back to double arithmetic for every mixed pairing.
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            let x = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        f64::NAN
                    } else {
                        a / b
                    }
                }
                ArithOp::Mod => a % b,
            };
            if x.is_nan() {
                Value::Null
            } else {
                Value::Double(x)
            }
        }
    })
}

fn func_value(func: ScalarFunc, mut args: Vec<Value>) -> Result<Value> {
    if args.iter().any(|a| a.is_null()) {
        return Ok(Value::Null);
    }
    Ok(match func {
        ScalarFunc::Sqrt => Value::Double(args[0].as_f64()?.sqrt()),
        ScalarFunc::Floor => Value::Double(args[0].as_f64()?.floor()),
        ScalarFunc::Ceil => Value::Double(args[0].as_f64()?.ceil()),
        ScalarFunc::Abs => match &args[0] {
            Value::Int(x) => Value::Int(x.abs()),
            Value::Bigint(x) => Value::Bigint(x.abs()),
            Value::Double(x) => Value::Double(x.abs()),
            Value::Decimal(d) => Value::Decimal(Decimal::new(d.raw.abs(), d.scale)),
            other => return Err(MlError::Execution(format!("abs({other:?})"))),
        },
        ScalarFunc::Upper => Value::Str(args[0].as_str()?.to_uppercase()),
        ScalarFunc::Lower => Value::Str(args[0].as_str()?.to_lowercase()),
        ScalarFunc::Length => Value::Int(args[0].as_str()?.chars().count() as i32),
        ScalarFunc::Substring => {
            let len = args.pop().unwrap().as_i64()? as usize;
            let from = args.pop().unwrap().as_i64()?.max(1) as usize - 1;
            let s = args.pop().unwrap();
            Value::Str(s.as_str()?.chars().skip(from).take(len).collect())
        }
        ScalarFunc::Year | ScalarFunc::Month | ScalarFunc::Day => match &args[0] {
            Value::Date(d) => {
                let (y, m, dd) = d.ymd();
                Value::Int(match func {
                    ScalarFunc::Year => y,
                    ScalarFunc::Month => m as i32,
                    _ => dd as i32,
                })
            }
            other => return Err(MlError::Execution(format!("{func}({other:?})"))),
        },
        ScalarFunc::AddDays | ScalarFunc::AddMonths | ScalarFunc::AddYears => {
            let n = args[1].as_i64()? as i32;
            match &args[0] {
                Value::Date(d) => Value::Date(match func {
                    ScalarFunc::AddDays => d.add_days(n),
                    ScalarFunc::AddMonths => d.add_months(n),
                    _ => d.add_years(n),
                }),
                other => return Err(MlError::Execution(format!("date shift of {other:?}"))),
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite::expr::BExpr;

    #[test]
    fn row_eval_basics() {
        let row = vec![Value::Int(5), Value::Str("abc".into())];
        let e = BExpr::Cmp {
            op: CmpOp::Gt,
            left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
            right: Box::new(BExpr::Lit(Value::Int(3))),
        };
        assert_eq!(eval_row(&e, &row).unwrap(), Value::Bool(true));
        let like = BExpr::Like {
            input: Box::new(BExpr::ColRef { idx: 1, ty: LogicalType::Varchar }),
            pattern: "a%".into(),
            negated: false,
        };
        assert_eq!(eval_row(&like, &row).unwrap(), Value::Bool(true));
    }

    #[test]
    fn null_propagation() {
        let row = vec![Value::Null];
        let e = BExpr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        assert_eq!(eval_row(&e, &row).unwrap(), Value::Null);
    }

    #[test]
    fn const_ast_eval() {
        let e = monetlite_sql::parse_statement("INSERT INTO x VALUES (1 + 2 * 3)").unwrap();
        let monetlite_sql::Statement::Insert { rows, .. } = e else { panic!() };
        assert_eq!(eval_const_ast(&rows[0][0]).unwrap(), Value::Int(7));
    }

    #[test]
    fn decimal_arith() {
        let a = Value::Decimal(Decimal::new(150, 2));
        let b = Value::Decimal(Decimal::new(50, 2));
        let v =
            arith_value(ArithOp::Add, a, b, LogicalType::Decimal { width: 10, scale: 2 }).unwrap();
        assert_eq!(v.to_string(), "2.00");
    }

    #[test]
    fn date_functions() {
        let d = Value::Date(Date::parse("1995-06-15").unwrap());
        assert_eq!(func_value(ScalarFunc::Year, vec![d.clone()]).unwrap(), Value::Int(1995));
        assert_eq!(
            func_value(ScalarFunc::AddMonths, vec![d, Value::Int(2)]).unwrap().to_string(),
            "1995-08-15"
        );
    }
}
