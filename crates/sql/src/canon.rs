//! Canonical (injective) statement rendering and literal normalization
//! for the plan/result caches.
//!
//! The `Display` impls on [`crate::ast`] exist for *diagnostics*: they
//! elide subqueries (`(select ...)`) and render values without type
//! tags, so two distinct ASTs can print identically. Cache keys need
//! the opposite guarantee — distinct ASTs must render distinctly — so
//! this module renders every statement fully, case-folds identifiers,
//! and tags every literal with its type ([`canon_value`]).
//!
//! [`normalize_select`] additionally rewrites WHERE-clause literals
//! into [`Expr::Param`] placeholders so that the same query *shape*
//! with different constants shares one plan-cache template. The
//! parameterization is deliberately conservative (see the rules on
//! `param_expr`); anything not parameterized simply stays in the key
//! text, which is always sound.

use crate::ast::{Expr, IntervalUnit, OrderItem, SelectItem, SelectStmt, TableRef};
use monetlite_types::Value;
use std::fmt::Write as _;

/// Injective, type-tagged rendering of a [`Value`].
///
/// Distinct values — including equal-looking values of different types
/// (`Int(1)` vs `Bigint(1)` vs `Double(1.0)` vs `Decimal(1, 0)` vs
/// `Str("1")`) — always render to distinct strings. Doubles render via
/// their bit pattern, decimals as `raw.scale`, dates as the raw day
/// count, and strings with `''`-escaped quotes.
pub fn canon_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(b) => format!("bool:{b}"),
        Value::Int(i) => format!("int:{i}"),
        Value::Bigint(i) => format!("bigint:{i}"),
        Value::Double(d) => format!("double:{:016x}", d.to_bits()),
        Value::Decimal(d) => format!("dec:{}.{}", d.raw, d.scale),
        Value::Str(s) => format!("str:'{}'", s.replace('\'', "''")),
        Value::Date(d) => format!("date:{}", d.0),
    }
}

/// Short type tag for a parameter slot: the *type* of the extracted
/// literal is part of the template key (an `int` and a `decimal`
/// constant bind and cast differently), while its value is not.
fn param_tag(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Bool(_) => "bool".to_string(),
        Value::Int(_) => "int".to_string(),
        Value::Bigint(_) => "bigint".to_string(),
        Value::Double(_) => "double".to_string(),
        Value::Decimal(d) => format!("dec{}", d.scale),
        Value::Str(_) => "str".to_string(),
        Value::Date(_) => "date".to_string(),
    }
}

/// A SELECT normalized for the plan cache.
pub struct NormalizedSelect {
    /// Canonical rendering of the parameterized statement, with
    /// `?N:<type>` markers in place of extracted literals.
    pub key: String,
    /// Extracted literals, index-aligned with the `Expr::Param` slots.
    pub params: Vec<Value>,
    /// The parameterized AST (WHERE literals replaced by `Expr::Param`).
    pub stmt: SelectStmt,
}

/// Normalize a SELECT for plan-cache keying: extract WHERE-clause
/// literals into a bind vector and render the residue canonically.
pub fn normalize_select(stmt: &SelectStmt) -> NormalizedSelect {
    let mut stmt = stmt.clone();
    let mut params = Vec::new();
    param_select(&mut stmt, &mut params);
    let key = canon_select(&stmt, &params);
    NormalizedSelect { key, params, stmt }
}

/// Canonical rendering of a whole SELECT for result-cache keying: no
/// parameterization, literals rendered in place via [`canon_value`].
pub fn canon_select_full(stmt: &SelectStmt) -> String {
    canon_select(stmt, &[])
}

// ---------------------------------------------------------------------------
// Parameterization
// ---------------------------------------------------------------------------

/// Parameterize literals in every WHERE clause of the statement tree
/// (the top-level query, CTEs, derived tables, and subqueries found in
/// expression position). Only WHERE clauses: projection/GROUP BY/HAVING
/// /ORDER BY literals shape the output schema, ordinal resolution, or
/// aggregate folding, so they stay in the key text.
fn param_select(s: &mut SelectStmt, params: &mut Vec<Value>) {
    for cte in &mut s.ctes {
        param_select(&mut cte.query, params);
    }
    for item in &mut s.projections {
        if let SelectItem::Expr { expr, .. } = item {
            param_subqueries(expr, params);
        }
    }
    for tr in &mut s.from {
        param_table_ref(tr, params);
    }
    if let Some(w) = &mut s.where_clause {
        param_expr(w, params);
    }
    for e in &mut s.group_by {
        param_subqueries(e, params);
    }
    if let Some(h) = &mut s.having {
        param_subqueries(h, params);
    }
}

fn param_table_ref(tr: &mut TableRef, params: &mut Vec<Value>) {
    match tr {
        TableRef::Table { .. } => {}
        TableRef::Subquery { query, .. } => param_select(query, params),
        TableRef::Join { left, right, on, .. } => {
            param_table_ref(left, params);
            param_table_ref(right, params);
            if let Some(on) = on {
                param_subqueries(on, params);
            }
        }
    }
}

/// Rewrite parameterizable literals under a WHERE clause.
///
/// Rules (conservative by design — an unparameterized literal is merely
/// a more specific cache key, never unsound):
/// * `NULL` and booleans stay: they fold into plan structure at bind
///   time (`WHERE false` prunes, `x = NULL` is 3VL-special).
/// * IN-list members stay: the list length is already in the key and
///   the members feed a hash-set build that binds per-list.
/// * LIKE patterns are plain strings in the AST, not expressions, so
///   they stay in the key automatically.
/// * Everything else (comparison bounds, BETWEEN bounds, arithmetic
///   operands, function/CAST arguments) becomes `?N`.
fn param_expr(e: &mut Expr, params: &mut Vec<Value>) {
    match e {
        Expr::Literal(v) => match v {
            Value::Null | Value::Bool(_) => {}
            _ => {
                let idx = params.len();
                params.push(v.clone());
                *e = Expr::Param { index: idx };
            }
        },
        Expr::Param { .. } | Expr::Column { .. } | Expr::Interval { .. } => {}
        Expr::Binary { left, right, .. } => {
            param_expr(left, params);
            param_expr(right, params);
        }
        Expr::Not(inner) | Expr::Neg(inner) => param_expr(inner, params),
        Expr::IsNull { expr, .. } => param_expr(expr, params),
        Expr::Like { expr, .. } => param_expr(expr, params),
        Expr::Between { expr, low, high, .. } => {
            param_expr(expr, params);
            param_expr(low, params);
            param_expr(high, params);
        }
        Expr::InList { expr, .. } => param_expr(expr, params),
        Expr::InSubquery { expr, query, .. } => {
            param_expr(expr, params);
            param_select(query, params);
        }
        Expr::Exists { query, .. } => param_select(query, params),
        Expr::ScalarSubquery(q) => param_select(q, params),
        Expr::Case { branches, else_expr } => {
            for (c, v) in branches {
                param_expr(c, params);
                param_expr(v, params);
            }
            if let Some(e) = else_expr {
                param_expr(e, params);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                param_expr(a, params);
            }
        }
        Expr::Extract { expr, .. } => param_expr(expr, params),
        Expr::Cast { expr, .. } => param_expr(expr, params),
        Expr::Function { args, .. } => {
            for a in args {
                param_expr(a, params);
            }
        }
    }
}

/// Outside WHERE clauses we leave literals alone but still must recurse
/// into any *subqueries* so their own WHERE clauses get parameterized.
fn param_subqueries(e: &mut Expr, params: &mut Vec<Value>) {
    match e {
        Expr::Literal(_) | Expr::Param { .. } | Expr::Column { .. } | Expr::Interval { .. } => {}
        Expr::Binary { left, right, .. } => {
            param_subqueries(left, params);
            param_subqueries(right, params);
        }
        Expr::Not(inner) | Expr::Neg(inner) => param_subqueries(inner, params),
        Expr::IsNull { expr, .. } => param_subqueries(expr, params),
        Expr::Like { expr, .. } => param_subqueries(expr, params),
        Expr::Between { expr, low, high, .. } => {
            param_subqueries(expr, params);
            param_subqueries(low, params);
            param_subqueries(high, params);
        }
        Expr::InList { expr, list, .. } => {
            param_subqueries(expr, params);
            for m in list {
                param_subqueries(m, params);
            }
        }
        Expr::InSubquery { expr, query, .. } => {
            param_subqueries(expr, params);
            param_select(query, params);
        }
        Expr::Exists { query, .. } => param_select(query, params),
        Expr::ScalarSubquery(q) => param_select(q, params),
        Expr::Case { branches, else_expr } => {
            for (c, v) in branches {
                param_subqueries(c, params);
                param_subqueries(v, params);
            }
            if let Some(e) = else_expr {
                param_subqueries(e, params);
            }
        }
        Expr::Agg { arg, .. } => {
            if let Some(a) = arg {
                param_subqueries(a, params);
            }
        }
        Expr::Extract { expr, .. } => param_subqueries(expr, params),
        Expr::Cast { expr, .. } => param_subqueries(expr, params),
        Expr::Function { args, .. } => {
            for a in args {
                param_subqueries(a, params);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Canonical rendering
// ---------------------------------------------------------------------------

fn canon_select(s: &SelectStmt, params: &[Value]) -> String {
    let mut out = String::new();
    write_select(&mut out, s, params);
    out
}

fn write_select(out: &mut String, s: &SelectStmt, params: &[Value]) {
    if !s.ctes.is_empty() {
        out.push_str("with ");
        for (i, cte) in s.ctes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&fold(&cte.name));
            if let Some(cols) = &cte.columns {
                let folded: Vec<String> = cols.iter().map(|c| fold(c)).collect();
                let _ = write!(out, " ({})", folded.join(", "));
            }
            out.push_str(" as (");
            write_select(out, &cte.query, params);
            out.push(')');
        }
        out.push(' ');
    }
    out.push_str("select ");
    if s.distinct {
        out.push_str("distinct ");
    }
    for (i, item) in s.projections.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match item {
            SelectItem::Wildcard => out.push('*'),
            SelectItem::QualifiedWildcard(t) => {
                let _ = write!(out, "{}.*", fold(t));
            }
            SelectItem::Expr { expr, alias } => {
                write_expr(out, expr, params);
                if let Some(a) = alias {
                    let _ = write!(out, " as {}", fold(a));
                }
            }
        }
    }
    if !s.from.is_empty() {
        out.push_str(" from ");
        for (i, tr) in s.from.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_table_ref(out, tr, params);
        }
    }
    if let Some(w) = &s.where_clause {
        out.push_str(" where ");
        write_expr(out, w, params);
    }
    if !s.group_by.is_empty() {
        out.push_str(" group by ");
        for (i, e) in s.group_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, e, params);
        }
    }
    if let Some(h) = &s.having {
        out.push_str(" having ");
        write_expr(out, h, params);
    }
    if !s.order_by.is_empty() {
        out.push_str(" order by ");
        for (i, OrderItem { expr, desc }) in s.order_by.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write_expr(out, expr, params);
            if *desc {
                out.push_str(" desc");
            }
        }
    }
    if let Some(l) = s.limit {
        let _ = write!(out, " limit {l}");
    }
}

fn write_table_ref(out: &mut String, tr: &TableRef, params: &[Value]) {
    match tr {
        TableRef::Table { name, alias } => {
            out.push_str(&fold(name));
            if let Some(a) = alias {
                let _ = write!(out, " as {}", fold(a));
            }
        }
        TableRef::Subquery { query, alias, columns } => {
            out.push('(');
            write_select(out, query, params);
            let _ = write!(out, ") as {}", fold(alias));
            if let Some(cols) = columns {
                let folded: Vec<String> = cols.iter().map(|c| fold(c)).collect();
                let _ = write!(out, " ({})", folded.join(", "));
            }
        }
        TableRef::Join { left, right, kind, on } => {
            out.push('(');
            write_table_ref(out, left, params);
            let _ = write!(out, " {:?} join ", kind);
            write_table_ref(out, right, params);
            if let Some(on) = on {
                out.push_str(" on ");
                write_expr(out, on, params);
            }
            out.push(')');
        }
    }
}

fn write_expr(out: &mut String, e: &Expr, params: &[Value]) {
    match e {
        Expr::Column { table: Some(t), name } => {
            let _ = write!(out, "{}.{}", fold(t), fold(name));
        }
        Expr::Column { table: None, name } => out.push_str(&fold(name)),
        Expr::Literal(v) => out.push_str(&canon_value(v)),
        Expr::Param { index } => {
            let tag = params.get(*index).map(param_tag).unwrap_or_else(|| "?".to_string());
            let _ = write!(out, "?{index}:{tag}");
        }
        Expr::Interval { value, unit } => {
            let u = match unit {
                IntervalUnit::Day => "day",
                IntervalUnit::Month => "month",
                IntervalUnit::Year => "year",
            };
            let _ = write!(out, "interval {value} {u}");
        }
        Expr::Binary { op, left, right } => {
            let _ = write!(out, "({:?} ", op);
            write_expr(out, left, params);
            out.push(' ');
            write_expr(out, right, params);
            out.push(')');
        }
        Expr::Not(inner) => {
            out.push_str("(not ");
            write_expr(out, inner, params);
            out.push(')');
        }
        Expr::Neg(inner) => {
            out.push_str("(neg ");
            write_expr(out, inner, params);
            out.push(')');
        }
        Expr::IsNull { expr, negated } => {
            let _ = write!(out, "(is{}null ", if *negated { "not" } else { "" });
            write_expr(out, expr, params);
            out.push(')');
        }
        Expr::Like { expr, pattern, negated } => {
            let _ = write!(out, "({}like ", if *negated { "not" } else { "" });
            write_expr(out, expr, params);
            let _ = write!(out, " '{}')", pattern.replace('\'', "''"));
        }
        Expr::Between { expr, low, high, negated } => {
            let _ = write!(out, "({}between ", if *negated { "not" } else { "" });
            write_expr(out, expr, params);
            out.push(' ');
            write_expr(out, low, params);
            out.push(' ');
            write_expr(out, high, params);
            out.push(')');
        }
        Expr::InList { expr, list, negated } => {
            let _ = write!(out, "({}in ", if *negated { "not" } else { "" });
            write_expr(out, expr, params);
            out.push_str(" [");
            for (i, m) in list.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_expr(out, m, params);
            }
            out.push_str("])");
        }
        Expr::InSubquery { expr, query, negated } => {
            let _ = write!(out, "({}in ", if *negated { "not" } else { "" });
            write_expr(out, expr, params);
            out.push_str(" (");
            write_select(out, query, params);
            out.push_str("))");
        }
        Expr::Exists { query, negated } => {
            let _ = write!(out, "({}exists (", if *negated { "not" } else { "" });
            write_select(out, query, params);
            out.push_str("))");
        }
        Expr::ScalarSubquery(q) => {
            out.push_str("(scalar (");
            write_select(out, q, params);
            out.push_str("))");
        }
        Expr::Case { branches, else_expr } => {
            out.push_str("(case");
            for (c, v) in branches {
                out.push_str(" when ");
                write_expr(out, c, params);
                out.push_str(" then ");
                write_expr(out, v, params);
            }
            if let Some(e) = else_expr {
                out.push_str(" else ");
                write_expr(out, e, params);
            }
            out.push_str(" end)");
        }
        Expr::Agg { func, arg, distinct } => {
            let _ = write!(out, "({:?}", func);
            if *distinct {
                out.push_str(" distinct");
            }
            match arg {
                None => out.push_str(" *"),
                Some(a) => {
                    out.push(' ');
                    write_expr(out, a, params);
                }
            }
            out.push(')');
        }
        Expr::Extract { field, expr } => {
            let _ = write!(out, "(extract {:?} ", field);
            write_expr(out, expr, params);
            out.push(')');
        }
        Expr::Cast { expr, ty } => {
            out.push_str("(cast ");
            write_expr(out, expr, params);
            let _ = write!(out, " {ty})");
        }
        Expr::Function { name, args } => {
            let _ = write!(out, "({}", fold(name));
            for a in args {
                out.push(' ');
                write_expr(out, a, params);
            }
            out.push(')');
        }
    }
}

fn fold(ident: &str) -> String {
    ident.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;
    use crate::Statement;
    use monetlite_types::Decimal;

    fn sel(sql: &str) -> SelectStmt {
        match parse_statement(sql).unwrap() {
            Statement::Select(s) => *s,
            other => panic!("not a select: {other:?}"),
        }
    }

    #[test]
    fn canon_value_is_type_tagged() {
        // Same surface text, different types — the old Display rendered
        // all of these identically ("1" / "5").
        let collide = [
            Value::Int(5),
            Value::Bigint(5),
            Value::Double(5.0),
            Value::Decimal(Decimal::new(5, 0)),
            Value::Str("5".into()),
        ];
        for (i, a) in collide.iter().enumerate() {
            for b in &collide[i + 1..] {
                assert_ne!(canon_value(a), canon_value(b), "{a:?} vs {b:?}");
            }
        }
        assert_ne!(
            canon_value(&Value::Decimal(Decimal::new(10, 1))),
            canon_value(&Value::Decimal(Decimal::new(1, 0))),
            "1.0 vs 1 must not alias"
        );
        assert_ne!(canon_value(&Value::Str("a''b".into())), canon_value(&Value::Str("a'b".into())));
    }

    #[test]
    fn normalize_extracts_where_literals() {
        let n = normalize_select(&sel("select a from t where b = 5 and c between 1 and 2"));
        assert_eq!(n.params, vec![Value::Int(5), Value::Int(1), Value::Int(2)]);
        assert!(n.key.contains("?0:int"), "{}", n.key);
        // Same shape, different constants → same key.
        let n2 = normalize_select(&sel("select a from t where b = 7 and c between 3 and 4"));
        assert_eq!(n.key, n2.key);
        // Different shape → different key.
        let n3 = normalize_select(&sel("select a from t where b = 7"));
        assert_ne!(n.key, n3.key);
    }

    #[test]
    fn normalize_keeps_structural_literals() {
        // IN-list members, projection literals, ORDER BY ordinals and
        // LIMIT stay in the key.
        let a = normalize_select(&sel("select 1, a from t where x in (1, 2) order by 2 limit 3"));
        let b = normalize_select(&sel("select 1, a from t where x in (1, 3) order by 2 limit 3"));
        assert_ne!(a.key, b.key, "IN members must stay in the key");
        assert!(a.params.is_empty());
        let c = normalize_select(&sel("select 2, a from t where x in (1, 2) order by 2 limit 3"));
        assert_ne!(a.key, c.key, "projection literals must stay in the key");
    }

    #[test]
    fn normalize_reaches_subquery_where() {
        let a = normalize_select(&sel(
            "select a from t where exists (select 1 from u where u.k = t.k and u.v > 10)",
        ));
        assert_eq!(a.params, vec![Value::Int(10)]);
        let b = normalize_select(&sel(
            "select a from t where exists (select 1 from u where u.k = t.k and u.v > 99)",
        ));
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn canon_renders_subqueries_fully() {
        // The diagnostic Display elides subqueries; the canonical
        // rendering must not.
        let a = canon_select_full(&sel("select a from t where x in (select k from u)"));
        let b = canon_select_full(&sel("select a from t where x in (select k from v)"));
        assert_ne!(a, b);
        // Identifier case folds.
        let c = canon_select_full(&sel("SELECT A FROM T WHERE X IN (SELECT K FROM U)"));
        assert_eq!(a, c);
    }

    #[test]
    fn typed_literals_key_differently() {
        // int 5 vs decimal 5.0 in WHERE → different param type tags.
        let a = normalize_select(&sel("select a from t where b = 5"));
        let b = normalize_select(&sel("select a from t where b = 5.0"));
        assert_ne!(a.key, b.key);
    }
}
