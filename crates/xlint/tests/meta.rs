//! Meta-tests: each lint rule must (a) fire on a synthetic tree seeded
//! with exactly one violation and (b) stay quiet on the corrected tree.
//! A linter whose rules cannot be shown to fire is indistinguishable
//! from `exit 0`. The final test runs the full linter against the real
//! workspace — the same invocation CI uses.

use std::path::Path;
use tempfile::TempDir;
use xlint::{
    check_checksum_discipline, check_counter_liveness, check_env_registry, check_kernel_twins,
    check_no_panic, check_raw_io, check_shim_exports, run, RuleResult,
};

fn tree(files: &[(&str, &str)]) -> TempDir {
    let dir = tempfile::tempdir().expect("tempdir");
    for (path, contents) in files {
        let p = dir.path().join(path);
        std::fs::create_dir_all(p.parent().expect("parent")).expect("mkdir");
        std::fs::write(&p, contents).expect("write");
    }
    dir
}

fn assert_fires(res: &RuleResult, rule: &str, msg_fragment: &str) {
    assert!(
        res.violations.iter().any(|v| v.rule == rule && v.msg.contains(msg_fragment)),
        "expected a `{rule}` violation mentioning {msg_fragment:?}, got: {:#?}",
        res.violations
    );
}

fn assert_clean(res: &RuleResult) {
    assert!(res.violations.is_empty(), "expected clean, got: {:#?}", res.violations);
}

// ---------------------------------------------------------------------------
// kernel twins
// ---------------------------------------------------------------------------

const KERNELS_TESTS: &str = r#"
#[cfg(test)]
mod tests {
    use super::*;
    proptest! {
        #[test]
        fn parity(x in 0i32..10) {
            prop_assert_eq!(eval(x), eval_sel(x));
        }
    }
}
"#;

fn kernels_src(eval_body: &str) -> String {
    format!(
        "pub fn eval(x: i32) -> i32 {{ {eval_body} }}\n\
         pub fn eval_sel(x: i32) -> i32 {{ foo_sel(x) }}\n\
         fn foo(x: i32) -> i32 {{ x }}\n\
         fn foo_sel(x: i32) -> i32 {{ x }}\n{KERNELS_TESTS}"
    )
}

#[test]
fn kernel_twin_rule_fires_on_unwired_dense_kernel() {
    // `foo` has a `_sel` twin but eval() never dispatches to it.
    let t = tree(&[("crates/core/src/kernels.rs", &kernels_src("x + 1"))]);
    assert_fires(&check_kernel_twins(t.path()), "kernel-twins", "`foo`");
}

#[test]
fn kernel_twin_rule_fires_on_missing_parity_test() {
    let src = kernels_src("foo(x)").replace("proptest!", "plain_tests");
    let t = tree(&[("crates/core/src/kernels.rs", &src)]);
    assert_fires(&check_kernel_twins(t.path()), "kernel-twins", "parity proptest");
}

#[test]
fn kernel_twin_rule_passes_on_wired_pair() {
    let t = tree(&[("crates/core/src/kernels.rs", &kernels_src("foo(x)"))]);
    assert_clean(&check_kernel_twins(t.path()));
}

// ---------------------------------------------------------------------------
// checksum discipline
// ---------------------------------------------------------------------------

fn persist_src(body: &str) -> String {
    format!("pub fn read_stats_file(p: &Path) -> Result<Stats> {{\n{body}\n}}\n")
}

#[test]
fn checksum_rule_fires_on_reader_without_checksum() {
    let t = tree(&[(
        "crates/storage/src/persist.rs",
        &persist_src("let bytes = std::fs::read(p)?; decode(&bytes)"),
    )]);
    let res = check_checksum_discipline(t.path());
    assert_fires(&res, "checksum-discipline", "fnv1a");
    assert_fires(&res, "checksum-discipline", "MlError::Corrupt");
}

#[test]
fn checksum_rule_passes_on_validating_reader() {
    let t = tree(&[(
        "crates/storage/src/persist.rs",
        &persist_src(
            "let bytes = std::fs::read(p)?;\n\
             if fnv1a(&bytes) != ck { return Err(MlError::Corrupt(\"stats\".into())); }\n\
             decode(&bytes)",
        ),
    )]);
    assert_clean(&check_checksum_discipline(t.path()));
}

// ---------------------------------------------------------------------------
// counter liveness
// ---------------------------------------------------------------------------

fn exec_src(extra_field: &str, snapshot_extra: &str, bump_extra: &str) -> String {
    format!(
        "pub struct ExecCounters {{\n    pub morsels: AtomicU64,\n{extra_field}}}\n\
         pub struct CountersSnapshot {{\n    pub morsels: u64,\n{snapshot_extra}}}\n\
         impl ExecCounters {{\n    pub fn snapshot(&self) -> CountersSnapshot {{\n        \
         CountersSnapshot {{ morsels: g(&self.morsels), {bump_extra} }}\n    }}\n}}\n\
         fn driver(counters: &ExecCounters) {{\n    counters.morsels.fetch_add(1, Relaxed);\n}}\n"
    )
}

#[test]
fn counter_rule_fires_on_dead_counter() {
    // `dead` is declared and mirrored but never incremented anywhere.
    let t = tree(&[(
        "crates/core/src/exec.rs",
        &exec_src("    pub dead: AtomicU64,\n", "    pub dead: u64,\n", "dead: g(&self.dead)"),
    )]);
    assert_fires(&check_counter_liveness(t.path()), "counter-liveness", "never incremented");
}

#[test]
fn counter_rule_fires_on_missing_snapshot_mirror() {
    let src = exec_src("", "", "").replace("pub morsels: u64,\n", "");
    let t = tree(&[("crates/core/src/exec.rs", &src)]);
    assert_fires(&check_counter_liveness(t.path()), "counter-liveness", "CountersSnapshot");
}

#[test]
fn counter_rule_passes_on_live_surfaced_counter() {
    let t = tree(&[("crates/core/src/exec.rs", &exec_src("", "", ""))]);
    assert_clean(&check_counter_liveness(t.path()));
}

// ---------------------------------------------------------------------------
// env-var registry
// ---------------------------------------------------------------------------

const ARCH_TABLE: &str = "# Architecture\n\n\
    | Variable | Effect |\n|---|---|\n| `MONETLITE_FOO` | test knob |\n";

#[test]
fn env_rule_fires_on_undocumented_variable() {
    let t = tree(&[
        ("crates/core/src/opt.rs", "fn f() { std::env::var(\"MONETLITE_BAR\"); }\n"),
        ("ARCHITECTURE.md", ARCH_TABLE),
    ]);
    // BAR is read but not documented; FOO is documented but unread.
    let res = check_env_registry(t.path());
    assert_fires(&res, "env-registry", "`MONETLITE_BAR`");
    assert_fires(&res, "env-registry", "`MONETLITE_FOO`");
}

#[test]
fn env_rule_passes_when_registry_matches_reads() {
    let t = tree(&[
        ("crates/core/src/opt.rs", "fn f() { std::env::var(\"MONETLITE_FOO\"); }\n"),
        ("ARCHITECTURE.md", ARCH_TABLE),
    ]);
    assert_clean(&check_env_registry(t.path()));
}

// ---------------------------------------------------------------------------
// no-panic hot path
// ---------------------------------------------------------------------------

fn hot_tree(pipeline_body: &str) -> TempDir {
    let mut files: Vec<(&str, String)> =
        xlint::HOT_PATH.iter().map(|f| (*f, "pub fn ok() -> usize { 1 }\n".to_string())).collect();
    files[1].1 = pipeline_body.to_string(); // pipeline.rs
    let refs: Vec<(&str, &str)> = files.iter().map(|(p, c)| (*p, c.as_str())).collect();
    tree(&refs)
}

#[test]
fn no_panic_rule_fires_on_bare_unwrap() {
    let t = hot_tree("pub fn f(v: Vec<i32>) -> i32 { v.first().copied().unwrap() }\n");
    assert_fires(&check_no_panic(t.path()), "no-panic", ".unwrap()");
}

#[test]
fn no_panic_rule_honours_allow_annotation_and_counts_it() {
    let t = hot_tree(
        "pub fn f(v: Vec<i32>) -> i32 {\n\
         // xlint: allow(panic, callers guarantee non-empty)\n\
         v.first().copied().unwrap()\n}\n",
    );
    let res = check_no_panic(t.path());
    assert_clean(&res);
    assert!(
        res.notes.iter().any(|n| n.contains("1 annotated allow(panic)")),
        "allow sites must be counted: {:?}",
        res.notes
    );
}

#[test]
fn no_panic_rule_ignores_test_modules_and_comments() {
    let t = hot_tree(
        "pub fn f() -> i32 { 1 } // .unwrap() in a comment is fine\n\
         #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n",
    );
    assert_clean(&check_no_panic(t.path()));
}

// ---------------------------------------------------------------------------
// shim export conformance
// ---------------------------------------------------------------------------

#[test]
fn shim_rule_fires_on_invented_export() {
    let t = tree(&[("vendor/rand/src/lib.rs", "pub fn not_in_rand() -> u64 { 4 }\n")]);
    assert_fires(&check_shim_exports(t.path()), "shim-exports", "`not_in_rand`");
}

#[test]
fn shim_rule_fires_on_uncurated_vendor_crate() {
    let t = tree(&[("vendor/mystery/src/lib.rs", "pub struct Mystery;\n")]);
    assert_fires(&check_shim_exports(t.path()), "shim-exports", "`mystery`");
}

#[test]
fn shim_rule_accepts_real_surface_and_annotated_helpers() {
    let t = tree(&[(
        "vendor/rand/src/lib.rs",
        "pub trait Rng {}\n\
         // xlint: allow(shim-export, internal helper for the shim's Rng impl)\n\
         pub struct ShimState;\n",
    )]);
    let res = check_shim_exports(t.path());
    assert_clean(&res);
    assert!(
        res.notes.iter().any(|n| n.contains("1 annotated shim-internal")),
        "annotated helpers must be counted: {:?}",
        res.notes
    );
}

// ---------------------------------------------------------------------------
// failpoint coverage (raw-io)
// ---------------------------------------------------------------------------

const SPILL_OK: &str = "use std::fs::File;\n\
    pub fn f(p: &Path) -> Result<File> { fault::open(\"spill.open\", p) }\n";

#[test]
fn raw_io_rule_fires_on_unwrapped_call() {
    let t = tree(&[
        ("crates/storage/src/wal.rs", "pub fn f(p: &Path) { let _ = std::fs::remove_file(p); }\n"),
        ("crates/core/src/spill.rs", SPILL_OK),
    ]);
    assert_fires(&check_raw_io(t.path()), "raw-io", "`std::fs::`");
}

#[test]
fn raw_io_rule_skips_imports_tests_and_wrapped_calls() {
    // A `use` line naming std::fs types, a test-module raw call, and a
    // wrapped `fault::write_all` (no leading dot) must all pass.
    let t = tree(&[
        (
            "crates/storage/src/wal.rs",
            "use std::fs::File;\n\
             pub fn f(w: &mut W, b: &[u8]) -> Result<()> { fault::write_all(\"wal.append\", w, b) }\n\
             #[cfg(test)]\nmod tests {\n    fn t() { std::fs::write(\"x\", b\"y\").unwrap(); }\n}\n",
        ),
        ("crates/core/src/spill.rs", SPILL_OK),
    ]);
    assert_clean(&check_raw_io(t.path()));
}

#[test]
fn raw_io_rule_honours_allow_annotation_and_counts_it() {
    let t = tree(&[
        (
            "crates/storage/src/vmem.rs",
            "pub fn f(p: &Path) {\n\
             // xlint: allow(raw-io, best-effort cache probe, never fails a query)\n\
             let _ = std::fs::metadata(p);\n}\n",
        ),
        ("crates/core/src/spill.rs", SPILL_OK),
    ]);
    let res = check_raw_io(t.path());
    assert_clean(&res);
    assert!(
        res.notes.iter().any(|n| n.contains("1 annotated allow(raw-io)")),
        "allow sites must be counted: {:?}",
        res.notes
    );
}

#[test]
fn raw_io_rule_fires_when_scope_file_is_missing() {
    // spill.rs absent: the rule must complain instead of silently
    // shrinking its scope.
    let t = tree(&[("crates/storage/src/wal.rs", "pub fn ok() {}\n")]);
    assert_fires(&check_raw_io(t.path()), "raw-io", "missing");
}

// ---------------------------------------------------------------------------
// the real workspace
// ---------------------------------------------------------------------------

#[test]
fn workspace_passes_every_invariant() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = run(&root);
    assert!(report.is_clean(), "xlint found violations:\n{}", report.render());
}
