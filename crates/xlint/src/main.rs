//! `cargo run -p xlint` — run every workspace invariant check and exit
//! non-zero if any is violated. An explicit root may be passed as the
//! first argument (used by CI and the meta-tests).

#![forbid(unsafe_code)]

use std::path::PathBuf;

fn main() {
    let root = std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| {
        // crates/xlint/../.. == the workspace root.
        PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
    });
    let report = xlint::run(&root);
    print!("{}", report.render());
    if !report.is_clean() {
        std::process::exit(1);
    }
}
