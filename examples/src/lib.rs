//! Example binaries live in `examples/examples/`.
