//! High-level (relational-tree) optimizations, paper §3.1: "High level
//! optimizations, such as filter push down, are performed on the
//! relational tree."
//!
//! Passes, in order:
//! 1. **Join-key extraction** — equality conjuncts in ON residuals and in
//!    filters above cross joins become hash-join keys.
//! 2. **Filter push-down** — predicates sink through joins and projections
//!    into scans.
//! 3. **Join ordering** — cost-based DPsize enumeration of inner-join
//!    clusters over derived selectivities and distinct-value join
//!    estimates (greedy connected ordering above the relation cap or when
//!    DP is ablated).
//! 4. **Projection push-down** — scans produce only the columns someone
//!    consumes (the column-store advantage on wide tables).
//! 5. **Constant folding** and **top-n fusion** (`ORDER BY`+`LIMIT` →
//!    TopN).
//!
//! Cardinality model (the [`estimate_rows`] used by ordering, build-side
//! selection and EXPLAIN's `-- stats` section):
//! * equality against a constant ⇒ `(1 - null_frac) / ndv`;
//! * constant range probes ⇒ the probed fraction of the column's
//!   `[min, max]` span (in the order-preserving key domain);
//! * conjunctions combine with exponential backoff (most selective
//!   conjunct at full strength, each further one square-rooted) so
//!   correlated predicates don't drive estimates to zero;
//! * equi-joins ⇒ `|L|·|R| / max(ndv_L, ndv_R)` with NDVs clamped to the
//!   filtered input sizes;
//! * every operator estimate is clamped to `[1, input]` — a vacuous
//!   filter cannot shrink anything downstream.
//!
//! Without column statistics ([`Stats::column_stats`] returning `None`)
//! the per-predicate rules fall back to the fixed constants the optimizer
//! used before statistics existed (composition — backoff, OR/NOT algebra,
//! exact constants — still applies).

use crate::bind::CatalogAccess;
use crate::expr::{BExpr, CmpOp};
use crate::kernels;
use crate::plan::{OutCol, PJoinKind, Plan};
use monetlite_types::{Result, Value};

/// Optimizer switches (ablation benches toggle these).
#[derive(Debug, Clone, Copy)]
pub struct OptFlags {
    /// Filter + projection push-down.
    pub pushdown: bool,
    /// Join ordering (off = keep the binder's syntactic order).
    pub join_order: bool,
    /// Cost-based DP enumeration for join ordering; `false` falls back to
    /// the greedy connected ordering (env `MONETLITE_JOINORDER=0`).
    pub join_dp: bool,
    /// ORDER BY + LIMIT fusion.
    pub topn: bool,
    /// Constant folding.
    pub fold: bool,
    /// Hash-join build-side selection: put the smaller input on the build
    /// side so the larger one streams through the (morsel-parallel) probe.
    pub build_side: bool,
}

impl Default for OptFlags {
    fn default() -> Self {
        OptFlags {
            pushdown: true,
            join_order: true,
            // Same truthiness rules as the other MONETLITE_* ablation
            // levers (shared with MONETLITE_CANDIDATES/ZONEMAPS).
            join_dp: crate::exec::env_bool("MONETLITE_JOINORDER", true),
            topn: true,
            fold: true,
            build_side: true,
        }
    }
}

/// Optimizer-facing statistics of one base-table column, derived from the
/// storage layer's [`monetlite_storage::stats::ColumnStats`] summaries
/// (or synthesised by test shims).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColStats {
    /// Fraction of NULL rows in the column.
    pub null_frac: f64,
    /// Estimated number of distinct non-NULL values.
    pub ndv: f64,
    /// Minimum non-NULL key (order-preserving i64 domain); `None` for
    /// VARCHAR / all-NULL columns.
    pub min_key: Option<i64>,
    /// Maximum non-NULL key (see `min_key`).
    pub max_key: Option<i64>,
}

/// Statistics provider for the cost-based optimizer.
pub trait Stats {
    /// Estimated (visible) row count of a base table.
    fn table_rows(&self, name: &str) -> usize;

    /// Per-column statistics of base-table column `col` (schema
    /// position). `None` = unknown; the estimator falls back to the fixed
    /// selectivity constants.
    fn column_stats(&self, _table: &str, _col: usize) -> Option<ColStats> {
        None
    }
}

/// A [`Stats`] that knows nothing (all tables equal).
pub struct NoStats;

impl Stats for NoStats {
    fn table_rows(&self, _name: &str) -> usize {
        1000
    }
}

/// How a connection's optimizer sees statistics — the lever of the
/// stats-fuzzing differential tests: plans may differ across modes, query
/// results must not.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsMode {
    /// Real row counts and real column statistics.
    Real,
    /// Real row counts, no column statistics (the pre-statistics
    /// constant-selectivity model).
    TableRowsOnly,
    /// Deterministically *wrong* statistics derived from the seed —
    /// random row counts, NDVs and ranges. Exercises that costing can
    /// never affect correctness.
    Adversarial(u64),
}

/// Wraps an underlying [`Stats`] with a [`StatsMode`] filter.
pub struct ModedStats<'a> {
    /// The real provider.
    pub inner: &'a dyn Stats,
    /// Filter mode.
    pub mode: StatsMode,
}

use monetlite_storage::stats::mix64;

fn hash_name(seed: u64, name: &str, salt: u64) -> u64 {
    let mut h = seed ^ salt.wrapping_mul(0x100000001b3);
    for b in name.bytes() {
        h = mix64(h ^ b as u64);
    }
    h
}

impl Stats for ModedStats<'_> {
    fn table_rows(&self, name: &str) -> usize {
        match self.mode {
            StatsMode::Real | StatsMode::TableRowsOnly => self.inner.table_rows(name),
            StatsMode::Adversarial(seed) => 1 + (hash_name(seed, name, 1) % 1_000_000) as usize,
        }
    }

    fn column_stats(&self, table: &str, col: usize) -> Option<ColStats> {
        match self.mode {
            StatsMode::Real => self.inner.column_stats(table, col),
            StatsMode::TableRowsOnly => None,
            StatsMode::Adversarial(seed) => {
                let h = hash_name(seed, table, 100 + col as u64);
                let ndv = 1.0 + (mix64(h) % 1_000_000) as f64;
                let a = (mix64(h ^ 1) % 100_000) as i64 - 50_000;
                let b = (mix64(h ^ 2) % 100_000) as i64 - 50_000;
                Some(ColStats {
                    null_frac: (mix64(h ^ 3) % 100) as f64 / 100.0,
                    ndv,
                    min_key: Some(a.min(b)),
                    max_key: Some(a.max(b)),
                })
            }
        }
    }
}

/// Run all enabled passes.
pub fn optimize(
    plan: Plan,
    flags: OptFlags,
    stats: &dyn Stats,
    _catalog: &dyn CatalogAccess,
) -> Result<Plan> {
    let mut p = plan;
    if flags.fold {
        p = fold_constants(p)?;
    }
    p = extract_join_keys(p)?;
    if flags.pushdown {
        p = push_filters(p)?;
    }
    if flags.join_order {
        p = order_joins(p, stats, flags.join_dp)?;
        // Re-push filters that ordering may have lifted.
        if flags.pushdown {
            p = push_filters(p)?;
        }
    }
    if flags.pushdown {
        p = prune_projections(p)?;
    }
    if flags.build_side {
        p = choose_build_side(p, stats)?;
    }
    if flags.topn {
        p = fuse_topn(p);
    }
    Ok(p)
}

// ---------------------------------------------------------------------------
// Build-side selection (streaming pipelines)
// ---------------------------------------------------------------------------

/// The executor builds the hash table on the **right** input of every
/// equi-join and streams the left through the probe. For the pipeline
/// engine that choice decides which side is the breaker: the probe side
/// is carved into morsels and parallelised while the build side is fully
/// materialised. Swap any inner equi-join whose left (probe) estimate is
/// clearly smaller than its right (build) estimate, wrapping the result
/// in a projection that restores the original column order.
fn choose_build_side(p: Plan, stats: &dyn Stats) -> Result<Plan> {
    map_children(p, &mut |child| choose_build_side(child, stats)).map(|p| match p {
        Plan::Join {
            left,
            right,
            kind: PJoinKind::Inner,
            left_keys,
            right_keys,
            residual,
            schema,
        } if !left_keys.is_empty() => {
            let (le, re) = (estimate(&left, stats), estimate(&right, stats));
            // Hysteresis: only swap decisive imbalances — a swap costs a
            // restoring projection and can forfeit an automatic hash
            // index on the old build column.
            if le * 2.0 < re {
                let (nl, nr) = (left.schema().len(), right.schema().len());
                let remap = move |c: usize| if c < nl { c + nr } else { c - nl };
                let residual = residual.map(|r| r.remap_cols(&remap));
                let swapped_schema: Vec<OutCol> =
                    right.schema().iter().chain(left.schema()).cloned().collect();
                let exprs: Vec<BExpr> = (0..nl + nr)
                    .map(|c| {
                        let idx = remap(c);
                        BExpr::ColRef { idx, ty: swapped_schema[idx].ty }
                    })
                    .collect();
                Plan::Project {
                    input: Box::new(Plan::Join {
                        left: right,
                        right: left,
                        kind: PJoinKind::Inner,
                        left_keys: right_keys,
                        right_keys: left_keys,
                        residual,
                        schema: swapped_schema,
                    }),
                    exprs,
                    schema,
                }
            } else {
                Plan::Join {
                    left,
                    right,
                    kind: PJoinKind::Inner,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                }
            }
        }
        other => other,
    })
}

// ---------------------------------------------------------------------------
// Pass 1: join-key extraction
// ---------------------------------------------------------------------------

fn extract_join_keys(p: Plan) -> Result<Plan> {
    Ok(match p {
        Plan::Join { left, right, kind, mut left_keys, mut right_keys, residual, schema } => {
            let left = Box::new(extract_join_keys(*left)?);
            let mut right = Box::new(extract_join_keys(*right)?);
            let nleft = left.schema().len();
            let mut rest = Vec::new();
            if let Some(res) = residual {
                for c in split_and(res) {
                    match classify_equi(&c, nleft) {
                        Some((lk, rk)) => {
                            left_keys.push(lk);
                            right_keys.push(rk);
                        }
                        None => rest.push(c),
                    }
                }
            }
            // LEFT JOIN: ON conjuncts touching only the build side
            // restrict which rows can match (never which probe rows
            // survive) — sink them into the right input (Q13's
            // `o_comment NOT LIKE ...`).
            if kind == PJoinKind::Left {
                let mut keep = Vec::new();
                let mut sank = false;
                for c in rest {
                    let mut cols = Vec::new();
                    c.collect_cols(&mut cols);
                    if !cols.is_empty() && cols.iter().all(|&x| x >= nleft) {
                        let pred = c.remap_cols(&|x| x - nleft);
                        right = Box::new(Plan::Filter { input: right, pred });
                        sank = true;
                    } else {
                        keep.push(c);
                    }
                }
                rest = keep;
                // A key-less LEFT join with no residual is the binder's
                // *scalar join* shape (right side must hold ≤ 1 row).
                // Sinking must not manufacture it from a user LEFT JOIN —
                // keep a vacuous residual so the executors take the
                // general cross-pair + pad path.
                if sank && left_keys.is_empty() && rest.is_empty() {
                    rest.push(BExpr::Lit(Value::Bool(true)));
                }
            }
            let kind = if kind == PJoinKind::Cross && !left_keys.is_empty() {
                PJoinKind::Inner
            } else {
                kind
            };
            let residual = rest.into_iter().reduce(|a, b| BExpr::And(Box::new(a), Box::new(b)));
            Plan::Join { left, right, kind, left_keys, right_keys, residual, schema }
        }
        other => map_children(other, &mut |c| extract_join_keys(c))?,
    })
}

/// If `e` is `l = r` with `l` touching only columns < nleft and `r` only
/// columns >= nleft (or vice versa), return the (left-side, right-side)
/// key pair with the right side remapped into right-plan coordinates.
fn classify_equi(e: &BExpr, nleft: usize) -> Option<(BExpr, BExpr)> {
    let BExpr::Cmp { op: crate::expr::CmpOp::Eq, left, right } = e else {
        return None;
    };
    let side = |x: &BExpr| -> Option<bool> {
        // Some(true) = pure left, Some(false) = pure right.
        let mut cols = Vec::new();
        x.collect_cols(&mut cols);
        if cols.is_empty() {
            return None; // constant: not a join key
        }
        if cols.iter().all(|&c| c < nleft) {
            Some(true)
        } else if cols.iter().all(|&c| c >= nleft) {
            Some(false)
        } else {
            None
        }
    };
    match (side(left), side(right)) {
        (Some(true), Some(false)) => Some((*left.clone(), right.remap_cols(&|c| c - nleft))),
        (Some(false), Some(true)) => Some((*right.clone(), left.remap_cols(&|c| c - nleft))),
        _ => None,
    }
}

fn split_and(e: BExpr) -> Vec<BExpr> {
    match e {
        BExpr::And(a, b) => {
            let mut v = split_and(*a);
            v.extend(split_and(*b));
            v
        }
        other => vec![other],
    }
}

// ---------------------------------------------------------------------------
// Pass 2: filter push-down
// ---------------------------------------------------------------------------

fn push_filters(p: Plan) -> Result<Plan> {
    Ok(match p {
        Plan::Filter { input, pred } => {
            let input = push_filters(*input)?;
            let mut out = input;
            for c in split_and(pred) {
                out = push_one_filter(out, c)?;
            }
            out
        }
        other => map_children(other, &mut |c| push_filters(c))?,
    })
}

fn push_one_filter(p: Plan, pred: BExpr) -> Result<Plan> {
    match p {
        Plan::Scan { table, projected, mut filters, schema } => {
            filters.push(pred);
            Ok(Plan::Scan { table, projected, filters, schema })
        }
        Plan::Filter { input, pred: inner } => {
            // Sink below the existing filter, then keep it.
            let pushed = push_one_filter(*input, pred)?;
            Ok(Plan::Filter { input: Box::new(pushed), pred: inner })
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => {
            let nleft = left.schema().len();
            let mut cols = Vec::new();
            pred.collect_cols(&mut cols);
            let pure_left = cols.iter().all(|&c| c < nleft);
            let pure_right = cols.iter().all(|&c| c >= nleft);
            // Outer joins: only left-side predicates can sink to the left;
            // right-side ones would change padding semantics.
            match kind {
                PJoinKind::Inner | PJoinKind::Cross | PJoinKind::Semi | PJoinKind::Anti
                    if pure_left =>
                {
                    let left = Box::new(push_one_filter(*left, pred)?);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    });
                }
                PJoinKind::Left if pure_left => {
                    let left = Box::new(push_one_filter(*left, pred)?);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    });
                }
                PJoinKind::Inner | PJoinKind::Cross if pure_right => {
                    let remapped = pred.remap_cols(&|c| c - nleft);
                    let right = Box::new(push_one_filter(*right, remapped)?);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind,
                        left_keys,
                        right_keys,
                        residual,
                        schema,
                    });
                }
                _ => {}
            }
            // Try as a new equi-key on inner/cross joins.
            if matches!(kind, PJoinKind::Inner | PJoinKind::Cross) {
                if let Some((lk, rk)) = classify_equi(&pred, nleft) {
                    let mut lks = left_keys;
                    let mut rks = right_keys;
                    lks.push(lk);
                    rks.push(rk);
                    return Ok(Plan::Join {
                        left,
                        right,
                        kind: PJoinKind::Inner,
                        left_keys: lks,
                        right_keys: rks,
                        residual,
                        schema,
                    });
                }
                // Cross-side residual.
                let residual = match residual {
                    None => Some(pred),
                    Some(r) => Some(BExpr::And(Box::new(r), Box::new(pred))),
                };
                return Ok(Plan::Join {
                    left,
                    right,
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                });
            }
            Ok(Plan::Filter {
                input: Box::new(Plan::Join {
                    left,
                    right,
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema,
                }),
                pred,
            })
        }
        Plan::Project { input, exprs, schema } => {
            // Substitute output expressions into the predicate; always
            // safe because Project is pure.
            let substituted = substitute(&pred, &exprs);
            let input = push_one_filter(*input, substituted)?;
            Ok(Plan::Project { input: Box::new(input), exprs, schema })
        }
        other => Ok(Plan::Filter { input: Box::new(other), pred }),
    }
}

/// Replace every `ColRef { idx }` in `pred` with `exprs[idx]` (also used
/// by the binder to recompute a subquery's projected expression over
/// joined aggregate columns).
pub(crate) fn substitute(pred: &BExpr, exprs: &[BExpr]) -> BExpr {
    match pred {
        BExpr::ColRef { idx, .. } => exprs[*idx].clone(),
        BExpr::Lit(v) => BExpr::Lit(v.clone()),
        BExpr::Param { idx, value } => BExpr::Param { idx: *idx, value: value.clone() },
        BExpr::Cast { input, ty } => {
            BExpr::Cast { input: Box::new(substitute(input, exprs)), ty: *ty }
        }
        BExpr::Arith { op, left, right, ty } => BExpr::Arith {
            op: *op,
            left: Box::new(substitute(left, exprs)),
            right: Box::new(substitute(right, exprs)),
            ty: *ty,
        },
        BExpr::Cmp { op, left, right } => BExpr::Cmp {
            op: *op,
            left: Box::new(substitute(left, exprs)),
            right: Box::new(substitute(right, exprs)),
        },
        BExpr::And(a, b) => {
            BExpr::And(Box::new(substitute(a, exprs)), Box::new(substitute(b, exprs)))
        }
        BExpr::Or(a, b) => {
            BExpr::Or(Box::new(substitute(a, exprs)), Box::new(substitute(b, exprs)))
        }
        BExpr::Not(a) => BExpr::Not(Box::new(substitute(a, exprs))),
        BExpr::IsNull { input, negated } => {
            BExpr::IsNull { input: Box::new(substitute(input, exprs)), negated: *negated }
        }
        BExpr::Like { input, pattern, negated } => BExpr::Like {
            input: Box::new(substitute(input, exprs)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        BExpr::Case { branches, else_expr, ty } => BExpr::Case {
            branches: branches
                .iter()
                .map(|(c, v)| (substitute(c, exprs), substitute(v, exprs)))
                .collect(),
            else_expr: else_expr.as_ref().map(|e| Box::new(substitute(e, exprs))),
            ty: *ty,
        },
        BExpr::Func { func, args, ty } => BExpr::Func {
            func: *func,
            args: args.iter().map(|a| substitute(a, exprs)).collect(),
            ty: *ty,
        },
        BExpr::Neg { input, ty } => {
            BExpr::Neg { input: Box::new(substitute(input, exprs)), ty: *ty }
        }
    }
}

// ---------------------------------------------------------------------------
// Pass 3: join ordering
// ---------------------------------------------------------------------------

/// Relation cap for DP enumeration; larger clusters fall back to the
/// greedy connected ordering (DP is O(2^n · n²), greedy O(n²·preds)).
pub const JOIN_DP_CAP: usize = 10;

/// Order maximal inner/cross-join clusters. With `dp` on and at most
/// [`JOIN_DP_CAP`] relations: DPsize over subsets of the join graph,
/// minimising the summed intermediate cardinalities under the
/// distinct-value join estimate. Otherwise: greedy connected ordering by
/// estimated cardinality (filtered scans first), falling back to a cross
/// join only when nothing is connected.
fn order_joins(p: Plan, stats: &dyn Stats, dp: bool) -> Result<Plan> {
    let p = map_children(p, &mut |c| order_joins(c, stats, dp))?;
    // Collect a flat cluster of inner/cross joined relations.
    let Plan::Join { kind: PJoinKind::Inner | PJoinKind::Cross, .. } = &p else {
        return Ok(p);
    };
    let out_schema: Vec<OutCol> = p.schema().to_vec();
    let mut rels: Vec<Plan> = Vec::new();
    let mut preds: Vec<BExpr> = Vec::new(); // over the flat concatenated schema
                                            // `root_map[i]` = flat column carried by the cluster's output `i`
                                            // (pure projections between joins are flattened through, so the
                                            // cluster output can be a permutation/subset of the flat schema).
    let root_map = flatten_join_cluster(p, &mut rels, &mut preds)?;
    if rels.len() <= 2 {
        let joined = rebuild_cluster(rels, preds)?;
        return Ok(restore_projection(joined, &root_map, &|c| c, out_schema));
    }
    // Column offset of each relation in the flat schema.
    let mut offsets = Vec::with_capacity(rels.len());
    let mut acc = 0usize;
    for r in &rels {
        offsets.push(acc);
        acc += r.schema().len();
    }
    let total_cols = acc;
    let rel_of_col = |c: usize| -> usize {
        match offsets.binary_search(&c) {
            Ok(i) => i,
            Err(i) => i - 1,
        }
    };
    // Per-relation estimates: pushed filters shrink base rows via derived
    // selectivities (constants when no column stats exist).
    let est: Vec<f64> = rels.iter().map(|r| estimate(r, stats)).collect();
    let n = rels.len();
    let order: Vec<usize> = if dp && n <= JOIN_DP_CAP {
        dp_order(&rels, &preds, &est, &offsets, &rel_of_col, stats)
    } else {
        greedy_order(&preds, &est, &rel_of_col)
    };
    // Rebuild left-deep in the chosen order, remapping predicates from the
    // original flat schema to the new one.
    let mut new_offsets = vec![0usize; n];
    let mut acc = 0usize;
    for &r in &order {
        new_offsets[r] = acc;
        acc += rels[r].schema().len();
    }
    debug_assert_eq!(acc, total_cols);
    let col_map: Vec<usize> = (0..total_cols)
        .map(|c| {
            let r = rel_of_col(c);
            new_offsets[r] + (c - offsets[r])
        })
        .collect();
    let preds: Vec<BExpr> = preds.into_iter().map(|p| p.remap_cols(&|c| col_map[c])).collect();
    let mut rels_by_order: Vec<Plan> = Vec::with_capacity(n);
    for &r in &order {
        rels_by_order.push(rels[r].clone());
    }
    let joined = rebuild_cluster(rels_by_order, preds)?;
    // Final projection restoring the cluster's original output columns.
    Ok(restore_projection(joined, &root_map, &|c| col_map[c], out_schema))
}

/// Wrap the rebuilt cluster in a projection producing exactly the
/// original output columns: output `i` = rebuilt column
/// `remap(root_map[i])`.
fn restore_projection(
    joined: Plan,
    root_map: &[usize],
    remap: &dyn Fn(usize) -> usize,
    schema: Vec<OutCol>,
) -> Plan {
    let identity = joined.schema().len() == root_map.len()
        && root_map.iter().enumerate().all(|(i, &c)| remap(c) == i);
    if identity {
        return joined;
    }
    let exprs: Vec<BExpr> = root_map
        .iter()
        .map(|&c| {
            let newc = remap(c);
            BExpr::ColRef { idx: newc, ty: joined.schema()[newc].ty }
        })
        .collect();
    Plan::Project { input: Box::new(joined), exprs, schema }
}

/// The pre-statistics ordering: start from the smallest estimated
/// relation, repeatedly join the connected relation with the smallest
/// estimate.
fn greedy_order(preds: &[BExpr], est: &[f64], rel_of_col: &dyn Fn(usize) -> usize) -> Vec<usize> {
    let n = est.len();
    let mut used = vec![false; n];
    let start = (0..n).min_by(|&a, &b| est[a].total_cmp(&est[b])).unwrap();
    used[start] = true;
    let mut order = vec![start];
    for _ in 1..n {
        // Relations connected to the used set by some predicate.
        let mut connected: Vec<usize> = Vec::new();
        for (i, &u) in used.iter().enumerate() {
            if u {
                continue;
            }
            let is_conn = preds.iter().any(|p| {
                let mut cols = Vec::new();
                p.collect_cols(&mut cols);
                let touches_i = cols.iter().any(|&c| rel_of_col(c) == i);
                let touches_used = cols.iter().any(|&c| used[rel_of_col(c)]);
                touches_i && touches_used
            });
            if is_conn {
                connected.push(i);
            }
        }
        let pool: Vec<usize> =
            if connected.is_empty() { (0..n).filter(|&i| !used[i]).collect() } else { connected };
        let next = pool.into_iter().min_by(|&a, &b| est[a].total_cmp(&est[b])).unwrap();
        used[next] = true;
        order.push(next);
    }
    order
}

/// One flat-schema predicate, pre-analysed for DP costing.
struct PredInfo {
    /// Bitmask of relations the predicate touches.
    mask: u32,
    /// Selectivity contribution once all touched relations are joined.
    sel: f64,
}

/// DPsize over left-deep join orders: `dp[S]` is the cheapest order of
/// the relation subset `S`, costed as the sum of all intermediate result
/// cardinalities. `card(S)` is order-independent — the product of the
/// member estimates and the selectivity of every predicate fully
/// contained in `S` — so plans are compared on a consistent model.
/// Cross-join extensions are only considered when no connected extension
/// exists (the classic connected-subgraph restriction).
fn dp_order(
    rels: &[Plan],
    preds: &[BExpr],
    est: &[f64],
    offsets: &[usize],
    rel_of_col: &dyn Fn(usize) -> usize,
    stats: &dyn Stats,
) -> Vec<usize> {
    let n = rels.len();
    let full: u32 = (1u32 << n) - 1;
    // Analyse predicates: touched-relation mask + selectivity.
    let infos: Vec<PredInfo> = preds
        .iter()
        .map(|p| {
            let mut cols = Vec::new();
            p.collect_cols(&mut cols);
            let mut mask = 0u32;
            for &c in &cols {
                mask |= 1 << rel_of_col(c);
            }
            let sel = join_pred_selectivity(p, rels, est, offsets, rel_of_col, stats);
            PredInfo { mask, sel }
        })
        .collect();
    // card(S): memoised on demand.
    let mut card = vec![f64::NAN; (full + 1) as usize];
    let mut card_of = |s: u32| -> f64 {
        if !card[s as usize].is_nan() {
            return card[s as usize];
        }
        let mut c = 1.0f64;
        for (i, e) in est.iter().enumerate() {
            if s & (1 << i) != 0 {
                c *= e;
            }
        }
        for pi in &infos {
            if pi.mask & s == pi.mask {
                c *= pi.sel;
            }
        }
        let c = c.max(1.0);
        card[s as usize] = c;
        c
    };
    // Adjacency: rel i connects to subset S when a predicate touches both.
    let connects = |i: usize, s: u32| -> bool {
        infos.iter().any(|pi| pi.mask & (1 << i) != 0 && pi.mask & s & !(1 << i) != 0)
    };
    // dp over subsets by population count; value = (cost, order). The
    // epsilon base cost breaks cost ties toward starting from the
    // smallest relation (the filtered dimension leads the probe chain) —
    // it vanishes against any real cardinality difference.
    let mut dp: Vec<Option<(f64, Vec<usize>)>> = vec![None; (full + 1) as usize];
    for i in 0..n {
        dp[1usize << i] = Some((est[i] * 1e-6, vec![i]));
    }
    let mut subsets: Vec<u32> = (1..=full).collect();
    subsets.sort_by_key(|s| s.count_ones());
    for s in subsets {
        if s.count_ones() < 2 {
            continue;
        }
        // Connected last-relation extensions first; cross joins only when
        // the subset admits no connected order.
        for allow_cross in [false, true] {
            for last in 0..n {
                if s & (1 << last) == 0 {
                    continue;
                }
                let rest = s & !(1 << last);
                if !allow_cross && !connects(last, s) {
                    continue;
                }
                let Some((prev_cost, prev_order)) = &dp[rest as usize] else {
                    continue;
                };
                let cost = prev_cost + card_of(s);
                if dp[s as usize].as_ref().is_none_or(|(c, _)| cost < *c) {
                    let mut order = prev_order.clone();
                    order.push(last);
                    dp[s as usize] = Some((cost, order));
                }
            }
            if dp[s as usize].is_some() {
                break;
            }
        }
    }
    match dp[full as usize].take() {
        Some((_, order)) => order,
        // Unreachable in practice (cross extensions make every subset
        // solvable), but never fail the query over ordering.
        None => greedy_order(preds, est, rel_of_col),
    }
}

/// Selectivity of one flat-schema predicate for DP costing. Equality
/// between bare columns of two relations uses the distinct-value join
/// estimate `1 / max(ndv_l, ndv_r)` (NDVs clamped to the filtered inputs,
/// so a filter on a dimension propagates); anything else falls back to
/// the fixed constant.
fn join_pred_selectivity(
    p: &BExpr,
    rels: &[Plan],
    est: &[f64],
    offsets: &[usize],
    rel_of_col: &dyn Fn(usize) -> usize,
    stats: &dyn Stats,
) -> f64 {
    let BExpr::Cmp { op: CmpOp::Eq, left, right } = p else {
        return DEFAULT_SEL;
    };
    // NDV of one side: a bare flat-schema column whose relation resolves
    // to base-column stats; fallback = the relation's own cardinality
    // (keys assumed near-unique).
    let side_ndv = |e: &BExpr| -> Option<f64> {
        let BExpr::ColRef { idx, .. } = e else {
            return None;
        };
        let r = rel_of_col(*idx);
        let local = *idx - offsets[r];
        let ndv = match col_stats_of(&rels[r], local, stats) {
            Some(cs) if cs.ndv >= 1.0 => cs.ndv,
            _ => est[r],
        };
        Some(ndv.min(est[r]).max(1.0))
    };
    match (side_ndv(left), side_ndv(right)) {
        (Some(a), Some(b)) => 1.0 / a.max(b),
        _ => DEFAULT_SEL,
    }
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

/// Fallback selectivity for predicates the model cannot analyse — the
/// pre-statistics per-filter constant (`/4.0`).
const DEFAULT_SEL: f64 = 0.25;

/// Fallback group-count divisor (the pre-statistics `/10.0`).
const DEFAULT_GROUP_DIV: f64 = 10.0;

/// Estimated output rows of a plan (public for EXPLAIN's `-- stats`
/// section and the benches/tests).
pub fn estimate_rows(p: &Plan, stats: &dyn Stats) -> f64 {
    estimate(p, stats)
}

/// Resolve an output column of `p` to the base-table column it carries
/// unchanged, if any.
fn base_col_of(p: &Plan, col: usize) -> Option<(&str, usize)> {
    match p {
        Plan::Scan { table, projected, .. } => projected.get(col).map(|&c| (table.as_str(), c)),
        Plan::Filter { input, .. } => base_col_of(input, col),
        Plan::Project { input, exprs, .. } => match exprs.get(col)? {
            BExpr::ColRef { idx, .. } => base_col_of(input, *idx),
            _ => None,
        },
        Plan::Join { left, right, kind, .. } => {
            let nleft = left.schema().len();
            if col < nleft {
                base_col_of(left, col)
            } else if !matches!(kind, PJoinKind::Semi | PJoinKind::Anti) {
                base_col_of(right, col - nleft)
            } else {
                None
            }
        }
        Plan::Sort { input, .. } | Plan::Limit { input, .. } | Plan::TopN { input, .. } => {
            base_col_of(input, col)
        }
        Plan::Distinct { input } => base_col_of(input, col),
        Plan::Aggregate { input, groups, .. } => match groups.get(col)? {
            BExpr::ColRef { idx, .. } => base_col_of(input, *idx),
            _ => None,
        },
        Plan::Values { .. } => None,
    }
}

/// Column statistics of output column `col` of `p`, when it traces to a
/// base-table column.
fn col_stats_of(p: &Plan, col: usize, stats: &dyn Stats) -> Option<ColStats> {
    let (t, c) = base_col_of(p, col)?;
    stats.column_stats(t, c)
}

/// Split a conjunction without consuming it.
fn split_and_refs<'a>(e: &'a BExpr, out: &mut Vec<&'a BExpr>) {
    match e {
        BExpr::And(a, b) => {
            split_and_refs(a, out);
            split_and_refs(b, out);
        }
        other => out.push(other),
    }
}

/// Selectivity of one predicate over the output of `input`.
fn selectivity(pred: &BExpr, input: &Plan, stats: &dyn Stats) -> f64 {
    // Plan-cache templates estimate with their representative literals so
    // a template gets the same join order / build sides as the plan the
    // same statement would get uncached (estimate parity).
    if pred.has_param() {
        let repr = pred.resolve_params(&|_, v| v.clone());
        return selectivity(&repr, input, stats);
    }
    // A constant predicate selects everything or nothing; the old model
    // charged it a /4 like any other conjunct, which skewed build-side
    // choices downstream (covers un-folded `1 = 1` residuals too).
    if pred.is_const() {
        if let Ok(out) = kernels::eval(pred, &[], 1) {
            return match out.get(0) {
                Value::Bool(true) => 1.0,
                _ => 0.0,
            };
        }
    }
    let s = match pred {
        BExpr::Lit(Value::Bool(true)) => 1.0,
        BExpr::Lit(Value::Bool(false)) | BExpr::Lit(Value::Null) => 0.0,
        BExpr::And(..) => {
            let mut parts = Vec::new();
            split_and_refs(pred, &mut parts);
            conj_selectivity(&parts, input, stats)
        }
        BExpr::Or(a, b) => {
            let (sa, sb) = (selectivity(a, input, stats), selectivity(b, input, stats));
            sa + sb - sa * sb
        }
        BExpr::Not(a) => 1.0 - selectivity(a, input, stats),
        BExpr::IsNull { input: e, negated } => {
            let nf = match e.as_ref() {
                BExpr::ColRef { idx, .. } => {
                    col_stats_of(input, *idx, stats).map(|cs| cs.null_frac)
                }
                _ => None,
            };
            match (nf, negated) {
                (Some(nf), false) => nf,
                (Some(nf), true) => 1.0 - nf,
                (None, false) => 0.1,
                (None, true) => 0.9,
            }
        }
        BExpr::Like { negated, .. } => {
            if *negated {
                1.0 - DEFAULT_SEL
            } else {
                DEFAULT_SEL
            }
        }
        BExpr::Cmp { .. } => cmp_selectivity(pred, input, stats),
        _ => DEFAULT_SEL,
    };
    s.clamp(0.0, 1.0)
}

/// Selectivity of a column-vs-constant comparison from the column's
/// NDV / null fraction / min-max range; [`DEFAULT_SEL`] when the shape or
/// the statistics are unavailable.
fn cmp_selectivity(pred: &BExpr, input: &Plan, stats: &dyn Stats) -> f64 {
    // `col <> const`: the complement of one distinct value.
    if let BExpr::Cmp { op: CmpOp::NotEq, left, right } = pred {
        let col = match (left.as_ref(), right.as_ref()) {
            (BExpr::ColRef { idx, .. }, BExpr::Lit(v)) if !v.is_null() => Some(*idx),
            (BExpr::Lit(v), BExpr::ColRef { idx, .. }) if !v.is_null() => Some(*idx),
            _ => None,
        };
        if let Some(cs) = col.and_then(|c| col_stats_of(input, c, stats)) {
            if cs.ndv >= 1.0 {
                return (1.0 - cs.null_frac) * (1.0 - 1.0 / cs.ndv);
            }
        }
        return 1.0 - DEFAULT_SEL;
    }
    let Some((col, lo, hi)) = crate::exec::zone_probe_of(pred) else {
        // Equality against a constant the order-key domain cannot map
        // (VARCHAR above all — strings hash, they don't order) is still
        // one distinct value: use the column's NDV, minus any range
        // check.
        if let BExpr::Cmp { op: CmpOp::Eq, left, right } = pred {
            let col = match (left.as_ref(), right.as_ref()) {
                (BExpr::ColRef { idx, .. }, BExpr::Lit(v)) if !v.is_null() => Some(*idx),
                (BExpr::Lit(v), BExpr::ColRef { idx, .. }) if !v.is_null() => Some(*idx),
                _ => None,
            };
            if let Some(cs) = col.and_then(|c| col_stats_of(input, c, stats)) {
                return if cs.ndv >= 1.0 { (1.0 - cs.null_frac) / cs.ndv } else { 0.0 };
            }
        }
        return DEFAULT_SEL;
    };
    let Some(cs) = col_stats_of(input, col, stats) else {
        return DEFAULT_SEL;
    };
    let nonnull = 1.0 - cs.null_frac;
    if cs.ndv < 1.0 {
        return 0.0; // empty / all-NULL column: nothing can match
    }
    // Point probe: one distinct value.
    if let (Some(k), true) = (lo, lo == hi) {
        if let (Some(mn), Some(mx)) = (cs.min_key, cs.max_key) {
            if k < mn || k > mx {
                return 0.0;
            }
        }
        return nonnull / cs.ndv;
    }
    // Range probe: fraction of the [min, max] span (uniformity
    // assumption; for DOUBLE the order-preserving key domain is
    // monotonic but non-linear, which we accept as an approximation).
    let (Some(mn), Some(mx)) = (cs.min_key, cs.max_key) else {
        return DEFAULT_SEL;
    };
    let (mnf, mxf) = (mn as f64, mx as f64);
    let lof = lo.map_or(mnf, |v| v as f64).max(mnf);
    let hif = hi.map_or(mxf, |v| v as f64).min(mxf);
    if lof > hif {
        return 0.0;
    }
    let span = mxf - mnf;
    if span <= 0.0 {
        return nonnull; // single-valued column inside the probe
    }
    nonnull * ((hif - lof + 1.0) / (span + 1.0)).min(1.0)
}

/// Combined selectivity of a conjunction with exponential backoff: the
/// most selective conjunct applies at full strength, each further one at
/// the square root of the previous exponent — correlated predicates (Q6's
/// pair of date bounds, Q19's stacked conditions) then cannot drive the
/// estimate to zero.
fn conj_selectivity(preds: &[&BExpr], input: &Plan, stats: &dyn Stats) -> f64 {
    let mut sels: Vec<f64> = preds.iter().map(|p| selectivity(p, input, stats)).collect();
    sels.sort_by(f64::total_cmp);
    let mut total = 1.0f64;
    let mut exp = 1.0f64;
    for s in sels {
        total *= s.powf(exp);
        exp /= 2.0;
    }
    total
}

/// Cardinality estimate of a plan node. Every result is clamped to
/// `[1, input]` (for joins: `[1, |L|·|R|]`), so no sequence of vacuous
/// predicates can talk an estimate below one row.
fn estimate(p: &Plan, stats: &dyn Stats) -> f64 {
    match p {
        Plan::Scan { table, filters, .. } => {
            let base = (stats.table_rows(table) as f64).max(1.0);
            let parts: Vec<&BExpr> = filters.iter().collect();
            let sel = conj_selectivity(&parts, p, stats);
            (base * sel).clamp(1.0, base)
        }
        Plan::Filter { input, pred } => {
            let inp = estimate(input, stats);
            let mut parts = Vec::new();
            split_and_refs(pred, &mut parts);
            let sel = conj_selectivity(&parts, input, stats);
            (inp * sel).clamp(1.0, inp)
        }
        Plan::Project { input, .. } | Plan::Sort { input, .. } | Plan::Distinct { input } => {
            estimate(input, stats)
        }
        Plan::Limit { input, n } | Plan::TopN { input, n, .. } => {
            estimate(input, stats).min((*n as f64).max(1.0))
        }
        Plan::Aggregate { input, groups, .. } => {
            if groups.is_empty() {
                return 1.0;
            }
            let inp = estimate(input, stats);
            // Product of group-key NDVs when every key resolves to a
            // column with statistics; the fixed divisor otherwise.
            let mut ndv_prod = 1.0f64;
            let mut all_known = true;
            for g in groups {
                let cs = match g {
                    BExpr::ColRef { idx, .. } => col_stats_of(input, *idx, stats),
                    _ => None,
                };
                match cs {
                    Some(cs) if cs.ndv >= 1.0 => {
                        ndv_prod *= cs.ndv + (cs.null_frac > 0.0) as u64 as f64
                    }
                    _ => {
                        all_known = false;
                        break;
                    }
                }
            }
            let guess = if all_known { ndv_prod } else { inp / DEFAULT_GROUP_DIV };
            guess.clamp(1.0, inp)
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, .. } => {
            let l = estimate(left, stats);
            let r = estimate(right, stats);
            match kind {
                PJoinKind::Cross => (l * r).max(1.0),
                PJoinKind::Semi | PJoinKind::Anti => l.max(1.0),
                PJoinKind::Inner | PJoinKind::Left => {
                    let mut out = l * r;
                    for (lk, rk) in left_keys.iter().zip(right_keys) {
                        let ndv_of = |e: &BExpr, side: &Plan, side_est: f64| -> f64 {
                            let ndv = match e {
                                BExpr::ColRef { idx, .. } => {
                                    match col_stats_of(side, *idx, stats) {
                                        Some(cs) if cs.ndv >= 1.0 => cs.ndv,
                                        _ => side_est,
                                    }
                                }
                                _ => side_est,
                            };
                            ndv.min(side_est).max(1.0)
                        };
                        let (nl, nr) = (ndv_of(lk, left, l), ndv_of(rk, right, r));
                        out /= nl.max(nr);
                    }
                    if let Some(res) = residual {
                        let mut parts = Vec::new();
                        split_and_refs(res, &mut parts);
                        // Residuals see the concatenated schema: resolve
                        // columns over the join node itself.
                        let sel = conj_selectivity(&parts, p, stats);
                        out *= sel;
                    }
                    let out = out.clamp(1.0, (l * r).max(1.0));
                    if *kind == PJoinKind::Left {
                        out.max(l) // every probe row survives
                    } else {
                        out
                    }
                }
            }
        }
        Plan::Values { rows, .. } => (rows.len() as f64).max(1.0),
    }
}

/// Flatten a tree of inner/cross joins into relations + predicates over
/// the concatenated flat schema (keys turn back into equality
/// predicates). Pure projections — every output a bare `ColRef` — sitting
/// between joins are flattened *through* (the binder's decorrelation and
/// earlier ordering passes leave such barriers, and stopping at them
/// would fragment the join graph into unreorderable islands).
///
/// Returns the mapping from the node's output columns to flat columns.
fn flatten_join_cluster(
    p: Plan,
    rels: &mut Vec<Plan>,
    preds: &mut Vec<BExpr>,
) -> Result<Vec<usize>> {
    match p {
        Plan::Join {
            left,
            right,
            kind: PJoinKind::Inner | PJoinKind::Cross,
            left_keys,
            right_keys,
            residual,
            ..
        } => {
            let lmap = flatten_join_cluster(*left, rels, preds)?;
            let rmap = flatten_join_cluster(*right, rels, preds)?;
            // Keys/residual were expressed over (left ++ right) of THIS
            // node; route them through the children's flat mappings.
            let nleft_local = lmap.len();
            for (lk, rk) in left_keys.into_iter().zip(right_keys) {
                let l = lk.remap_cols(&|c| lmap[c]);
                let r = rk.remap_cols(&|c| rmap[c]);
                preds.push(BExpr::Cmp {
                    op: crate::expr::CmpOp::Eq,
                    left: Box::new(l),
                    right: Box::new(r),
                });
            }
            if let Some(res) = residual {
                preds.push(res.remap_cols(&|c| {
                    if c < nleft_local {
                        lmap[c]
                    } else {
                        rmap[c - nleft_local]
                    }
                }));
            }
            let mut map = lmap;
            map.extend(rmap);
            Ok(map)
        }
        Plan::Project { input, exprs, schema }
            if exprs.iter().all(|e| matches!(e, BExpr::ColRef { .. }))
                && matches!(
                    input.as_ref(),
                    Plan::Join { kind: PJoinKind::Inner | PJoinKind::Cross, .. }
                        | Plan::Project { .. }
                ) =>
        {
            let imap = flatten_join_cluster(*input, rels, preds)?;
            let map = exprs
                .iter()
                .map(|e| {
                    let BExpr::ColRef { idx, .. } = e else { unreachable!() };
                    imap[*idx]
                })
                .collect();
            let _ = schema;
            Ok(map)
        }
        other => {
            let base = col_count(rels);
            let width = other.schema().len();
            rels.push(other);
            Ok((base..base + width).collect())
        }
    }
}

fn col_count(rels: &[Plan]) -> usize {
    rels.iter().map(|r| r.schema().len()).sum()
}

/// Left-deep rebuild: join relations in order, attaching each predicate at
/// the lowest point where all its columns are available.
fn rebuild_cluster(rels: Vec<Plan>, mut preds: Vec<BExpr>) -> Result<Plan> {
    let mut iter = rels.into_iter();
    let mut acc = iter.next().expect("cluster has at least one relation");
    for right in iter {
        let nleft = acc.schema().len();
        let schema: Vec<OutCol> = acc.schema().iter().chain(right.schema()).cloned().collect();
        let avail = schema.len();
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut residual: Option<BExpr> = None;
        let mut remaining = Vec::new();
        for p in preds {
            let mut cols = Vec::new();
            p.collect_cols(&mut cols);
            if cols.iter().all(|&c| c < avail) {
                if let Some((lk, rk)) = classify_equi(&p, nleft) {
                    left_keys.push(lk);
                    right_keys.push(rk);
                } else {
                    residual = Some(match residual {
                        None => p,
                        Some(r) => BExpr::And(Box::new(r), Box::new(p)),
                    });
                }
            } else {
                remaining.push(p);
            }
        }
        preds = remaining;
        let kind = if left_keys.is_empty() { PJoinKind::Cross } else { PJoinKind::Inner };
        acc = Plan::Join {
            left: Box::new(acc),
            right: Box::new(right),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        };
    }
    // Any predicate not attachable inside (shouldn't happen) filters on top.
    for p in preds {
        acc = Plan::Filter { input: Box::new(acc), pred: p };
    }
    Ok(acc)
}

// ---------------------------------------------------------------------------
// Pass 4: projection push-down
// ---------------------------------------------------------------------------

fn prune_projections(p: Plan) -> Result<Plan> {
    let needed: Vec<usize> = (0..p.schema().len()).collect();
    let (plan, _map) = prune(p, &needed)?;
    Ok(plan)
}

/// Rewrite `p` to produce only `needed` output columns (sorted, deduped by
/// caller). Returns the new plan and a map old-output-index → new index.
fn prune(p: Plan, needed: &[usize]) -> Result<(Plan, Vec<usize>)> {
    let width = p.schema().len();
    let mut need_sorted: Vec<usize> = needed.to_vec();
    need_sorted.sort_unstable();
    need_sorted.dedup();
    let identity = need_sorted.len() == width;
    match p {
        Plan::Scan { table, projected, filters, schema } => {
            // Keep columns needed by outputs or by pushed filters.
            let mut keep = need_sorted.clone();
            for f in &filters {
                f.collect_cols(&mut keep);
            }
            keep.sort_unstable();
            keep.dedup();
            let map = build_map(&keep, width);
            let new_projected: Vec<usize> = keep.iter().map(|&c| projected[c]).collect();
            let new_schema: Vec<OutCol> = keep.iter().map(|&c| schema[c].clone()).collect();
            let new_filters: Vec<BExpr> =
                filters.iter().map(|f| f.remap_cols(&|c| map[c])).collect();
            Ok((
                Plan::Scan {
                    table,
                    projected: new_projected,
                    filters: new_filters,
                    schema: new_schema,
                },
                map,
            ))
        }
        Plan::Filter { input, pred } => {
            let mut need_in = need_sorted.clone();
            pred.collect_cols(&mut need_in);
            let (new_input, map) = prune(*input, &need_in)?;
            let pred = pred.remap_cols(&|c| map[c]);
            Ok((Plan::Filter { input: Box::new(new_input), pred }, map))
        }
        Plan::Project { input, exprs, schema } => {
            let kept: Vec<usize> = need_sorted.clone();
            let mut need_in = Vec::new();
            for &k in &kept {
                exprs[k].collect_cols(&mut need_in);
            }
            let (new_input, inmap) = prune(*input, &need_in)?;
            let new_exprs: Vec<BExpr> =
                kept.iter().map(|&k| exprs[k].remap_cols(&|c| inmap[c])).collect();
            let new_schema: Vec<OutCol> = kept.iter().map(|&k| schema[k].clone()).collect();
            let map = build_map(&kept, width);
            Ok((
                Plan::Project { input: Box::new(new_input), exprs: new_exprs, schema: new_schema },
                map,
            ))
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => {
            let nleft = left.schema().len();
            let semi_like = matches!(kind, PJoinKind::Semi | PJoinKind::Anti);
            let mut need_l = Vec::new();
            let mut need_r = Vec::new();
            for &c in &need_sorted {
                if c < nleft {
                    need_l.push(c);
                } else {
                    need_r.push(c - nleft);
                }
            }
            for k in &left_keys {
                k.collect_cols(&mut need_l);
            }
            for k in &right_keys {
                k.collect_cols(&mut need_r);
            }
            if let Some(res) = &residual {
                let mut cols = Vec::new();
                res.collect_cols(&mut cols);
                for c in cols {
                    if c < nleft {
                        need_l.push(c);
                    } else {
                        need_r.push(c - nleft);
                    }
                }
            }
            let (new_left, lmap) = prune(*left, &need_l)?;
            let (new_right, rmap) = prune(*right, &need_r)?;
            let new_nleft = new_left.schema().len();
            let left_keys: Vec<BExpr> =
                left_keys.iter().map(|k| k.remap_cols(&|c| lmap[c])).collect();
            let right_keys: Vec<BExpr> =
                right_keys.iter().map(|k| k.remap_cols(&|c| rmap[c])).collect();
            let residual = residual.map(|res| {
                res.remap_cols(&|c| {
                    if c < nleft {
                        lmap[c]
                    } else {
                        new_nleft + rmap[c - nleft]
                    }
                })
            });
            // Output schema and old→new map for parents.
            let mut map = vec![usize::MAX; width];
            let mut new_schema = Vec::new();
            if semi_like {
                for (old, &m) in lmap.iter().enumerate() {
                    if m != usize::MAX {
                        map[old] = m;
                        if new_schema.len() <= m {
                            new_schema
                                .resize(m + 1, OutCol { name: String::new(), ty: schema[0].ty });
                        }
                        new_schema[m] = schema[old].clone();
                    }
                }
            } else {
                for (old, &m) in lmap.iter().enumerate() {
                    if m != usize::MAX {
                        map[old] = m;
                    }
                }
                for (oldr, &m) in rmap.iter().enumerate() {
                    if m != usize::MAX {
                        map[nleft + oldr] = new_nleft + m;
                    }
                }
                let out_w = new_nleft + new_right.schema().len();
                new_schema =
                    vec![
                        OutCol { name: String::new(), ty: monetlite_types::LogicalType::Int };
                        out_w
                    ];
                for (old, &m) in map.iter().enumerate() {
                    if m != usize::MAX {
                        new_schema[m] = schema[old].clone();
                    }
                }
                // Columns kept only for keys/residual still need schema
                // entries.
                for (i, c) in new_left.schema().iter().enumerate() {
                    if new_schema[i].name.is_empty() {
                        new_schema[i] = c.clone();
                    }
                }
                for (i, c) in new_right.schema().iter().enumerate() {
                    if new_schema[new_nleft + i].name.is_empty() {
                        new_schema[new_nleft + i] = c.clone();
                    }
                }
            }
            if semi_like {
                // Schema is the pruned left schema.
                new_schema = new_left.schema().to_vec();
            }
            Ok((
                Plan::Join {
                    left: Box::new(new_left),
                    right: Box::new(new_right),
                    kind,
                    left_keys,
                    right_keys,
                    residual,
                    schema: new_schema,
                },
                map,
            ))
        }
        Plan::Aggregate { input, groups, aggs, schema } => {
            // Aggregate outputs are positional (groups then aggs); keep
            // all of them (cheap — they are post-grouping) but prune the
            // input to what groups/args touch.
            let mut need_in = Vec::new();
            for g in &groups {
                g.collect_cols(&mut need_in);
            }
            for a in &aggs {
                if let Some(arg) = &a.arg {
                    arg.collect_cols(&mut need_in);
                }
            }
            let (new_input, inmap) = prune(*input, &need_in)?;
            let groups: Vec<BExpr> = groups.iter().map(|g| g.remap_cols(&|c| inmap[c])).collect();
            let aggs = aggs
                .into_iter()
                .map(|mut a| {
                    a.arg = a.arg.map(|arg| arg.remap_cols(&|c| inmap[c]));
                    a
                })
                .collect();
            let map = (0..width).collect();
            Ok((Plan::Aggregate { input: Box::new(new_input), groups, aggs, schema }, map))
        }
        Plan::Sort { input, keys } => {
            let mut need_in = need_sorted.clone();
            need_in.extend(keys.iter().map(|(c, _)| *c));
            let (new_input, map) = prune(*input, &need_in)?;
            let keys = keys.into_iter().map(|(c, d)| (map[c], d)).collect();
            Ok((Plan::Sort { input: Box::new(new_input), keys }, map))
        }
        Plan::TopN { input, keys, n } => {
            let mut need_in = need_sorted.clone();
            need_in.extend(keys.iter().map(|(c, _)| *c));
            let (new_input, map) = prune(*input, &need_in)?;
            let keys = keys.into_iter().map(|(c, d)| (map[c], d)).collect();
            Ok((Plan::TopN { input: Box::new(new_input), keys, n }, map))
        }
        Plan::Limit { input, n } => {
            let (new_input, map) = prune(*input, &need_sorted)?;
            Ok((Plan::Limit { input: Box::new(new_input), n }, map))
        }
        Plan::Distinct { input } => {
            // Distinct semantics depend on every column: no pruning below.
            let all: Vec<usize> = (0..input.schema().len()).collect();
            let (new_input, map) = prune(*input, &all)?;
            Ok((Plan::Distinct { input: Box::new(new_input) }, map))
        }
        Plan::Values { rows, schema } => {
            let _ = identity;
            Ok((Plan::Values { rows, schema }, (0..width).collect()))
        }
    }
}

fn build_map(kept_sorted: &[usize], width: usize) -> Vec<usize> {
    let mut map = vec![usize::MAX; width];
    for (newi, &old) in kept_sorted.iter().enumerate() {
        map[old] = newi;
    }
    map
}

// ---------------------------------------------------------------------------
// Pass 5: constant folding + top-n fusion
// ---------------------------------------------------------------------------

pub(crate) fn fold_constants(p: Plan) -> Result<Plan> {
    let p = map_children(p, &mut |c| fold_constants(c))?;
    Ok(match p {
        Plan::Filter { input, pred } => {
            let pred = fold_expr(pred)?;
            if let BExpr::Lit(Value::Bool(true)) = pred {
                return Ok(*input);
            }
            Plan::Filter { input, pred }
        }
        Plan::Project { input, exprs, schema } => {
            let exprs = exprs.into_iter().map(fold_expr).collect::<Result<_>>()?;
            Plan::Project { input, exprs, schema }
        }
        Plan::Scan { table, projected, filters, schema } => {
            let filters = filters.into_iter().map(fold_expr).collect::<Result<_>>()?;
            Plan::Scan { table, projected, filters, schema }
        }
        other => other,
    })
}

/// Evaluate constant subtrees via the vector kernels on a single row.
fn fold_expr(e: BExpr) -> Result<BExpr> {
    if matches!(e, BExpr::Lit(_)) {
        return Ok(e);
    }
    if e.is_const() {
        let out = kernels::eval(&e, &[], 1)?;
        return Ok(BExpr::Lit(out.get(0)));
    }
    // Fold children.
    Ok(match e {
        BExpr::Arith { op, left, right, ty } => BExpr::Arith {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
            ty,
        },
        BExpr::Cmp { op, left, right } => BExpr::Cmp {
            op,
            left: Box::new(fold_expr(*left)?),
            right: Box::new(fold_expr(*right)?),
        },
        BExpr::And(a, b) => BExpr::And(Box::new(fold_expr(*a)?), Box::new(fold_expr(*b)?)),
        BExpr::Or(a, b) => BExpr::Or(Box::new(fold_expr(*a)?), Box::new(fold_expr(*b)?)),
        BExpr::Not(a) => BExpr::Not(Box::new(fold_expr(*a)?)),
        BExpr::Cast { input, ty } => BExpr::Cast { input: Box::new(fold_expr(*input)?), ty },
        other => other,
    })
}

fn fuse_topn(p: Plan) -> Plan {
    match p {
        Plan::Limit { input, n } => {
            let input = fuse_topn(*input);
            if let Plan::Sort { input: sort_in, keys } = input {
                Plan::TopN { input: sort_in, keys, n }
            } else {
                Plan::Limit { input: Box::new(input), n }
            }
        }
        other => map_children_infallible(other, &mut fuse_topn),
    }
}

// ---------------------------------------------------------------------------
// Tree plumbing
// ---------------------------------------------------------------------------

fn map_children(p: Plan, f: &mut dyn FnMut(Plan) -> Result<Plan>) -> Result<Plan> {
    Ok(match p {
        Plan::Scan { .. } | Plan::Values { .. } => p,
        Plan::Filter { input, pred } => Plan::Filter { input: Box::new(f(*input)?), pred },
        Plan::Project { input, exprs, schema } => {
            Plan::Project { input: Box::new(f(*input)?), exprs, schema }
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, schema } => Plan::Join {
            left: Box::new(f(*left)?),
            right: Box::new(f(*right)?),
            kind,
            left_keys,
            right_keys,
            residual,
            schema,
        },
        Plan::Aggregate { input, groups, aggs, schema } => {
            Plan::Aggregate { input: Box::new(f(*input)?), groups, aggs, schema }
        }
        Plan::Sort { input, keys } => Plan::Sort { input: Box::new(f(*input)?), keys },
        Plan::Limit { input, n } => Plan::Limit { input: Box::new(f(*input)?), n },
        Plan::TopN { input, keys, n } => Plan::TopN { input: Box::new(f(*input)?), keys, n },
        Plan::Distinct { input } => Plan::Distinct { input: Box::new(f(*input)?) },
    })
}

fn map_children_infallible(p: Plan, f: &mut dyn FnMut(Plan) -> Plan) -> Plan {
    map_children(p, &mut |c| Ok(f(c))).expect("infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::{Binder, CatalogAccess};
    use monetlite_types::{Field, LogicalType, MlError, Schema};
    use std::collections::HashMap;

    struct Cat(HashMap<String, Schema>);

    impl CatalogAccess for Cat {
        fn table_schema(&self, name: &str) -> monetlite_types::Result<Schema> {
            self.0
                .get(name)
                .cloned()
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
        }
    }

    struct FixedStats(HashMap<String, usize>);

    impl Stats for FixedStats {
        fn table_rows(&self, name: &str) -> usize {
            *self.0.get(name).unwrap_or(&1000)
        }
    }

    fn setup() -> (Cat, FixedStats) {
        let mut t = HashMap::new();
        t.insert(
            "big".to_string(),
            Schema::new(vec![
                Field::not_null("id", LogicalType::Int),
                Field::new("k", LogicalType::Int),
                Field::new("v", LogicalType::Double),
                Field::new("s", LogicalType::Varchar),
            ])
            .unwrap(),
        );
        t.insert(
            "small".to_string(),
            Schema::new(vec![
                Field::not_null("id", LogicalType::Int),
                Field::new("name", LogicalType::Varchar),
            ])
            .unwrap(),
        );
        t.insert(
            "mid".to_string(),
            Schema::new(vec![
                Field::not_null("id", LogicalType::Int),
                Field::new("big_id", LogicalType::Int),
            ])
            .unwrap(),
        );
        let mut s = HashMap::new();
        s.insert("big".to_string(), 1_000_000);
        s.insert("small".to_string(), 100);
        s.insert("mid".to_string(), 10_000);
        (Cat(t), FixedStats(s))
    }

    fn optimize_sql(sql: &str) -> Plan {
        optimize_sql_with(sql, OptFlags::default())
    }

    fn optimize_sql_with(sql: &str, flags: OptFlags) -> Plan {
        let (cat, stats) = setup();
        let stmt = monetlite_sql::parse_statement(sql).unwrap();
        let monetlite_sql::Statement::Select(s) = stmt else { panic!() };
        let plan = Binder::new(&cat).bind_select(&s).unwrap();
        optimize(plan, flags, &stats, &cat).unwrap()
    }

    #[test]
    fn filters_sink_into_scans() {
        let p = optimize_sql("SELECT v FROM big WHERE k = 5 AND v > 1.5");
        let s = p.render();
        assert!(s.contains("scan big") && s.contains("where"), "{s}");
        assert!(!s.trim_start().starts_with("filter"), "no top-level filter left: {s}");
    }

    #[test]
    fn equality_becomes_join_key() {
        let p = optimize_sql("SELECT big.v FROM big, small WHERE big.k = small.id");
        let s = p.render();
        assert!(s.contains("inner join"), "{s}");
        assert!(!s.contains("cross"), "{s}");
    }

    #[test]
    fn join_order_puts_filtered_small_first() {
        // Greedy ordering in isolation (build-side selection off): the
        // deepest-left relation is the filtered small table.
        let p = optimize_sql_with(
            "SELECT big.v FROM big, small, mid \
             WHERE big.k = mid.big_id AND mid.id = small.id AND small.name = 'x'",
            OptFlags { build_side: false, ..OptFlags::default() },
        );
        let s = p.render();
        // The first scan line in render order is the deepest-left relation
        // (joins render left input first): it should be the filtered small
        // table.
        let first_scan = s.lines().find(|l| l.trim_start().starts_with("scan")).unwrap();
        assert!(first_scan.contains("small"), "small should lead: {s}");
        // No cross joins should remain.
        assert!(!s.contains("cross join"), "{s}");
    }

    #[test]
    fn build_side_selection_probes_the_big_table() {
        // With build-side selection on, the small/filtered side moves to
        // the build (right) input and the big table streams through the
        // probe — the shape morsel parallelism wants.
        let p = optimize_sql("SELECT big.v FROM big, small WHERE big.k = small.id");
        fn find_join(p: &Plan) -> Option<(&Plan, &Plan)> {
            match p {
                Plan::Join { left, right, .. } => Some((left, right)),
                Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::TopN { input, .. }
                | Plan::Distinct { input }
                | Plan::Aggregate { input, .. } => find_join(input),
                _ => None,
            }
        }
        let (left, right) = find_join(&p).expect("join survives");
        assert!(left.render().contains("big"), "probe side: {}", p.render());
        assert!(right.render().contains("small"), "build side: {}", p.render());
        // Output schema must be unchanged by the swap.
        assert_eq!(p.schema().len(), 1);
        assert_eq!(p.schema()[0].name, "v");
    }

    #[test]
    fn projection_pruned_to_needed_columns() {
        let p = optimize_sql("SELECT v FROM big WHERE k = 5");
        fn find_scan(p: &Plan) -> Option<&Plan> {
            match p {
                Plan::Scan { .. } => Some(p),
                Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::TopN { input, .. }
                | Plan::Distinct { input } => find_scan(input),
                Plan::Join { left, right, .. } => find_scan(left).or_else(|| find_scan(right)),
                Plan::Aggregate { input, .. } => find_scan(input),
                Plan::Values { .. } => None,
            }
        }
        let Plan::Scan { projected, .. } = find_scan(&p).unwrap() else { unreachable!() };
        // Only k (filter) and v (output) survive, not id or s.
        assert_eq!(projected.len(), 2, "{p:?}");
    }

    #[test]
    fn topn_fused() {
        let p = optimize_sql("SELECT v FROM big ORDER BY v DESC LIMIT 10");
        assert!(matches!(p, Plan::TopN { n: 10, .. }), "{}", p.render());
    }

    #[test]
    fn constants_folded() {
        let p = optimize_sql("SELECT v FROM big WHERE k = 2 + 3");
        let s = p.render();
        assert!(s.contains("= 5") || s.contains("5)"), "{s}");
        assert!(!s.contains("2 + 3"), "{s}");
    }

    #[test]
    fn true_filter_removed() {
        let p = optimize_sql("SELECT v FROM big WHERE 1 = 1");
        let s = p.render();
        assert!(!s.contains("filter"), "{s}");
    }

    #[test]
    fn semi_join_prunes_right() {
        let p =
            optimize_sql("SELECT v FROM big WHERE id IN (SELECT id FROM small WHERE name = 'x')");
        let s = p.render();
        assert!(s.contains("semi join"), "{s}");
    }

    /// Column-stats-aware test double: (table, col) → ColStats.
    struct ColFixedStats {
        rows: HashMap<String, usize>,
        cols: HashMap<(String, usize), ColStats>,
    }

    impl Stats for ColFixedStats {
        fn table_rows(&self, name: &str) -> usize {
            *self.rows.get(name).unwrap_or(&1000)
        }

        fn column_stats(&self, table: &str, col: usize) -> Option<ColStats> {
            self.cols.get(&(table.to_string(), col)).copied()
        }
    }

    fn cs(ndv: f64, min: i64, max: i64) -> ColStats {
        ColStats { null_frac: 0.0, ndv, min_key: Some(min), max_key: Some(max) }
    }

    fn scan_with(table: &str, filters: Vec<BExpr>) -> Plan {
        Plan::Scan {
            table: table.into(),
            projected: vec![0],
            filters,
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        }
    }

    fn col0() -> BExpr {
        BExpr::ColRef { idx: 0, ty: LogicalType::Int }
    }

    fn cmp(op: crate::expr::CmpOp, l: BExpr, r: BExpr) -> BExpr {
        BExpr::Cmp { op, left: Box::new(l), right: Box::new(r) }
    }

    #[test]
    fn equality_selectivity_is_one_over_ndv() {
        let mut stats = ColFixedStats { rows: HashMap::new(), cols: HashMap::new() };
        stats.rows.insert("t".into(), 10_000);
        stats.cols.insert(("t".into(), 0), cs(100.0, 0, 999));
        let p =
            scan_with("t", vec![cmp(crate::expr::CmpOp::Eq, col0(), BExpr::Lit(Value::Int(5)))]);
        let est = estimate_rows(&p, &stats);
        assert!((est - 100.0).abs() < 1.0, "10000/ndv(100) = 100, got {est}");
        // A probe outside [min, max] estimates the clamp floor.
        let p =
            scan_with("t", vec![cmp(crate::expr::CmpOp::Eq, col0(), BExpr::Lit(Value::Int(5000)))]);
        assert_eq!(estimate_rows(&p, &stats), 1.0, "out-of-range point probe");
    }

    #[test]
    fn range_selectivity_is_span_fraction() {
        let mut stats = ColFixedStats { rows: HashMap::new(), cols: HashMap::new() };
        stats.rows.insert("t".into(), 10_000);
        stats.cols.insert(("t".into(), 0), cs(1000.0, 0, 999));
        // a < 100 over [0, 999]: ~10%.
        let p =
            scan_with("t", vec![cmp(crate::expr::CmpOp::Lt, col0(), BExpr::Lit(Value::Int(100)))]);
        let est = estimate_rows(&p, &stats);
        assert!((900.0..=1100.0).contains(&est), "~10% of 10000, got {est}");
        // Disjoint range: floor.
        let p =
            scan_with("t", vec![cmp(crate::expr::CmpOp::Gt, col0(), BExpr::Lit(Value::Int(5000)))]);
        assert_eq!(estimate_rows(&p, &stats), 1.0);
    }

    #[test]
    fn conjunction_backoff_and_clamp_floor() {
        let mut stats = ColFixedStats { rows: HashMap::new(), cols: HashMap::new() };
        stats.rows.insert("t".into(), 1000);
        stats.cols.insert(("t".into(), 0), cs(1000.0, 0, 999));
        // Ten copies of the same selective predicate: naive independence
        // would estimate 1000 * (1/1000)^10 ≈ 0; backoff + clamp keep the
        // estimate at the floor, never below one row.
        let pred = cmp(crate::expr::CmpOp::Eq, col0(), BExpr::Lit(Value::Int(1)));
        let p = scan_with("t", vec![pred; 10]);
        let est = estimate_rows(&p, &stats);
        assert!((1.0..=1000.0).contains(&est), "clamped to [1, input], got {est}");
        // Backoff: two identical 10% predicates estimate closer to 10%
        // than to 1%.
        let r = cmp(crate::expr::CmpOp::Lt, col0(), BExpr::Lit(Value::Int(100)));
        let p2 = scan_with("t", vec![r.clone(), r]);
        let est2 = estimate_rows(&p2, &stats);
        assert!(est2 > 20.0, "exponential backoff, got {est2}");
        assert!(est2 <= 110.0, "still no more than one predicate's worth, got {est2}");
    }

    #[test]
    fn vacuous_filter_does_not_shrink_estimates() {
        // Regression (issue bugfix): the old model charged every Filter
        // node /4 even for an always-true residual, halving downstream
        // build-side choices.
        let (_, stats) = setup();
        let scan = scan_with("big", vec![]);
        let base = estimate_rows(&scan, &stats);
        let noop =
            Plan::Filter { input: Box::new(scan.clone()), pred: BExpr::Lit(Value::Bool(true)) };
        assert_eq!(estimate_rows(&noop, &stats), base, "no-op filter must not shrink");
        // Same for an un-folded constant comparison pushed into a scan.
        let one_eq_one =
            cmp(crate::expr::CmpOp::Eq, BExpr::Lit(Value::Int(1)), BExpr::Lit(Value::Int(1)));
        let noop2 = scan_with("big", vec![one_eq_one]);
        assert_eq!(estimate_rows(&noop2, &stats), base, "1=1 in a scan must not shrink");
        // Nor does it flip a build-side decision: big (1M) joined to mid
        // (10k) keeps big on the probe side even when big carries a
        // vacuous filter.
        let p = optimize_sql_with(
            "SELECT big.v FROM big, mid WHERE big.k = mid.big_id AND 1 = 1",
            OptFlags { fold: false, ..OptFlags::default() },
        );
        fn first_join(p: &Plan) -> Option<(&Plan, &Plan)> {
            match p {
                Plan::Join { left, right, .. } => Some((left, right)),
                Plan::Filter { input, .. }
                | Plan::Project { input, .. }
                | Plan::Sort { input, .. }
                | Plan::Limit { input, .. }
                | Plan::TopN { input, .. }
                | Plan::Distinct { input }
                | Plan::Aggregate { input, .. } => first_join(input),
                _ => None,
            }
        }
        let (left, right) = first_join(&p).expect("join survives");
        assert!(left.render().contains("big"), "probe side: {}", p.render());
        assert!(right.render().contains("mid"), "build side: {}", p.render());
    }

    #[test]
    fn group_estimate_uses_ndv() {
        let mut stats = ColFixedStats { rows: HashMap::new(), cols: HashMap::new() };
        stats.rows.insert("t".into(), 100_000);
        stats.cols.insert(("t".into(), 0), cs(42.0, 0, 41));
        let agg = Plan::Aggregate {
            input: Box::new(scan_with("t", vec![])),
            groups: vec![col0()],
            aggs: vec![],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let est = estimate_rows(&agg, &stats);
        assert!((est - 42.0).abs() < 1.0, "group count = key NDV, got {est}");
    }

    #[test]
    fn join_estimate_distinct_value_model() {
        // fact (1M rows, key ndv 1000) ⋈ dim (1000 rows, unique key):
        // |out| = 1M·1000 / max(1000, 1000) = 1M (the FK join keeps the
        // fact's cardinality).
        let mut stats = ColFixedStats { rows: HashMap::new(), cols: HashMap::new() };
        stats.rows.insert("fact".into(), 1_000_000);
        stats.rows.insert("dim".into(), 1000);
        stats.cols.insert(("fact".into(), 0), cs(1000.0, 0, 999));
        stats.cols.insert(("dim".into(), 0), cs(1000.0, 0, 999));
        let join = Plan::Join {
            left: Box::new(scan_with("fact", vec![])),
            right: Box::new(scan_with("dim", vec![])),
            kind: PJoinKind::Inner,
            left_keys: vec![col0()],
            right_keys: vec![col0()],
            residual: None,
            schema: vec![
                OutCol { name: "a".into(), ty: LogicalType::Int },
                OutCol { name: "a".into(), ty: LogicalType::Int },
            ],
        };
        let est = estimate_rows(&join, &stats);
        assert!((est - 1_000_000.0).abs() / 1_000_000.0 < 0.01, "FK join, got {est}");
    }

    #[test]
    fn dp_orders_by_join_selectivity_not_relation_size() {
        // a(100) joins b(500) producing 500 rows, and joins c(1000)
        // producing 100 rows. Greedy picks the smaller *relation* (b)
        // first; DP sees the smaller *intermediate* and joins c first.
        let mut t = HashMap::new();
        t.insert(
            "ja".to_string(),
            Schema::new(vec![
                Field::not_null("x", LogicalType::Int),
                Field::not_null("u", LogicalType::Int),
            ])
            .unwrap(),
        );
        t.insert(
            "jb".to_string(),
            Schema::new(vec![Field::not_null("y", LogicalType::Int)]).unwrap(),
        );
        t.insert(
            "jc".to_string(),
            Schema::new(vec![Field::not_null("v", LogicalType::Int)]).unwrap(),
        );
        let cat = Cat(t);
        let mut stats = ColFixedStats { rows: HashMap::new(), cols: HashMap::new() };
        stats.rows.insert("ja".into(), 100);
        stats.rows.insert("jb".into(), 500);
        stats.rows.insert("jc".into(), 1000);
        stats.cols.insert(("ja".into(), 0), cs(100.0, 0, 99));
        stats.cols.insert(("ja".into(), 1), cs(100.0, 0, 99));
        stats.cols.insert(("jb".into(), 0), cs(100.0, 0, 99));
        stats.cols.insert(("jc".into(), 0), cs(1000.0, 0, 999));
        let sql = "SELECT ja.x FROM ja, jb, jc WHERE ja.x = jb.y AND ja.u = jc.v";
        let stmt = monetlite_sql::parse_statement(sql).unwrap();
        let monetlite_sql::Statement::Select(s) = stmt else { panic!() };
        let order_of = |dp: bool| -> Vec<String> {
            let plan = Binder::new(&cat).bind_select(&s).unwrap();
            let flags = OptFlags { join_dp: dp, build_side: false, ..OptFlags::default() };
            let p = optimize(plan, flags, &stats, &cat).unwrap();
            p.render()
                .lines()
                .filter(|l| l.trim_start().starts_with("scan"))
                .map(|l| l.split_whitespace().nth(1).unwrap().to_string())
                .collect()
        };
        assert_eq!(order_of(true), vec!["ja", "jc", "jb"], "DP: selective join first");
        assert_eq!(order_of(false), vec!["ja", "jb", "jc"], "greedy: smaller relation first");
    }

    #[test]
    fn adversarial_stats_are_deterministic_per_seed() {
        let (_, inner) = setup();
        let a = ModedStats { inner: &inner, mode: StatsMode::Adversarial(42) };
        let b = ModedStats { inner: &inner, mode: StatsMode::Adversarial(42) };
        let c = ModedStats { inner: &inner, mode: StatsMode::Adversarial(43) };
        assert_eq!(a.table_rows("big"), b.table_rows("big"));
        assert_eq!(a.column_stats("big", 1), b.column_stats("big", 1));
        assert_ne!(a.table_rows("big"), c.table_rows("big"), "different seed, different lies");
        // TableRowsOnly passes rows through and hides column stats.
        let t = ModedStats { inner: &inner, mode: StatsMode::TableRowsOnly };
        assert_eq!(t.table_rows("big"), 1_000_000);
        assert!(t.column_stats("big", 0).is_none());
    }

    #[test]
    fn output_order_preserved_after_reorder() {
        let p = optimize_sql(
            "SELECT big.id, small.name, mid.id FROM big, small, mid \
             WHERE big.k = mid.big_id AND mid.id = small.id",
        );
        assert_eq!(p.schema()[0].name, "id");
        assert_eq!(p.schema()[1].name, "name");
        assert_eq!(p.schema().len(), 3);
    }
}
