//! Sorting and top-n kernels (order-by / limit fusion).

use crate::rows::col_cmp;
use monetlite_storage::Bat;
use std::cmp::Ordering;

/// Stable multi-key sort: returns the permutation of row ids ordering the
/// key columns (NULLs first ascending, last descending — MonetDB
/// semantics fall out of treating NULL as the smallest value).
pub fn sort_perm(keys: &[(&Bat, bool)], rows: usize) -> Vec<u32> {
    let mut perm: Vec<u32> = (0..rows as u32).collect();
    perm.sort_by(|&a, &b| cmp_rows(keys, a as usize, b as usize));
    perm
}

/// Top-n: the first `n` rows of the sorted permutation, computed with a
/// partial sort (select_nth + sort of the prefix) so large inputs don't
/// pay a full sort.
///
/// Ties are broken by input row id, making the result a total order and
/// therefore exactly the prefix of the stable [`sort_perm`]. The
/// streaming engine relies on this: per-morsel top-n compaction followed
/// by a top-n over the packed survivors yields the same rows as a
/// single-pass top-n, even when sort keys tie at the cut-off.
pub fn topn_perm(keys: &[(&Bat, bool)], rows: usize, n: usize) -> Vec<u32> {
    let total = |a: &u32, b: &u32| cmp_rows(keys, *a as usize, *b as usize).then_with(|| a.cmp(b));
    let mut perm: Vec<u32> = (0..rows as u32).collect();
    if n >= rows {
        perm.sort_by(total);
        return perm;
    }
    if n == 0 {
        return Vec::new();
    }
    perm.select_nth_unstable_by(n - 1, |a, b| total(a, b));
    perm.truncate(n);
    perm.sort_by(total);
    perm
}

#[inline]
fn cmp_rows(keys: &[(&Bat, bool)], a: usize, b: usize) -> Ordering {
    for (col, desc) in keys {
        let ord = col_cmp(col, a, b);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::nulls::NULL_I32;
    use monetlite_types::ColumnBuffer;
    use proptest::prelude::*;

    #[test]
    fn single_key_ascending() {
        let k = Bat::Int(vec![3, 1, 2]);
        assert_eq!(sort_perm(&[(&k, false)], 3), vec![1, 2, 0]);
    }

    #[test]
    fn descending_and_nulls() {
        let k = Bat::Int(vec![3, NULL_I32, 2]);
        // Ascending: NULL first.
        assert_eq!(sort_perm(&[(&k, false)], 3), vec![1, 2, 0]);
        // Descending: NULL last (reverse of smallest).
        assert_eq!(sort_perm(&[(&k, true)], 3), vec![0, 2, 1]);
    }

    #[test]
    fn multi_key_tie_break() {
        let k1 = Bat::Int(vec![1, 1, 0]);
        let k2 = Bat::Int(vec![5, 3, 9]);
        assert_eq!(sort_perm(&[(&k1, false), (&k2, false)], 3), vec![2, 1, 0]);
        assert_eq!(sort_perm(&[(&k1, false), (&k2, true)], 3), vec![2, 0, 1]);
    }

    #[test]
    fn stability_on_equal_keys() {
        let k = Bat::Int(vec![7, 7, 7]);
        assert_eq!(sort_perm(&[(&k, false)], 3), vec![0, 1, 2]);
    }

    #[test]
    fn string_sort() {
        let k = Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("pear".into()),
            Some("apple".into()),
            None,
        ]));
        assert_eq!(sort_perm(&[(&k, false)], 3), vec![2, 1, 0]);
    }

    #[test]
    fn topn_prefix_of_sort() {
        let k = Bat::Int(vec![9, 1, 8, 2, 7, 3]);
        let full = sort_perm(&[(&k, false)], 6);
        let top3 = topn_perm(&[(&k, false)], 6, 3);
        assert_eq!(top3, full[..3]);
        assert_eq!(topn_perm(&[(&k, false)], 6, 0), Vec::<u32>::new());
        assert_eq!(topn_perm(&[(&k, false)], 6, 100), full);
    }

    proptest! {
        #[test]
        fn prop_sort_is_ordered(v in proptest::collection::vec(-100i32..100, 0..80)) {
            let k = Bat::Int(v.clone());
            let perm = sort_perm(&[(&k, false)], v.len());
            let sorted: Vec<i32> = perm.iter().map(|&i| v[i as usize]).collect();
            prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
            prop_assert_eq!(perm.len(), v.len());
        }

        #[test]
        fn prop_topn_matches_sort_prefix(v in proptest::collection::vec(-100i32..100, 1..80), n in 0usize..20) {
            let k = Bat::Int(v.clone());
            let full = sort_perm(&[(&k, false)], v.len());
            let top = topn_perm(&[(&k, false)], v.len(), n);
            let a: Vec<i32> = full.iter().take(n).map(|&i| v[i as usize]).collect();
            let b: Vec<i32> = top.iter().map(|&i| v[i as usize]).collect();
            // Values must match (row ids may differ on ties).
            prop_assert_eq!(a, b);
        }
    }
}
