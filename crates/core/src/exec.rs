//! The column-at-a-time executor.
//!
//! Each plan node materialises its full output before the parent runs
//! (paper §3.1: "Each MAL operator processes the full column before moving
//! on to the next operator"). Tactical decisions — index use, join
//! algorithm, parallelisation — happen here at execution time ("during
//! execution tactical decisions are made about how specific operations
//! should be executed, such as which join implementation to use").
//!
//! **Automatic indexing** (paper §3.1): the first range select over a
//! persistent column builds its [imprints]; the first equi-join probing a
//! bare persistent column builds its hash table; `CREATE ORDER INDEX`
//! columns answer range selects by binary search and inner equi-joins by
//! merge join.
//!
//! **Mitosis** (paper Figure 2): large scans split into chunks; the
//! parallelizable prefix (select/project, decomposable aggregates) fans
//! out over threads and results are packed before blocking operators
//! (sort, median finalisation, joins).
//!
//! [imprints]: monetlite_storage::index::Imprints

use crate::agg::{hash_group, AggState};
use crate::bloom::Bloom;
use crate::expr::{BExpr, CmpOp};
use crate::join::{cross_join, hash_join, merge_join, scalar_left_pairs, JoinSel};
use crate::kernels::{bool_to_sel, compile_like, eval, like_plan_match, LikePlan};
use crate::plan::{PJoinKind, Plan};
use crate::rows::{row_hash, take_padded};
use crate::sort::{sort_perm, topn_perm};
use monetlite_storage::catalog::{ColumnEntry, TableMeta};
use monetlite_storage::index::{f64_ordered, orderable, IMPRINT_LINE};
use monetlite_storage::{Bat, StrDict, NULL_CODE};
use monetlite_types::{LogicalType, MlError, Result, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which execution engine drives the plan.
///
/// * [`ExecMode::Streaming`] (default) — the chunk-at-a-time pipeline
///   engine ([`crate::pipeline`]): plans are broken at pipeline breakers
///   and driven over fixed-size vectors with morsel parallelism.
/// * [`ExecMode::Materialized`] — the paper's operator-at-a-time model:
///   every node materialises its full output before the parent runs, and
///   parallelism is restricted to the mitosis prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Vectorized streaming pipelines with morsel parallelism.
    #[default]
    Streaming,
    /// Full-column materialization (the paper's §3.1 model).
    Materialized,
}

/// Execution tuning knobs; the ablation benches and the "1 thread for
/// fairness" configuration of the paper's §4.1 set these.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Engine selection (streaming pipelines vs full materialization).
    pub mode: ExecMode,
    /// Worker threads (morsel workers in streaming mode, mitosis fan-out
    /// in materialized mode; 1 = sequential, the paper's benchmark
    /// configuration).
    pub threads: usize,
    /// Rows per streaming vector (and per morsel) in streaming mode.
    pub vector_size: usize,
    /// Minimum rows per mitosis chunk ("the optimizer will not split up
    /// small columns"); materialized mode only.
    pub mitosis_min_rows: usize,
    /// Build/use column imprints on range selects.
    pub use_imprints: bool,
    /// Build/use hash indexes on join probes.
    pub use_hash_index: bool,
    /// Use order indexes (range selects + merge joins).
    pub use_order_index: bool,
    /// Per-query timeout.
    pub timeout: Option<Duration>,
    /// Byte budget for transient pipeline-breaker state (hash-aggregate
    /// group tables, hash-join build sides, sort buffers). When a
    /// breaker's state would exceed it, the operator spills partitions /
    /// sorted runs to temp files and processes them piecewise.
    /// `usize::MAX` (the default) disables spilling; when unset, the
    /// executor falls back to the headroom of the store's [`Vmem`] budget
    /// (see [`ExecContext::spill_budget`]).
    pub memory_budget: usize,
    /// Candidate-list execution (streaming engine): filters narrow a
    /// vector by refining a selection instead of gathering every
    /// projected column, and downstream kernels evaluate only selected
    /// positions. `false` restores gather-at-the-filter execution (the
    /// ablation baseline).
    pub use_candidates: bool,
    /// Consult per-zone min/max zonemaps to skip whole vectors on
    /// constant range predicates before any kernel runs.
    pub use_zonemaps: bool,
    /// Byte cap on one query's spill files (`MONETLITE_SPILL_QUOTA`).
    /// Exceeding it aborts that query with [`MlError::SpillQuota`] while
    /// the connection, other sessions and the store stay usable — the
    /// disk-pressure analogue of `memory_budget`.
    pub spill_quota: usize,
    /// Dictionary-encoded string execution (`MONETLITE_DICT`): constant
    /// VARCHAR predicates run over sorted-dictionary `u32` codes (with
    /// per-zone code bounds for morsel skipping), string group keys hash
    /// dense codes, and hash-join build sides push bloom filters into
    /// probe-side scans. `false` restores per-row string execution (the
    /// ablation baseline); results are identical either way.
    pub use_dict: bool,
    /// Plan cache (`MONETLITE_PLAN_CACHE`): repeated statements that
    /// differ only in WHERE-clause literals reuse one optimized plan
    /// template (skipping parse/bind/optimize), with fresh literals
    /// substituted per execution. `false` replans every statement (the
    /// ablation baseline); results are identical either way.
    pub use_plan_cache: bool,
    /// Result cache (`MONETLITE_RESULT_CACHE`): a read statement
    /// identical to a previous one — same text, same literals, same
    /// options — returns the stored Arc-shared columns without
    /// executing, as long as every input table version (and the view
    /// epoch) is unchanged. `false` executes every statement.
    pub use_result_cache: bool,
    /// Byte budget for the shared plan cache
    /// (`MONETLITE_PLAN_CACHE_BYTES`); least-recently-used templates are
    /// evicted past it.
    pub plan_cache_bytes: usize,
    /// Byte budget for the shared result cache
    /// (`MONETLITE_RESULT_CACHE_BYTES`); least-recently-used result sets
    /// are evicted past it.
    pub result_cache_bytes: usize,
}

/// Environment override for test/CI matrices (`MONETLITE_THREADS`,
/// `MONETLITE_VECTOR_SIZE`, `MONETLITE_MEMORY_BUDGET`): lets the whole
/// suite run under non-default execution shapes without code changes.
fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key).ok().and_then(|v| v.parse().ok()).filter(|&v| v > 0).unwrap_or(default)
}

/// Boolean env override (`MONETLITE_CANDIDATES=0` disables candidate
/// lists for the whole suite, the CI ablation matrix's lever; the
/// optimizer's `MONETLITE_JOINORDER` shares it).
pub(crate) fn env_bool(key: &str, default: bool) -> bool {
    match std::env::var(key) {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off")),
        Err(_) => default,
    }
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: ExecMode::Streaming,
            threads: env_usize("MONETLITE_THREADS", 1),
            vector_size: env_usize("MONETLITE_VECTOR_SIZE", 64 * 1024),
            mitosis_min_rows: 64 * 1024,
            use_imprints: true,
            use_hash_index: true,
            use_order_index: true,
            timeout: None,
            memory_budget: env_usize("MONETLITE_MEMORY_BUDGET", usize::MAX),
            use_candidates: env_bool("MONETLITE_CANDIDATES", true),
            use_zonemaps: env_bool("MONETLITE_ZONEMAPS", true),
            spill_quota: env_usize("MONETLITE_SPILL_QUOTA", usize::MAX),
            use_dict: env_bool("MONETLITE_DICT", true),
            use_plan_cache: env_bool("MONETLITE_PLAN_CACHE", true),
            use_result_cache: env_bool("MONETLITE_RESULT_CACHE", true),
            plan_cache_bytes: env_usize("MONETLITE_PLAN_CACHE_BYTES", 64 << 20),
            result_cache_bytes: env_usize("MONETLITE_RESULT_CACHE_BYTES", 256 << 20),
        }
    }
}

/// Translate a worker-thread panic payload into an [`MlError`]: an
/// embedded engine must degrade a crashed worker to a query error, never
/// take the host process down with it (paper §3.4).
pub(crate) fn worker_panic_error(p: &(dyn std::any::Any + Send)) -> MlError {
    let msg = p
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic payload".to_string());
    MlError::Execution(format!("worker thread panicked: {msg}"))
}

/// Resolves table names to catalog entries (the transaction's view).
pub trait TableProvider: Sync {
    /// The table's current metadata + data.
    fn table_meta(&self, name: &str) -> Result<Arc<TableMeta>>;
}

/// Counters describing tactical decisions, for EXPLAIN/benches/tests.
#[derive(Debug, Default)]
pub struct ExecCounters {
    /// Range selects answered through imprints.
    pub imprint_selects: AtomicU64,
    /// Range selects answered through an order index.
    pub order_index_selects: AtomicU64,
    /// Joins probing an automatic per-column hash index.
    pub hash_index_joins: AtomicU64,
    /// Merge joins over order indexes.
    pub merge_joins: AtomicU64,
    /// Mitosis fan-outs performed.
    pub mitosis_runs: AtomicU64,
    /// Total chunks executed in parallel.
    pub mitosis_chunks: AtomicU64,
    /// Streaming pipelines driven.
    pub pipelines: AtomicU64,
    /// Morsels dispatched to streaming workers.
    pub morsels: AtomicU64,
    /// Vectors pushed through streaming operator chains.
    pub vectors: AtomicU64,
    /// Spill partitions / sorted runs written by pipeline breakers that
    /// exceeded the memory budget.
    pub spilled_partitions: AtomicU64,
    /// Total bytes written to spill files.
    pub spill_bytes: AtomicU64,
    /// Whole vectors (morsels) proven empty by a zonemap probe and
    /// skipped before any kernel ran.
    pub vectors_skipped: AtomicU64,
    /// Vectors that left their operator chain carrying a candidate list
    /// (materialization deferred to the pipeline sink).
    pub sel_vectors: AtomicU64,
    /// Constant VARCHAR predicates served from a sorted string dictionary
    /// (counted once per predicate per morsel).
    pub dict_hits: AtomicU64,
    /// Probe-side scan rows dropped by a pushed-down join bloom filter
    /// before reaching the join.
    pub bloom_pruned: AtomicU64,
}

/// A point-in-time copy of [`ExecCounters`], exposed on the connection
/// after each query so embedders, benches and tests can observe tactical
/// decisions (including spill traffic) without holding the context.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// Range selects answered through imprints.
    pub imprint_selects: u64,
    /// Range selects answered through an order index.
    pub order_index_selects: u64,
    /// Joins probing an automatic per-column hash index.
    pub hash_index_joins: u64,
    /// Merge joins over order indexes.
    pub merge_joins: u64,
    /// Mitosis fan-outs performed.
    pub mitosis_runs: u64,
    /// Total chunks executed in parallel.
    pub mitosis_chunks: u64,
    /// Streaming pipelines driven.
    pub pipelines: u64,
    /// Morsels dispatched to streaming workers.
    pub morsels: u64,
    /// Vectors pushed through streaming operator chains.
    pub vectors: u64,
    /// Spill partitions / sorted runs written.
    pub spilled_partitions: u64,
    /// Total bytes written to spill files.
    pub spill_bytes: u64,
    /// Whole vectors skipped by zonemap probes.
    pub vectors_skipped: u64,
    /// Vectors carried through their operator chain with a candidate
    /// list.
    pub sel_vectors: u64,
    /// Constant VARCHAR predicates served from a string dictionary.
    pub dict_hits: u64,
    /// Probe-side scan rows dropped by pushed-down join bloom filters.
    pub bloom_pruned: u64,
    /// Statements served from a cached plan template (parse/bind/optimize
    /// skipped; filled by the connection, never by the executor).
    pub plan_cache_hits: u64,
    /// Statements served from the result cache (execution skipped
    /// entirely; filled by the connection).
    pub result_cache_hits: u64,
    /// The optimizer's cardinality estimate for the query's root operator
    /// (filled by the connection after planning; 0 when unknown).
    /// Comparing it with the actual result size is the cheapest way to
    /// audit the statistics model.
    pub estimated_rows: u64,
}

impl ExecCounters {
    pub(crate) fn bump(&self, c: &AtomicU64) {
        c.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add(&self, c: &AtomicU64, n: u64) {
        c.fetch_add(n, Ordering::Relaxed);
    }

    /// Copy the current counter values.
    pub fn snapshot(&self) -> CountersSnapshot {
        let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
        CountersSnapshot {
            imprint_selects: g(&self.imprint_selects),
            order_index_selects: g(&self.order_index_selects),
            hash_index_joins: g(&self.hash_index_joins),
            merge_joins: g(&self.merge_joins),
            mitosis_runs: g(&self.mitosis_runs),
            mitosis_chunks: g(&self.mitosis_chunks),
            pipelines: g(&self.pipelines),
            morsels: g(&self.morsels),
            vectors: g(&self.vectors),
            spilled_partitions: g(&self.spilled_partitions),
            spill_bytes: g(&self.spill_bytes),
            vectors_skipped: g(&self.vectors_skipped),
            sel_vectors: g(&self.sel_vectors),
            dict_hits: g(&self.dict_hits),
            bloom_pruned: g(&self.bloom_pruned),
            plan_cache_hits: 0,
            result_cache_hits: 0,
            estimated_rows: 0,
        }
    }
}

/// Everything an execution needs.
pub struct ExecContext<'a> {
    /// Catalog view.
    pub tables: &'a dyn TableProvider,
    /// Tuning knobs.
    pub opts: ExecOptions,
    /// Absolute deadline derived from `opts.timeout`.
    pub deadline: Option<Instant>,
    /// Tactical-decision counters.
    pub counters: ExecCounters,
    /// The store's paging manager, when executing against a [`Store`]
    /// (`None` for bare plan-level execution). Ties the operator memory
    /// budget to the same byte budget that governs column residency.
    ///
    /// [`Store`]: monetlite_storage::Store
    pub vmem: Option<Arc<monetlite_storage::Vmem>>,
    /// Lazily created temp directory holding this execution's spill files
    /// (removed when the context is dropped).
    pub(crate) spill: crate::spill::SpillDir,
    /// Cross-thread cancellation token (`Connection::interrupt_handle`);
    /// polled at every deadline checkpoint, so an interrupt fires with
    /// the same per-morsel latency as a timeout.
    pub(crate) interrupt: Option<Arc<AtomicBool>>,
}

impl<'a> ExecContext<'a> {
    /// Build a context, arming the deadline.
    pub fn new(tables: &'a dyn TableProvider, opts: ExecOptions) -> ExecContext<'a> {
        ExecContext {
            tables,
            opts,
            deadline: opts.timeout.map(|t| Instant::now() + t),
            counters: ExecCounters::default(),
            vmem: None,
            spill: crate::spill::SpillDir::with_quota(if opts.spill_quota == usize::MAX {
                u64::MAX
            } else {
                opts.spill_quota as u64
            }),
            interrupt: None,
        }
    }

    /// Attach the store's paging manager (budget source for spilling).
    pub fn with_vmem(mut self, vmem: Arc<monetlite_storage::Vmem>) -> ExecContext<'a> {
        self.vmem = Some(vmem);
        self
    }

    /// Attach a cancellation token (set from another thread to abort this
    /// execution at its next checkpoint).
    pub fn with_interrupt(mut self, token: Arc<AtomicBool>) -> ExecContext<'a> {
        self.interrupt = Some(token);
        self
    }

    /// The byte budget pipeline breakers must stay under, or `None` when
    /// unlimited. An explicit [`ExecOptions::memory_budget`] wins;
    /// otherwise the headroom of the attached [`Vmem`] budget applies —
    /// operator state competes with resident columns for the same bytes.
    ///
    /// [`Vmem`]: monetlite_storage::Vmem
    pub fn spill_budget(&self) -> Option<usize> {
        if self.opts.memory_budget != usize::MAX {
            return Some(self.opts.memory_budget);
        }
        match &self.vmem {
            Some(vm) if vm.budget() != usize::MAX => Some(vm.headroom()),
            _ => None,
        }
    }

    pub(crate) fn check_deadline(&self) -> Result<()> {
        if let Some(i) = &self.interrupt {
            if i.load(Ordering::Relaxed) {
                return Err(MlError::Interrupted);
            }
        }
        if let Some(d) = self.deadline {
            if Instant::now() > d {
                let limit = self.opts.timeout.unwrap_or_default();
                return Err(MlError::Timeout {
                    elapsed_ms: limit.as_millis() as u64,
                    limit_ms: limit.as_millis() as u64,
                });
            }
        }
        Ok(())
    }
}

/// An intermediate result: columns plus an optional **candidate list**.
///
/// Without a selection (`sel == None`) every column holds exactly `rows`
/// rows — a fully materialised chunk. With a selection, the columns are
/// *wider* shared arrays (often the base table's own columns, zero-copy)
/// and `sel` lists the `rows` physical positions that logically belong
/// to the chunk, in ascending order. Filters refine the selection
/// instead of gathering; consumers either evaluate kernels at only the
/// selected positions ([`crate::kernels::eval_sel`]) or call
/// [`Chunk::materialize`] once at the pipeline sink.
#[derive(Debug, Clone)]
pub struct Chunk {
    /// Columns (all the same physical length; equals `rows` when `sel`
    /// is `None`).
    pub cols: Vec<Arc<Bat>>,
    /// Logical row count (`sel.len()` when a selection is present).
    pub rows: usize,
    /// Candidate list: ascending physical positions into `cols`.
    pub sel: Option<Arc<Vec<u32>>>,
}

impl Chunk {
    /// A fully materialised chunk (no selection).
    pub fn dense(cols: Vec<Arc<Bat>>, rows: usize) -> Chunk {
        Chunk { cols, rows, sel: None }
    }

    /// Physical rows of the backing columns (what dense kernels would
    /// scan).
    pub fn phys_rows(&self) -> usize {
        self.cols.first().map_or(self.rows, |c| c.len())
    }

    /// Apply the candidate list, gathering each column once. The single
    /// deferred materialisation of a candidate pipeline — called at the
    /// sink. No-op for dense chunks.
    pub fn materialize(self) -> Chunk {
        match self.sel {
            None => self,
            Some(sel) => Chunk {
                cols: self.cols.iter().map(|c| Arc::new(c.take(&sel))).collect(),
                rows: sel.len(),
                sel: None,
            },
        }
    }

    /// Gather *logical* rows by id into a new dense chunk (a selection
    /// present on `self` is composed into the gather — one copy total).
    pub fn take(&self, sel: &[u32]) -> Chunk {
        match &self.sel {
            None => {
                Chunk::dense(self.cols.iter().map(|c| Arc::new(c.take(sel))).collect(), sel.len())
            }
            Some(base) => {
                let phys: Vec<u32> = sel.iter().map(|&i| base[i as usize]).collect();
                Chunk::dense(
                    self.cols.iter().map(|c| Arc::new(c.take(&phys))).collect(),
                    phys.len(),
                )
            }
        }
    }

    /// Concatenate chunks column-wise (the mitosis/pipeline "pack" step),
    /// materialising any candidate lists.
    ///
    /// A single dense input chunk passes through untouched (keeping
    /// zero-copy scans zero-copy), and zero-row inputs contribute
    /// nothing. Callers that can receive an empty `chunks` list must
    /// supply their own schema-typed empty chunk (see [`Chunk::empty`]) —
    /// an empty input here yields a zero-column chunk.
    pub fn pack(chunks: Vec<Chunk>) -> Result<Chunk> {
        let mut chunks: Vec<Chunk> = chunks.into_iter().map(Chunk::materialize).collect();
        if chunks.len() <= 1 {
            return Ok(chunks.pop().unwrap_or(Chunk::dense(vec![], 0)));
        }
        // Drop zero-row chunks (appending them is wasted work), keeping the
        // first as a type template in case every chunk is empty.
        let template = chunks[0].clone();
        let mut nonempty: Vec<Chunk> = chunks.into_iter().filter(|c| c.rows > 0).collect();
        if nonempty.len() == 1 {
            if let Some(only) = nonempty.pop() {
                return Ok(only);
            }
        }
        let mut iter = nonempty.into_iter();
        let Some(first) = iter.next() else {
            return Ok(template);
        };
        let mut cols: Vec<Bat> = first.cols.iter().map(|c| (**c).clone()).collect();
        let mut rows = first.rows;
        for ch in iter {
            for (dst, src) in cols.iter_mut().zip(&ch.cols) {
                dst.append_bat(src)?;
            }
            rows += ch.rows;
        }
        Ok(Chunk::dense(cols.into_iter().map(Arc::new).collect(), rows))
    }

    /// A zero-row chunk with the column types of `schema` (zero-row
    /// sources must still produce correctly-typed outputs).
    pub fn empty(schema: &[crate::plan::OutCol]) -> Chunk {
        Chunk::dense(schema.iter().map(|c| Arc::new(Bat::new(c.ty))).collect(), 0)
    }

    /// Approximate resident bytes of all columns (the spill-decision
    /// measure; includes transient heap structures).
    pub fn mem_bytes(&self) -> usize {
        self.cols.iter().map(|c| c.mem_bytes()).sum()
    }

    /// Extract *logical* rows `[lo, hi)` as a new chunk (`lo == hi`
    /// yields an empty chunk of the same column types).
    pub fn slice(&self, lo: usize, hi: usize) -> Chunk {
        debug_assert!(lo <= hi && hi <= self.rows, "slice {lo}..{hi} of {}", self.rows);
        if lo == 0 && hi == self.rows {
            return self.clone();
        }
        let sel: Vec<u32> = (lo as u32..hi as u32).collect();
        self.take(&sel)
    }

    /// Evaluate an expression over this chunk's logical rows: dense
    /// chunks run the dense kernels, candidate chunks run the sel-aware
    /// kernels — the result is always compacted to `rows` rows.
    pub(crate) fn eval(&self, e: &BExpr) -> Result<Bat> {
        match &self.sel {
            None => eval(e, &self.cols, self.rows),
            Some(sel) => crate::kernels::eval_sel(e, &self.cols, sel),
        }
    }
}

/// Execute a plan to completion with the engine selected by
/// [`ExecOptions::mode`]. The result is always dense — any candidate
/// list still pending at the top of the plan materialises here, exactly
/// once.
pub fn execute(plan: &Plan, ctx: &ExecContext) -> Result<Chunk> {
    let out = match ctx.opts.mode {
        ExecMode::Streaming => crate::pipeline::execute_streaming(plan, ctx)?,
        ExecMode::Materialized => exec_node(plan, ctx, None)?,
    };
    Ok(out.materialize())
}

pub(crate) fn exec_node(
    plan: &Plan,
    ctx: &ExecContext,
    range: Option<(u32, u32)>,
) -> Result<Chunk> {
    ctx.check_deadline()?;
    // Mitosis: only attempted at unranged entry into a parallelizable
    // shape.
    if range.is_none() && ctx.opts.threads > 1 {
        if let Some(result) = try_mitosis(plan, ctx)? {
            return Ok(result);
        }
    }
    match plan {
        Plan::Scan { table, projected, filters, .. } => {
            exec_scan(table, projected, filters, ctx, range)
        }
        Plan::Filter { input, pred } => {
            let chunk = exec_node(input, ctx, range)?;
            let mask = eval(pred, &chunk.cols, chunk.rows)?;
            let sel = bool_to_sel(&mask)?;
            Ok(chunk.take(&sel))
        }
        Plan::Project { input, exprs, .. } => {
            let chunk = exec_node(input, ctx, range)?;
            Ok(Chunk::dense(project_cols(exprs, &chunk)?, chunk.rows))
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, .. } => {
            exec_join(left, right, *kind, left_keys, right_keys, residual.as_ref(), ctx)
        }
        Plan::Aggregate { input, groups, aggs, schema } => {
            let chunk = exec_node(input, ctx, range)?;
            exec_aggregate(&chunk, groups, aggs, schema, ctx)
        }
        Plan::Sort { input, keys } => {
            let chunk = exec_node(input, ctx, range)?;
            let key_refs: Vec<(&Bat, bool)> =
                keys.iter().map(|&(c, d)| (&*chunk.cols[c], d)).collect();
            let perm = sort_perm(&key_refs, chunk.rows);
            Ok(chunk.take(&perm))
        }
        Plan::TopN { input, keys, n } => {
            let chunk = exec_node(input, ctx, range)?;
            let key_refs: Vec<(&Bat, bool)> =
                keys.iter().map(|&(c, d)| (&*chunk.cols[c], d)).collect();
            let perm = topn_perm(&key_refs, chunk.rows, *n as usize);
            Ok(chunk.take(&perm))
        }
        Plan::Limit { input, n } => {
            let chunk = exec_node(input, ctx, range)?;
            let n = (*n as usize).min(chunk.rows);
            let sel: Vec<u32> = (0..n as u32).collect();
            Ok(chunk.take(&sel))
        }
        Plan::Distinct { input } => {
            let chunk = exec_node(input, ctx, range)?;
            let refs: Vec<&Bat> = chunk.cols.iter().map(|c| &**c).collect();
            let grouping = hash_group(&refs);
            Ok(chunk.take(&grouping.repr_rows))
        }
        Plan::Values { rows, schema } => exec_values(rows, schema),
    }
}

/// Project `exprs` over a chunk, with common-subexpression elimination at
/// the MAL level (paper: "further optimizations are performed such as
/// common sub-expression elimination"): identical projection expressions
/// are evaluated once, and bare column references share the input column
/// (no copy). Shared by the materialized and streaming engines.
pub(crate) fn project_cols(exprs: &[BExpr], chunk: &Chunk) -> Result<Vec<Arc<Bat>>> {
    let mut cols = Vec::with_capacity(exprs.len());
    let mut memo: Vec<(usize, Arc<Bat>)> = Vec::new();
    for (i, e) in exprs.iter().enumerate() {
        if let Some((_, prev)) = memo.iter().find(|(j, _)| exprs[*j] == *e) {
            cols.push(prev.clone());
            continue;
        }
        let b = crate::kernels::eval_shared(e, &chunk.cols, chunk.rows)?;
        memo.push((i, b.clone()));
        cols.push(b);
    }
    Ok(cols)
}

/// Materialise a VALUES node (shared by both engines).
pub(crate) fn exec_values(rows: &[Vec<BExpr>], schema: &[crate::plan::OutCol]) -> Result<Chunk> {
    let mut cols: Vec<Bat> = schema.iter().map(|c| Bat::new(c.ty)).collect();
    for row in rows {
        for (expr, col) in row.iter().zip(cols.iter_mut()) {
            let v = eval(expr, &[], 1)?;
            col.push(&v.get(0))?;
        }
    }
    // A zero-column VALUES still has its row count.
    Ok(Chunk::dense(cols.into_iter().map(Arc::new).collect(), rows.len()))
}

// ---------------------------------------------------------------------------
// Scan with index-assisted selection
// ---------------------------------------------------------------------------

/// Enforce the `u32` candidate-list width at scan setup: positions are
/// 32-bit row ids throughout the engine (see
/// [`crate::kernels::bool_to_sel`]), so a table beyond 2³² physical rows
/// must refuse to scan instead of silently truncating positions.
pub(crate) fn check_candidate_width(phys_rows: usize) -> Result<()> {
    if phys_rows > u32::MAX as usize {
        return Err(MlError::Unsupported(format!(
            "table has {phys_rows} physical rows, beyond the 4Gi-row candidate-list (u32 row id) \
             limit"
        )));
    }
    Ok(())
}

/// Dense scan (materialized engine, and the streaming engine's fallback
/// when candidate lists are disabled): any selection gathers before the
/// chunk is returned.
pub(crate) fn exec_scan(
    table: &str,
    projected: &[usize],
    filters: &[BExpr],
    ctx: &ExecContext,
    range: Option<(u32, u32)>,
) -> Result<Chunk> {
    exec_scan_inner(table, projected, filters, ctx, range, &[], &[], false)
}

/// Streaming scan: a sparse enough selection is *carried* on the chunk
/// (columns stay the zero-copy base arrays) instead of gathered; the
/// density cutoff keeps near-full selections on the dense path so
/// unselective chains don't regress. `blooms` are pushed-down join build
/// -side filters keyed by scan-output column position; `extras` are
/// synthetic full-length physical columns (dictionary code columns)
/// appended after the projected ones in every output shape.
pub(crate) fn exec_scan_streaming(
    table: &str,
    projected: &[usize],
    filters: &[BExpr],
    ctx: &ExecContext,
    range: Option<(u32, u32)>,
    blooms: &[(usize, Arc<Bloom>)],
    extras: &[Arc<Bat>],
) -> Result<Chunk> {
    exec_scan_inner(table, projected, filters, ctx, range, blooms, extras, ctx.opts.use_candidates)
}

/// Selections covering at least this fraction (in tenths) of the scanned
/// span materialise eagerly — dense chains must not pay indexed access
/// downstream for a selection that kept almost everything.
pub(crate) const SEL_DENSITY_CUTOFF_TENTHS: usize = 9;

#[allow(clippy::too_many_arguments)]
fn exec_scan_inner(
    table: &str,
    projected: &[usize],
    filters: &[BExpr],
    ctx: &ExecContext,
    range: Option<(u32, u32)>,
    blooms: &[(usize, Arc<Bloom>)],
    extras: &[Arc<Bat>],
    allow_sel: bool,
) -> Result<Chunk> {
    let meta = ctx.tables.table_meta(table)?;
    let phys_rows = meta.data.rows;
    check_candidate_width(phys_rows)?;
    let (lo, hi) = range.map(|(a, b)| (a as usize, b as usize)).unwrap_or((0, phys_rows));
    // Zero-width ranges (empty morsels) must still produce correctly
    // typed, zero-row output — clamp rather than underflow below.
    let (lo, hi) = (lo.min(phys_rows), hi.min(phys_rows).max(lo.min(phys_rows)));
    let entries: Vec<Arc<ColumnEntry>> =
        projected.iter().map(|&c| meta.data.cols[c].entry()).collect::<Result<_>>()?;

    // Zonemap skipping: before any index probe or kernel run, a constant
    // range predicate whose bounds exclude every zone overlapping
    // [lo, hi) proves the whole vector empty. Valid under deletion masks
    // too — deletes only remove potential matches, and per-zone min/max
    // over the physical rows stays a conservative superset.
    if ctx.opts.use_zonemaps && hi > lo {
        for f in filters {
            let Some((col_pos, plo, phi)) = zone_probe_of(f) else {
                continue;
            };
            let Some(entry) = entries.get(col_pos) else {
                continue;
            };
            if entry.is_empty() || entry.ty() == LogicalType::Varchar {
                continue;
            }
            let zm = entry.zonemap()?;
            if !zm.range_may_match(lo, hi, plo, phi) {
                ctx.counters.bump(&ctx.counters.vectors_skipped);
                return Ok(Chunk::dense(
                    entries
                        .iter()
                        .map(|e| Arc::new(Bat::new(e.ty())))
                        .chain(extras.iter().map(|b| Arc::new(Bat::new(b.logical_type()))))
                        .collect(),
                    0,
                ));
            }
        }
    }

    // Dictionary-domain string predicates: compile each eligible constant
    // VARCHAR filter into a code range / bitmap over the column's sorted
    // dictionary. A morsel whose per-zone code bounds cannot satisfy some
    // predicate is proven empty here; surviving rows are filtered by flat
    // `u32` code compares — the string kernel never runs for a served
    // predicate.
    let mut served = vec![false; filters.len()];
    let mut dict_preds: Vec<(Arc<StrDict>, DictPred)> = Vec::new();
    if ctx.opts.use_dict && hi > lo {
        for (i, f) in filters.iter().enumerate() {
            let Some(entry) = dict_filter_col(f, &entries) else {
                continue;
            };
            let Ok(d) = entry.dict() else {
                continue;
            };
            let Some(pred) = dict_pred_of(f, &d, hi - lo) else {
                continue;
            };
            ctx.counters.bump(&ctx.counters.dict_hits);
            served[i] = true;
            dict_preds.push((d, pred));
        }
        for (d, pred) in &dict_preds {
            // `None` zone bounds mean every row in range is NULL — no
            // predicate can select those rows.
            let may = match d.zone_bounds(lo, hi) {
                Some((zmin, zmax)) => pred.zone_may_match(zmin, zmax),
                None => false,
            };
            if !may {
                ctx.counters.bump(&ctx.counters.vectors_skipped);
                return Ok(Chunk::dense(
                    entries
                        .iter()
                        .map(|e| Arc::new(Bat::new(e.ty())))
                        .chain(extras.iter().map(|b| Arc::new(Bat::new(b.logical_type()))))
                        .collect(),
                    0,
                ));
            }
        }
    }

    let mut sel: Option<Vec<u32>> = None;
    let mut remaining: Vec<&BExpr> =
        filters.iter().enumerate().filter(|(i, _)| !served[*i]).map(|(_, f)| f).collect();
    // Index-assisted first filter. Works for subranges too (candidates
    // clip to `[lo, hi)`, so every morsel of a streaming scan and every
    // mitosis chunk keeps imprint/order-index acceleration) — but not
    // under deletion masks, where candidate row ids could be stale.
    if meta.data.deleted.is_none() {
        let probe_hit = remaining
            .iter()
            .enumerate()
            .find_map(|(i, f)| probe_of(f, &entries, &meta, projected, ctx).map(|p| (i, p)));
        if let Some((pos, (col_pos, plo, phi, exact))) = probe_hit {
            let f = remaining.remove(pos);
            let entry = &entries[col_pos];
            let base_col = projected[col_pos];
            let use_order = ctx.opts.use_order_index && meta.ordered_cols.contains(&base_col);
            if use_order {
                // Order index answers the range exactly by binary search.
                let oi = entry.order_index()?;
                let mut rows: Vec<u32> = oi.range(plo, phi).to_vec();
                rows.retain(|&r| (lo as u32..hi as u32).contains(&r));
                rows.sort_unstable();
                ctx.counters.bump(&ctx.counters.order_index_selects);
                if !exact {
                    // Bounds were widened (e.g. NotEq unsupported): verify.
                    rows = verify_rows(f, &entries, rows)?;
                }
                sel = Some(rows);
            } else {
                // Imprints: candidate cache lines (clipped to the scan
                // range), then exact check. Only lines overlapping
                // [lo, hi) are considered, so a morsel's probe costs
                // O(morsel), not O(table).
                let imp = entry.imprints()?;
                ctx.counters.bump(&ctx.counters.imprint_selects);
                let (first_line, last_line) = (lo / IMPRINT_LINE, hi.div_ceil(IMPRINT_LINE));
                let lines = imp.candidate_lines(plo, phi);
                let mut cands = Vec::with_capacity(hi - lo);
                for line in lines {
                    let line = line as usize;
                    if line < first_line || line >= last_line {
                        continue;
                    }
                    let start = (line * IMPRINT_LINE).max(lo);
                    let end = (line * IMPRINT_LINE + IMPRINT_LINE).min(hi);
                    cands.extend(start as u32..end as u32);
                }
                sel = Some(verify_rows(f, &entries, cands)?);
            }
        }
    }
    // No index-assisted selection: start from the physical restriction
    // (deletes and/or subrange) if any.
    if sel.is_none() && (meta.data.deleted.is_some() || lo != 0 || hi != phys_rows) {
        let deleted = meta.data.deleted.as_deref();
        sel = Some(
            (lo as u32..hi as u32).filter(|&r| deleted.is_none_or(|d| !d[r as usize])).collect(),
        );
    }

    // Dictionary-served predicates run first: integer code compares are
    // cheaper than any kernel the remaining filters could dispatch to.
    if !dict_preds.is_empty() {
        let deleted = meta.data.deleted.as_deref();
        let keep = |r: u32| dict_preds.iter().all(|(d, p)| p.matches(d.codes()[r as usize]));
        sel = Some(match sel.take() {
            Some(cur) => cur.into_iter().filter(|&r| keep(r)).collect(),
            None => (lo as u32..hi as u32)
                .filter(|&r| deleted.is_none_or(|d| !d[r as usize]) && keep(r))
                .collect(),
        });
    }

    // Remaining filters: evaluate over the current selection.
    for f in remaining {
        match &sel {
            None => {
                let mask = eval(f, &entries_bats(&entries)?, phys_rows)?;
                sel = Some(bool_to_sel(&mask)?);
            }
            Some(cur) => {
                sel = Some(verify_rows(f, &entries, cur.clone())?);
            }
        }
    }

    // Pushed-down join bloom filters, after every local predicate: rows
    // whose key hash is definitely absent from the build side never enter
    // the pipeline. NULL keys hash to a tag the build side never inserts
    // (its NULL rows are skipped), so they drop here too — sound, since
    // the Inner/Semi probe this filter came from never matches NULL.
    if ctx.opts.use_dict && !blooms.is_empty() && hi > lo {
        let deleted = meta.data.deleted.as_deref();
        for (col_pos, bloom) in blooms {
            let Some(entry) = entries.get(*col_pos) else {
                continue;
            };
            let bat = entry.bat()?;
            let keys = [bat.as_ref()];
            let cur: Vec<u32> = match sel.take() {
                Some(cur) => cur,
                None => (lo as u32..hi as u32)
                    .filter(|&r| deleted.is_none_or(|d| !d[r as usize]))
                    .collect(),
            };
            let before = cur.len();
            let kept: Vec<u32> =
                cur.into_iter().filter(|&r| bloom.contains(row_hash(&keys, r as usize))).collect();
            ctx.counters.add(&ctx.counters.bloom_pruned, (before - kept.len()) as u64);
            sel = Some(kept);
        }
    }

    // Materialise output columns; an unfiltered scan shares the base
    // arrays (zero copy — the Arc is the "shared pointer" of §3.3).
    // Synthetic `extras` columns are full-length physical arrays, so they
    // share the base columns' treatment in every shape.
    match sel {
        None => {
            let mut cols: Vec<Arc<Bat>> = entries.iter().map(|e| e.bat()).collect::<Result<_>>()?;
            cols.extend(extras.iter().cloned());
            Ok(Chunk::dense(cols, phys_rows))
        }
        Some(sel) => {
            // Candidate pass-through: a sparse selection rides on the
            // zero-copy base columns; downstream kernels evaluate only
            // the selected positions and materialisation happens once, at
            // the pipeline sink. Near-full selections gather here (the
            // density cutoff) so dense chains keep contiguous access.
            let span = hi - lo;
            if allow_sel && sel.len() * 10 < span * SEL_DENSITY_CUTOFF_TENTHS {
                let mut cols: Vec<Arc<Bat>> =
                    entries.iter().map(|e| e.bat()).collect::<Result<_>>()?;
                cols.extend(extras.iter().cloned());
                let rows = sel.len();
                return Ok(Chunk { cols, rows, sel: Some(Arc::new(sel)) });
            }
            let mut cols: Vec<Arc<Bat>> =
                entries.iter().map(|e| Ok(Arc::new(e.bat()?.take(&sel)))).collect::<Result<_>>()?;
            cols.extend(extras.iter().map(|b| Arc::new(b.take(&sel))));
            Ok(Chunk::dense(cols, sel.len()))
        }
    }
}

fn entries_bats(entries: &[Arc<ColumnEntry>]) -> Result<Vec<Arc<Bat>>> {
    entries.iter().map(|e| e.bat()).collect()
}

/// Evaluate filter `f` over only `cands`, returning the surviving rows.
fn verify_rows(f: &BExpr, entries: &[Arc<ColumnEntry>], cands: Vec<u32>) -> Result<Vec<u32>> {
    if cands.is_empty() {
        return Ok(cands);
    }
    let mut used = Vec::new();
    f.collect_cols(&mut used);
    used.sort_unstable();
    used.dedup();
    // Build a narrow chunk with only the used columns gathered, remapping
    // the filter accordingly.
    let mut gathered: Vec<Arc<Bat>> =
        (0..entries.len()).map(|_| Arc::new(Bat::Int(vec![]))).collect();
    for &u in &used {
        gathered[u] = Arc::new(entries[u].bat()?.take(&cands));
    }
    let mask = eval(f, &gathered, cands.len())?;
    let hits = bool_to_sel(&mask)?;
    Ok(hits.into_iter().map(|i| cands[i as usize]).collect())
}

/// A constant VARCHAR predicate compiled into the dictionary's code
/// domain. Codes are dense and sorted by value, so every comparison
/// shape becomes either a half-open code range (binary search, O(log d)
/// to compile) or a per-code membership bitmap (one string-domain
/// evaluation per *distinct* value, O(d) to compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DictPred {
    /// Codes in `[lo, hi)` match.
    Range(u32, u32),
    /// `bits[code]` says whether the code matches.
    Mask(Vec<bool>),
}

impl DictPred {
    /// Row-level test; NULL rows ([`NULL_CODE`]) never match — SQL
    /// comparisons and LIKE yield NULL on NULL input, which a filter
    /// treats as false.
    #[inline]
    pub(crate) fn matches(&self, code: u32) -> bool {
        if code == NULL_CODE {
            return false;
        }
        match self {
            DictPred::Range(lo, hi) => code >= *lo && code < *hi,
            DictPred::Mask(bits) => bits.get(code as usize).copied().unwrap_or(false),
        }
    }

    /// Can any code in the inclusive zone-bounds interval match?
    pub(crate) fn zone_may_match(&self, zmin: u32, zmax: u32) -> bool {
        match self {
            DictPred::Range(lo, hi) => zmin < *hi && zmax >= *lo,
            DictPred::Mask(bits) => {
                (zmin..=zmax).any(|c| bits.get(c as usize).copied().unwrap_or(false))
            }
        }
    }
}

/// Purely syntactic dictionary-eligibility of a filter — the shape the
/// scan's dictionary path and EXPLAIN's `[dict]` tag share (the scan
/// additionally requires a non-empty VARCHAR column entry).
pub(crate) fn dict_filter_shape(f: &BExpr) -> bool {
    match f {
        BExpr::Cmp { left, right, .. } => matches!(
            (left.as_ref(), right.as_ref()),
            (BExpr::ColRef { ty: LogicalType::Varchar, .. }, BExpr::Lit(_))
                | (BExpr::Lit(_), BExpr::ColRef { ty: LogicalType::Varchar, .. })
        ),
        BExpr::Like { input, .. } => {
            matches!(input.as_ref(), BExpr::ColRef { ty: LogicalType::Varchar, .. })
        }
        _ => false,
    }
}

/// The scan-relative VARCHAR column entry a filter tests, when its shape
/// is dictionary-eligible: `#col <cmp> literal` or `#col [NOT] LIKE
/// 'pat'` over a bare column reference.
fn dict_filter_col<'e>(f: &BExpr, entries: &'e [Arc<ColumnEntry>]) -> Option<&'e Arc<ColumnEntry>> {
    let col = match f {
        BExpr::Cmp { left, right, .. } => match (left.as_ref(), right.as_ref()) {
            (BExpr::ColRef { idx, ty: LogicalType::Varchar }, BExpr::Lit(_))
            | (BExpr::Lit(_), BExpr::ColRef { idx, ty: LogicalType::Varchar }) => *idx,
            _ => return None,
        },
        BExpr::Like { input, .. } => match input.as_ref() {
            BExpr::ColRef { idx, ty: LogicalType::Varchar } => *idx,
            _ => return None,
        },
        _ => return None,
    };
    let entry = entries.get(col)?;
    (entry.ty() == LogicalType::Varchar && !entry.is_empty()).then_some(entry)
}

/// Compile a dictionary-eligible filter into a [`DictPred`]. `span` is
/// the number of rows the predicate will filter this morsel: bitmap
/// -shaped plans cost O(|dict|) to compile, so they are only worth it
/// while the dictionary is no larger than the morsel (otherwise the
/// plain string kernel is cheaper and the filter stays in `remaining`).
fn dict_pred_of(f: &BExpr, d: &StrDict, span: usize) -> Option<DictPred> {
    let n = d.len() as u32;
    match f {
        BExpr::Cmp { op, left, right } => {
            let (lit, op) = match (left.as_ref(), right.as_ref()) {
                (BExpr::ColRef { .. }, BExpr::Lit(v)) => (v, *op),
                (BExpr::Lit(v), BExpr::ColRef { .. }) => (v, op.flip()),
                _ => return None,
            };
            let s = match lit {
                // Comparison with NULL is NULL for every row: empty range.
                Value::Null => return Some(DictPred::Range(0, 0)),
                Value::Str(s) => s.as_str(),
                _ => return None,
            };
            Some(match op {
                CmpOp::Eq => match d.code_of(s) {
                    Some(c) => DictPred::Range(c, c + 1),
                    None => DictPred::Range(0, 0),
                },
                CmpOp::Lt => DictPred::Range(0, d.lower_bound(s)),
                CmpOp::LtEq => DictPred::Range(0, d.upper_bound(s)),
                CmpOp::Gt => DictPred::Range(d.upper_bound(s), n),
                CmpOp::GtEq => DictPred::Range(d.lower_bound(s), n),
                CmpOp::NotEq => {
                    if d.len() > span {
                        return None;
                    }
                    let mut bits = vec![true; d.len()];
                    if let Some(c) = d.code_of(s) {
                        bits[c as usize] = false;
                    }
                    DictPred::Mask(bits)
                }
            })
        }
        BExpr::Like { pattern, negated, .. } => {
            let plan = compile_like(pattern);
            match (&plan, negated) {
                (LikePlan::Exact(p), false) => Some(match d.code_of(p) {
                    Some(c) => DictPred::Range(c, c + 1),
                    None => DictPred::Range(0, 0),
                }),
                (LikePlan::Prefix(p), false) => {
                    let (plo, phi) = d.prefix_range(p);
                    Some(DictPred::Range(plo, phi))
                }
                _ => {
                    if d.len() > span {
                        return None;
                    }
                    // The pattern is evaluated once per distinct value —
                    // the dictionary-domain LIKE of the paper's string
                    // -heavy queries.
                    let bits = (0..n)
                        .map(|c| like_plan_match(&plan, pattern, d.value(c)) != *negated)
                        .collect();
                    Some(DictPred::Mask(bits))
                }
            }
        }
        _ => None,
    }
}

/// Recognise `#col <op> literal` as an inclusive key-domain range probe,
/// returning (column position, lo, hi). Purely syntactic — the shape
/// zonemap skipping, imprint/order-index probes and EXPLAIN's
/// zonemap-eligibility tag all share. Bounds use the order-preserving
/// `i64` key domain of [`monetlite_storage::index::key_at`].
pub(crate) fn zone_probe_of(f: &BExpr) -> Option<(usize, Option<i64>, Option<i64>)> {
    let BExpr::Cmp { op, left, right } = f else {
        return None;
    };
    let (col, ty, lit, op) = match (left.as_ref(), right.as_ref()) {
        (BExpr::ColRef { idx, ty }, BExpr::Lit(v)) => (*idx, *ty, v, *op),
        (BExpr::Lit(v), BExpr::ColRef { idx, ty }) => (*idx, *ty, v, op.flip()),
        _ => return None,
    };
    if lit.is_null() {
        return None; // NULL comparisons select nothing; not a range probe
    }
    let k = value_key(lit, ty)?;
    Some(match op {
        CmpOp::Eq => (col, Some(k), Some(k)),
        CmpOp::Lt => (col, None, Some(k.checked_sub(1)?)),
        CmpOp::LtEq => (col, None, Some(k)),
        CmpOp::Gt => (col, Some(k.checked_add(1)?), None),
        CmpOp::GtEq => (col, Some(k), None),
        CmpOp::NotEq => return None,
    })
}

/// Recognise range probes answerable by an index (imprints / order
/// index) over orderable persistent columns, returning (column position,
/// lo, hi, bounds_are_exact) in the order-key domain.
#[allow(clippy::type_complexity)]
fn probe_of(
    f: &BExpr,
    entries: &[Arc<ColumnEntry>],
    meta: &TableMeta,
    projected: &[usize],
    ctx: &ExecContext,
) -> Option<(usize, Option<i64>, Option<i64>, bool)> {
    let (col, plo, phi) = zone_probe_of(f)?;
    let entry = entries.get(col)?;
    if !orderable(entry.bat().ok()?.as_ref()) {
        return None;
    }
    let have_order = ctx.opts.use_order_index && meta.ordered_cols.contains(&projected[col]);
    if !have_order && !ctx.opts.use_imprints {
        return None;
    }
    Some((col, plo, phi, true))
}

/// Map a literal into the column's order-key domain (see
/// [`monetlite_storage::index::key_at`]).
fn value_key(v: &Value, ty: LogicalType) -> Option<i64> {
    Some(match (v, ty) {
        (Value::Int(x), LogicalType::Int) => *x as i64,
        (Value::Bigint(x), LogicalType::Bigint) => *x,
        (Value::Date(d), LogicalType::Date) => d.0 as i64,
        (Value::Double(x), LogicalType::Double) => {
            if x.is_nan() {
                return None;
            }
            f64_ordered(*x)
        }
        (Value::Decimal(d), LogicalType::Decimal { scale, .. }) => d.rescale(scale).ok()?.raw,
        _ => return None,
    })
}

// ---------------------------------------------------------------------------
// Joins
// ---------------------------------------------------------------------------

fn exec_join(
    left: &Plan,
    right: &Plan,
    kind: PJoinKind,
    left_keys: &[BExpr],
    right_keys: &[BExpr],
    residual: Option<&BExpr>,
    ctx: &ExecContext,
) -> Result<Chunk> {
    let lchunk = exec_node(left, ctx, None)?;
    let rchunk = exec_node(right, ctx, None)?;
    ctx.check_deadline()?;
    let probe_kind = pair_probe_kind(kind, residual);
    let sel: JoinSel = if kind == PJoinKind::Cross || left_keys.is_empty() {
        if matches!(kind, PJoinKind::Semi | PJoinKind::Anti) {
            return Err(MlError::Execution("semi/anti join requires keys".into()));
        }
        if kind == PJoinKind::Left && residual.is_none() {
            // Binder-planned scalar join: `x <op> (SELECT ...)`.
            scalar_left_pairs(lchunk.rows, rchunk.rows)?
        } else {
            // Key-less LEFT with a residual uses cross pairs; the
            // finisher pads probe rows whose matches all fail.
            cross_join(lchunk.rows, rchunk.rows)
        }
    } else {
        let lkey_bats: Vec<Bat> =
            left_keys.iter().map(|k| eval(k, &lchunk.cols, lchunk.rows)).collect::<Result<_>>()?;
        let rkey_bats: Vec<Bat> =
            right_keys.iter().map(|k| eval(k, &rchunk.cols, rchunk.rows)).collect::<Result<_>>()?;
        let lrefs: Vec<&Bat> = lkey_bats.iter().collect();
        let rrefs: Vec<&Bat> = rkey_bats.iter().collect();
        // Merge join when both sides are order-indexed bare scans.
        if kind == PJoinKind::Inner && left_keys.len() == 1 && ctx.opts.use_order_index {
            if let (Some(le), Some(re)) = (
                bare_scan_key_entry(left, left_keys, ctx),
                bare_scan_key_entry(right, right_keys, ctx),
            ) {
                ctx.counters.bump(&ctx.counters.merge_joins);
                let (loi, roi) = (le.order_index()?, re.order_index()?);
                let sel = merge_join(&lrefs[0].clone(), &loi, &rrefs[0].clone(), &roi);
                ctx.check_deadline()?;
                return finish_join_output(
                    &lchunk.cols,
                    &rchunk.cols,
                    sel,
                    kind,
                    residual,
                    lchunk.rows,
                );
            }
        }
        // Automatic hash index on a bare persistent build column.
        let prebuilt = if right_keys.len() == 1 && ctx.opts.use_hash_index {
            match bare_scan_hash_entry(right, right_keys, ctx) {
                Some(e) => {
                    ctx.counters.bump(&ctx.counters.hash_index_joins);
                    Some(e.hash_index()?)
                }
                None => None,
            }
        } else {
            None
        };
        hash_join(&lrefs, &rrefs, probe_kind, prebuilt.as_deref())?
    };
    ctx.check_deadline()?;
    finish_join_output(&lchunk.cols, &rchunk.cols, sel, kind, residual, lchunk.rows)
}

/// Probe kind producing the row pairs `finish_join_output` needs for
/// `kind` with `residual`: semi/anti with a residual probe as Inner so
/// every candidate match is available for the per-pair residual check.
pub(crate) fn pair_probe_kind(kind: PJoinKind, residual: Option<&BExpr>) -> PJoinKind {
    match (kind, residual) {
        (PJoinKind::Semi | PJoinKind::Anti, Some(_)) => PJoinKind::Inner,
        _ => kind,
    }
}

/// Turn a join's row-id pairs into its output chunk, applying SQL ON
/// semantics for the residual predicate. Shared by the materialized
/// engine, the streaming probe operator and the grace join, so the paths
/// cannot diverge:
/// * inner/cross — pairs failing the residual drop (a plain filter);
/// * semi/anti — `sel` holds **Inner** pairs (see [`pair_probe_kind`]); a
///   probe row qualifies when at least one of its matches passes the
///   residual; semi keeps qualifying rows, anti keeps the complement
///   (including rows with no key match at all);
/// * left — matches failing the residual are discarded and a probe row
///   whose matches all fail (or that has none) is NULL-padded instead of
///   dropped.
///
/// `probe_rows` is the probe side's logical row count, required for the
/// anti complement and left padding; `sel.lsel` must be ascending (all
/// probe paths produce it that way).
pub(crate) fn finish_join_output(
    probe_cols: &[Arc<Bat>],
    build_cols: &[Arc<Bat>],
    sel: JoinSel,
    kind: PJoinKind,
    residual: Option<&BExpr>,
    probe_rows: usize,
) -> Result<Chunk> {
    let semi_like = matches!(kind, PJoinKind::Semi | PJoinKind::Anti);
    let gather = |lsel: &[u32], rsel: Option<&[u32]>| -> Chunk {
        let mut cols: Vec<Arc<Bat>> =
            Vec::with_capacity(probe_cols.len() + rsel.map_or(0, |_| build_cols.len()));
        for c in probe_cols {
            cols.push(Arc::new(c.take(lsel)));
        }
        if let Some(rs) = rsel {
            for c in build_cols {
                cols.push(Arc::new(take_padded(c, rs)));
            }
        }
        Chunk::dense(cols, lsel.len())
    };
    let Some(res) = residual else {
        return Ok(if semi_like {
            gather(&sel.lsel, None)
        } else {
            gather(&sel.lsel, Some(&sel.rsel))
        });
    };
    match kind {
        PJoinKind::Inner | PJoinKind::Cross => {
            let out = gather(&sel.lsel, Some(&sel.rsel));
            let mask = eval(res, &out.cols, out.rows)?;
            let keep = bool_to_sel(&mask)?;
            Ok(out.take(&keep))
        }
        PJoinKind::Semi | PJoinKind::Anti => {
            let pairs = gather(&sel.lsel, Some(&sel.rsel));
            let mask = eval(res, &pairs.cols, pairs.rows)?;
            let hits = bool_to_sel(&mask)?;
            let mut qualifies = vec![false; probe_rows];
            for &h in &hits {
                qualifies[sel.lsel[h as usize] as usize] = true;
            }
            let want = kind == PJoinKind::Semi;
            let lsel: Vec<u32> =
                (0..probe_rows as u32).filter(|&l| qualifies[l as usize] == want).collect();
            Ok(gather(&lsel, None))
        }
        PJoinKind::Left => {
            let pairs = gather(&sel.lsel, Some(&sel.rsel));
            let mask = eval(res, &pairs.cols, pairs.rows)?;
            let hits = bool_to_sel(&mask)?;
            let mut pass = vec![false; pairs.rows];
            for &h in &hits {
                pass[h as usize] = true;
            }
            let mut lsel: Vec<u32> = Vec::new();
            let mut rsel: Vec<u32> = Vec::new();
            let mut i = 0usize;
            for l in 0..probe_rows as u32 {
                let mut any = false;
                while i < sel.lsel.len() && sel.lsel[i] == l {
                    if sel.rsel[i] != crate::rows::NO_ROW && pass[i] {
                        lsel.push(l);
                        rsel.push(sel.rsel[i]);
                        any = true;
                    }
                    i += 1;
                }
                if !any {
                    lsel.push(l);
                    rsel.push(crate::rows::NO_ROW);
                }
            }
            Ok(gather(&lsel, Some(&rsel)))
        }
    }
}

/// If `plan` is a filterless scan and the single key is a plain column
/// reference, return that column's catalog entry.
fn bare_scan_key_entry(plan: &Plan, keys: &[BExpr], ctx: &ExecContext) -> Option<Arc<ColumnEntry>> {
    let Plan::Scan { table, projected, filters, .. } = plan else {
        return None;
    };
    if !filters.is_empty() {
        return None;
    }
    let [BExpr::ColRef { idx, .. }] = keys else {
        return None;
    };
    let meta = ctx.tables.table_meta(table).ok()?;
    if meta.data.deleted.is_some() {
        return None; // physical ids shift under deletion masks
    }
    let base = *projected.get(*idx)?;
    if !meta.ordered_cols.contains(&base) {
        return None;
    }
    meta.data.cols[base].entry().ok()
}

/// Hash-index variant: same shape but no order-index requirement.
pub(crate) fn bare_scan_hash_entry(
    plan: &Plan,
    keys: &[BExpr],
    ctx: &ExecContext,
) -> Option<Arc<ColumnEntry>> {
    let Plan::Scan { table, projected, filters, .. } = plan else {
        return None;
    };
    if !filters.is_empty() {
        return None;
    }
    let [BExpr::ColRef { idx, .. }] = keys else {
        return None;
    };
    let meta = ctx.tables.table_meta(table).ok()?;
    if meta.data.deleted.is_some() {
        return None;
    }
    let base = *projected.get(*idx)?;
    meta.data.cols[base].entry().ok()
}

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

fn exec_aggregate(
    chunk: &Chunk,
    groups: &[BExpr],
    aggs: &[crate::expr::AggSpec],
    schema: &[crate::plan::OutCol],
    ctx: &ExecContext,
) -> Result<Chunk> {
    ctx.check_deadline()?;
    let group_bats: Vec<Bat> =
        groups.iter().map(|g| eval(g, &chunk.cols, chunk.rows)).collect::<Result<_>>()?;
    let (group_ids, repr_rows, n_groups) = if groups.is_empty() {
        (vec![0u32; chunk.rows], vec![], 1usize)
    } else {
        let refs: Vec<&Bat> = group_bats.iter().collect();
        let g = hash_group(&refs);
        let n = g.repr_rows.len();
        (g.group_ids, g.repr_rows, n)
    };
    let mut out_cols: Vec<Arc<Bat>> = Vec::with_capacity(schema.len());
    for b in &group_bats {
        out_cols.push(Arc::new(b.take(&repr_rows)));
    }
    for (i, spec) in aggs.iter().enumerate() {
        let arg_bat = spec.arg.as_ref().map(|a| eval(a, &chunk.cols, chunk.rows)).transpose()?;
        let mut state =
            AggState::new(spec.func, spec.arg.as_ref().map(|a| a.ty()), spec.distinct, n_groups)?;
        state.update(arg_bat.as_ref(), &group_ids)?;
        let finished = state.finish(schema[groups.len() + i].ty)?;
        out_cols.push(Arc::new(finished));
    }
    let rows = if groups.is_empty() { 1 } else { repr_rows.len() };
    Ok(Chunk::dense(out_cols, rows))
}

// ---------------------------------------------------------------------------
// Mitosis (paper Figure 2)
// ---------------------------------------------------------------------------

/// Attempt parallel execution. Two shapes qualify:
/// * a global (ungrouped) aggregate over a pipeline — chunked partial
///   aggregation, merged, then finalised (MEDIAN's final sort is the
///   blocking step);
/// * a bare pipeline (Filter/Project over a Scan) — chunked and packed.
fn try_mitosis(plan: &Plan, ctx: &ExecContext) -> Result<Option<Chunk>> {
    match plan {
        Plan::Aggregate { input, groups, aggs, schema } if groups.is_empty() => {
            let Some((table, rows)) = pipeline_base(input, ctx) else {
                return Ok(None);
            };
            let _ = table;
            let Some(ranges) = chunk_ranges(rows, &ctx.opts) else {
                return Ok(None);
            };
            if aggs.iter().any(|a| a.distinct) {
                return Ok(None);
            }
            ctx.counters.bump(&ctx.counters.mitosis_runs);
            ctx.counters.mitosis_chunks.fetch_add(ranges.len() as u64, Ordering::Relaxed);
            // Per-chunk partial states, merged sequentially.
            let partials: Vec<Result<Vec<AggState>>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&r| {
                        scope.spawn(move || -> Result<Vec<AggState>> {
                            let chunk = exec_node(input, ctx, Some(r))?;
                            let gids = vec![0u32; chunk.rows];
                            let mut states = Vec::with_capacity(aggs.len());
                            for spec in aggs {
                                let arg = spec
                                    .arg
                                    .as_ref()
                                    .map(|a| eval(a, &chunk.cols, chunk.rows))
                                    .transpose()?;
                                let mut st = AggState::new(
                                    spec.func,
                                    spec.arg.as_ref().map(|a| a.ty()),
                                    false,
                                    1,
                                )?;
                                st.update(arg.as_ref(), &gids)?;
                                states.push(st);
                            }
                            Ok(states)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| Err(worker_panic_error(&*p))))
                    .collect()
            });
            let mut merged: Option<Vec<AggState>> = None;
            for p in partials {
                let states = p?;
                match &mut merged {
                    None => merged = Some(states),
                    Some(acc) => {
                        for (a, s) in acc.iter_mut().zip(states) {
                            a.merge(s)?;
                        }
                    }
                }
            }
            let merged = merged
                .ok_or_else(|| MlError::Execution("mitosis produced no partial states".into()))?;
            let mut cols = Vec::with_capacity(aggs.len());
            for (i, st) in merged.into_iter().enumerate() {
                cols.push(Arc::new(st.finish(schema[i].ty)?));
            }
            Ok(Some(Chunk::dense(cols, 1)))
        }
        Plan::Filter { .. } | Plan::Project { .. } => {
            let Some((_, rows)) = pipeline_base(plan, ctx) else {
                return Ok(None);
            };
            let Some(ranges) = chunk_ranges(rows, &ctx.opts) else {
                return Ok(None);
            };
            ctx.counters.bump(&ctx.counters.mitosis_runs);
            ctx.counters.mitosis_chunks.fetch_add(ranges.len() as u64, Ordering::Relaxed);
            let parts: Vec<Result<Chunk>> = std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&r| scope.spawn(move || exec_node(plan, ctx, Some(r))))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|p| Err(worker_panic_error(&*p))))
                    .collect()
            });
            let chunks: Vec<Chunk> = parts.into_iter().collect::<Result<_>>()?;
            Ok(Some(Chunk::pack(chunks)?))
        }
        _ => Ok(None),
    }
}

/// If `plan` is a Filter/Project pipeline over a single Scan, return the
/// scan's table and physical row count.
fn pipeline_base<'p>(plan: &'p Plan, ctx: &ExecContext) -> Option<(&'p str, usize)> {
    match plan {
        Plan::Scan { table, .. } => {
            let meta = ctx.tables.table_meta(table).ok()?;
            Some((table.as_str(), meta.data.rows))
        }
        Plan::Filter { input, .. } | Plan::Project { input, .. } => pipeline_base(input, ctx),
        _ => None,
    }
}

/// The mitosis chunking heuristic (paper: "decided by a set of heuristics
/// based on base table size, the amount of cores and the amount of
/// available memory ... will not split up small columns").
fn chunk_ranges(rows: usize, opts: &ExecOptions) -> Option<Vec<(u32, u32)>> {
    if rows < opts.mitosis_min_rows * 2 || opts.threads <= 1 {
        return None;
    }
    let k = (rows / opts.mitosis_min_rows).clamp(2, opts.threads * 2);
    let per = rows.div_ceil(k);
    let mut out = Vec::with_capacity(k);
    let mut start = 0usize;
    while start < rows {
        let end = (start + per).min(rows);
        out.push((start as u32, end as u32));
        start = end;
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::PAggFunc;
    use monetlite_storage::catalog::TableData;
    use monetlite_types::{Field, Schema};
    use std::collections::HashMap;

    struct TestTables {
        tables: HashMap<String, Arc<TableMeta>>,
    }

    impl TableProvider for TestTables {
        fn table_meta(&self, name: &str) -> Result<Arc<TableMeta>> {
            self.tables
                .get(name)
                .cloned()
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
        }
    }

    fn make_table(name: &str, cols: Vec<(&str, Bat)>, ordered: Vec<usize>) -> Arc<TableMeta> {
        let schema =
            Schema::new(cols.iter().map(|(n, b)| Field::new(*n, b.logical_type())).collect())
                .unwrap();
        let data = TableData::empty(&schema);
        let data = data.appended(cols.into_iter().map(|(_, b)| b).collect()).unwrap();
        Arc::new(TableMeta {
            id: 1,
            name: name.into(),
            schema,
            data,
            version: 1,
            ordered_cols: ordered,
        })
    }

    fn ctx_with(tables: &TestTables, opts: ExecOptions) -> ExecContext<'_> {
        ExecContext::new(tables, opts)
    }

    fn scan_plan(table: &str, ncols: usize, tys: Vec<LogicalType>) -> Plan {
        Plan::Scan {
            table: table.into(),
            projected: (0..ncols).collect(),
            filters: vec![],
            schema: (0..ncols)
                .map(|i| crate::plan::OutCol { name: format!("c{i}"), ty: tys[i] })
                .collect(),
        }
    }

    #[test]
    fn candidate_width_guard() {
        // Candidate lists are u32 row ids: a table past 2^32 physical
        // rows must refuse at scan setup, never truncate silently.
        assert!(check_candidate_width(u32::MAX as usize).is_ok());
        assert!(matches!(
            check_candidate_width(u32::MAX as usize + 1),
            Err(MlError::Unsupported(_))
        ));
    }

    #[test]
    fn scan_without_filters_is_zero_copy() {
        let t = make_table("t", vec![("a", Bat::Int(vec![1, 2, 3]))], vec![]);
        let base = t.data.cols[0].entry().unwrap().bat().unwrap();
        let tables = TestTables { tables: HashMap::from([("t".into(), t)]) };
        let ctx = ctx_with(&tables, ExecOptions::default());
        let plan = scan_plan("t", 1, vec![LogicalType::Int]);
        let chunk = execute(&plan, &ctx).unwrap();
        assert!(Arc::ptr_eq(&chunk.cols[0], &base), "unfiltered scan must share the array");
    }

    #[test]
    fn filtered_scan_uses_imprints() {
        let n = 10_000;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))], vec![]);
        let tables = TestTables { tables: HashMap::from([("t".into(), t)]) };
        // One probe per morsel: pin the vector size so the count is exact
        // under the CI env matrix (MONETLITE_VECTOR_SIZE).
        let ctx = ctx_with(&tables, ExecOptions { vector_size: 64 * 1024, ..Default::default() });
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![BExpr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(100))),
            }],
            schema: vec![crate::plan::OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows, 100);
        assert_eq!(ctx.counters.imprint_selects.load(Ordering::Relaxed), 1);
        // Re-run: imprints are cached on the column entry.
        let chunk2 = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk2.rows, 100);
    }

    #[test]
    fn order_index_answers_range_select() {
        let t = make_table("t", vec![("a", Bat::Int(vec![5, 1, 9, 3, 7]))], vec![0]);
        let tables = TestTables { tables: HashMap::from([("t".into(), t)]) };
        let ctx = ctx_with(&tables, ExecOptions::default());
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![BExpr::Cmp {
                op: CmpOp::GtEq,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(5))),
            }],
            schema: vec![crate::plan::OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows, 3);
        assert_eq!(ctx.counters.order_index_selects.load(Ordering::Relaxed), 1);
        assert_eq!(ctx.counters.imprint_selects.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn deleted_rows_invisible() {
        let t = make_table("t", vec![("a", Bat::Int(vec![1, 2, 3]))], vec![]);
        let deleted = Arc::new(TableMeta {
            id: t.id,
            name: t.name.clone(),
            schema: t.schema.clone(),
            data: t.data.with_deleted(&[1]),
            version: 2,
            ordered_cols: vec![],
        });
        let tables = TestTables { tables: HashMap::from([("t".into(), deleted)]) };
        let ctx = ctx_with(&tables, ExecOptions::default());
        let plan = scan_plan("t", 1, vec![LogicalType::Int]);
        let chunk = execute(&plan, &ctx).unwrap();
        assert_eq!(chunk.rows, 2);
        assert_eq!(chunk.cols[0].get(1), Value::Int(3));
    }

    #[test]
    fn mitosis_parallel_agg_matches_sequential() {
        let n = 300_000;
        let vals: Vec<i32> = (0..n).map(|i| (i * 7) % 1000).collect();
        let t = make_table("t", vec![("a", Bat::Int(vals.clone()))], vec![]);
        let tables = TestTables { tables: HashMap::from([("t".into(), t)]) };
        let plan = Plan::Aggregate {
            input: Box::new(scan_plan("t", 1, vec![LogicalType::Int])),
            groups: vec![],
            aggs: vec![
                crate::expr::AggSpec {
                    func: PAggFunc::Sum,
                    arg: Some(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                    distinct: false,
                    ty: LogicalType::Bigint,
                },
                crate::expr::AggSpec {
                    func: PAggFunc::Median,
                    arg: Some(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                    distinct: false,
                    ty: LogicalType::Double,
                },
            ],
            schema: vec![
                crate::plan::OutCol { name: "s".into(), ty: LogicalType::Bigint },
                crate::plan::OutCol { name: "m".into(), ty: LogicalType::Double },
            ],
        };
        // Mitosis is the materialized engine's parallelism.
        let seq_ctx = ctx_with(
            &tables,
            ExecOptions { mode: ExecMode::Materialized, threads: 1, ..Default::default() },
        );
        let seq = execute(&plan, &seq_ctx).unwrap();
        let par_ctx = ctx_with(
            &tables,
            ExecOptions {
                mode: ExecMode::Materialized,
                threads: 4,
                mitosis_min_rows: 10_000,
                ..Default::default()
            },
        );
        let par = execute(&plan, &par_ctx).unwrap();
        assert_eq!(seq.cols[0].get(0), par.cols[0].get(0));
        assert_eq!(seq.cols[1].get(0), par.cols[1].get(0));
        assert!(par_ctx.counters.mitosis_runs.load(Ordering::Relaxed) >= 1);
        assert!(par_ctx.counters.mitosis_chunks.load(Ordering::Relaxed) >= 2);
        assert_eq!(seq_ctx.counters.mitosis_runs.load(Ordering::Relaxed), 0);
        // The streaming engine agrees with both, morsel-parallel.
        let stream_ctx = ctx_with(
            &tables,
            ExecOptions { threads: 4, vector_size: 10_000, ..Default::default() },
        );
        let stream = execute(&plan, &stream_ctx).unwrap();
        assert_eq!(seq.cols[0].get(0), stream.cols[0].get(0));
        assert_eq!(seq.cols[1].get(0), stream.cols[1].get(0));
        assert!(stream_ctx.counters.morsels.load(Ordering::Relaxed) >= 2);
        assert_eq!(stream_ctx.counters.mitosis_runs.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn mitosis_pipeline_pack_preserves_order() {
        let n = 200_000u32;
        let t = make_table("t", vec![("a", Bat::Int((0..n as i32).collect()))], vec![]);
        let tables = TestTables { tables: HashMap::from([("t".into(), t)]) };
        let plan = Plan::Filter {
            input: Box::new(scan_plan("t", 1, vec![LogicalType::Int])),
            pred: BExpr::Cmp {
                op: CmpOp::Eq,
                left: Box::new(BExpr::Arith {
                    op: crate::expr::ArithOp::Mod,
                    left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                    right: Box::new(BExpr::Lit(Value::Int(1000))),
                    ty: LogicalType::Int,
                }),
                right: Box::new(BExpr::Lit(Value::Int(0))),
            },
        };
        let par_ctx = ctx_with(
            &tables,
            ExecOptions { threads: 4, mitosis_min_rows: 10_000, ..Default::default() },
        );
        let out = execute(&plan, &par_ctx).unwrap();
        assert_eq!(out.rows, 200);
        // Packed in scan order.
        assert_eq!(out.cols[0].get(0), Value::Int(0));
        assert_eq!(out.cols[0].get(1), Value::Int(1000));
        assert_eq!(out.cols[0].get(199), Value::Int(199_000));
    }

    #[test]
    fn timeout_fires() {
        let n = 500_000;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))], vec![]);
        let tables = TestTables { tables: HashMap::from([("t".into(), t)]) };
        let mut opts = ExecOptions { timeout: Some(Duration::from_nanos(1)), ..Default::default() };
        opts.use_imprints = false;
        let ctx = ctx_with(&tables, opts);
        std::thread::sleep(Duration::from_millis(2));
        let plan = scan_plan("t", 1, vec![LogicalType::Int]);
        assert!(matches!(execute(&plan, &ctx), Err(MlError::Timeout { .. })));
    }

    #[test]
    fn join_uses_auto_hash_index() {
        let probe = make_table("probe", vec![("k", Bat::Int(vec![1, 2, 3, 2]))], vec![]);
        let build = make_table(
            "build",
            vec![("k", Bat::Int(vec![2, 3])), ("v", Bat::Int(vec![20, 30]))],
            vec![],
        );
        let tables = TestTables {
            tables: HashMap::from([("probe".into(), probe), ("build".into(), build)]),
        };
        let ctx = ctx_with(&tables, ExecOptions::default());
        let plan = Plan::Join {
            left: Box::new(scan_plan("probe", 1, vec![LogicalType::Int])),
            right: Box::new(scan_plan("build", 2, vec![LogicalType::Int, LogicalType::Int])),
            kind: PJoinKind::Inner,
            left_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            right_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            residual: None,
            schema: vec![
                crate::plan::OutCol { name: "k".into(), ty: LogicalType::Int },
                crate::plan::OutCol { name: "k2".into(), ty: LogicalType::Int },
                crate::plan::OutCol { name: "v".into(), ty: LogicalType::Int },
            ],
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 3);
        assert_eq!(ctx.counters.hash_index_joins.load(Ordering::Relaxed), 1);
        // Disable the flag: same answer, no index.
        let ctx2 = ctx_with(&tables, ExecOptions { use_hash_index: false, ..Default::default() });
        let out2 = execute(&plan, &ctx2).unwrap();
        assert_eq!(out2.rows, 3);
        assert_eq!(ctx2.counters.hash_index_joins.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn merge_join_used_with_order_indexes() {
        let l = make_table("l", vec![("k", Bat::Int(vec![3, 1, 2]))], vec![0]);
        let r = make_table("r", vec![("k", Bat::Int(vec![2, 3, 4]))], vec![0]);
        let tables = TestTables { tables: HashMap::from([("l".into(), l), ("r".into(), r)]) };
        // Merge join is a materialized-engine tactical decision.
        let ctx =
            ctx_with(&tables, ExecOptions { mode: ExecMode::Materialized, ..Default::default() });
        let plan = Plan::Join {
            left: Box::new(scan_plan("l", 1, vec![LogicalType::Int])),
            right: Box::new(scan_plan("r", 1, vec![LogicalType::Int])),
            kind: PJoinKind::Inner,
            left_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            right_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
            residual: None,
            schema: vec![
                crate::plan::OutCol { name: "k".into(), ty: LogicalType::Int },
                crate::plan::OutCol { name: "k2".into(), ty: LogicalType::Int },
            ],
        };
        let out = execute(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 2);
        assert_eq!(ctx.counters.merge_joins.load(Ordering::Relaxed), 1);
    }

    // -- dictionary predicate compilation ----------------------------------

    fn sdict(vals: &[Option<&str>]) -> StrDict {
        let mut b = Bat::new(LogicalType::Varchar);
        for v in vals {
            let val = match v {
                Some(s) => Value::Str((*s).to_string()),
                None => Value::Null,
            };
            b.push(&val).unwrap();
        }
        StrDict::build(&b).expect("varchar bat builds a dict")
    }

    fn vcol() -> Box<BExpr> {
        Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Varchar })
    }

    fn slit(s: &str) -> Box<BExpr> {
        Box::new(BExpr::Lit(Value::Str(s.to_string())))
    }

    fn cmp(op: CmpOp, lit: &str) -> BExpr {
        BExpr::Cmp { op, left: vcol(), right: slit(lit) }
    }

    fn like(pattern: &str, negated: bool) -> BExpr {
        BExpr::Like { input: vcol(), pattern: pattern.to_string(), negated }
    }

    #[test]
    fn dict_pred_compiles_comparisons_to_code_ranges() {
        // Sorted dictionary: apple=0, banana=1, cherry=2.
        let d = sdict(&[Some("banana"), Some("apple"), None, Some("cherry"), Some("banana")]);
        assert_eq!(d.len(), 3);
        let p = |f: &BExpr| dict_pred_of(f, &d, 1024);
        assert_eq!(p(&cmp(CmpOp::Eq, "banana")), Some(DictPred::Range(1, 2)));
        assert_eq!(p(&cmp(CmpOp::Eq, "durian")), Some(DictPred::Range(0, 0)));
        assert_eq!(p(&cmp(CmpOp::Lt, "banana")), Some(DictPred::Range(0, 1)));
        assert_eq!(p(&cmp(CmpOp::LtEq, "banana")), Some(DictPred::Range(0, 2)));
        assert_eq!(p(&cmp(CmpOp::Gt, "banana")), Some(DictPred::Range(2, 3)));
        assert_eq!(p(&cmp(CmpOp::GtEq, "banana")), Some(DictPred::Range(1, 3)));
        // Bounds between entries (literal absent from the dictionary).
        assert_eq!(p(&cmp(CmpOp::Gt, "azzz")), Some(DictPred::Range(1, 3)));
        assert_eq!(p(&cmp(CmpOp::Lt, "azzz")), Some(DictPred::Range(0, 1)));
        // Flipped literal-first form takes the mirrored operator:
        // 'banana' < #0  ≡  #0 > 'banana'.
        let flipped = BExpr::Cmp { op: CmpOp::Lt, left: slit("banana"), right: vcol() };
        assert_eq!(p(&flipped), Some(DictPred::Range(2, 3)));
        // Comparison with NULL selects nothing.
        let null_cmp =
            BExpr::Cmp { op: CmpOp::Eq, left: vcol(), right: Box::new(BExpr::Lit(Value::Null)) };
        assert_eq!(p(&null_cmp), Some(DictPred::Range(0, 0)));
        assert_eq!(p(&cmp(CmpOp::NotEq, "banana")), Some(DictPred::Mask(vec![true, false, true])));
    }

    #[test]
    fn dict_pred_compiles_like_plans() {
        // ba=0, band=1, bandana=2, banjo=3, cap=4.
        let d = sdict(&[Some("banjo"), Some("band"), Some("cap"), Some("bandana"), Some("ba")]);
        let p = |f: &BExpr| dict_pred_of(f, &d, 1024);
        // Exact plan (no wildcards) is an equality range.
        assert_eq!(p(&like("band", false)), Some(DictPred::Range(1, 2)));
        // Prefix plan is the dictionary prefix range.
        assert_eq!(p(&like("ban%", false)), Some(DictPred::Range(1, 4)));
        // Generic/suffix/negated plans evaluate once per distinct value.
        assert_eq!(
            p(&like("%and%", false)),
            Some(DictPred::Mask(vec![false, true, true, false, false]))
        );
        assert_eq!(
            p(&like("ban%", true)),
            Some(DictPred::Mask(vec![true, false, false, false, true]))
        );
        assert_eq!(
            p(&like("b_n%", false)),
            Some(DictPred::Mask(vec![false, true, true, true, false]))
        );
    }

    #[test]
    fn dict_pred_mask_shapes_respect_the_compile_cost_guard() {
        let d = sdict(&[Some("a"), Some("b"), Some("c"), Some("d")]);
        // Mask-shaped plans cost O(|dict|): skipped when the dictionary
        // outnumbers the morsel...
        assert_eq!(dict_pred_of(&cmp(CmpOp::NotEq, "b"), &d, 3), None);
        assert_eq!(dict_pred_of(&like("%x%", false), &d, 3), None);
        // ...but range-shaped plans compile in O(log d) regardless.
        assert!(dict_pred_of(&cmp(CmpOp::Lt, "c"), &d, 3).is_some());
        assert!(dict_pred_of(&like("b%", false), &d, 3).is_some());
    }

    #[test]
    fn dict_pred_null_code_never_matches_and_zone_bounds_prune() {
        let full = DictPred::Range(0, u32::MAX);
        assert!(!full.matches(NULL_CODE), "NULL rows must not match any predicate");
        let r = DictPred::Range(2, 5);
        assert!(r.matches(2) && r.matches(4) && !r.matches(5) && !r.matches(1));
        assert!(r.zone_may_match(0, 2) && r.zone_may_match(4, 9) && r.zone_may_match(0, 9));
        assert!(!r.zone_may_match(0, 1) && !r.zone_may_match(5, 9));
        let m = DictPred::Mask(vec![false, true, false]);
        assert!(m.matches(1) && !m.matches(0) && !m.matches(2));
        assert!(!m.matches(999), "codes past the mask never match");
        assert!(m.zone_may_match(0, 1) && m.zone_may_match(1, 2) && !m.zone_may_match(2, 2));
    }

    #[test]
    fn dict_filter_shape_is_syntactic_and_type_gated() {
        assert!(dict_filter_shape(&cmp(CmpOp::Eq, "x")));
        assert!(dict_filter_shape(&like("x%", false)));
        assert!(dict_filter_shape(&like("x%", true)));
        // Non-VARCHAR columns and non-literal comparisons don't qualify.
        let int_cmp = BExpr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
            right: Box::new(BExpr::Lit(Value::Int(1))),
        };
        assert!(!dict_filter_shape(&int_cmp));
        let col_col = BExpr::Cmp { op: CmpOp::Eq, left: vcol(), right: vcol() };
        assert!(!dict_filter_shape(&col_col));
    }
}
