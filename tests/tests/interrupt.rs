//! Cross-thread query cancellation and disk-pressure degradation: the
//! paper's embedded setting (§3.4) demands that a misbehaving query can
//! be stopped — and a disk-hungry one capped — without taking the host
//! process or any other session down.
//!
//! Covers: interrupt latency and idempotence across thread counts and
//! spilled/unspilled shapes, cancelling a running spilled TPC-H query
//! from another thread, `ExecOptions::timeout` firing on the same
//! mid-morsel checkpoints, and `MONETLITE_SPILL_QUOTA` aborting exactly
//! the offending query.

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite::Database;
use monetlite_types::{ColumnBuffer, MlError, Value};
use std::time::{Duration, Instant};

/// A join+sort heavy enough to run for seconds uninterrupted: 20k rows,
/// 100 distinct keys, so the self-join produces ~4M pairs to sort.
const HEAVY: &str = "SELECT a.v AS av FROM t a, t b WHERE a.k = b.k ORDER BY av";

fn heavy_db(rows: usize) -> Database {
    let db = Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE t (k INT NOT NULL, v INT NOT NULL)").unwrap();
    let k: Vec<i32> = (0..rows).map(|i| (i % 100) as i32).collect();
    let v: Vec<i32> = (0..rows).map(|i| ((i * 7919) % 1_000_003) as i32).collect();
    conn.append("t", vec![ColumnBuffer::Int(k), ColumnBuffer::Int(v)]).unwrap();
    db
}

fn shaped(threads: usize, memory_budget: usize) -> ExecOptions {
    ExecOptions {
        mode: ExecMode::Streaming,
        threads,
        vector_size: 4096,
        memory_budget,
        ..Default::default()
    }
}

/// The satellite matrix: threads {1,4} × {unspilled, spilled}, several
/// interrupt delays. Each combination must cancel promptly (or finish
/// legitimately), and the same connection must answer the next query.
#[test]
fn interrupt_cancels_cross_thread_and_connection_survives() {
    let db = heavy_db(20_000);
    for threads in [1usize, 4] {
        for budget in [usize::MAX, 256 * 1024] {
            let mut conn = db.connect();
            conn.set_exec_options(shaped(threads, budget));
            let handle = conn.interrupt_handle();
            for delay_ms in [0u64, 5, 40] {
                let h = handle.clone();
                let started = Instant::now();
                let res = std::thread::scope(|s| {
                    s.spawn(move || {
                        std::thread::sleep(Duration::from_millis(delay_ms));
                        h.interrupt();
                        h.interrupt(); // idempotent: a second signal is harmless
                    });
                    conn.query(HEAVY)
                });
                let elapsed = started.elapsed();
                match res {
                    Err(MlError::Interrupted) => {
                        // Checkpoints are per-morsel and per-operator: the
                        // abort must land well before the query's natural
                        // multi-second runtime.
                        assert!(
                            elapsed < Duration::from_millis(delay_ms) + Duration::from_secs(2),
                            "interrupt latency {elapsed:?} at threads={threads} budget={budget}"
                        );
                    }
                    Ok(_) => {} // finished before the signal landed
                    Err(e) => panic!("expected Interrupted or completion, got {e:?}"),
                }
                // The session survives: the flag is cleared at the next
                // query's start, not left latched.
                let r = conn.query("SELECT 40 + 2").unwrap();
                assert_eq!(r.value(0, 0), Value::Int(42));
            }
        }
    }
}

/// An interrupt with no query in flight must not poison the connection:
/// the next query runs normally.
#[test]
fn idle_interrupt_is_a_no_op() {
    let db = Database::open_in_memory();
    let mut conn = db.connect();
    let h = conn.interrupt_handle();
    h.interrupt();
    h.interrupt();
    let r = conn.query("SELECT 1 + 1").unwrap();
    assert_eq!(r.value(0, 0), Value::Int(2));
}

/// Acceptance scenario: a running, *spilled* TPC-H query is cancelled
/// from another thread and the connection stays usable.
#[test]
fn interrupt_cancels_spilled_tpch_query() {
    let db = Database::open_in_memory();
    let mut conn = db.connect();
    let data = monetlite_tpch::generate(0.02, 20260727);
    monetlite_tpch::load_monet(&mut conn, &data).unwrap();
    // A budget small enough that Q18's group-by/join state spills.
    conn.set_exec_options(ExecOptions {
        mode: ExecMode::Streaming,
        threads: 2,
        vector_size: 1024,
        memory_budget: 32 * 1024,
        ..Default::default()
    });
    if let Some(s) = monetlite_tpch::queries::setup_sql(18) {
        conn.execute(s).unwrap();
    }
    let handle = conn.interrupt_handle();
    let res = std::thread::scope(|s| {
        s.spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            handle.interrupt();
        });
        conn.query(monetlite_tpch::queries::sql(18))
    });
    match res {
        Err(MlError::Interrupted) | Ok(_) => {}
        Err(e) => panic!("expected Interrupted or completion, got {e:?}"),
    }
    let r = conn.query("SELECT COUNT(*) FROM lineitem").unwrap();
    assert!(matches!(r.value(0, 0), Value::Bigint(n) if n > 0));
}

/// `ExecOptions::timeout` rides the same per-morsel/per-operator
/// checkpoints the interrupt uses, so it now fires mid-pipeline instead
/// of only between morsels.
#[test]
fn timeout_fires_mid_pipeline_and_connection_survives() {
    let db = heavy_db(20_000);
    let mut conn = db.connect();
    conn.set_exec_options(ExecOptions {
        timeout: Some(Duration::from_millis(5)),
        ..shaped(1, usize::MAX)
    });
    match conn.query(HEAVY) {
        Err(MlError::Timeout { elapsed_ms, limit_ms }) => {
            assert_eq!(limit_ms, 5);
            assert!(elapsed_ms >= 5);
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    conn.set_exec_options(shaped(1, usize::MAX));
    let r = conn.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.value(0, 0), Value::Bigint(20_000));
}

/// Disk-pressure degradation: a query whose spill files exceed the quota
/// aborts with a precise error naming both numbers, while a concurrent
/// session on the same store keeps answering and the aborted connection
/// remains usable.
#[test]
fn spill_quota_aborts_only_the_offending_query() {
    let db = heavy_db(20_000);
    let mut c1 = db.connect();
    c1.set_exec_options(ExecOptions {
        mode: ExecMode::Streaming,
        threads: 1,
        vector_size: 1024,
        memory_budget: 8 * 1024, // force the sort out of core…
        spill_quota: 4 * 1024,   // …then cap its temp-disk appetite
        ..Default::default()
    });
    std::thread::scope(|s| {
        let other = s.spawn(|| {
            let mut c2 = db.connect();
            for _ in 0..20 {
                let r = c2.query("SELECT COUNT(*) FROM t").unwrap();
                assert_eq!(r.value(0, 0), Value::Bigint(20_000));
            }
        });
        match c1.query("SELECT v FROM t ORDER BY v") {
            Err(MlError::SpillQuota { used, quota }) => {
                assert_eq!(quota, 4 * 1024);
                assert!(used > quota, "reported usage {used} must exceed the quota {quota}");
            }
            other => panic!("expected SpillQuota, got {other:?}"),
        }
        other.join().unwrap();
    });
    // The offender's connection is not poisoned.
    let r = c1.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.value(0, 0), Value::Bigint(20_000));
}
