//! Minimal local stand-in for `criterion` (no network in the build
//! environment). Real wall-clock measurement behind the familiar
//! `criterion_group!`/`criterion_main!`/`benchmark_group` API:
//!
//! * each benchmark is warmed up, then timed over `sample_size` samples,
//!   with the per-iteration median/mean/min reported on stdout;
//! * when `MONETLITE_BENCH_JSON` is set, all results are appended to that
//!   file as a JSON array (used to record bench artifacts in-repo).
//!
//! No statistical outlier analysis, plots, or baselines.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/name` identifier.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// The benchmark driver.
pub struct Criterion {
    default_sample_size: usize,
    results: Vec<Measurement>,
    /// `cargo bench --bench X -- --test`: run every benchmark once to
    /// prove it still compiles and executes, skip the timed sampling (and
    /// JSON recording). Mirrors real criterion's test mode; CI smoke jobs
    /// use it so bench code cannot rot.
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 10,
            results: Vec::new(),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            crit: self,
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(id.to_string(), sample_size, Duration::from_millis(500), f);
        self
    }

    fn run_one<F>(&mut self, id: String, sample_size: usize, budget: Duration, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        // Warmup + calibration: one iteration to estimate cost.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        if self.test_mode {
            println!("{id:<50} ok (test mode: 1 iteration)");
            return;
        }
        let per_iter = (b.elapsed.as_nanos().max(1)) as u64;
        // Pick iterations per sample so one sample is >= budget/samples.
        let per_sample_ns = (budget.as_nanos() as u64 / sample_size.max(1) as u64).max(1);
        let iters = (per_sample_ns / per_iter).clamp(1, 1_000_000);
        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        let mean = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let min = samples_ns[0];
        println!(
            "{id:<50} time: [min {} median {} mean {}] ({} samples x {} iters)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sample_size,
            iters
        );
        self.results.push(Measurement {
            id,
            median_ns: median,
            mean_ns: mean,
            min_ns: min,
            samples: sample_size,
            iters_per_sample: iters,
        });
    }
}

impl Drop for Criterion {
    fn drop(&mut self) {
        if let Ok(path) = std::env::var("MONETLITE_BENCH_JSON") {
            if path.is_empty() || self.results.is_empty() {
                return;
            }
            let mut out = String::from("[\n");
            for (i, m) in self.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                out.push_str(&format!(
                    "  {{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}, \"iters_per_sample\": {}}}",
                    m.id.replace('"', "'"),
                    m.median_ns,
                    m.mean_ns,
                    m.min_ns,
                    m.samples,
                    m.iters_per_sample
                ));
            }
            out.push_str("\n]\n");
            let _ = std::fs::write(path, out);
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    crit: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let (n, t) = (self.sample_size, self.measurement_time);
        self.crit.run_one(full, n, t, f);
        self
    }

    /// Finish the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declare a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo passes harness flags like --bench; ignore them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3).measurement_time(Duration::from_millis(5));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].median_ns >= 0.0);
    }
}
