//! Recursive-descent SQL parser.

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use monetlite_types::{Date, Decimal, LogicalType, MlError, Result, Value};

/// Parse exactly one statement (a trailing `;` is allowed).
pub fn parse_statement(src: &str) -> Result<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat_kind(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script.
pub fn parse_statements(src: &str) -> Result<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat_kind(&TokenKind::Semicolon) {}
        if p.peek_kind() == &TokenKind::Eof {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.eat_kind(&TokenKind::Semicolon) {
            p.expect_eof()?;
            return Ok(out);
        }
    }
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(src: &str) -> Result<Parser> {
        Ok(Parser { toks: tokenize(src)?, pos: 0 })
    }

    fn peek(&self) -> &Token {
        &self.toks[self.pos]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.toks[self.pos].kind
    }

    fn advance(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> MlError {
        MlError::parse(msg, self.peek().offset)
    }

    /// Consume a specific punctuation token if present.
    fn eat_kind(&mut self, k: &TokenKind) -> bool {
        if self.peek_kind() == k {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_kind(&mut self, k: &TokenKind, what: &str) -> Result<()> {
        if self.eat_kind(k) {
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek_kind())))
        }
    }

    fn expect_eof(&self) -> Result<()> {
        if self.peek_kind() == &TokenKind::Eof {
            Ok(())
        } else {
            Err(self.err(format!("unexpected trailing input: {:?}", self.peek_kind())))
        }
    }

    /// Consume a keyword (identifier with given lower-case text).
    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek_kind(), TokenKind::Ident(s) if s == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == kw)
    }

    /// Look ahead one token past the current for a keyword.
    fn peek2_kw(&self, kw: &str) -> bool {
        matches!(self.toks.get(self.pos + 1).map(|t| &t.kind), Some(TokenKind::Ident(s)) if s == kw)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}', found {:?}", kw.to_uppercase(), self.peek_kind())))
        }
    }

    /// Any identifier (quoted or not); quoted identifiers keep case but are
    /// folded here for catalog consistency.
    fn ident(&mut self) -> Result<String> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::QuotedIdent(s) => {
                self.advance();
                Ok(s.to_ascii_lowercase())
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // -- statements ---------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.peek_kw("select") || self.peek_kw("with") {
            return Ok(Statement::Select(Box::new(self.select_stmt()?)));
        }
        if self.eat_kw("explain") {
            return Ok(Statement::Explain(Box::new(self.statement()?)));
        }
        if self.eat_kw("create") {
            return self.create_stmt();
        }
        if self.eat_kw("drop") {
            let is_view = self.eat_kw("view");
            if !is_view {
                self.expect_kw("table")?;
            }
            let if_exists = if self.eat_kw("if") {
                self.expect_kw("exists")?;
                true
            } else {
                false
            };
            let name = self.ident()?;
            return Ok(if is_view {
                Statement::DropView { name, if_exists }
            } else {
                Statement::DropTable { name, if_exists }
            });
        }
        if self.eat_kw("insert") {
            return self.insert_stmt();
        }
        if self.eat_kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let filter = if self.eat_kw("where") { Some(self.expr()?) } else { None };
            return Ok(Statement::Delete { table, filter });
        }
        if self.eat_kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut sets = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect_kind(&TokenKind::Eq, "'='")?;
                sets.push((col, self.expr()?));
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            let filter = if self.eat_kw("where") { Some(self.expr()?) } else { None };
            return Ok(Statement::Update { table, sets, filter });
        }
        if self.eat_kw("begin") {
            self.eat_kw("transaction");
            return Ok(Statement::Begin);
        }
        if self.eat_kw("start") {
            self.expect_kw("transaction")?;
            return Ok(Statement::Begin);
        }
        if self.eat_kw("commit") {
            return Ok(Statement::Commit);
        }
        if self.eat_kw("rollback") {
            return Ok(Statement::Rollback);
        }
        Err(self.err(format!("expected a statement, found {:?}", self.peek_kind())))
    }

    fn create_stmt(&mut self) -> Result<Statement> {
        if self.eat_kw("table") {
            let name = self.ident()?;
            self.expect_kind(&TokenKind::LParen, "'('")?;
            let mut columns = Vec::new();
            loop {
                let col = self.ident()?;
                let ty = self.type_name()?;
                let mut nullable = true;
                loop {
                    if self.eat_kw("not") {
                        self.expect_kw("null")?;
                        nullable = false;
                    } else if self.eat_kw("primary") {
                        self.expect_kw("key")?;
                        nullable = false;
                    } else if self.eat_kw("null") {
                        // explicit NULL: default
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef { name: col, ty, nullable });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "')'")?;
            return Ok(Statement::CreateTable { name, columns });
        }
        if self.eat_kw("view") {
            let name = self.ident()?;
            let columns = self.opt_column_alias_list()?;
            self.expect_kw("as")?;
            let query = self.select_stmt()?;
            return Ok(Statement::CreateView { name, columns, query: Box::new(query) });
        }
        let ordered = self.eat_kw("order");
        if self.eat_kw("index") {
            let name = self.ident()?;
            self.expect_kw("on")?;
            let table = self.ident()?;
            self.expect_kind(&TokenKind::LParen, "'('")?;
            let column = self.ident()?;
            self.expect_kind(&TokenKind::RParen, "')'")?;
            return Ok(Statement::CreateIndex { name, table, column, ordered });
        }
        Err(self.err("expected TABLE, VIEW or [ORDER] INDEX after CREATE"))
    }

    /// Parse an optional parenthesised identifier list: `(a, b, c)`.
    fn opt_column_alias_list(&mut self) -> Result<Option<Vec<String>>> {
        if !self.eat_kind(&TokenKind::LParen) {
            return Ok(None);
        }
        let mut cols = Vec::new();
        loop {
            cols.push(self.ident()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        self.expect_kind(&TokenKind::RParen, "')'")?;
        Ok(Some(cols))
    }

    fn insert_stmt(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let columns = if self.peek_kind() == &TokenKind::LParen && !self.peek2_kw("values") {
            self.advance();
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "')'")?;
            Some(cols)
        } else {
            None
        };
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_kind(&TokenKind::LParen, "'('")?;
            let mut row = Vec::new();
            loop {
                row.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "')'")?;
            rows.push(row);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        Ok(Statement::Insert { table, columns, rows })
    }

    fn type_name(&mut self) -> Result<LogicalType> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "int" | "integer" | "smallint" | "tinyint" => LogicalType::Int,
            "bigint" => LogicalType::Bigint,
            "double" => {
                self.eat_kw("precision");
                LogicalType::Double
            }
            "float" | "real" => LogicalType::Double,
            "decimal" | "numeric" => {
                if self.eat_kind(&TokenKind::LParen) {
                    let width = self.int_literal()? as u8;
                    let scale = if self.eat_kind(&TokenKind::Comma) {
                        self.int_literal()? as u8
                    } else {
                        0
                    };
                    self.expect_kind(&TokenKind::RParen, "')'")?;
                    LogicalType::Decimal { width, scale }
                } else {
                    LogicalType::Decimal { width: 18, scale: 3 }
                }
            }
            "varchar" | "char" | "character" | "text" | "string" | "clob" => {
                if self.eat_kind(&TokenKind::LParen) {
                    self.int_literal()?;
                    self.expect_kind(&TokenKind::RParen, "')'")?;
                }
                LogicalType::Varchar
            }
            "date" => LogicalType::Date,
            "boolean" | "bool" => LogicalType::Bool,
            other => return Err(self.err(format!("unknown type '{other}'"))),
        })
    }

    fn int_literal(&mut self) -> Result<i64> {
        match *self.peek_kind() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(v)
            }
            _ => Err(self.err("expected integer literal")),
        }
    }

    // -- SELECT -------------------------------------------------------------

    /// True when the upcoming tokens start a (sub)query.
    fn peek_select_start(&self) -> bool {
        self.peek_kw("select") || self.peek_kw("with")
    }

    fn select_stmt(&mut self) -> Result<SelectStmt> {
        let mut ctes = Vec::new();
        if self.eat_kw("with") {
            loop {
                let name = self.ident()?;
                let columns = self.opt_column_alias_list()?;
                self.expect_kw("as")?;
                self.expect_kind(&TokenKind::LParen, "'('")?;
                let query = self.select_stmt()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                ctes.push(Cte { name, columns, query });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let mut stmt = self.select_body()?;
        stmt.ctes = ctes;
        Ok(stmt)
    }

    fn select_body(&mut self) -> Result<SelectStmt> {
        self.expect_kw("select")?;
        let distinct = self.eat_kw("distinct");
        if !distinct {
            self.eat_kw("all");
        }
        let mut projections = Vec::new();
        loop {
            projections.push(self.select_item()?);
            if !self.eat_kind(&TokenKind::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.eat_kw("from") {
            loop {
                from.push(self.table_ref()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let where_clause = if self.eat_kw("where") { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_kw("having") { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw("order") {
            self.expect_kw("by")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_kw("desc") {
                    true
                } else {
                    self.eat_kw("asc");
                    false
                };
                order_by.push(OrderItem { expr, desc });
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw("limit") { Some(self.int_literal()? as u64) } else { None };
        Ok(SelectStmt {
            ctes: vec![],
            distinct,
            projections,
            from,
            where_clause,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.peek_kind() == &TokenKind::Star {
            self.advance();
            return Ok(SelectItem::Wildcard);
        }
        // t.* — identifier dot star
        if let TokenKind::Ident(name) = self.peek_kind().clone() {
            if self.toks.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::Dot)
                && self.toks.get(self.pos + 2).map(|t| &t.kind) == Some(&TokenKind::Star)
            {
                self.advance();
                self.advance();
                self.advance();
                return Ok(SelectItem::QualifiedWildcard(name));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            // Implicit alias: a bare identifier that is not a clause
            // keyword.
            match self.peek_kind() {
                TokenKind::Ident(s) if !is_clause_keyword(s) => Some(self.ident()?),
                TokenKind::QuotedIdent(_) => Some(self.ident()?),
                _ => None,
            }
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut left = self.table_factor()?;
        loop {
            let kind = if self.eat_kw("inner") {
                self.expect_kw("join")?;
                JoinKind::Inner
            } else if self.eat_kw("left") {
                self.eat_kw("outer");
                self.expect_kw("join")?;
                JoinKind::Left
            } else if self.eat_kw("cross") {
                self.expect_kw("join")?;
                JoinKind::Cross
            } else if self.eat_kw("join") {
                JoinKind::Inner
            } else {
                return Ok(left);
            };
            let right = self.table_factor()?;
            let on = if kind == JoinKind::Cross {
                None
            } else {
                self.expect_kw("on")?;
                Some(self.expr()?)
            };
            left = TableRef::Join { left: Box::new(left), right: Box::new(right), kind, on };
        }
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.eat_kind(&TokenKind::LParen) {
            if self.peek_select_start() {
                let query = self.select_stmt()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                self.eat_kw("as");
                let alias = self.ident()?;
                let columns = self.opt_column_alias_list()?;
                return Ok(TableRef::Subquery { query: Box::new(query), alias, columns });
            }
            // Parenthesised join tree.
            let inner = self.table_ref()?;
            self.expect_kind(&TokenKind::RParen, "')'")?;
            return Ok(inner);
        }
        let name = self.ident()?;
        let alias = if self.eat_kw("as") {
            Some(self.ident()?)
        } else {
            match self.peek_kind() {
                TokenKind::Ident(s) if !is_clause_keyword(s) && !is_join_keyword(s) => {
                    Some(self.ident()?)
                }
                _ => None,
            }
        };
        Ok(TableRef::Table { name, alias })
    }

    // -- expressions ----------------------------------------------------

    /// Entry: lowest precedence (OR).
    fn expr(&mut self) -> Result<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw("or") {
            let right = self.and_expr()?;
            left = Expr::Binary { op: BinOp::Or, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw("and") {
            let right = self.not_expr()?;
            left = Expr::Binary { op: BinOp::And, left: Box::new(left), right: Box::new(right) };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.eat_kw("not") {
            return Ok(Expr::Not(Box::new(self.not_expr()?)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr> {
        let left = self.additive()?;
        // Postfix predicates first: IS NULL, BETWEEN, IN, LIKE (optionally
        // NOT-prefixed).
        let negated = if self.peek_kw("not")
            && (self.peek2_kw("like") || self.peek2_kw("between") || self.peek2_kw("in"))
        {
            self.advance();
            true
        } else {
            false
        };
        if self.eat_kw("is") {
            let neg = self.eat_kw("not");
            self.expect_kw("null")?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated: neg });
        }
        if self.eat_kw("like") {
            let pat = match self.peek_kind().clone() {
                TokenKind::Str(s) => {
                    self.advance();
                    s
                }
                _ => return Err(self.err("LIKE pattern must be a string literal")),
            };
            return Ok(Expr::Like { expr: Box::new(left), pattern: pat, negated });
        }
        if self.eat_kw("between") {
            let low = self.additive()?;
            self.expect_kw("and")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw("in") {
            self.expect_kind(&TokenKind::LParen, "'('")?;
            if self.peek_select_start() {
                let q = self.select_stmt()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                return Ok(Expr::InSubquery { expr: Box::new(left), query: Box::new(q), negated });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.eat_kind(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect_kind(&TokenKind::RParen, "')'")?;
            return Ok(Expr::InList { expr: Box::new(left), list, negated });
        }
        if negated {
            return Err(self.err("expected LIKE, BETWEEN or IN after NOT"));
        }
        let op = match self.peek_kind() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::NotEq => BinOp::NotEq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::LtEq => BinOp::LtEq,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::GtEq => BinOp::GtEq,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.additive()?;
        Ok(Expr::Binary { op, left: Box::new(left), right: Box::new(right) })
    }

    fn additive(&mut self) -> Result<Expr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek_kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::Binary { op, left: Box::new(left), right: Box::new(right) };
        }
    }

    fn unary(&mut self) -> Result<Expr> {
        if self.eat_kind(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.unary()?)));
        }
        if self.eat_kind(&TokenKind::Plus) {
            return self.unary();
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        match self.peek_kind().clone() {
            TokenKind::Int(v) => {
                self.advance();
                Ok(if v >= i32::MIN as i64 && v <= i32::MAX as i64 {
                    Expr::Literal(Value::Int(v as i32))
                } else {
                    Expr::Literal(Value::Bigint(v))
                })
            }
            TokenKind::Number(text) => {
                self.advance();
                let d = Decimal::parse(&text).map_err(|e| self.err(e.to_string()))?;
                Ok(Expr::Literal(Value::Decimal(d)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Str(s)))
            }
            TokenKind::LParen => {
                self.advance();
                if self.peek_select_start() {
                    let q = self.select_stmt()?;
                    self.expect_kind(&TokenKind::RParen, "')'")?;
                    return Ok(Expr::ScalarSubquery(Box::new(q)));
                }
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(word) => {
                // Clause keywords can never start an expression; catching
                // them here turns `SELECT FROM t` into a parse error
                // instead of a bogus column reference.
                if is_clause_keyword(&word) {
                    return Err(self.err(format!("unexpected keyword '{}'", word.to_uppercase())));
                }
                self.ident_expr(word)
            }
            other => Err(self.err(format!("unexpected token in expression: {other:?}"))),
        }
    }

    fn ident_expr(&mut self, word: String) -> Result<Expr> {
        match word.as_str() {
            "null" => {
                self.advance();
                return Ok(Expr::Literal(Value::Null));
            }
            "true" => {
                self.advance();
                return Ok(Expr::Literal(Value::Bool(true)));
            }
            "false" => {
                self.advance();
                return Ok(Expr::Literal(Value::Bool(false)));
            }
            "date" => {
                // date '1995-01-01'
                if let Some(TokenKind::Str(_)) = self.toks.get(self.pos + 1).map(|t| &t.kind) {
                    self.advance();
                    if let TokenKind::Str(s) = self.advance().kind {
                        let d = Date::parse(&s).map_err(|e| self.err(e.to_string()))?;
                        return Ok(Expr::Literal(Value::Date(d)));
                    }
                    unreachable!()
                }
            }
            "interval" => {
                self.advance();
                let mag: i32 = match self.peek_kind().clone() {
                    TokenKind::Str(s) => {
                        self.advance();
                        s.parse().map_err(|_| self.err("invalid interval magnitude"))?
                    }
                    TokenKind::Int(v) => {
                        self.advance();
                        v as i32
                    }
                    _ => return Err(self.err("expected interval magnitude")),
                };
                let unit = if self.eat_kw("day") {
                    IntervalUnit::Day
                } else if self.eat_kw("month") {
                    IntervalUnit::Month
                } else if self.eat_kw("year") {
                    IntervalUnit::Year
                } else {
                    return Err(self.err("expected DAY, MONTH or YEAR"));
                };
                return Ok(Expr::Interval { value: mag, unit });
            }
            "case" => {
                self.advance();
                return self.case_expr();
            }
            "exists" => {
                self.advance();
                self.expect_kind(&TokenKind::LParen, "'('")?;
                let q = self.select_stmt()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                return Ok(Expr::Exists { query: Box::new(q), negated: false });
            }
            "cast" => {
                self.advance();
                self.expect_kind(&TokenKind::LParen, "'('")?;
                let e = self.expr()?;
                self.expect_kw("as")?;
                let ty = self.type_name()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                return Ok(Expr::Cast { expr: Box::new(e), ty });
            }
            "extract" => {
                self.advance();
                self.expect_kind(&TokenKind::LParen, "'('")?;
                let field = if self.eat_kw("year") {
                    DateField::Year
                } else if self.eat_kw("month") {
                    DateField::Month
                } else if self.eat_kw("day") {
                    DateField::Day
                } else {
                    return Err(self.err("expected YEAR, MONTH or DAY"));
                };
                self.expect_kw("from")?;
                let e = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                return Ok(Expr::Extract { field, expr: Box::new(e) });
            }
            _ => {}
        }
        // SQL-standard substring: substring(x FROM a [FOR b]). The
        // comma-argument form falls through to the generic call path.
        if (word == "substring" || word == "substr")
            && self.toks.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen)
        {
            self.advance(); // name
            self.advance(); // (
            let s = self.expr()?;
            let mut args = vec![s];
            if self.eat_kw("from") {
                args.push(self.expr()?);
                if self.eat_kw("for") {
                    args.push(self.expr()?);
                }
            } else {
                while self.eat_kind(&TokenKind::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect_kind(&TokenKind::RParen, "')'")?;
            return Ok(Expr::Function { name: "substring".into(), args });
        }
        // Aggregate or plain function call?
        if self.toks.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
            if let Some(func) = agg_func(&word) {
                self.advance(); // name
                self.advance(); // (
                if self.peek_kind() == &TokenKind::Star {
                    self.advance();
                    self.expect_kind(&TokenKind::RParen, "')'")?;
                    if func != AggFunc::Count {
                        return Err(self.err("only COUNT(*) accepts '*'"));
                    }
                    return Ok(Expr::Agg { func, arg: None, distinct: false });
                }
                let distinct = self.eat_kw("distinct");
                let arg = self.expr()?;
                self.expect_kind(&TokenKind::RParen, "')'")?;
                return Ok(Expr::Agg { func, arg: Some(Box::new(arg)), distinct });
            }
            // Scalar function.
            self.advance();
            self.advance();
            let mut args = Vec::new();
            if self.peek_kind() != &TokenKind::RParen {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_kind(&TokenKind::Comma) {
                        break;
                    }
                }
            }
            self.expect_kind(&TokenKind::RParen, "')'")?;
            return Ok(Expr::Function { name: word, args });
        }
        // Column reference, possibly qualified.
        self.advance();
        if self.eat_kind(&TokenKind::Dot) {
            let col = self.ident()?;
            return Ok(Expr::Column { table: Some(word), name: col });
        }
        Ok(Expr::Column { table: None, name: word })
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let mut branches = Vec::new();
        while self.eat_kw("when") {
            let cond = self.expr()?;
            self.expect_kw("then")?;
            let val = self.expr()?;
            branches.push((cond, val));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch"));
        }
        let else_expr = if self.eat_kw("else") { Some(Box::new(self.expr()?)) } else { None };
        self.expect_kw("end")?;
        Ok(Expr::Case { branches, else_expr })
    }
}

fn agg_func(name: &str) -> Option<AggFunc> {
    Some(match name {
        "count" => AggFunc::Count,
        "sum" => AggFunc::Sum,
        "avg" => AggFunc::Avg,
        "min" => AggFunc::Min,
        "max" => AggFunc::Max,
        "median" => AggFunc::Median,
        _ => return None,
    })
}

fn is_clause_keyword(s: &str) -> bool {
    matches!(
        s,
        "from"
            | "where"
            | "group"
            | "having"
            | "order"
            | "limit"
            | "on"
            | "inner"
            | "left"
            | "right"
            | "cross"
            | "join"
            | "union"
            | "and"
            | "or"
            | "not"
            | "as"
            | "when"
            | "then"
            | "else"
            | "end"
            | "asc"
            | "desc"
            | "between"
            | "like"
            | "in"
            | "is"
            | "set"
            | "values"
            | "with"
    )
}

fn is_join_keyword(s: &str) -> bool {
    matches!(s, "join" | "inner" | "left" | "right" | "cross" | "on")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sel(src: &str) -> SelectStmt {
        match parse_statement(src).unwrap() {
            Statement::Select(s) => *s,
            other => panic!("expected select, got {other:?}"),
        }
    }

    #[test]
    fn minimal_select() {
        let s = sel("SELECT a, b FROM t");
        assert_eq!(s.projections.len(), 2);
        assert_eq!(s.from.len(), 1);
        assert!(s.where_clause.is_none());
    }

    #[test]
    fn select_with_all_clauses() {
        let s = sel("SELECT a, sum(b) AS total FROM t WHERE c > 5 GROUP BY a \
             HAVING sum(b) > 10 ORDER BY total DESC LIMIT 3");
        assert!(s.having.is_some());
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.limit, Some(3));
        assert!(s.order_by[0].desc);
        match &s.projections[1] {
            SelectItem::Expr { alias, expr } => {
                assert_eq!(alias.as_deref(), Some("total"));
                assert!(expr.contains_aggregate());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn implicit_alias_without_as() {
        let s = sel("SELECT a col1, b FROM t");
        match &s.projections[0] {
            SelectItem::Expr { alias, .. } => assert_eq!(alias.as_deref(), Some("col1")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn arithmetic_precedence() {
        let s = sel("SELECT 1 + 2 * 3 FROM t");
        match &s.projections[0] {
            SelectItem::Expr { expr: Expr::Binary { op: BinOp::Add, right, .. }, .. } => {
                assert!(matches!(**right, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn and_binds_tighter_than_or() {
        let s = sel("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, right, .. } => {
                assert!(matches!(*right, Expr::Binary { op: BinOp::And, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn date_and_interval_literals() {
        let s = sel("SELECT * FROM t WHERE d <= date '1998-12-01' - interval '90' day");
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinOp::LtEq, right, .. } => match *right {
                Expr::Binary { op: BinOp::Sub, left, right } => {
                    assert!(matches!(*left, Expr::Literal(Value::Date(_))));
                    assert!(matches!(
                        *right,
                        Expr::Interval { value: 90, unit: IntervalUnit::Day }
                    ));
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn between_like_in() {
        let s = sel("SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE '%green%' \
             AND c IN ('x','y') AND d NOT LIKE 'q%' AND e NOT IN (1,2)");
        let mut count_preds = 0;
        fn walk(e: &Expr, n: &mut usize) {
            match e {
                Expr::Binary { left, right, .. } => {
                    walk(left, n);
                    walk(right, n);
                }
                Expr::Between { .. } | Expr::Like { .. } | Expr::InList { .. } => *n += 1,
                _ => {}
            }
        }
        walk(&s.where_clause.unwrap(), &mut count_preds);
        assert_eq!(count_preds, 5);
    }

    #[test]
    fn case_when() {
        let s = sel("SELECT sum(CASE WHEN n = 'BRAZIL' THEN v ELSE 0 END) / sum(v) FROM t");
        assert!(
            matches!(&s.projections[0], SelectItem::Expr { expr, .. } if expr.contains_aggregate())
        );
    }

    #[test]
    fn exists_subquery() {
        let s = sel("SELECT * FROM orders o WHERE EXISTS (SELECT * FROM lineitem l \
             WHERE l.l_orderkey = o.o_orderkey)");
        assert!(matches!(s.where_clause.unwrap(), Expr::Exists { negated: false, .. }));
    }

    #[test]
    fn not_exists_parsed_via_not() {
        let s = sel("SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)");
        assert!(matches!(s.where_clause.unwrap(), Expr::Not(_)));
    }

    #[test]
    fn scalar_subquery() {
        let s = sel("SELECT * FROM partsupp WHERE ps_supplycost = \
             (SELECT min(ps_supplycost) FROM partsupp)");
        match s.where_clause.unwrap() {
            Expr::Binary { right, .. } => assert!(matches!(*right, Expr::ScalarSubquery(_))),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn joins_explicit_and_left() {
        let s = sel("SELECT * FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y");
        match &s.from[0] {
            TableRef::Join { kind: JoinKind::Left, left, .. } => {
                assert!(matches!(**left, TableRef::Join { kind: JoinKind::Inner, .. }));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comma_joins_and_aliases() {
        let s = sel("SELECT * FROM customer c, orders o, lineitem WHERE c.k = o.k");
        assert_eq!(s.from.len(), 3);
        assert!(matches!(&s.from[0], TableRef::Table { alias: Some(a), .. } if a == "c"));
        assert!(matches!(&s.from[2], TableRef::Table { alias: None, .. }));
    }

    #[test]
    fn derived_table() {
        let s = sel("SELECT x FROM (SELECT a AS x FROM t) AS sub WHERE x > 1");
        assert!(matches!(&s.from[0], TableRef::Subquery { alias, .. } if alias == "sub"));
    }

    #[test]
    fn extract_and_functions() {
        let s = sel("SELECT extract(year FROM o_orderdate), sqrt(i * 2) FROM t");
        assert!(matches!(
            &s.projections[0],
            SelectItem::Expr { expr: Expr::Extract { field: DateField::Year, .. }, .. }
        ));
        assert!(matches!(
            &s.projections[1],
            SelectItem::Expr { expr: Expr::Function { name, .. }, .. } if name == "sqrt"
        ));
    }

    #[test]
    fn create_table_types() {
        let stmt = parse_statement(
            "CREATE TABLE lineitem (l_orderkey INTEGER NOT NULL, l_quantity DECIMAL(15,2), \
             l_shipdate DATE, l_comment VARCHAR(44), l_flag BOOLEAN, big BIGINT, d DOUBLE PRECISION)",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "lineitem");
                assert_eq!(columns.len(), 7);
                assert!(!columns[0].nullable);
                assert_eq!(columns[1].ty, LogicalType::Decimal { width: 15, scale: 2 });
                assert_eq!(columns[6].ty, LogicalType::Double);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn insert_multi_row() {
        let stmt = parse_statement("INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)").unwrap();
        match stmt {
            Statement::Insert { columns, rows, .. } => {
                assert_eq!(columns.unwrap(), vec!["a", "b"]);
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Expr::Literal(Value::Null));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_delete() {
        assert!(matches!(
            parse_statement("DELETE FROM t WHERE a = 1").unwrap(),
            Statement::Delete { .. }
        ));
        match parse_statement("UPDATE t SET a = a + 1, b = 'x' WHERE c < 3").unwrap() {
            Statement::Update { sets, filter, .. } => {
                assert_eq!(sets.len(), 2);
                assert!(filter.is_some());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn order_index_statement() {
        match parse_statement("CREATE ORDER INDEX oi ON lineitem (l_shipdate)").unwrap() {
            Statement::CreateIndex { ordered, table, column, .. } => {
                assert!(ordered);
                assert_eq!(table, "lineitem");
                assert_eq!(column, "l_shipdate");
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("CREATE INDEX i ON t (c)").unwrap(),
            Statement::CreateIndex { ordered: false, .. }
        ));
    }

    #[test]
    fn transactions_and_explain() {
        assert_eq!(parse_statement("BEGIN TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("START TRANSACTION").unwrap(), Statement::Begin);
        assert_eq!(parse_statement("COMMIT").unwrap(), Statement::Commit);
        assert_eq!(parse_statement("ROLLBACK").unwrap(), Statement::Rollback);
        assert!(matches!(
            parse_statement("EXPLAIN SELECT 1 FROM t").unwrap(),
            Statement::Explain(_)
        ));
    }

    #[test]
    fn multi_statement_script() {
        let stmts =
            parse_statements("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn errors_report_offset() {
        match parse_statement("SELECT FROM t") {
            Err(MlError::Parse { offset, .. }) => assert_eq!(offset, 7),
            other => panic!("{other:?}"),
        }
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT * FROM t WHERE a NOT 5").is_err());
    }

    #[test]
    fn with_cte_parses() {
        let s = sel("WITH revenue (supplier_no, total_revenue) AS \
             (SELECT l_suppkey, sum(l_extendedprice) FROM lineitem GROUP BY l_suppkey) \
             SELECT supplier_no FROM revenue WHERE total_revenue > 100");
        assert_eq!(s.ctes.len(), 1);
        assert_eq!(s.ctes[0].name, "revenue");
        assert_eq!(
            s.ctes[0].columns.as_deref(),
            Some(&["supplier_no".to_string(), "total_revenue".to_string()][..])
        );
        assert_eq!(s.projections.len(), 1);
        // Two CTEs, the second referencing the first.
        let s2 = sel("WITH a AS (SELECT 1 AS x), b AS (SELECT x FROM a) SELECT x FROM b");
        assert_eq!(s2.ctes.len(), 2);
    }

    #[test]
    fn create_and_drop_view_parse() {
        match parse_statement(
            "CREATE VIEW revenue0 (supplier_no, total_revenue) AS \
             SELECT l_suppkey, sum(l_extendedprice) FROM lineitem GROUP BY l_suppkey",
        )
        .unwrap()
        {
            Statement::CreateView { name, columns, query } => {
                assert_eq!(name, "revenue0");
                assert_eq!(columns.unwrap().len(), 2);
                assert_eq!(query.group_by.len(), 1);
            }
            other => panic!("{other:?}"),
        }
        assert!(matches!(
            parse_statement("DROP VIEW revenue0").unwrap(),
            Statement::DropView { if_exists: false, .. }
        ));
        assert!(matches!(
            parse_statement("DROP VIEW IF EXISTS revenue0").unwrap(),
            Statement::DropView { if_exists: true, .. }
        ));
    }

    #[test]
    fn substring_from_for_parses() {
        let s = sel("SELECT substring(c_phone from 1 for 2) FROM customer");
        match &s.projections[0] {
            SelectItem::Expr { expr: Expr::Function { name, args }, .. } => {
                assert_eq!(name, "substring");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
        // FROM-only form (to end of string) and the comma form.
        let s2 = sel("SELECT substring(x from 3), substr(x, 1, 2) FROM t");
        match &s2.projections[0] {
            SelectItem::Expr { expr: Expr::Function { args, .. }, .. } => assert_eq!(args.len(), 2),
            other => panic!("{other:?}"),
        }
        match &s2.projections[1] {
            SelectItem::Expr { expr: Expr::Function { name, args }, .. } => {
                assert_eq!(name, "substring");
                assert_eq!(args.len(), 3);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn derived_table_column_aliases() {
        let s = sel("SELECT c_count, count(*) FROM (SELECT c_custkey, count(o_orderkey) \
             FROM customer GROUP BY c_custkey) AS c_orders (c_custkey, c_count) GROUP BY c_count");
        match &s.from[0] {
            TableRef::Subquery { alias, columns, .. } => {
                assert_eq!(alias, "c_orders");
                assert_eq!(
                    columns.as_deref(),
                    Some(&["c_custkey".to_string(), "c_count".to_string()][..])
                );
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_of_and_groups_parse() {
        // Q19's shape: three OR'd parenthesised AND groups over mixed
        // columns.
        let s = sel("SELECT sum(p) FROM part, lineitem WHERE \
             (p_partkey = l_partkey AND p_brand = 'Brand#12' AND l_quantity >= 1) \
             OR (p_partkey = l_partkey AND p_brand = 'Brand#23' AND l_quantity >= 10) \
             OR (p_partkey = l_partkey AND p_brand = 'Brand#34' AND l_quantity >= 20)");
        match s.where_clause.unwrap() {
            Expr::Binary { op: BinOp::Or, .. } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn tpch_q1_parses() {
        let q = "select l_returnflag, l_linestatus, sum(l_quantity) as sum_qty, \
            sum(l_extendedprice) as sum_base_price, \
            sum(l_extendedprice * (1 - l_discount)) as sum_disc_price, \
            sum(l_extendedprice * (1 - l_discount) * (1 + l_tax)) as sum_charge, \
            avg(l_quantity) as avg_qty, avg(l_extendedprice) as avg_price, \
            avg(l_discount) as avg_disc, count(*) as count_order \
            from lineitem where l_shipdate <= date '1998-12-01' - interval '90' day \
            group by l_returnflag, l_linestatus order by l_returnflag, l_linestatus";
        let s = sel(q);
        assert_eq!(s.projections.len(), 10);
        assert_eq!(s.group_by.len(), 2);
    }

    #[test]
    fn tpch_q8_style_nested_from_parses() {
        let q = "select o_year, sum(case when nation = 'BRAZIL' then volume else 0 end) / sum(volume) as mkt_share \
                 from (select extract(year from o_orderdate) as o_year, \
                       l_extendedprice * (1 - l_discount) as volume, n2.n_name as nation \
                       from part, supplier, lineitem, orders, customer, nation n1, nation n2, region \
                       where p_partkey = l_partkey and s_suppkey = l_suppkey) as all_nations \
                 group by o_year order by o_year";
        let s = sel(q);
        assert!(matches!(&s.from[0], TableRef::Subquery { alias, .. } if alias == "all_nations"));
    }
}
