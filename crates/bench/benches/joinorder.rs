//! Join-ordering benchmarks: cost-based DP enumeration over real column
//! statistics versus the greedy baseline.
//!
//! Axes per query: `dp` (DPsize enumeration) vs `greedy` (the connected
//! greedy fallback, `MONETLITE_JOINORDER=0`), each with real statistics
//! (`stats`) and without column statistics (`nostats` — the
//! pre-statistics constant-selectivity model). `greedy_nostats` is the
//! closest stand-in for the pre-statistics optimizer and the baseline
//! the acceptance criterion measures against.
//!
//! Shapes:
//! * `joinorder_star` — a fact table with four dimensions, two of them
//!   filtered; ordering decides whether the fact shrinks early or late.
//! * `joinorder_chain` — a four-relation chain whose selective link sits
//!   at the far end from the syntactically first table.
//! * `joinorder_tpch` — TPC-H Q5 / Q7 / Q8 / Q9 / Q21 at SF 0.05, the
//!   join-heavy queries the issue names.
//!
//! Run with `MONETLITE_BENCH_JSON=BENCH_joinorder.json cargo bench
//! --bench joinorder` to record results; CI runs `cargo bench --bench
//! joinorder -- --test` as a smoke check.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::ExecOptions;
use monetlite::opt::{OptFlags, StatsMode};
use monetlite_tpch::{generate, load_monet, queries};
use monetlite_types::ColumnBuffer;

fn exec_opts() -> ExecOptions {
    ExecOptions { threads: 1, vector_size: 64 * 1024, ..monetlite_bench::uncached_opts() }
}

const LEGS: [(&str, bool, StatsMode); 4] = [
    ("dp_stats", true, StatsMode::Real),
    ("dp_nostats", true, StatsMode::TableRowsOnly),
    ("greedy_stats", false, StatsMode::Real),
    ("greedy_nostats", false, StatsMode::TableRowsOnly),
];

fn connect(db: &monetlite::Database, dp: bool, mode: StatsMode) -> monetlite::Connection {
    let mut conn = db.connect();
    conn.set_exec_options(exec_opts());
    conn.set_opt_flags(OptFlags { join_dp: dp, ..OptFlags::default() });
    conn.set_stats_mode(mode);
    conn
}

fn bench_sql(c: &mut Criterion, group: &str, db: &monetlite::Database, cases: &[(&str, &str)]) {
    let mut grp = c.benchmark_group(group);
    grp.sample_size(10);
    for (case, sql) in cases {
        for (leg, dp, mode) in LEGS {
            let mut conn = connect(db, dp, mode);
            // Warm the statistics / index caches outside the timer.
            conn.query(sql).unwrap();
            grp.bench_function(format!("{case}_{leg}"), |b| b.iter(|| conn.query(sql).unwrap()));
        }
    }
    grp.finish();
}

/// Star: fact(600k) referencing dim_a(10k), dim_b(1k), dim_c(100,
/// filtered to ~2%), dim_d(10k wide-keyed, filtered to one value).
fn load_star() -> monetlite::Database {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.run_script(
        "CREATE TABLE fact (ka INT NOT NULL, kb INT NOT NULL, kc INT NOT NULL, kd INT NOT NULL, val INT NOT NULL);
         CREATE TABLE dim_a (id INT NOT NULL, attr INT NOT NULL);
         CREATE TABLE dim_b (id INT NOT NULL, attr INT NOT NULL);
         CREATE TABLE dim_c (id INT NOT NULL, attr INT NOT NULL);
         CREATE TABLE dim_d (id INT NOT NULL, attr INT NOT NULL);",
    )
    .unwrap();
    let n = 600_000;
    let scatter = |i: i32, m: i32| (i.wrapping_mul(0x9E37_79B9u32 as i32)).rem_euclid(m);
    conn.append(
        "fact",
        vec![
            ColumnBuffer::Int((0..n).map(|i| scatter(i, 10_000)).collect()),
            ColumnBuffer::Int((0..n).map(|i| scatter(i + 1, 1000)).collect()),
            ColumnBuffer::Int((0..n).map(|i| scatter(i + 2, 100)).collect()),
            ColumnBuffer::Int((0..n).map(|i| scatter(i + 3, 10_000)).collect()),
            ColumnBuffer::Int((0..n).map(|i| i % 97).collect()),
        ],
    )
    .unwrap();
    for (name, m, attr_mod) in [
        ("dim_a", 10_000, 1000),
        ("dim_b", 1000, 100),
        ("dim_c", 100, 50),
        ("dim_d", 10_000, 10_000),
    ] {
        conn.append(
            name,
            vec![
                ColumnBuffer::Int((0..m).collect()),
                ColumnBuffer::Int((0..m).map(|i| i % attr_mod).collect()),
            ],
        )
        .unwrap();
    }
    db
}

fn bench_star(c: &mut Criterion) {
    let db = load_star();
    bench_sql(
        c,
        "joinorder_star",
        &db,
        &[(
            "star4",
            "SELECT sum(fact.val) FROM fact, dim_a, dim_b, dim_c, dim_d \
             WHERE fact.ka = dim_a.id AND fact.kb = dim_b.id \
               AND fact.kc = dim_c.id AND fact.kd = dim_d.id \
               AND dim_c.attr = 7 AND dim_d.attr = 3",
        )],
    );
}

/// Chain: t1(200k) — t2(20k) — t3(2k) — t4(2k, filtered to one value);
/// the only selective predicate sits at the far end of the chain.
fn load_chain() -> monetlite::Database {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.run_script(
        "CREATE TABLE t1 (k INT NOT NULL, val INT NOT NULL);
         CREATE TABLE t2 (id INT NOT NULL, k INT NOT NULL);
         CREATE TABLE t3 (id INT NOT NULL, k INT NOT NULL);
         CREATE TABLE t4 (id INT NOT NULL, attr INT NOT NULL);",
    )
    .unwrap();
    let scatter = |i: i32, m: i32| (i.wrapping_mul(0x9E37_79B9u32 as i32)).rem_euclid(m);
    conn.append(
        "t1",
        vec![
            ColumnBuffer::Int((0..200_000).map(|i| scatter(i, 20_000)).collect()),
            ColumnBuffer::Int((0..200_000).map(|i| i % 89).collect()),
        ],
    )
    .unwrap();
    conn.append(
        "t2",
        vec![
            ColumnBuffer::Int((0..20_000).collect()),
            ColumnBuffer::Int((0..20_000).map(|i| scatter(i, 2000)).collect()),
        ],
    )
    .unwrap();
    conn.append(
        "t3",
        vec![
            ColumnBuffer::Int((0..2000).collect()),
            ColumnBuffer::Int((0..2000).map(|i| scatter(i, 2000)).collect()),
        ],
    )
    .unwrap();
    conn.append(
        "t4",
        vec![
            ColumnBuffer::Int((0..2000).collect()),
            ColumnBuffer::Int((0..2000).collect()), // unique attr: eq keeps 1 row
        ],
    )
    .unwrap();
    db
}

fn bench_chain(c: &mut Criterion) {
    let db = load_chain();
    bench_sql(
        c,
        "joinorder_chain",
        &db,
        &[(
            "chain4",
            "SELECT sum(t1.val) FROM t1, t2, t3, t4 \
             WHERE t1.k = t2.id AND t2.k = t3.id AND t3.k = t4.id \
               AND t4.attr = 42",
        )],
    );
}

fn bench_tpch(c: &mut Criterion) {
    let data = generate(0.05, 20260727);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    load_monet(&mut conn, &data).unwrap();
    let cases: Vec<(&str, &str)> = [(5, "q05"), (7, "q07"), (8, "q08"), (9, "q09"), (21, "q21")]
        .into_iter()
        .map(|(n, label)| (label, queries::sql(n)))
        .collect();
    bench_sql(c, "joinorder_tpch", &db, &cases);
}

criterion_group!(benches, bench_star, bench_chain, bench_tpch);
criterion_main!(benches);
