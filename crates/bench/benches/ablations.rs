//! Criterion benches for the DESIGN.md §4 ablations: imprints, automatic
//! hash indexes, order index, heap dedup, transfer modes.

use criterion::{criterion_group, criterion_main, Criterion};
use monetlite::exec::ExecOptions;
use monetlite::host::{HostFrame, TransferMode};
use monetlite_storage::heap::StringHeap;

fn bench_ablations(c: &mut Criterion) {
    let data = monetlite_tpch::generate(0.01, 1);
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    monetlite_tpch::load_monet(&mut conn, &data).unwrap();

    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    // Imprints on/off for a selective range count.
    let q = "SELECT count(*) FROM lineitem WHERE l_shipdate >= date '1998-06-01'";
    for (name, on) in [("imprints_on", true), ("imprints_off", false)] {
        conn.set_exec_options(ExecOptions {
            use_imprints: on,
            use_order_index: false,
            ..monetlite_bench::uncached_opts()
        });
        conn.query(q).unwrap(); // warm (index build)
        g.bench_function(name, |b| b.iter(|| conn.query(q).unwrap()));
    }

    // Automatic join hash index on/off.
    let qj = "SELECT count(*) FROM lineitem, orders WHERE l_orderkey = o_orderkey";
    for (name, on) in [("join_hash_index_on", true), ("join_hash_index_off", false)] {
        conn.set_exec_options(ExecOptions {
            use_hash_index: on,
            ..monetlite_bench::uncached_opts()
        });
        conn.query(qj).unwrap();
        g.bench_function(name, |b| b.iter(|| conn.query(qj).unwrap()));
    }

    // Transfer modes.
    conn.set_exec_options(monetlite_bench::uncached_opts());
    let r = conn.query("SELECT * FROM lineitem").unwrap();
    g.bench_function("export_zero_copy", |b| {
        b.iter(|| HostFrame::import(&r, TransferMode::ZeroCopy).stats.zero_copied)
    });
    g.bench_function("export_eager", |b| {
        b.iter(|| HostFrame::import(&r, TransferMode::Eager).stats.bytes_copied)
    });

    // Heap dedup.
    let values: Vec<String> = (0..100_000).map(|i| format!("v{}", i % 500)).collect();
    g.bench_function("heap_dedup_on", |b| {
        b.iter(|| {
            let mut h = StringHeap::new();
            for v in &values {
                h.add(v);
            }
            h.size_bytes()
        })
    });
    g.bench_function("heap_dedup_off", |b| {
        b.iter(|| {
            let mut h = StringHeap::with_dedup_limit(0);
            for v in &values {
                h.add(v);
            }
            h.size_bytes()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
