//! The paper's headline scenario: OLAP queries on TPC-H data in-process,
//! with EXPLAIN output showing the optimized plan and MAL program.
//!
//! ```sh
//! cargo run --release -p monetlite-examples --example tpch_analytics
//! ```

use monetlite::Database;
use monetlite_tpch::{generate, load_monet, queries};
use std::time::Instant;

fn main() -> monetlite::types::Result<()> {
    let sf = 0.01;
    println!("generating TPC-H data at SF {sf}...");
    let data = generate(sf, 42);
    println!("lineitem rows: {}", data.lineitem.rows());

    let db = Database::open_in_memory();
    let mut conn = db.connect();
    let t0 = Instant::now();
    load_monet(&mut conn, &data)?;
    println!("bulk append of all 8 tables: {:?}", t0.elapsed());

    for n in [1usize, 3, 6] {
        let sql = queries::sql(n);
        let t0 = Instant::now();
        let r = conn.query(sql)?;
        println!("\nQ{n}: {} rows in {:?}", r.nrows(), t0.elapsed());
        for i in 0..r.nrows().min(4) {
            println!("  {:?}", r.row(i));
        }
    }

    // Show the optimizer + MAL pipeline for Q6.
    let explain = conn.query(&format!("EXPLAIN {}", queries::sql(6)))?;
    println!("\n--- EXPLAIN Q6 ---");
    for i in 0..explain.nrows() {
        println!("{}", explain.value(i, 0));
    }
    Ok(())
}
