//! # monetlite-tpch
//!
//! The TPC-H substrate of the paper's §4.2 evaluation: a deterministic
//! `dbgen` equivalent ([`gen`]), the schema DDL and Q1–Q10 SQL
//! ([`queries`]), hand-optimised dataframe-library implementations of the
//! same queries ([`frames`]), and loaders into both database engines.

#![forbid(unsafe_code)]

pub mod frames;
pub mod gen;
pub mod queries;

pub use gen::{generate, Table, TpchData};

use monetlite_types::{Result, Value};

/// Load the dataset into a `monetlite` connection through the bulk append
/// API (`dbWriteTable`'s fast path).
pub fn load_monet(conn: &mut monetlite::Connection, data: &TpchData) -> Result<()> {
    conn.run_script(queries::DDL)?;
    for t in data.tables() {
        conn.append(t.name, t.cols.clone())?;
    }
    Ok(())
}

/// Load the dataset into a row store through its programmatic insert path
/// (rows materialised one at a time — the row-store ingest cost).
pub fn load_rowdb(db: &monetlite_rowstore::RowDb, data: &TpchData) -> Result<()> {
    db.run_script(queries::DDL)?;
    for t in data.tables() {
        let rows: Vec<Vec<Value>> =
            (0..t.rows()).map(|r| t.cols.iter().map(|c| c.get(r)).collect()).collect();
        db.insert_rows(t.name, rows)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loads_into_both_engines_and_counts_agree() {
        let data = generate(0.001, 99);
        let db = monetlite::Database::open_in_memory();
        let mut conn = db.connect();
        load_monet(&mut conn, &data).unwrap();
        let rdb = monetlite_rowstore::RowDb::in_memory();
        load_rowdb(&rdb, &data).unwrap();
        for t in data.tables() {
            let q = format!("SELECT count(*) FROM {}", t.name);
            let m = conn.query(&q).unwrap().value(0, 0);
            let r = rdb.query(&q).unwrap().rows[0][0].clone();
            assert_eq!(m, Value::Bigint(t.rows() as i64), "{} monet", t.name);
            assert_eq!(r, Value::Bigint(t.rows() as i64), "{} rowdb", t.name);
        }
    }
}
