//! Bound (typed, column-resolved) expressions.
//!
//! The binder lowers AST expressions into `BExpr`, resolving column names
//! to input positions and inserting explicit [`BExpr::Cast`] nodes so that
//! every binary operation executes over operands of one physical type —
//! the discipline that keeps the column-at-a-time kernels small and
//! branch-free.

use monetlite_types::{LogicalType, Value};
use std::fmt;

/// Comparison operators (post-binding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// Mirror the operator (for operand swaps).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "!=",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        };
        write!(f, "{s}")
    }
}

/// Arithmetic operators (post-binding; both operands share the result's
/// physical type except decimal multiplication, which tracks scales).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        };
        write!(f, "{s}")
    }
}

/// Scalar functions implemented by the engine. MonetDBLite famously
/// re-implemented `LIKE` to drop the PCRE dependency (paper §3.4); our
/// LIKE matcher lives in the kernels and is likewise dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarFunc {
    /// sqrt(x) -> double
    Sqrt,
    /// abs(x) -> same type
    Abs,
    /// floor(x) -> double
    Floor,
    /// ceil(x) -> double
    Ceil,
    /// upper(s)
    Upper,
    /// lower(s)
    Lower,
    /// length(s) -> int
    Length,
    /// substring(s, start1based, len)
    Substring,
    /// year(d) / month(d) / day(d) — EXTRACT lowers to these.
    Year,
    /// month part
    Month,
    /// day part
    Day,
    /// date + N days (interval arithmetic on a date column).
    AddDays,
    /// date + N months (clamping day-of-month).
    AddMonths,
    /// date + N years.
    AddYears,
}

impl fmt::Display for ScalarFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ScalarFunc::Sqrt => "sqrt",
            ScalarFunc::Abs => "abs",
            ScalarFunc::Floor => "floor",
            ScalarFunc::Ceil => "ceil",
            ScalarFunc::Upper => "upper",
            ScalarFunc::Lower => "lower",
            ScalarFunc::Length => "length",
            ScalarFunc::Substring => "substring",
            ScalarFunc::Year => "year",
            ScalarFunc::Month => "month",
            ScalarFunc::Day => "day",
            ScalarFunc::AddDays => "add_days",
            ScalarFunc::AddMonths => "add_months",
            ScalarFunc::AddYears => "add_years",
        };
        write!(f, "{s}")
    }
}

/// A bound expression over the input chunk's columns.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    /// Input column by position.
    ColRef {
        /// Position in the input chunk.
        idx: usize,
        /// Result type.
        ty: LogicalType,
    },
    /// Constant.
    Lit(Value),
    /// Plan-cache bind parameter: a literal slot whose *value* varies
    /// between executions of the same cached template. `value` holds the
    /// representative literal the template was first bound with (after
    /// any cast folding), so type derivation and selectivity estimation
    /// see a concrete value — but `is_const()` is false, which blocks
    /// every plan-time fold that would bake the representative into the
    /// plan. The executor never sees `Param`: the cache substitutes
    /// fresh literals (and re-folds) before execution.
    Param {
        /// 0-based slot in the template's bind vector.
        idx: usize,
        /// Representative literal (current type carrier).
        value: Value,
    },
    /// Cast to a target type.
    Cast {
        /// Operand.
        input: Box<BExpr>,
        /// Target type.
        ty: LogicalType,
    },
    /// Same-type arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Box<BExpr>,
        /// Right operand.
        right: Box<BExpr>,
        /// Result type.
        ty: LogicalType,
    },
    /// Same-type comparison, yields BOOLEAN.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<BExpr>,
        /// Right operand.
        right: Box<BExpr>,
    },
    /// Three-valued AND.
    And(Box<BExpr>, Box<BExpr>),
    /// Three-valued OR.
    Or(Box<BExpr>, Box<BExpr>),
    /// Three-valued NOT.
    Not(Box<BExpr>),
    /// IS NULL / IS NOT NULL (never yields NULL).
    IsNull {
        /// Operand.
        input: Box<BExpr>,
        /// IS NOT NULL.
        negated: bool,
    },
    /// LIKE with the dependency-free matcher.
    Like {
        /// String operand.
        input: Box<BExpr>,
        /// Pattern (`%`, `_` wildcards).
        pattern: String,
        /// NOT LIKE.
        negated: bool,
    },
    /// Searched CASE; all branch values share `ty`.
    Case {
        /// (condition, value) pairs.
        branches: Vec<(BExpr, BExpr)>,
        /// ELSE value (NULL when absent).
        else_expr: Option<Box<BExpr>>,
        /// Result type.
        ty: LogicalType,
    },
    /// Scalar function application.
    Func {
        /// Function.
        func: ScalarFunc,
        /// Arguments.
        args: Vec<BExpr>,
        /// Result type.
        ty: LogicalType,
    },
    /// Arithmetic negation.
    Neg {
        /// Operand.
        input: Box<BExpr>,
        /// Result type.
        ty: LogicalType,
    },
}

impl BExpr {
    /// The expression's result type.
    pub fn ty(&self) -> LogicalType {
        match self {
            BExpr::ColRef { ty, .. } => *ty,
            BExpr::Lit(v) => v.logical_type().unwrap_or(LogicalType::Int),
            BExpr::Param { value, .. } => value.logical_type().unwrap_or(LogicalType::Int),
            BExpr::Cast { ty, .. } => *ty,
            BExpr::Arith { ty, .. } => *ty,
            BExpr::Cmp { .. }
            | BExpr::And(..)
            | BExpr::Or(..)
            | BExpr::Not(..)
            | BExpr::IsNull { .. }
            | BExpr::Like { .. } => LogicalType::Bool,
            BExpr::Case { ty, .. } => *ty,
            BExpr::Func { ty, .. } => *ty,
            BExpr::Neg { ty, .. } => *ty,
        }
    }

    /// True when the expression references no input columns (safe to fold
    /// to a constant).
    pub fn is_const(&self) -> bool {
        match self {
            BExpr::ColRef { .. } => false,
            BExpr::Lit(_) => true,
            // Not const: the value varies per execution, so no plan-time
            // fold may consume the representative.
            BExpr::Param { .. } => false,
            BExpr::Cast { input, .. } | BExpr::Not(input) | BExpr::Neg { input, .. } => {
                input.is_const()
            }
            BExpr::IsNull { input, .. } | BExpr::Like { input, .. } => input.is_const(),
            BExpr::Arith { left, right, .. } | BExpr::Cmp { left, right, .. } => {
                left.is_const() && right.is_const()
            }
            BExpr::And(a, b) | BExpr::Or(a, b) => a.is_const() && b.is_const(),
            BExpr::Case { branches, else_expr, .. } => {
                branches.iter().all(|(c, v)| c.is_const() && v.is_const())
                    && else_expr.as_ref().is_none_or(|e| e.is_const())
            }
            BExpr::Func { args, .. } => args.iter().all(|a| a.is_const()),
        }
    }

    /// Collect every referenced input column index.
    pub fn collect_cols(&self, out: &mut Vec<usize>) {
        match self {
            BExpr::ColRef { idx, .. } => out.push(*idx),
            BExpr::Lit(_) | BExpr::Param { .. } => {}
            BExpr::Cast { input, .. } | BExpr::Not(input) | BExpr::Neg { input, .. } => {
                input.collect_cols(out)
            }
            BExpr::IsNull { input, .. } | BExpr::Like { input, .. } => input.collect_cols(out),
            BExpr::Arith { left, right, .. } | BExpr::Cmp { left, right, .. } => {
                left.collect_cols(out);
                right.collect_cols(out);
            }
            BExpr::And(a, b) | BExpr::Or(a, b) => {
                a.collect_cols(out);
                b.collect_cols(out);
            }
            BExpr::Case { branches, else_expr, .. } => {
                for (c, v) in branches {
                    c.collect_cols(out);
                    v.collect_cols(out);
                }
                if let Some(e) = else_expr {
                    e.collect_cols(out);
                }
            }
            BExpr::Func { args, .. } => {
                for a in args {
                    a.collect_cols(out);
                }
            }
        }
    }

    /// True when the expression (recursively) contains a plan-cache
    /// parameter slot.
    pub fn has_param(&self) -> bool {
        match self {
            BExpr::Param { .. } => true,
            BExpr::ColRef { .. } | BExpr::Lit(_) => false,
            BExpr::Cast { input, .. } | BExpr::Not(input) | BExpr::Neg { input, .. } => {
                input.has_param()
            }
            BExpr::IsNull { input, .. } | BExpr::Like { input, .. } => input.has_param(),
            BExpr::Arith { left, right, .. } | BExpr::Cmp { left, right, .. } => {
                left.has_param() || right.has_param()
            }
            BExpr::And(a, b) | BExpr::Or(a, b) => a.has_param() || b.has_param(),
            BExpr::Case { branches, else_expr, .. } => {
                branches.iter().any(|(c, v)| c.has_param() || v.has_param())
                    || else_expr.as_ref().is_some_and(|e| e.has_param())
            }
            BExpr::Func { args, .. } => args.iter().any(|a| a.has_param()),
        }
    }

    /// Replace every parameter slot with a literal via `value_of` — with
    /// the representative value for cost estimation (so a template plan
    /// gets the same join order as its literal-bound twin), or with the
    /// fresh bind values when the cache replays a template.
    pub fn resolve_params(&self, value_of: &dyn Fn(usize, &Value) -> Value) -> BExpr {
        match self {
            BExpr::Param { idx, value } => BExpr::Lit(value_of(*idx, value)),
            BExpr::ColRef { .. } | BExpr::Lit(_) => self.clone(),
            BExpr::Cast { input, ty } => {
                BExpr::Cast { input: Box::new(input.resolve_params(value_of)), ty: *ty }
            }
            BExpr::Arith { op, left, right, ty } => BExpr::Arith {
                op: *op,
                left: Box::new(left.resolve_params(value_of)),
                right: Box::new(right.resolve_params(value_of)),
                ty: *ty,
            },
            BExpr::Cmp { op, left, right } => BExpr::Cmp {
                op: *op,
                left: Box::new(left.resolve_params(value_of)),
                right: Box::new(right.resolve_params(value_of)),
            },
            BExpr::And(a, b) => BExpr::And(
                Box::new(a.resolve_params(value_of)),
                Box::new(b.resolve_params(value_of)),
            ),
            BExpr::Or(a, b) => BExpr::Or(
                Box::new(a.resolve_params(value_of)),
                Box::new(b.resolve_params(value_of)),
            ),
            BExpr::Not(a) => BExpr::Not(Box::new(a.resolve_params(value_of))),
            BExpr::IsNull { input, negated } => {
                BExpr::IsNull { input: Box::new(input.resolve_params(value_of)), negated: *negated }
            }
            BExpr::Like { input, pattern, negated } => BExpr::Like {
                input: Box::new(input.resolve_params(value_of)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            BExpr::Case { branches, else_expr, ty } => BExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.resolve_params(value_of), v.resolve_params(value_of)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.resolve_params(value_of))),
                ty: *ty,
            },
            BExpr::Func { func, args, ty } => BExpr::Func {
                func: *func,
                args: args.iter().map(|a| a.resolve_params(value_of)).collect(),
                ty: *ty,
            },
            BExpr::Neg { input, ty } => {
                BExpr::Neg { input: Box::new(input.resolve_params(value_of)), ty: *ty }
            }
        }
    }

    /// Rewrite every column reference through `map` (old index → new).
    /// Used by projection pushdown and join-side splitting.
    pub fn remap_cols(&self, map: &dyn Fn(usize) -> usize) -> BExpr {
        match self {
            BExpr::ColRef { idx, ty } => BExpr::ColRef { idx: map(*idx), ty: *ty },
            BExpr::Lit(v) => BExpr::Lit(v.clone()),
            BExpr::Param { idx, value } => BExpr::Param { idx: *idx, value: value.clone() },
            BExpr::Cast { input, ty } => {
                BExpr::Cast { input: Box::new(input.remap_cols(map)), ty: *ty }
            }
            BExpr::Arith { op, left, right, ty } => BExpr::Arith {
                op: *op,
                left: Box::new(left.remap_cols(map)),
                right: Box::new(right.remap_cols(map)),
                ty: *ty,
            },
            BExpr::Cmp { op, left, right } => BExpr::Cmp {
                op: *op,
                left: Box::new(left.remap_cols(map)),
                right: Box::new(right.remap_cols(map)),
            },
            BExpr::And(a, b) => {
                BExpr::And(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map)))
            }
            BExpr::Or(a, b) => BExpr::Or(Box::new(a.remap_cols(map)), Box::new(b.remap_cols(map))),
            BExpr::Not(a) => BExpr::Not(Box::new(a.remap_cols(map))),
            BExpr::IsNull { input, negated } => {
                BExpr::IsNull { input: Box::new(input.remap_cols(map)), negated: *negated }
            }
            BExpr::Like { input, pattern, negated } => BExpr::Like {
                input: Box::new(input.remap_cols(map)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            BExpr::Case { branches, else_expr, ty } => BExpr::Case {
                branches: branches
                    .iter()
                    .map(|(c, v)| (c.remap_cols(map), v.remap_cols(map)))
                    .collect(),
                else_expr: else_expr.as_ref().map(|e| Box::new(e.remap_cols(map))),
                ty: *ty,
            },
            BExpr::Func { func, args, ty } => BExpr::Func {
                func: *func,
                args: args.iter().map(|a| a.remap_cols(map)).collect(),
                ty: *ty,
            },
            BExpr::Neg { input, ty } => {
                BExpr::Neg { input: Box::new(input.remap_cols(map)), ty: *ty }
            }
        }
    }
}

impl fmt::Display for BExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BExpr::ColRef { idx, .. } => write!(f, "#{idx}"),
            BExpr::Lit(v) => match v {
                Value::Str(s) => write!(f, "'{}'", s.replace('\'', "''")),
                other => write!(f, "{other}"),
            },
            BExpr::Param { idx, .. } => write!(f, "?{idx}"),
            BExpr::Cast { input, ty } => write!(f, "cast({input} as {ty})"),
            BExpr::Arith { op, left, right, .. } => write!(f, "({left} {op} {right})"),
            BExpr::Cmp { op, left, right } => write!(f, "({left} {op} {right})"),
            BExpr::And(a, b) => write!(f, "({a} and {b})"),
            BExpr::Or(a, b) => write!(f, "({a} or {b})"),
            BExpr::Not(a) => write!(f, "(not {a})"),
            BExpr::IsNull { input, negated } => {
                write!(f, "({input} is {}null)", if *negated { "not " } else { "" })
            }
            BExpr::Like { input, pattern, negated } => {
                write!(f, "({input} {}like '{pattern}')", if *negated { "not " } else { "" })
            }
            BExpr::Case { branches, else_expr, .. } => {
                write!(f, "case")?;
                for (c, v) in branches {
                    write!(f, " when {c} then {v}")?;
                }
                if let Some(e) = else_expr {
                    write!(f, " else {e}")?;
                }
                write!(f, " end")
            }
            BExpr::Func { func, args, .. } => {
                write!(f, "{func}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            BExpr::Neg { input, .. } => write!(f, "(-{input})"),
        }
    }
}

/// Aggregate functions at the plan level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PAggFunc {
    /// COUNT(expr) — non-null count; arg None means COUNT(*).
    Count,
    /// SUM
    Sum,
    /// AVG (always DOUBLE output)
    Avg,
    /// MIN
    Min,
    /// MAX
    Max,
    /// MEDIAN (always DOUBLE output; the blocking operator of Figure 2)
    Median,
}

impl fmt::Display for PAggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PAggFunc::Count => "count",
            PAggFunc::Sum => "sum",
            PAggFunc::Avg => "avg",
            PAggFunc::Min => "min",
            PAggFunc::Max => "max",
            PAggFunc::Median => "median",
        };
        write!(f, "{s}")
    }
}

/// One aggregate computation in an Aggregate plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggSpec {
    /// Function.
    pub func: PAggFunc,
    /// Argument over the aggregate input (None = COUNT(*)).
    pub arg: Option<BExpr>,
    /// DISTINCT modifier.
    pub distinct: bool,
    /// Output type.
    pub ty: LogicalType,
}

impl fmt::Display for AggSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.arg {
            None => write!(f, "{}(*)", self.func),
            Some(a) => {
                write!(f, "{}({}{})", self.func, if self.distinct { "distinct " } else { "" }, a)
            }
        }
    }
}

/// The output type of an aggregate over an input type.
pub fn agg_output_type(func: PAggFunc, input: Option<LogicalType>) -> LogicalType {
    match func {
        PAggFunc::Count => LogicalType::Bigint,
        PAggFunc::Avg | PAggFunc::Median => LogicalType::Double,
        PAggFunc::Sum => match input {
            Some(LogicalType::Int) | Some(LogicalType::Bigint) => LogicalType::Bigint,
            Some(LogicalType::Decimal { scale, .. }) => LogicalType::Decimal { width: 18, scale },
            _ => LogicalType::Double,
        },
        PAggFunc::Min | PAggFunc::Max => input.unwrap_or(LogicalType::Int),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_propagation() {
        let c = BExpr::ColRef { idx: 0, ty: LogicalType::Int };
        assert_eq!(c.ty(), LogicalType::Int);
        let cmp = BExpr::Cmp {
            op: CmpOp::Lt,
            left: Box::new(c.clone()),
            right: Box::new(BExpr::Lit(Value::Int(3))),
        };
        assert_eq!(cmp.ty(), LogicalType::Bool);
    }

    #[test]
    fn const_detection() {
        assert!(BExpr::Lit(Value::Int(1)).is_const());
        let e = BExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(BExpr::Lit(Value::Int(1))),
            right: Box::new(BExpr::Lit(Value::Int(2))),
            ty: LogicalType::Int,
        };
        assert!(e.is_const());
        let e2 = BExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
            right: Box::new(BExpr::Lit(Value::Int(2))),
            ty: LogicalType::Int,
        };
        assert!(!e2.is_const());
    }

    #[test]
    fn remap_and_collect() {
        let e = BExpr::Arith {
            op: ArithOp::Mul,
            left: Box::new(BExpr::ColRef { idx: 2, ty: LogicalType::Int }),
            right: Box::new(BExpr::ColRef { idx: 5, ty: LogicalType::Int }),
            ty: LogicalType::Int,
        };
        let mut cols = Vec::new();
        e.collect_cols(&mut cols);
        assert_eq!(cols, vec![2, 5]);
        let r = e.remap_cols(&|i| i - 2);
        let mut cols2 = Vec::new();
        r.collect_cols(&mut cols2);
        assert_eq!(cols2, vec![0, 3]);
    }

    #[test]
    fn display_reads_like_mal() {
        let e = BExpr::Cmp {
            op: CmpOp::LtEq,
            left: Box::new(BExpr::ColRef { idx: 1, ty: LogicalType::Date }),
            right: Box::new(BExpr::Lit(Value::Int(10_000))),
        };
        assert_eq!(e.to_string(), "(#1 <= 10000)");
    }

    #[test]
    fn agg_output_types() {
        assert_eq!(agg_output_type(PAggFunc::Count, None), LogicalType::Bigint);
        assert_eq!(agg_output_type(PAggFunc::Sum, Some(LogicalType::Int)), LogicalType::Bigint);
        assert_eq!(
            agg_output_type(PAggFunc::Sum, Some(LogicalType::Decimal { width: 15, scale: 2 })),
            LogicalType::Decimal { width: 18, scale: 2 }
        );
        assert_eq!(agg_output_type(PAggFunc::Avg, Some(LogicalType::Int)), LogicalType::Double);
        assert_eq!(
            agg_output_type(PAggFunc::Min, Some(LogicalType::Varchar)),
            LogicalType::Varchar
        );
    }
}
