//! The streaming vectorized execution engine.
//!
//! Where [`crate::exec`] reproduces the paper's operator-at-a-time model —
//! every node materialises its full output before the parent runs — this
//! module executes plans as **pipelines over fixed-size vectors**
//! (~64K rows, [`ExecOptions::vector_size`]), the chunk-at-a-time design
//! of MonetDBLite's successor lineage (DuckDB; see PAPERS.md).
//!
//! A plan tree is broken at **pipeline breakers** — operators that must
//! see their whole input before producing output: hash-join *build*,
//! aggregation, sort/top-n, distinct, and limit's final assembly. The
//! non-breaking spine between breakers (scan → filter → project → probe)
//! becomes one [`Pipeline`]: its source rows are carved into **morsels**
//! of one vector each, and a shared atomic cursor hands morsels to worker
//! threads (morsel-driven parallelism). Each worker pushes its vector
//! through the operator chain and folds the result into a thread-local
//! partial sink state; partials merge once all morsels are drained.
//!
//! Compared to the materialized engine's mitosis (which parallelises only
//! a select/project/decomposable-global-aggregate prefix), morsel
//! parallelism here covers whole query shapes: parallel scans feed
//! per-thread **partial hash aggregation** with a mapped merge
//! ([`GroupTable`] + [`AggState::merge_mapped`]), parallel **hash-join
//! probes** over a build table constructed once, and order-preserving
//! parallel collection for sort/top-n/limit/distinct.
//!
//! Both engines produce identical results; `ExecOptions::mode` selects
//! between them and the parity suites assert agreement.

use crate::agg::{hash_group, AggState, GroupTable};
use crate::exec::{
    bare_scan_hash_entry, exec_scan, exec_values, project_cols, Chunk, ExecContext, ExecOptions,
};
use crate::expr::{AggSpec, BExpr};
use crate::join::{build_hash_map, probe_hash, probe_index};
use crate::kernels::{bool_to_sel, eval};
use crate::plan::{OutCol, PJoinKind, Plan};
use crate::rows::take_padded;
use crate::sort::{sort_perm, topn_perm};
use monetlite_storage::index::HashIndex;
use monetlite_storage::Bat;
use monetlite_types::{MlError, Result};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Pipeline decomposition
// ---------------------------------------------------------------------------

/// Where a pipeline's vectors come from.
enum Source<'p> {
    /// A base-table scan (filters applied per morsel; a single-morsel scan
    /// keeps the index-assisted, zero-copy whole-table path).
    Table { table: &'p str, projected: &'p [usize], filters: &'p [BExpr], rows: usize },
    /// A materialised intermediate (a breaker's output), sliced into
    /// vectors.
    Mem(Chunk),
}

impl Source<'_> {
    fn rows(&self) -> usize {
        match self {
            Source::Table { rows, .. } => *rows,
            Source::Mem(c) => c.rows,
        }
    }

    fn fetch(&self, ctx: &ExecContext, lo: usize, hi: usize, whole: bool) -> Result<Chunk> {
        match self {
            Source::Table { table, projected, filters, .. } => {
                // A morsel covering the whole table scans unranged, which
                // preserves imprint/order-index selection and zero-copy
                // column sharing.
                let range = if whole { None } else { Some((lo as u32, hi as u32)) };
                exec_scan(table, projected, filters, ctx, range)
            }
            Source::Mem(c) => Ok(c.slice(lo, hi)),
        }
    }
}

/// The build side of a streaming hash-join probe.
enum Build {
    /// Transient table built from the build pipeline's output.
    Transient(HashMap<u64, Vec<u32>>),
    /// The automatically maintained per-column hash index of a bare
    /// persistent build column (paper §3.1) — the build phase disappears.
    Index(Arc<HashIndex>),
}

/// A non-breaking operator applied to each vector in turn.
enum PipeOp<'p> {
    /// σ: evaluate the predicate, keep matching rows.
    Filter(&'p BExpr),
    /// π: compute output expressions (CSE + shared bare columns).
    Project(&'p [BExpr]),
    /// Hash-join probe against a completed build side.
    Probe {
        kind: PJoinKind,
        left_keys: &'p [BExpr],
        residual: Option<&'p BExpr>,
        /// The fully materialised build-side chunk.
        build_chunk: Chunk,
        /// Evaluated build-side key columns (aliases of `build_chunk`
        /// columns when the keys are bare references).
        build_keys: Vec<Arc<Bat>>,
        build: Build,
    },
}

/// A streaming pipeline: source rows flow through `ops` one vector at a
/// time into whatever sink the driving operator installs.
struct Pipeline<'p> {
    source: Source<'p>,
    ops: Vec<PipeOp<'p>>,
}

/// Break `plan`'s non-breaking spine into a pipeline. Breaker children
/// (join build sides, aggregate/sort/... inputs of nested breakers) are
/// executed to completion recursively.
fn decompose<'p>(plan: &'p Plan, ctx: &ExecContext) -> Result<Pipeline<'p>> {
    match plan {
        Plan::Scan { table, projected, filters, .. } => {
            let meta = ctx.tables.table_meta(table)?;
            Ok(Pipeline {
                source: Source::Table { table, projected, filters, rows: meta.data.rows },
                ops: Vec::new(),
            })
        }
        Plan::Filter { input, pred } => {
            let mut p = decompose(input, ctx)?;
            p.ops.push(PipeOp::Filter(pred));
            Ok(p)
        }
        Plan::Project { input, exprs, .. } => {
            let mut p = decompose(input, ctx)?;
            p.ops.push(PipeOp::Project(exprs));
            Ok(p)
        }
        Plan::Join { left, right, kind, left_keys, right_keys, residual, .. } => {
            if left_keys.is_empty() && matches!(kind, PJoinKind::Semi | PJoinKind::Anti) {
                return Err(MlError::Execution("semi/anti join requires keys".into()));
            }
            let mut p = decompose(left, ctx)?;
            // Pipeline breaker: the build side runs to completion first.
            let build_chunk = execute_streaming(right, ctx)?;
            ctx.check_deadline()?;
            // eval_shared: bare-column keys alias the build chunk's
            // columns instead of copying them.
            let build_keys: Vec<Arc<Bat>> = right_keys
                .iter()
                .map(|k| crate::kernels::eval_shared(k, &build_chunk.cols, build_chunk.rows))
                .collect::<Result<_>>()?;
            let build = if right_keys.len() == 1 && ctx.opts.use_hash_index {
                match bare_scan_hash_entry(right, right_keys, ctx) {
                    Some(entry) => {
                        ctx.counters.bump(&ctx.counters.hash_index_joins);
                        Build::Index(entry.hash_index()?)
                    }
                    None => Build::Transient(build_hash_map(
                        &build_keys.iter().map(|a| &**a).collect::<Vec<_>>(),
                    )),
                }
            } else {
                Build::Transient(build_hash_map(
                    &build_keys.iter().map(|a| &**a).collect::<Vec<_>>(),
                ))
            };
            p.ops.push(PipeOp::Probe {
                kind: *kind,
                left_keys,
                residual: residual.as_ref(),
                build_chunk,
                build_keys,
                build,
            });
            Ok(p)
        }
        // Any other node is a breaker: run it, stream its output.
        other => {
            debug_assert!(
                other.is_pipeline_breaker() || matches!(other, Plan::Values { .. }),
                "non-breaker {other:?} fell out of the pipeline spine"
            );
            let chunk = execute_streaming(other, ctx)?;
            Ok(Pipeline { source: Source::Mem(chunk), ops: Vec::new() })
        }
    }
}

// ---------------------------------------------------------------------------
// Morsel driver
// ---------------------------------------------------------------------------

/// Drive a pipeline morsel-by-morsel. Each worker owns a partial sink
/// state created by `new_partial`; `consume(partial, morsel_id, vector)`
/// folds one processed vector in and may return `Ok(false)` to stop all
/// workers (limit early-exit). Returns every worker's partial.
fn drive<'p, P, NF, CF>(
    pipe: &Pipeline<'p>,
    ctx: &ExecContext,
    new_partial: NF,
    consume: CF,
) -> Result<Vec<P>>
where
    P: Send,
    NF: Fn() -> P + Sync,
    CF: Fn(&mut P, usize, Chunk) -> Result<bool> + Sync,
{
    let rows = pipe.source.rows();
    let vs = ctx.opts.vector_size.max(1);
    let n_morsels = rows.div_ceil(vs);
    ctx.counters.bump(&ctx.counters.pipelines);
    if n_morsels == 0 {
        return Ok(Vec::new());
    }
    let threads = ctx.opts.threads.max(1).min(n_morsels);
    let cursor = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);

    let worker = |part: &mut P| -> Result<()> {
        loop {
            let m = cursor.fetch_add(1, Ordering::Relaxed);
            if m >= n_morsels || stop.load(Ordering::Relaxed) {
                return Ok(());
            }
            // Counts morsels actually dispatched — early exit (limit)
            // leaves the tail unscanned and uncounted.
            ctx.counters.bump(&ctx.counters.morsels);
            ctx.check_deadline()?;
            let (lo, hi) = (m * vs, ((m + 1) * vs).min(rows));
            let chunk = pipe.source.fetch(ctx, lo, hi, n_morsels == 1)?;
            ctx.counters.bump(&ctx.counters.vectors);
            let chunk = apply_ops(chunk, &pipe.ops, ctx)?;
            if !consume(part, m, chunk)? {
                stop.store(true, Ordering::Relaxed);
                return Ok(());
            }
        }
    };

    if threads == 1 {
        // Sequential fast path: no thread spawn, deterministic morsel
        // order (streaming single-threaded results match the materialized
        // engine row-for-row).
        let mut part = new_partial();
        worker(&mut part)?;
        return Ok(vec![part]);
    }
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| -> Result<P> {
                    let mut part = new_partial();
                    match worker(&mut part) {
                        Ok(()) => Ok(part),
                        Err(e) => {
                            // Wake the other workers up so the error
                            // surfaces promptly.
                            stop.store(true, Ordering::Relaxed);
                            Err(e)
                        }
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("pipeline worker panicked")).collect()
    })
}

/// Push one vector through the operator chain.
fn apply_ops(mut chunk: Chunk, ops: &[PipeOp], _ctx: &ExecContext) -> Result<Chunk> {
    for op in ops {
        match op {
            PipeOp::Filter(pred) => {
                let mask = eval(pred, &chunk.cols, chunk.rows)?;
                let sel = bool_to_sel(&mask)?;
                chunk = chunk.take(&sel);
            }
            PipeOp::Project(exprs) => {
                chunk = Chunk { cols: project_cols(exprs, &chunk)?, rows: chunk.rows };
            }
            PipeOp::Probe { kind, left_keys, residual, build_chunk, build_keys, build } => {
                let sel = if *kind == PJoinKind::Cross || left_keys.is_empty() {
                    crate::join::cross_join(chunk.rows, build_chunk.rows)
                } else {
                    // eval_shared: bare-column probe keys alias the
                    // vector's columns (no per-vector key copy).
                    let lkey_bats: Vec<Arc<Bat>> = left_keys
                        .iter()
                        .map(|k| crate::kernels::eval_shared(k, &chunk.cols, chunk.rows))
                        .collect::<Result<_>>()?;
                    let lrefs: Vec<&Bat> = lkey_bats.iter().map(|a| &**a).collect();
                    let rrefs: Vec<&Bat> = build_keys.iter().map(|a| &**a).collect();
                    match build {
                        Build::Transient(map) => probe_hash(&lrefs, &rrefs, map, *kind),
                        Build::Index(idx) => probe_index(&lrefs, &rrefs, idx, *kind),
                    }
                };
                let semi = matches!(kind, PJoinKind::Semi | PJoinKind::Anti);
                let mut cols: Vec<Arc<Bat>> = Vec::with_capacity(
                    chunk.cols.len() + if semi { 0 } else { build_chunk.cols.len() },
                );
                for c in &chunk.cols {
                    cols.push(Arc::new(c.take(&sel.lsel)));
                }
                if !semi {
                    for c in &build_chunk.cols {
                        cols.push(Arc::new(take_padded(c, &sel.rsel)));
                    }
                }
                chunk = Chunk { cols, rows: sel.lsel.len() };
                if let Some(res) = residual {
                    let mask = eval(res, &chunk.cols, chunk.rows)?;
                    let keep = bool_to_sel(&mask)?;
                    chunk = chunk.take(&keep);
                }
            }
        }
    }
    Ok(chunk)
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Order-preserving collection: per-morsel chunks packed in morsel order.
fn collect_ordered(parts: Vec<Vec<(usize, Chunk)>>, schema: &[OutCol]) -> Result<Chunk> {
    let mut all: Vec<(usize, Chunk)> = parts.into_iter().flatten().collect();
    if all.is_empty() {
        return Ok(Chunk::empty(schema));
    }
    all.sort_by_key(|(m, _)| *m);
    Chunk::pack(all.into_iter().map(|(_, c)| c).collect())
}

/// Run a non-breaking plan spine to a fully collected chunk.
fn collect(plan: &Plan, ctx: &ExecContext) -> Result<Chunk> {
    let pipe = decompose(plan, ctx)?;
    // Pass-through pipelines (no operators, nothing to filter) need no
    // morselization: hand the source back whole. For a filterless table
    // scan this preserves the zero-copy Arc-shared column path; packing
    // per-morsel slices would copy every column twice.
    if pipe.ops.is_empty() {
        let passthrough = match &pipe.source {
            Source::Mem(_) => true,
            Source::Table { filters, .. } => filters.is_empty(),
        };
        if passthrough {
            ctx.counters.bump(&ctx.counters.pipelines);
            ctx.counters.bump(&ctx.counters.morsels);
            ctx.counters.bump(&ctx.counters.vectors);
            let rows = pipe.source.rows();
            return match pipe.source {
                Source::Mem(c) => Ok(c),
                table => table.fetch(ctx, 0, rows, true),
            };
        }
    }
    let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
        if c.rows > 0 {
            p.push((m, c));
        }
        Ok(true)
    })?;
    collect_ordered(parts, plan.schema())
}

/// Per-thread partial state of morsel-parallel (grouped) aggregation.
struct AggPartial {
    /// Group interning table (None for the global single group).
    table: Option<GroupTable>,
    states: Vec<AggState>,
}

fn new_agg_partial(groups: &[BExpr], aggs: &[AggSpec]) -> Result<AggPartial> {
    let table = if groups.is_empty() {
        None
    } else {
        Some(GroupTable::new(&groups.iter().map(|g| g.ty()).collect::<Vec<_>>()))
    };
    let n0 = if groups.is_empty() { 1 } else { 0 };
    let states = aggs
        .iter()
        .map(|s| AggState::new(s.func, s.arg.as_ref().map(|a| a.ty()), s.distinct, n0))
        .collect::<Result<_>>()?;
    Ok(AggPartial { table, states })
}

fn agg_consume(
    part: &mut AggPartial,
    chunk: &Chunk,
    groups: &[BExpr],
    aggs: &[AggSpec],
) -> Result<()> {
    if chunk.rows == 0 {
        return Ok(());
    }
    let gids: Vec<u32> = match &mut part.table {
        None => vec![0; chunk.rows],
        Some(table) => {
            let key_bats: Vec<Bat> =
                groups.iter().map(|g| eval(g, &chunk.cols, chunk.rows)).collect::<Result<_>>()?;
            let refs: Vec<&Bat> = key_bats.iter().collect();
            let gids = table.intern_block(&refs, chunk.rows)?;
            let n = table.n_groups();
            for st in &mut part.states {
                st.ensure_groups(n);
            }
            gids
        }
    };
    for (st, spec) in part.states.iter_mut().zip(aggs) {
        let arg = spec.arg.as_ref().map(|a| eval(a, &chunk.cols, chunk.rows)).transpose()?;
        st.update(arg.as_ref(), &gids)?;
    }
    Ok(())
}

/// Merge `other` into `acc`, remapping other's dense group ids into acc's.
fn agg_merge(mut acc: AggPartial, other: AggPartial) -> Result<AggPartial> {
    match (&mut acc.table, other.table) {
        (None, None) => {
            for (a, b) in acc.states.iter_mut().zip(other.states) {
                a.merge(b)?;
            }
        }
        (Some(at), Some(bt)) => {
            let refs: Vec<&Bat> = bt.keys().iter().collect();
            let map = at.intern_block(&refs, bt.n_groups())?;
            let n = at.n_groups();
            for a in acc.states.iter_mut() {
                a.ensure_groups(n);
            }
            for (a, b) in acc.states.iter_mut().zip(other.states) {
                a.merge_mapped(b, &map)?;
            }
        }
        _ => return Err(MlError::Execution("mismatched aggregation partials".into())),
    }
    Ok(acc)
}

fn run_aggregate(
    input: &Plan,
    groups: &[BExpr],
    aggs: &[AggSpec],
    schema: &[OutCol],
    ctx: &ExecContext,
) -> Result<Chunk> {
    let pipe = decompose(input, ctx)?;
    // Each worker's closure may fail on first use; surface errors from
    // partial construction through a per-worker Result partial.
    let parts: Vec<Result<AggPartial>> = drive(
        &pipe,
        ctx,
        || new_agg_partial(groups, aggs),
        |p: &mut Result<AggPartial>, _m, c| {
            if let Ok(part) = p.as_mut() {
                if let Err(e) = agg_consume(part, &c, groups, aggs) {
                    *p = Err(e);
                    return Ok(false);
                }
            }
            Ok(true)
        },
    )?;
    let mut merged: Option<AggPartial> = None;
    for p in parts {
        let p = p?;
        merged = Some(match merged {
            None => p,
            Some(acc) => agg_merge(acc, p)?,
        });
    }
    // Zero-morsel (empty source) aggregation still produces output: one
    // row globally, zero rows grouped.
    let merged = match merged {
        Some(m) => m,
        None => new_agg_partial(groups, aggs)?,
    };
    let (mut cols, rows): (Vec<Arc<Bat>>, usize) = match merged.table {
        None => (Vec::with_capacity(aggs.len()), 1),
        Some(table) => {
            let n = table.n_groups();
            let keys: Vec<Arc<Bat>> = table.into_keys().into_iter().map(Arc::new).collect();
            (keys, n)
        }
    };
    for (i, st) in merged.states.into_iter().enumerate() {
        let mut st = st;
        st.ensure_groups(rows.max(if groups.is_empty() { 1 } else { 0 }));
        cols.push(Arc::new(st.finish(schema[groups.len() + i].ty)?));
    }
    Ok(Chunk { cols, rows })
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Execute a plan with the streaming engine. Pipeline breakers run their
/// input pipelines to completion (morsel-parallel), then produce the
/// chunk the enclosing pipeline streams from.
pub fn execute_streaming(plan: &Plan, ctx: &ExecContext) -> Result<Chunk> {
    ctx.check_deadline()?;
    match plan {
        Plan::Aggregate { input, groups, aggs, schema } => {
            run_aggregate(input, groups, aggs, schema, ctx)
        }
        Plan::Sort { input, keys } => {
            let chunk = collect(input, ctx)?;
            ctx.check_deadline()?;
            let key_refs: Vec<(&Bat, bool)> =
                keys.iter().map(|&(c, d)| (&*chunk.cols[c], d)).collect();
            let perm = sort_perm(&key_refs, chunk.rows);
            Ok(chunk.take(&perm))
        }
        Plan::TopN { input, keys, n } => {
            let n = *n as usize;
            let pipe = decompose(input, ctx)?;
            // Per-morsel compaction: a row outside its own morsel's top-n
            // can never be in the global top-n (topn_perm is a total
            // order), so workers keep at most n rows per vector.
            let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
                if c.rows == 0 {
                    return Ok(true);
                }
                let compact = if c.rows > n {
                    let key_refs: Vec<(&Bat, bool)> =
                        keys.iter().map(|&(ci, d)| (&*c.cols[ci], d)).collect();
                    let perm = topn_perm(&key_refs, c.rows, n);
                    c.take(&perm)
                } else {
                    c
                };
                p.push((m, compact));
                Ok(true)
            })?;
            let packed = collect_ordered(parts, input.schema())?;
            ctx.check_deadline()?;
            let key_refs: Vec<(&Bat, bool)> =
                keys.iter().map(|&(c, d)| (&*packed.cols[c], d)).collect();
            let perm = topn_perm(&key_refs, packed.rows, n);
            Ok(packed.take(&perm))
        }
        Plan::Limit { input, n } => {
            let n = *n as usize;
            let pipe = decompose(input, ctx)?;
            // Early exit: once the completed morsels form a contiguous
            // prefix with >= n rows, no later morsel can contribute to
            // the first n rows in scan order — stop the scan.
            let done: Mutex<HashMap<usize, usize>> = Mutex::new(HashMap::new());
            let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
                let rows = c.rows;
                p.push((m, c));
                let mut map = done.lock().expect("limit tracker");
                map.insert(m, rows);
                let mut prefix = 0usize;
                let mut k = 0usize;
                while let Some(r) = map.get(&k) {
                    prefix += r;
                    if prefix >= n {
                        return Ok(false);
                    }
                    k += 1;
                }
                Ok(true)
            })?;
            let mut all: Vec<(usize, Chunk)> = parts.into_iter().flatten().collect();
            all.sort_by_key(|(m, _)| *m);
            let mut out: Vec<Chunk> = Vec::new();
            let mut taken = 0usize;
            for (_, c) in all {
                if taken >= n {
                    break;
                }
                let want = (n - taken).min(c.rows);
                taken += want;
                out.push(if want == c.rows { c } else { c.slice(0, want) });
            }
            if out.is_empty() {
                return Ok(Chunk::empty(input.schema()));
            }
            Chunk::pack(out)
        }
        Plan::Distinct { input } => {
            let pipe = decompose(input, ctx)?;
            // Per-morsel local dedup (first occurrence wins within a
            // vector), then a global dedup over the packed survivors —
            // first-occurrence order in morsel order, matching the
            // materialized engine exactly.
            let parts = drive(&pipe, ctx, Vec::new, |p: &mut Vec<(usize, Chunk)>, m, c| {
                if c.rows == 0 {
                    return Ok(true);
                }
                let refs: Vec<&Bat> = c.cols.iter().map(|b| &**b).collect();
                let grouping = hash_group(&refs);
                let deduped = c.take(&grouping.repr_rows);
                p.push((m, deduped));
                Ok(true)
            })?;
            let packed = collect_ordered(parts, input.schema())?;
            let refs: Vec<&Bat> = packed.cols.iter().map(|b| &**b).collect();
            let grouping = hash_group(&refs);
            Ok(packed.take(&grouping.repr_rows))
        }
        Plan::Values { rows, schema } => exec_values(rows, schema),
        // Pure pipeline shapes (scan/filter/project/join-probe spines).
        _ => collect(plan, ctx),
    }
}

// ---------------------------------------------------------------------------
// EXPLAIN support
// ---------------------------------------------------------------------------

/// Render the pipeline decomposition of `plan` for EXPLAIN: one line per
/// pipeline (in execution order — build sides before their probes), with
/// the morsel count of table-backed sources when `stats` are available.
pub fn describe(plan: &Plan, opts: &ExecOptions, stats: Option<&dyn crate::opt::Stats>) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "-- pipelines: streaming engine, vector={}, threads={}",
        opts.vector_size,
        opts.threads.max(1)
    );
    let mut next = 0usize;
    desc_node(plan, &mut out, &mut next, opts, stats, "result".to_string());
    out
}

/// Describe a (possibly breaker) node; returns the id of the pipeline
/// producing its output.
fn desc_node(
    plan: &Plan,
    out: &mut String,
    next: &mut usize,
    opts: &ExecOptions,
    stats: Option<&dyn crate::opt::Stats>,
    sink: String,
) -> usize {
    match plan {
        Plan::Aggregate { input, groups, .. } => {
            let s = if groups.is_empty() {
                format!("global-aggregate (merge partials) -> {sink}")
            } else {
                format!("partial hash-aggregate + mapped merge -> {sink}")
            };
            desc_chain(input, out, next, opts, stats, s)
        }
        Plan::Sort { input, keys } => {
            desc_chain(input, out, next, opts, stats, format!("sort{keys:?} (blocking) -> {sink}"))
        }
        Plan::TopN { input, keys, n } => desc_chain(
            input,
            out,
            next,
            opts,
            stats,
            format!("top-{n}{keys:?} (per-morsel compaction) -> {sink}"),
        ),
        Plan::Limit { input, n } => {
            desc_chain(input, out, next, opts, stats, format!("limit {n} (early-exit) -> {sink}"))
        }
        Plan::Distinct { input } => {
            desc_chain(input, out, next, opts, stats, format!("distinct (local+global) -> {sink}"))
        }
        other => desc_chain(other, out, next, opts, stats, sink),
    }
}

/// Describe the non-breaking spine of a plan as one pipeline line.
fn desc_chain(
    plan: &Plan,
    out: &mut String,
    next: &mut usize,
    opts: &ExecOptions,
    stats: Option<&dyn crate::opt::Stats>,
    sink: String,
) -> usize {
    use std::fmt::Write;
    let mut ops: Vec<String> = Vec::new();
    let mut cur = plan;
    loop {
        match cur {
            Plan::Filter { input, pred } => {
                ops.push(format!("filter({pred})"));
                cur = input;
            }
            Plan::Project { input, exprs, .. } => {
                ops.push(format!("project[{}]", exprs.len()));
                cur = input;
            }
            Plan::Join { left, right, kind, .. } => {
                let bid =
                    desc_node(right, out, next, opts, stats, format!("hash-join build ({kind})"));
                ops.push(format!("probe({kind}, build=P{bid})"));
                cur = left;
            }
            _ => break,
        }
    }
    ops.reverse();
    let src = match cur {
        Plan::Scan { table, .. } => {
            let morsels = match stats {
                Some(s) => {
                    let rows = s.table_rows(table);
                    rows.div_ceil(opts.vector_size.max(1)).to_string()
                }
                None => "?".to_string(),
            };
            format!("scan {table} [morsels={morsels}]")
        }
        Plan::Values { rows, .. } => format!("values [{} row(s)]", rows.len()),
        other => {
            debug_assert!(other.is_pipeline_breaker(), "chain stopped at a non-breaker");
            let id = desc_node(other, out, next, opts, stats, "materialize".to_string());
            format!("P{id} output")
        }
    };
    let id = *next;
    *next += 1;
    let mut line = format!("P{id}: {src}");
    for op in &ops {
        let _ = write!(line, " -> {op}");
    }
    let _ = writeln!(out, "{line} -> sink: {sink}");
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ExecMode, TableProvider};
    use crate::expr::{AggSpec, CmpOp, PAggFunc};
    use crate::plan::OutCol;
    use monetlite_storage::catalog::{TableData, TableMeta};
    use monetlite_types::{Field, LogicalType, Schema, Value};
    use std::collections::HashMap as Map;

    struct TestTables {
        tables: Map<String, Arc<TableMeta>>,
    }

    impl TableProvider for TestTables {
        fn table_meta(&self, name: &str) -> Result<Arc<TableMeta>> {
            self.tables
                .get(name)
                .cloned()
                .ok_or_else(|| MlError::Catalog(format!("unknown table '{name}'")))
        }
    }

    fn make_table(name: &str, cols: Vec<(&str, Bat)>) -> Arc<TableMeta> {
        let schema =
            Schema::new(cols.iter().map(|(n, b)| Field::new(*n, b.logical_type())).collect())
                .unwrap();
        let data = TableData::empty(&schema);
        let data = data.appended(cols.into_iter().map(|(_, b)| b).collect()).unwrap();
        Arc::new(TableMeta {
            id: 1,
            name: name.into(),
            schema,
            data,
            version: 1,
            ordered_cols: vec![],
        })
    }

    fn scan(table: &str, n: usize) -> Plan {
        Plan::Scan {
            table: table.into(),
            projected: (0..n).collect(),
            filters: vec![],
            schema: (0..n)
                .map(|i| OutCol { name: format!("c{i}"), ty: LogicalType::Int })
                .collect(),
        }
    }

    fn opts(threads: usize, vector_size: usize) -> crate::exec::ExecOptions {
        crate::exec::ExecOptions {
            mode: ExecMode::Streaming,
            threads,
            vector_size,
            ..Default::default()
        }
    }

    #[test]
    fn limit_exits_before_scanning_everything() {
        let n = 100_000;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(1, 1024));
        let plan = Plan::Limit { input: Box::new(scan("t", 1)), n: 5 };
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 5);
        assert_eq!(out.cols[0].get(0), Value::Int(0));
        assert_eq!(out.cols[0].get(4), Value::Int(4));
        let morsels = ctx.counters.morsels.load(Ordering::Relaxed);
        assert!(morsels <= 3, "limit must early-exit, dispatched {morsels} morsels");
    }

    #[test]
    fn empty_source_produces_typed_empty_chunks() {
        let t = make_table("t", vec![("a", Bat::Int(vec![]))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(4, 1024));
        // Bare scan.
        let out = execute_streaming(&scan("t", 1), &ctx).unwrap();
        assert_eq!(out.rows, 0);
        assert_eq!(out.cols.len(), 1);
        assert_eq!(out.cols[0].logical_type(), LogicalType::Int);
        // Global aggregate over nothing still yields its one row.
        let agg = Plan::Aggregate {
            input: Box::new(scan("t", 1)),
            groups: vec![],
            aggs: vec![AggSpec {
                func: PAggFunc::Count,
                arg: None,
                distinct: false,
                ty: LogicalType::Bigint,
            }],
            schema: vec![OutCol { name: "c".into(), ty: LogicalType::Bigint }],
        };
        let out = execute_streaming(&agg, &ctx).unwrap();
        assert_eq!(out.rows, 1);
        assert_eq!(out.cols[0].get(0), Value::Bigint(0));
    }

    #[test]
    fn parallel_probe_matches_single_thread() {
        let n = 20_000;
        let probe = make_table("probe", vec![("k", Bat::Int((0..n).map(|i| i % 500).collect()))]);
        let build = make_table(
            "build",
            vec![
                ("k", Bat::Int((0..250).collect())),
                ("v", Bat::Int((0..250).map(|i| i * 10).collect())),
            ],
        );
        let tables =
            TestTables { tables: Map::from([("probe".into(), probe), ("build".into(), build)]) };
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Join {
                left: Box::new(scan("probe", 1)),
                right: Box::new(scan("build", 2)),
                kind: PJoinKind::Inner,
                left_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
                right_keys: vec![BExpr::ColRef { idx: 0, ty: LogicalType::Int }],
                residual: None,
                schema: vec![
                    OutCol { name: "k".into(), ty: LogicalType::Int },
                    OutCol { name: "k2".into(), ty: LogicalType::Int },
                    OutCol { name: "v".into(), ty: LogicalType::Int },
                ],
            }),
            groups: vec![],
            aggs: vec![
                AggSpec {
                    func: PAggFunc::Count,
                    arg: None,
                    distinct: false,
                    ty: LogicalType::Bigint,
                },
                AggSpec {
                    func: PAggFunc::Sum,
                    arg: Some(BExpr::ColRef { idx: 2, ty: LogicalType::Int }),
                    distinct: false,
                    ty: LogicalType::Bigint,
                },
            ],
            schema: vec![
                OutCol { name: "c".into(), ty: LogicalType::Bigint },
                OutCol { name: "s".into(), ty: LogicalType::Bigint },
            ],
        };
        let seq_ctx = ExecContext::new(&tables, opts(1, 1024));
        let seq = execute_streaming(&plan, &seq_ctx).unwrap();
        let par_ctx = ExecContext::new(&tables, opts(8, 1024));
        let par = execute_streaming(&plan, &par_ctx).unwrap();
        assert_eq!(seq.cols[0].get(0), par.cols[0].get(0));
        assert_eq!(seq.cols[1].get(0), par.cols[1].get(0));
        // The probe pipeline really was morsel-split.
        assert!(par_ctx.counters.morsels.load(Ordering::Relaxed) >= 20);
        assert!(par_ctx.counters.pipelines.load(Ordering::Relaxed) >= 2);
    }

    #[test]
    fn morsel_scans_keep_imprint_selection() {
        // Index-assisted selection must survive morselization: each
        // ranged morsel clips imprint candidates to its own range.
        let n = 10_000i32;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(1, 512));
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![BExpr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(100))),
            }],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 100);
        assert_eq!(out.cols[0].get(0), Value::Int(0));
        assert_eq!(out.cols[0].get(99), Value::Int(99));
        let selects = ctx.counters.imprint_selects.load(Ordering::Relaxed);
        assert_eq!(selects, (n as u64).div_ceil(512), "one imprint probe per morsel");
    }

    #[test]
    fn multi_morsel_bare_scan_stays_zero_copy() {
        // A pass-through pipeline (no ops, no filters) must share the
        // base arrays even when the table spans many vectors.
        let n = 10_000i32;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let base = t.data.cols[0].entry().unwrap().bat().unwrap();
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(4, 512));
        let out = execute_streaming(&scan("t", 1), &ctx).unwrap();
        assert_eq!(out.rows, n as usize);
        assert!(Arc::ptr_eq(&out.cols[0], &base), "bare scan must share the array");
    }

    #[test]
    fn filter_pushes_through_vectors() {
        let n = 10_000;
        let t = make_table("t", vec![("a", Bat::Int((0..n).collect()))]);
        let tables = TestTables { tables: Map::from([("t".into(), t)]) };
        let ctx = ExecContext::new(&tables, opts(4, 512));
        let plan = Plan::Filter {
            input: Box::new(scan("t", 1)),
            pred: BExpr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(100))),
            },
        };
        let out = execute_streaming(&plan, &ctx).unwrap();
        assert_eq!(out.rows, 100);
        // Order preserved across morsels.
        assert_eq!(out.cols[0].get(0), Value::Int(0));
        assert_eq!(out.cols[0].get(99), Value::Int(99));
        assert_eq!(ctx.counters.vectors.load(Ordering::Relaxed), (n as u64).div_ceil(512));
    }
}
