//! MAL (Monet Assembly Language) program rendering for EXPLAIN.
//!
//! The engine executes the plan tree directly, but EXPLAIN presents it in
//! the shape MonetDB users know: a straight-line program of column-at-a-
//! time instructions over SSA registers (`X_n` value columns, `C_n`
//! candidate lists), plus the mitosis annotation when the executor would
//! parallelise (paper §3.1 *Parallel Execution*, Figure 2).

use crate::exec::{ExecMode, ExecOptions};
use crate::expr::BExpr;
use crate::opt::Stats;
use crate::plan::{PJoinKind, Plan};
use std::fmt::Write;

/// Render the full EXPLAIN text: relational tree, per-operator
/// cardinality estimates (`-- stats`), the streaming pipeline
/// decomposition (with morsel counts when `stats` are available), and the
/// MAL program.
pub fn explain(plan: &Plan, opts: &ExecOptions, stats: Option<&dyn Stats>) -> String {
    let mut out = String::new();
    out.push_str("-- relational plan\n");
    out.push_str(&plan.render());
    if let Some(s) = stats {
        out.push_str("-- stats\n");
        render_estimates(plan, s, &mut out, 0);
    }
    if opts.mode == ExecMode::Streaming {
        out.push_str(&crate::pipeline::describe(plan, opts, stats));
    }
    out.push_str("-- MAL program\n");
    out.push_str("function user.main():void;\n");
    let mut r = Renderer { next: 0, out: String::new(), opts: *opts };
    let regs = r.node(plan);
    let _ = writeln!(r.out, "    sql.resultSet({});", regs.join(", "));
    out.push_str(&r.out);
    out.push_str("end user.main;\n");
    out
}

/// Cache-status trailer for EXPLAIN: one line per caching layer that
/// currently holds a valid artifact for the statement. Emitted only when
/// an artifact actually exists, so a cold cache explains identically to
/// caches-off (the plan goldens rely on that).
pub fn cache_tags(plan_cached: bool, result_cached: bool) -> String {
    let mut out = String::new();
    if plan_cached {
        out.push_str("-- [plan-cache] optimized template cached; bind+optimize skipped on hit\n");
    }
    if result_cached {
        out.push_str("-- [result-cache] result set cached; execution skipped on hit\n");
    }
    out
}

/// The `-- stats` section: one line per operator (same indentation as the
/// relational tree) with its estimated output cardinality, so a plan diff
/// shows *why* the optimizer picked a join order, not just that it did.
fn render_estimates(plan: &Plan, stats: &dyn Stats, out: &mut String, depth: usize) {
    let est = crate::opt::estimate_rows(plan, stats);
    let label = match plan {
        Plan::Scan { table, .. } => format!("scan {table}"),
        Plan::Filter { .. } => "filter".into(),
        Plan::Project { .. } => "project".into(),
        Plan::Join { kind, .. } => format!("{kind} join"),
        Plan::Aggregate { .. } => "aggregate".into(),
        Plan::Sort { .. } => "sort".into(),
        Plan::Limit { .. } => "limit".into(),
        Plan::TopN { .. } => "topn".into(),
        Plan::Distinct { .. } => "distinct".into(),
        Plan::Values { .. } => "values".into(),
    };
    let _ = writeln!(out, "{}{label} est_rows={}", "  ".repeat(depth), est.round() as u64);
    let children: Vec<&Plan> = match plan {
        Plan::Scan { .. } | Plan::Values { .. } => vec![],
        Plan::Filter { input, .. }
        | Plan::Project { input, .. }
        | Plan::Aggregate { input, .. }
        | Plan::Sort { input, .. }
        | Plan::Limit { input, .. }
        | Plan::TopN { input, .. }
        | Plan::Distinct { input } => vec![input],
        Plan::Join { left, right, .. } => vec![left, right],
    };
    for c in children {
        render_estimates(c, stats, out, depth + 1);
    }
}

struct Renderer {
    next: usize,
    out: String,
    opts: ExecOptions,
}

impl Renderer {
    fn reg(&mut self, prefix: &str) -> String {
        self.next += 1;
        format!("{prefix}_{}", self.next)
    }

    /// Emit instructions for a node; returns its output column registers.
    fn node(&mut self, plan: &Plan) -> Vec<String> {
        match plan {
            Plan::Scan { table, projected, filters, schema } => {
                let mut regs = Vec::new();
                for (i, col) in projected.iter().enumerate() {
                    let x = self.reg("X");
                    let _ = writeln!(
                        self.out,
                        "    {x} := sql.bind(\"{table}\", \"{}\"); -- col {col}",
                        schema[i].name
                    );
                    regs.push(x);
                }
                let mut cand: Option<String> = None;
                for f in filters {
                    let c = self.reg("C");
                    let src = cand.clone().unwrap_or_else(|| "nil".into());
                    let _ = writeln!(
                        self.out,
                        "    {c} := algebra.select({}, {src}, {});",
                        regs.first().cloned().unwrap_or_else(|| "nil".into()),
                        mal_expr(f)
                    );
                    cand = Some(c);
                }
                if let Some(c) = cand {
                    let mut fetched = Vec::new();
                    for r0 in &regs {
                        let x = self.reg("X");
                        let _ = writeln!(self.out, "    {x} := algebra.projection({c}, {r0});");
                        fetched.push(x);
                    }
                    regs = fetched;
                }
                regs
            }
            Plan::Filter { input, pred } => {
                let inregs = self.node(input);
                let c = self.reg("C");
                let _ = writeln!(self.out, "    {c} := algebra.select({});", mal_expr(pred));
                inregs
                    .iter()
                    .map(|r0| {
                        let x = self.reg("X");
                        let _ = writeln!(self.out, "    {x} := algebra.projection({c}, {r0});");
                        x
                    })
                    .collect()
            }
            Plan::Project { input, exprs, schema } => {
                let inregs = self.node(input);
                exprs
                    .iter()
                    .zip(schema)
                    .map(|(e, c)| {
                        let x = self.reg("X");
                        let _ = writeln!(
                            self.out,
                            "    {x} := batcalc.compute({}); -- {}",
                            mal_expr_over(e, &inregs),
                            c.name
                        );
                        x
                    })
                    .collect()
            }
            Plan::Join { left, right, kind, left_keys, right_keys, .. } => {
                let l = self.node(left);
                let r = self.node(right);
                let lc = self.reg("C");
                let rc = self.reg("C");
                let op = match kind {
                    PJoinKind::Inner => "algebra.join",
                    PJoinKind::Left => "algebra.leftjoin",
                    PJoinKind::Semi => "algebra.semijoin",
                    PJoinKind::Anti => "algebra.antijoin",
                    PJoinKind::Cross => "algebra.crossproduct",
                };
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(a, b)| format!("{}={}", mal_expr_over(a, &l), mal_expr_over(b, &r)))
                    .collect();
                let _ = writeln!(self.out, "    ({lc}, {rc}) := {op}({});", keys.join(", "));
                let mut regs = Vec::new();
                for r0 in &l {
                    let x = self.reg("X");
                    let _ = writeln!(self.out, "    {x} := algebra.projection({lc}, {r0});");
                    regs.push(x);
                }
                if !matches!(kind, PJoinKind::Semi | PJoinKind::Anti) {
                    for r0 in &r {
                        let x = self.reg("X");
                        let _ = writeln!(self.out, "    {x} := algebra.projection({rc}, {r0});");
                        regs.push(x);
                    }
                }
                regs
            }
            Plan::Aggregate { input, groups, aggs, .. } => {
                let mitosis = self.opts.mode == ExecMode::Materialized
                    && self.opts.threads > 1
                    && groups.is_empty();
                if mitosis {
                    let _ = writeln!(
                        self.out,
                        "    -- mitosis: parallelizable prefix fans out over {} threads, packed before blocking aggregate",
                        self.opts.threads
                    );
                }
                let inregs = self.node(input);
                let mut regs = Vec::new();
                let (g, e, h) = (self.reg("G"), self.reg("E"), self.reg("H"));
                if !groups.is_empty() {
                    let keys: Vec<String> =
                        groups.iter().map(|k| mal_expr_over(k, &inregs)).collect();
                    let _ = writeln!(
                        self.out,
                        "    ({g}, {e}, {h}) := group.groupdone({});",
                        keys.join(", ")
                    );
                    for k in groups {
                        let x = self.reg("X");
                        let _ = writeln!(
                            self.out,
                            "    {x} := algebra.projection({e}, {});",
                            mal_expr_over(k, &inregs)
                        );
                        regs.push(x);
                    }
                }
                for a in aggs {
                    let x = self.reg("X");
                    let blocking = matches!(a.func, crate::expr::PAggFunc::Median);
                    let _ = writeln!(
                        self.out,
                        "    {x} := aggr.{}({}{}{});{}",
                        a.func,
                        a.arg.as_ref().map(|e| mal_expr_over(e, &inregs)).unwrap_or_default(),
                        if groups.is_empty() { "" } else { ", " },
                        if groups.is_empty() { String::new() } else { format!("{g}, {e}") },
                        if blocking { " -- blocking" } else { "" }
                    );
                    regs.push(x);
                }
                regs
            }
            Plan::Sort { input, keys } => {
                let inregs = self.node(input);
                let o = self.reg("O");
                let _ = writeln!(self.out, "    {o} := algebra.sort({keys:?});");
                self.project_all(&inregs, &o)
            }
            Plan::TopN { input, keys, n } => {
                let inregs = self.node(input);
                let o = self.reg("O");
                let _ = writeln!(self.out, "    {o} := algebra.firstn({n}, {keys:?});");
                self.project_all(&inregs, &o)
            }
            Plan::Limit { input, n } => {
                let inregs = self.node(input);
                let o = self.reg("O");
                let _ = writeln!(self.out, "    {o} := algebra.slice(0, {n});");
                self.project_all(&inregs, &o)
            }
            Plan::Distinct { input } => {
                let inregs = self.node(input);
                let o = self.reg("O");
                let _ = writeln!(self.out, "    {o} := group.unique();");
                self.project_all(&inregs, &o)
            }
            Plan::Values { rows, schema } => schema
                .iter()
                .map(|c| {
                    let x = self.reg("X");
                    let _ = writeln!(
                        self.out,
                        "    {x} := bat.pack(\"{}\", {} row(s));",
                        c.name,
                        rows.len()
                    );
                    x
                })
                .collect(),
        }
    }

    fn project_all(&mut self, inregs: &[String], cand: &str) -> Vec<String> {
        inregs
            .iter()
            .map(|r0| {
                let x = self.reg("X");
                let _ = writeln!(self.out, "    {x} := algebra.projection({cand}, {r0});");
                x
            })
            .collect()
    }
}

fn mal_expr(e: &BExpr) -> String {
    e.to_string()
}

fn mal_expr_over(e: &BExpr, regs: &[String]) -> String {
    // Substitute register names for #n column references in the display.
    let mut s = e.to_string();
    for (i, r) in regs.iter().enumerate().rev() {
        s = s.replace(&format!("#{i}"), r);
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::OutCol;
    use monetlite_types::LogicalType;

    #[test]
    fn explain_contains_mal_sections() {
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let s = explain(&plan, &ExecOptions::default(), None);
        assert!(s.contains("-- relational plan"));
        assert!(s.contains("function user.main():void;"));
        assert!(s.contains("sql.bind(\"t\", \"a\")"));
        assert!(s.contains("end user.main;"));
        // Streaming mode renders the pipeline decomposition.
        assert!(s.contains("-- pipelines"), "{s}");
        assert!(s.contains("scan t [morsels=?]"), "{s}");
    }

    #[test]
    fn pipeline_section_shows_morsel_counts() {
        struct FixedStats;
        impl crate::opt::Stats for FixedStats {
            fn table_rows(&self, _n: &str) -> usize {
                200_000
            }
        }
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        // Pin the vector size: the morsel count below is exact and must
        // not drift under the CI env matrix (MONETLITE_VECTOR_SIZE).
        let opts = ExecOptions { threads: 4, vector_size: 64 * 1024, ..Default::default() };
        let s = explain(&plan, &opts, Some(&FixedStats));
        // 200_000 rows / 65_536-row vectors = 4 morsels.
        assert!(s.contains("scan t [morsels=4]"), "{s}");
        assert!(s.contains("threads=4"), "{s}");
        // Materialized mode omits the pipeline section entirely.
        let mat = ExecOptions { mode: crate::exec::ExecMode::Materialized, ..Default::default() };
        let s2 = explain(&plan, &mat, Some(&FixedStats));
        assert!(!s2.contains("-- pipelines"), "{s2}");
    }

    #[test]
    fn stats_section_annotates_estimates() {
        struct FixedStats;
        impl crate::opt::Stats for FixedStats {
            fn table_rows(&self, _n: &str) -> usize {
                50_000
            }
        }
        let scan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let plan = Plan::Limit { input: Box::new(scan), n: 7 };
        let s = explain(&plan, &ExecOptions::default(), Some(&FixedStats));
        assert!(s.contains("-- stats"), "{s}");
        assert!(s.contains("limit est_rows=7"), "{s}");
        assert!(s.contains("scan t est_rows=50000"), "{s}");
        // No stats provider, no section.
        let s2 = explain(&plan, &ExecOptions::default(), None);
        assert!(!s2.contains("-- stats"), "{s2}");
    }

    #[test]
    fn pipeline_section_tags_zonemap_eligible_scans() {
        use crate::expr::CmpOp;
        use monetlite_types::Value;
        let plan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![BExpr::Cmp {
                op: CmpOp::Lt,
                left: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                right: Box::new(BExpr::Lit(Value::Int(100))),
            }],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let s = explain(&plan, &ExecOptions { use_zonemaps: true, ..Default::default() }, None);
        assert!(s.contains("scan t [morsels=?] [zonemap]"), "{s}");
        // Zonemaps disabled: no tag.
        let s2 = explain(&plan, &ExecOptions { use_zonemaps: false, ..Default::default() }, None);
        assert!(!s2.contains("[zonemap]"), "{s2}");
        // A LIKE filter is not a range probe: no tag either.
        let unprobed = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![BExpr::Like {
                input: Box::new(BExpr::ColRef { idx: 0, ty: LogicalType::Varchar }),
                pattern: "%x%".into(),
                negated: false,
            }],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Varchar }],
        };
        let s3 = explain(&unprobed, &ExecOptions::default(), None);
        assert!(!s3.contains("[zonemap]"), "{s3}");
    }

    #[test]
    fn explain_shows_memory_budget_and_spillable_breakers() {
        let scan = Plan::Scan {
            table: "t".into(),
            projected: vec![0],
            filters: vec![],
            schema: vec![OutCol { name: "a".into(), ty: LogicalType::Int }],
        };
        let plan = Plan::Sort { input: Box::new(scan), keys: vec![(0, false)] };
        let opts = ExecOptions { memory_budget: 4096, ..Default::default() };
        let s = explain(&plan, &opts, None);
        assert!(s.contains("memory_budget=4096"), "{s}");
        assert!(s.contains("external merge [spillable]"), "{s}");
        // Without a budget the header stays clean and the sort is the
        // plain blocking operator.
        let s2 = explain(&plan, &ExecOptions::default(), None);
        assert!(!s2.contains("memory_budget"), "{s2}");
        assert!(s2.contains("(blocking)"), "{s2}");
    }

    #[test]
    fn mitosis_annotation_appears_with_threads() {
        let plan = Plan::Aggregate {
            input: Box::new(Plan::Scan {
                table: "t".into(),
                projected: vec![0],
                filters: vec![],
                schema: vec![OutCol { name: "i".into(), ty: LogicalType::Int }],
            }),
            groups: vec![],
            aggs: vec![crate::expr::AggSpec {
                func: crate::expr::PAggFunc::Median,
                arg: Some(BExpr::ColRef { idx: 0, ty: LogicalType::Int }),
                distinct: false,
                ty: LogicalType::Double,
            }],
            schema: vec![OutCol { name: "m".into(), ty: LogicalType::Double }],
        };
        // Mitosis is a materialized-engine tactic; the annotation only
        // renders there.
        let par = explain(
            &plan,
            &ExecOptions {
                mode: crate::exec::ExecMode::Materialized,
                threads: 8,
                ..Default::default()
            },
            None,
        );
        assert!(par.contains("mitosis"), "{par}");
        assert!(par.contains("blocking"), "{par}");
        // threads pinned to 1: the annotation must not appear for a
        // sequential plan even under the CI env matrix.
        let seq = explain(
            &plan,
            &ExecOptions {
                mode: crate::exec::ExecMode::Materialized,
                threads: 1,
                ..Default::default()
            },
            None,
        );
        assert!(!seq.contains("mitosis"));
        // Streaming EXPLAIN shows the aggregate as a pipeline sink instead.
        let stream = explain(&plan, &ExecOptions { threads: 8, ..Default::default() }, None);
        assert!(stream.contains("global-aggregate"), "{stream}");
    }
}
