//! Minimal local stand-in for `rand` 0.9 (no network in the build
//! environment). Deterministic xoshiro256++ generator behind the small
//! `Rng`/`SeedableRng` surface this workspace uses: `random_range` over
//! integer/float ranges and `random_ratio`.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Raw 64-bit source.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level random-value API (blanket-implemented over [`RngCore`]).
pub trait Rng: RngCore {
    /// Uniform value from a range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// True with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool({p})");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// True with probability `num/denom`.
    fn random_ratio(&mut self, num: u32, denom: u32) -> bool {
        assert!(denom > 0 && num <= denom, "random_ratio({num}, {denom})");
        (self.next_u64() % denom as u64) < num as u64
    }
}

impl<T: RngCore> Rng for T {}

/// The standard generator: xoshiro256++ seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // splitmix64 expansion of the seed into the full state.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value from the source.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut dyn RngCore) -> f32 {
        assert!(self.start < self.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f32 / (1u64 << 53) as f32;
        self.start + unit * (self.end - self.start)
    }
}

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    pub use super::StdRng;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = r.random_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: i64 = r.random_range(10..=12);
            assert!((10..=12).contains(&w));
            let f: f64 = r.random_range(0.5..2.0);
            assert!((0.5..2.0).contains(&f));
            let u: usize = r.random_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn ratio_is_plausible() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.random_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }
}
