//! Engine robustness under runtime failures: a kernel error inside a
//! parallel morsel worker must surface as a plain [`MlError`] on the
//! issuing connection — never a panic that unwinds into (and kills) the
//! embedding host process — and the connection must stay usable for the
//! next query (paper §3.4: corrupt or failing state produces "a simple
//! error being thrown").

use monetlite::exec::{ExecMode, ExecOptions};
use monetlite_types::{MlError, Value};

fn streaming(threads: usize, vector_size: usize) -> ExecOptions {
    ExecOptions { mode: ExecMode::Streaming, threads, vector_size, ..Default::default() }
}

/// A table whose `b` column is non-zero everywhere except deep inside a
/// late morsel, so `a % b` errors only after the fan-out has dispatched
/// work to every thread.
fn poisoned_db(rows: usize, zero_at: usize) -> monetlite::Database {
    let db = monetlite::Database::open_in_memory();
    let mut conn = db.connect();
    conn.execute("CREATE TABLE t (a INT, b INT)").unwrap();
    let mut vals = Vec::with_capacity(rows);
    for i in 0..rows {
        let b = if i == zero_at { 0 } else { 1 + (i % 7) as i32 };
        vals.push(format!("({}, {})", i as i32, b));
    }
    // Batched inserts keep setup fast.
    for chunk in vals.chunks(512) {
        conn.execute(&format!("INSERT INTO t VALUES {}", chunk.join(", "))).unwrap();
    }
    db
}

/// The satellite regression: at threads=4 with many morsels, a kernel
/// forced to error mid-pipeline (modulo by zero in a late morsel) returns
/// `MlError::Execution` instead of panicking/poisoning, and the same
/// connection answers the next query normally.
#[test]
fn worker_error_mid_pipeline_keeps_connection_usable() {
    let rows = 4096;
    let db = poisoned_db(rows, rows - 100);
    let mut conn = db.connect();
    conn.set_exec_options(streaming(4, 256));
    match conn.query("SELECT a % b FROM t") {
        Err(MlError::Execution(m)) => {
            assert!(m.contains("division by zero"), "unexpected message: {m}")
        }
        other => panic!("expected division-by-zero execution error, got {other:?}"),
    }
    // The connection (and the shared database) must remain fully usable.
    let r = conn.query("SELECT COUNT(*), MIN(a), MAX(a) FROM t").unwrap();
    assert_eq!(
        r.row(0),
        vec![Value::Bigint(rows as i64), Value::Int(0), Value::Int(rows as i64 as i32 - 1)]
    );
}

/// Same failure under every engine shape: single-threaded streaming,
/// parallel streaming, and the materialized engine all degrade to the
/// same error and stay usable.
#[test]
fn worker_error_consistent_across_engine_shapes() {
    let rows = 2048;
    let db = poisoned_db(rows, rows / 2);
    let shapes = [
        streaming(1, 256),
        streaming(4, 256),
        streaming(8, 64),
        ExecOptions { mode: ExecMode::Materialized, ..Default::default() },
    ];
    for opts in shapes {
        let mut conn = db.connect();
        conn.set_exec_options(opts);
        assert!(
            matches!(conn.query("SELECT a % b FROM t"), Err(MlError::Execution(_))),
            "engine shape must surface the kernel error"
        );
        let r = conn.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.row(0), vec![Value::Bigint(rows as i64)]);
    }
}

/// An error inside a pipeline *breaker* (aggregation over the failing
/// expression) takes the partial-aggregate merge path rather than the
/// plain collect path; it must degrade identically.
#[test]
fn worker_error_inside_aggregate_breaker() {
    let rows = 2048;
    let db = poisoned_db(rows, rows - 1);
    let mut conn = db.connect();
    conn.set_exec_options(streaming(4, 128));
    assert!(matches!(conn.query("SELECT SUM(a % b) FROM t"), Err(MlError::Execution(_))));
    let r = conn.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.row(0), vec![Value::Bigint(rows as i64)]);
}
