//! # monetlite-storage
//!
//! The storage substrate of the `monetlite` embedded analytical database,
//! reproducing the design in §3.1 of the MonetDBLite paper:
//!
//! * [`heap`] — variable-sized string heaps with duplicate elimination
//!   below a distinct-count threshold.
//! * [`bat`] — tightly packed typed column arrays ("BATs"); row numbers are
//!   implicit in array position; NULLs are in-domain sentinels.
//! * [`index`] — secondary index structures: column imprints (cache-line
//!   bitmap index), hash tables, and the user-created order index.
//! * [`vmem`] — a simulation of the OS page cache over memory-mapped column
//!   files: no buffer pool; hot columns stay resident, cold ones are
//!   evicted under a global byte budget and transparently reloaded.
//! * [`stats`] — per-column statistics (row/null counts, HyperLogLog NDV
//!   sketch, min/max) feeding the cost-based optimizer.
//! * [`dict`] — sorted per-column string dictionaries mapping VARCHAR rows
//!   to dense order-preserving `u32` codes (predicates, zone skipping and
//!   group-bys over flat integers; rehydration only at the sink).
//! * [`persist`] — the on-disk column-file format.
//! * [`wal`] — the write-ahead log, checkpointing and crash recovery.
//! * [`catalog`] — immutable catalog snapshots (tables, schemas, column
//!   handles with attached index caches).
//! * [`store`] — the shared database state: snapshot publication, the
//!   optimistic commit protocol (write-write conflict detection), and
//!   startup/recovery.

// The only `unsafe` in the workspace lives in `persist` (POD slice
// casts); future unsafe fns must restate their obligations explicitly.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bat;
pub mod catalog;
pub mod dict;
pub mod fault;
pub mod heap;
pub mod index;
pub mod persist;
pub mod stats;
pub mod store;
pub mod vmem;
pub mod wal;

pub use bat::Bat;
pub use catalog::{CatalogSnapshot, ColumnEntry, TableData, TableMeta};
pub use dict::{StrDict, NULL_CODE};
pub use heap::StringHeap;
pub use store::{Store, StoreOptions, TxWrites};
pub use vmem::{Vmem, VmemStats};
