//! On-disk column-file format and binary (de)serialisation of BATs.
//!
//! Layout of a column file:
//!
//! ```text
//! [magic "MLB1"][endian u16 = 0xBEEF][bat payload][checksum u64 (FNV-1a)]
//! ```
//!
//! The same BAT payload encoding is reused by the write-ahead log for
//! append records. Fixed-width arrays are written as raw native-endian
//! bytes (the endian marker detects foreign files and reports
//! [`MlError::Corrupt`] instead of misreading them); VARCHAR columns write
//! the offsets array followed by the raw heap.

use crate::bat::Bat;
use crate::dict::StrDict;
use crate::fault;
use crate::heap::StringHeap;
use crate::index::{fnv1a, Zonemap};
use crate::stats::{ColumnStats, NdvSketch, HLL_REGS};
use monetlite_types::{MlError, Result};
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 4] = b"MLB1";
/// Zonemap sidecar magic ([`write_zonemap_file`]).
const ZM_MAGIC: &[u8; 4] = b"MLZ1";
/// Column-statistics sidecar magic ([`write_stats_file`]).
const ST_MAGIC: &[u8; 4] = b"MLS1";
/// String-dictionary sidecar magic ([`write_dict_file`]).
const DC_MAGIC: &[u8; 4] = b"MLD1";
const ENDIAN_MARK: u16 = 0xBEEF;

/// Sanity cap on any decoded length field (a corrupt length must not
/// trigger an enormous allocation).
const MAX_LEN: u64 = 1 << 34;

const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_BIGINT: u8 = 2;
const TAG_DOUBLE: u8 = 3;
const TAG_DECIMAL: u8 = 4;
const TAG_VARCHAR: u8 = 5;
const TAG_DATE: u8 = 6;

/// Marker for the plain-old-data numeric types the column format stores.
/// Sealed to exactly these primitives so the raw-slice casts below carry
/// a *compiler-checked* precondition instead of a convention: every
/// implementor has no padding, no invalid bit patterns, and no drop glue.
trait Pod: Copy + Default {}
impl Pod for i8 {}
impl Pod for i32 {}
impl Pod for u32 {}
impl Pod for i64 {}
impl Pod for u64 {}
impl Pod for f64 {}

/// View a POD slice as raw bytes (native endian).
fn pod_bytes<T: Pod>(v: &[T]) -> &[u8] {
    // SAFETY: the sealed `Pod` bound restricts `T` to primitive numerics
    // (i8/i32/u32/i64/u64/f64): no padding bytes, so every byte of the
    // slice is initialized; the pointer and length come from a live
    // borrow of `v`, so the view is in-bounds and outlives nothing.
    unsafe { std::slice::from_raw_parts(v.as_ptr() as *const u8, std::mem::size_of_val(v)) }
}

fn read_pod_vec<T: Pod>(r: &mut impl Read, len: usize) -> Result<Vec<T>> {
    let mut v = vec![T::default(); len];
    // SAFETY: the buffer is fully initialized by `vec!` before being
    // exposed as bytes, and the sealed `Pod` bound guarantees any byte
    // pattern written into it is a valid `T` (primitive numerics have no
    // invalid bit patterns); length is exactly the allocation's size.
    let bytes = unsafe {
        std::slice::from_raw_parts_mut(v.as_mut_ptr() as *mut u8, len * std::mem::size_of::<T>())
    };
    r.read_exact(bytes)?;
    Ok(v)
}

/// Serialise a BAT payload (tag, length, data) into `out`.
pub fn encode_bat(out: &mut Vec<u8>, bat: &Bat) {
    match bat {
        Bat::Bool(v) => {
            out.push(TAG_BOOL);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            out.extend_from_slice(pod_bytes(v));
        }
        Bat::Int(v) => {
            out.push(TAG_INT);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            out.extend_from_slice(pod_bytes(v));
        }
        Bat::Bigint(v) => {
            out.push(TAG_BIGINT);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            out.extend_from_slice(pod_bytes(v));
        }
        Bat::Double(v) => {
            out.push(TAG_DOUBLE);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            out.extend_from_slice(pod_bytes(v));
        }
        Bat::Decimal { data, scale } => {
            out.push(TAG_DECIMAL);
            out.push(*scale);
            out.extend_from_slice(&(data.len() as u64).to_le_bytes());
            out.extend_from_slice(pod_bytes(data));
        }
        Bat::Varchar { offsets, heap } => {
            out.push(TAG_VARCHAR);
            out.extend_from_slice(&(offsets.len() as u64).to_le_bytes());
            out.extend_from_slice(pod_bytes(offsets));
            let raw = heap.raw();
            out.extend_from_slice(&(raw.len() as u64).to_le_bytes());
            out.extend_from_slice(raw);
        }
        Bat::Date(v) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&(v.len() as u64).to_le_bytes());
            out.extend_from_slice(pod_bytes(v));
        }
    }
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u8(r: &mut impl Read) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Deserialise one BAT payload from `r`. Lengths are sanity-capped so a
/// corrupt length cannot trigger an enormous allocation.
pub fn decode_bat(r: &mut impl Read) -> Result<Bat> {
    let tag = read_u8(r)?;
    let scale = if tag == TAG_DECIMAL { read_u8(r)? } else { 0 };
    let len = read_u64(r)?;
    if len > MAX_LEN {
        return Err(MlError::Corrupt(format!("column length {len} exceeds sanity bound")));
    }
    let len = len as usize;
    Ok(match tag {
        TAG_BOOL => Bat::Bool(read_pod_vec(r, len)?),
        TAG_INT => Bat::Int(read_pod_vec(r, len)?),
        TAG_BIGINT => Bat::Bigint(read_pod_vec(r, len)?),
        TAG_DOUBLE => Bat::Double(read_pod_vec(r, len)?),
        TAG_DECIMAL => Bat::Decimal { data: read_pod_vec(r, len)?, scale },
        TAG_VARCHAR => {
            let offsets: Vec<u32> = read_pod_vec(r, len)?;
            let heap_len = read_u64(r)?;
            if heap_len > MAX_LEN {
                return Err(MlError::Corrupt("heap length exceeds sanity bound".into()));
            }
            let mut heap = vec![0u8; heap_len as usize];
            r.read_exact(&mut heap)?;
            for &o in &offsets {
                if o as u64 + 4 > heap_len && o != 0 {
                    return Err(MlError::Corrupt(format!("string offset {o} out of heap")));
                }
            }
            Bat::Varchar { offsets, heap: StringHeap::from_raw(heap) }
        }
        TAG_DATE => Bat::Date(read_pod_vec(r, len)?),
        t => return Err(MlError::Corrupt(format!("unknown column tag {t}"))),
    })
}

/// Serialise a block of aligned columns as one length-prefixed frame —
/// the record format of execution-time spill files (pipeline breakers
/// writing partitions/runs to disk reuse the column-file BAT encoding).
/// Returns the number of bytes written.
pub fn write_chunk_frame(w: &mut impl Write, cols: &[&Bat]) -> Result<u64> {
    let mut payload = Vec::new();
    payload.extend_from_slice(&(cols.len() as u32).to_le_bytes());
    for c in cols {
        encode_bat(&mut payload, c);
    }
    fault::write_all("spill.frame.write", w, &(payload.len() as u64).to_le_bytes())?;
    fault::write_all("spill.frame.write", w, &payload)?;
    Ok(8 + payload.len() as u64)
}

/// Read one frame written by [`write_chunk_frame`]. `Ok(None)` signals a
/// clean end-of-file (no partial frame bytes).
pub fn read_chunk_frame(r: &mut impl Read) -> Result<Option<Vec<Bat>>> {
    let mut lenb = [0u8; 8];
    let mut filled = 0usize;
    while filled < lenb.len() {
        match fault::read("spill.frame.read", r, &mut lenb[filled..]) {
            // EOF on a frame boundary is the clean end of the file; EOF
            // inside the header means the file was truncated mid-frame.
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(MlError::Corrupt("spill frame header truncated".into())),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u64::from_le_bytes(lenb);
    if len > MAX_LEN {
        return Err(MlError::Corrupt(format!("spill frame length {len} exceeds sanity bound")));
    }
    let mut payload = vec![0u8; len as usize];
    fault::read_exact("spill.frame.read", r, &mut payload)?;
    let mut cursor = payload.as_slice();
    let mut nb = [0u8; 4];
    cursor.read_exact(&mut nb)?;
    let ncols = u32::from_le_bytes(nb) as usize;
    if ncols > 100_000 {
        return Err(MlError::Corrupt("spill frame too wide".into()));
    }
    let mut cols = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        cols.push(decode_bat(&mut cursor)?);
    }
    Ok(Some(cols))
}

/// Write a BAT to a column file (atomically: temp file + rename). A
/// failure anywhere removes the temp file — no `.tmp` orphans survive an
/// errored write.
pub fn write_column_file(path: &Path, bat: &Bat) -> Result<()> {
    let tmp = path.with_extension("tmp");
    let res = (|| -> Result<()> {
        let mut w = BufWriter::new(fault::create("persist.column.create", &tmp)?);
        let mut payload = Vec::with_capacity(bat.size_bytes() + 16);
        encode_bat(&mut payload, bat);
        fault::write_all("persist.column.write", &mut w, MAGIC)?;
        fault::write_all("persist.column.write", &mut w, &ENDIAN_MARK.to_ne_bytes())?;
        fault::write_all("persist.column.write", &mut w, &payload)?;
        fault::write_all("persist.column.write", &mut w, &fnv1a(&payload).to_le_bytes())?;
        fault::flush("persist.column.flush", &mut w)?;
        drop(w);
        fault::rename("persist.column.rename", &tmp, path)?;
        Ok(())
    })();
    if res.is_err() {
        let _ = fault::remove_file("persist.column.cleanup", &tmp);
    }
    res
}

/// Read a BAT from a column file, validating magic, endianness and
/// checksum. Any failure is reported as [`MlError::Corrupt`] — never a
/// panic or abort (paper §3.4: a corrupt database must surface as an
/// error to the embedding process).
pub fn read_column_file(path: &Path) -> Result<Bat> {
    let mut r = BufReader::new(fault::open("persist.column.open", path)?);
    let mut magic = [0u8; 4];
    fault::read_exact("persist.column.read", &mut r, &mut magic)?;
    if &magic != MAGIC {
        return Err(MlError::Corrupt(format!("{}: bad magic", path.display())));
    }
    let mut em = [0u8; 2];
    fault::read_exact("persist.column.read", &mut r, &mut em)?;
    if u16::from_ne_bytes(em) != ENDIAN_MARK {
        return Err(MlError::Corrupt(format!("{}: foreign endianness", path.display())));
    }
    let mut rest = Vec::new();
    fault::read_to_end("persist.column.read", &mut r, &mut rest)?;
    if rest.len() < 8 {
        return Err(MlError::Corrupt(format!("{}: truncated", path.display())));
    }
    let (payload, ck) = rest.split_at(rest.len() - 8);
    if fnv1a(payload) != u64::from_le_bytes(ck.try_into().unwrap()) {
        return Err(MlError::Corrupt(format!("{}: checksum mismatch", path.display())));
    }
    let mut cursor = payload;
    decode_bat(&mut cursor)
}

// ---------------------------------------------------------------------------
// Zonemap sidecars
// ---------------------------------------------------------------------------

/// The sidecar path of a column file's zonemap (`<file>.zm`).
pub fn zonemap_sidecar(column_path: &Path) -> PathBuf {
    let mut os = column_path.as_os_str().to_os_string();
    os.push(".zm");
    PathBuf::from(os)
}

/// Write a zonemap sidecar:
/// `[magic "MLZ1"][endian][rows u64][nzones u64][mins][maxs][fnv checksum]`,
/// atomically via temp file + rename. Sidecars are pure caches — readers
/// fall back to rebuilding from the column on any validation failure.
pub fn write_zonemap_file(path: &Path, zm: &Zonemap) -> Result<()> {
    let tmp = path.with_extension("zmtmp");
    let res = (|| -> Result<()> {
        let mut w = BufWriter::new(fault::create("persist.zonemap.create", &tmp)?);
        let mut payload = Vec::with_capacity(16 + zm.n_zones() * 16);
        payload.extend_from_slice(&(zm.rows() as u64).to_le_bytes());
        payload.extend_from_slice(&(zm.n_zones() as u64).to_le_bytes());
        payload.extend_from_slice(pod_bytes(zm.mins()));
        payload.extend_from_slice(pod_bytes(zm.maxs()));
        fault::write_all("persist.zonemap.write", &mut w, ZM_MAGIC)?;
        fault::write_all("persist.zonemap.write", &mut w, &ENDIAN_MARK.to_ne_bytes())?;
        fault::write_all("persist.zonemap.write", &mut w, &payload)?;
        fault::write_all("persist.zonemap.write", &mut w, &fnv1a(&payload).to_le_bytes())?;
        fault::flush("persist.zonemap.flush", &mut w)?;
        drop(w);
        fault::rename("persist.zonemap.rename", &tmp, path)?;
        Ok(())
    })();
    if res.is_err() {
        let _ = fault::remove_file("persist.zonemap.cleanup", &tmp);
    }
    res
}

/// Read a zonemap sidecar, validating magic, endianness, checksum and
/// shape. Any failure is [`MlError::Corrupt`]; callers treat it as a
/// cache miss and rebuild from the column data.
pub fn read_zonemap_file(path: &Path) -> Result<Zonemap> {
    let mut r = BufReader::new(fault::open("persist.zonemap.open", path)?);
    let mut magic = [0u8; 4];
    fault::read_exact("persist.zonemap.read", &mut r, &mut magic)?;
    if &magic != ZM_MAGIC {
        return Err(MlError::Corrupt(format!("{}: bad zonemap magic", path.display())));
    }
    let mut em = [0u8; 2];
    fault::read_exact("persist.zonemap.read", &mut r, &mut em)?;
    if u16::from_ne_bytes(em) != ENDIAN_MARK {
        return Err(MlError::Corrupt(format!("{}: foreign endianness", path.display())));
    }
    let mut rest = Vec::new();
    fault::read_to_end("persist.zonemap.read", &mut r, &mut rest)?;
    if rest.len() < 8 {
        return Err(MlError::Corrupt(format!("{}: truncated zonemap", path.display())));
    }
    let (payload, ck) = rest.split_at(rest.len() - 8);
    if fnv1a(payload) != u64::from_le_bytes(ck.try_into().unwrap()) {
        return Err(MlError::Corrupt(format!("{}: zonemap checksum mismatch", path.display())));
    }
    let mut cursor = payload;
    let rows = read_u64(&mut cursor)?;
    let nz = read_u64(&mut cursor)?;
    if rows > MAX_LEN || nz > MAX_LEN {
        return Err(MlError::Corrupt("zonemap length exceeds sanity bound".into()));
    }
    let mins: Vec<i64> = read_pod_vec(&mut cursor, nz as usize)?;
    let maxs: Vec<i64> = read_pod_vec(&mut cursor, nz as usize)?;
    Zonemap::from_parts(rows as usize, mins, maxs)
        .ok_or_else(|| MlError::Corrupt(format!("{}: zonemap shape mismatch", path.display())))
}

// ---------------------------------------------------------------------------
// Column-statistics sidecars
// ---------------------------------------------------------------------------

/// The sidecar path of a column file's statistics (`<file>.st`).
pub fn stats_sidecar(column_path: &Path) -> PathBuf {
    let mut os = column_path.as_os_str().to_os_string();
    os.push(".st");
    PathBuf::from(os)
}

/// Write a column-statistics sidecar:
/// `[magic "MLS1"][endian][rows u64][nulls u64][has_range u8][min i64]
/// [max i64][nregs u64][registers][fnv checksum]`, atomically via temp
/// file + rename. Like zonemap sidecars these are pure caches — readers
/// fall back to rebuilding from the column on any validation failure.
pub fn write_stats_file(path: &Path, st: &ColumnStats) -> Result<()> {
    let tmp = path.with_extension("sttmp");
    let res = (|| -> Result<()> {
        let mut w = BufWriter::new(fault::create("persist.stats.create", &tmp)?);
        let regs = st.sketch.registers();
        let mut payload = Vec::with_capacity(41 + regs.len());
        payload.extend_from_slice(&(st.rows as u64).to_le_bytes());
        payload.extend_from_slice(&(st.nulls as u64).to_le_bytes());
        payload.push(st.has_range as u8);
        payload.extend_from_slice(&st.min_key.to_le_bytes());
        payload.extend_from_slice(&st.max_key.to_le_bytes());
        payload.extend_from_slice(&(regs.len() as u64).to_le_bytes());
        payload.extend_from_slice(regs);
        fault::write_all("persist.stats.write", &mut w, ST_MAGIC)?;
        fault::write_all("persist.stats.write", &mut w, &ENDIAN_MARK.to_ne_bytes())?;
        fault::write_all("persist.stats.write", &mut w, &payload)?;
        fault::write_all("persist.stats.write", &mut w, &fnv1a(&payload).to_le_bytes())?;
        fault::flush("persist.stats.flush", &mut w)?;
        drop(w);
        fault::rename("persist.stats.rename", &tmp, path)?;
        Ok(())
    })();
    if res.is_err() {
        let _ = fault::remove_file("persist.stats.cleanup", &tmp);
    }
    res
}

/// Read a column-statistics sidecar, validating magic, endianness,
/// checksum and register-count shape. Any failure is [`MlError::Corrupt`];
/// callers treat it as a cache miss and rebuild from the column data.
pub fn read_stats_file(path: &Path) -> Result<ColumnStats> {
    let mut r = BufReader::new(fault::open("persist.stats.open", path)?);
    let mut magic = [0u8; 4];
    fault::read_exact("persist.stats.read", &mut r, &mut magic)?;
    if &magic != ST_MAGIC {
        return Err(MlError::Corrupt(format!("{}: bad stats magic", path.display())));
    }
    let mut em = [0u8; 2];
    fault::read_exact("persist.stats.read", &mut r, &mut em)?;
    if u16::from_ne_bytes(em) != ENDIAN_MARK {
        return Err(MlError::Corrupt(format!("{}: foreign endianness", path.display())));
    }
    let mut rest = Vec::new();
    fault::read_to_end("persist.stats.read", &mut r, &mut rest)?;
    if rest.len() < 8 {
        return Err(MlError::Corrupt(format!("{}: truncated stats", path.display())));
    }
    let (payload, ck) = rest.split_at(rest.len() - 8);
    if fnv1a(payload) != u64::from_le_bytes(ck.try_into().unwrap()) {
        return Err(MlError::Corrupt(format!("{}: stats checksum mismatch", path.display())));
    }
    let mut cursor = payload;
    let rows = read_u64(&mut cursor)?;
    let nulls = read_u64(&mut cursor)?;
    let has_range = read_u8(&mut cursor)? != 0;
    let mut b8 = [0u8; 8];
    cursor.read_exact(&mut b8)?;
    let min_key = i64::from_le_bytes(b8);
    cursor.read_exact(&mut b8)?;
    let max_key = i64::from_le_bytes(b8);
    let nregs = read_u64(&mut cursor)?;
    if rows > MAX_LEN || nulls > rows || nregs as usize != HLL_REGS {
        return Err(MlError::Corrupt(format!("{}: stats shape mismatch", path.display())));
    }
    let mut regs = vec![0u8; nregs as usize];
    cursor.read_exact(&mut regs)?;
    let sketch = NdvSketch::from_registers(regs)
        .ok_or_else(|| MlError::Corrupt(format!("{}: bad register count", path.display())))?;
    Ok(ColumnStats {
        rows: rows as usize,
        nulls: nulls as usize,
        min_key,
        max_key,
        has_range,
        sketch,
    })
}

// ---------------------------------------------------------------------------
// String-dictionary sidecars
// ---------------------------------------------------------------------------

/// The sidecar path of a column file's string dictionary (`<file>.dict`).
pub fn dict_sidecar(column_path: &Path) -> PathBuf {
    let mut os = column_path.as_os_str().to_os_string();
    os.push(".dict");
    PathBuf::from(os)
}

/// Write a string-dictionary sidecar:
/// `[magic "MLD1"][endian][rows u64][nvals u64][val_offs (nvals+1) u32]
/// [val_buf_len u64][val_buf][codes (rows) u32][fnv checksum]`, atomically
/// via temp file + rename. Zone summaries are rebuilt on load rather than
/// persisted. Like the other sidecars these are pure caches — readers
/// fall back to rebuilding from the column on any validation failure.
pub fn write_dict_file(path: &Path, d: &StrDict) -> Result<()> {
    let tmp = path.with_extension("dicttmp");
    let res = (|| -> Result<()> {
        let mut w = BufWriter::new(fault::create("persist.dict.create", &tmp)?);
        let (val_offs, val_buf, codes) = d.raw_parts();
        let mut payload =
            Vec::with_capacity(24 + val_offs.len() * 4 + val_buf.len() + codes.len() * 4);
        payload.extend_from_slice(&(codes.len() as u64).to_le_bytes());
        payload.extend_from_slice(&(d.len() as u64).to_le_bytes());
        payload.extend_from_slice(pod_bytes(val_offs));
        payload.extend_from_slice(&(val_buf.len() as u64).to_le_bytes());
        payload.extend_from_slice(val_buf);
        payload.extend_from_slice(pod_bytes(codes));
        fault::write_all("persist.dict.write", &mut w, DC_MAGIC)?;
        fault::write_all("persist.dict.write", &mut w, &ENDIAN_MARK.to_ne_bytes())?;
        fault::write_all("persist.dict.write", &mut w, &payload)?;
        fault::write_all("persist.dict.write", &mut w, &fnv1a(&payload).to_le_bytes())?;
        fault::flush("persist.dict.flush", &mut w)?;
        drop(w);
        fault::rename("persist.dict.rename", &tmp, path)?;
        Ok(())
    })();
    if res.is_err() {
        let _ = fault::remove_file("persist.dict.cleanup", &tmp);
    }
    res
}

/// Read a string-dictionary sidecar, validating magic, endianness,
/// checksum and the dictionary invariants (sorted distinct values, codes
/// in range). Any failure is [`MlError::Corrupt`]; callers treat it as a
/// cache miss and rebuild from the column data.
pub fn read_dict_file(path: &Path) -> Result<StrDict> {
    let mut r = BufReader::new(fault::open("persist.dict.open", path)?);
    let mut magic = [0u8; 4];
    fault::read_exact("persist.dict.read", &mut r, &mut magic)?;
    if &magic != DC_MAGIC {
        return Err(MlError::Corrupt(format!("{}: bad dict magic", path.display())));
    }
    let mut em = [0u8; 2];
    fault::read_exact("persist.dict.read", &mut r, &mut em)?;
    if u16::from_ne_bytes(em) != ENDIAN_MARK {
        return Err(MlError::Corrupt(format!("{}: foreign endianness", path.display())));
    }
    let mut rest = Vec::new();
    fault::read_to_end("persist.dict.read", &mut r, &mut rest)?;
    if rest.len() < 8 {
        return Err(MlError::Corrupt(format!("{}: truncated dict", path.display())));
    }
    let (payload, ck) = rest.split_at(rest.len() - 8);
    if fnv1a(payload) != u64::from_le_bytes(ck.try_into().unwrap()) {
        return Err(MlError::Corrupt(format!("{}: dict checksum mismatch", path.display())));
    }
    let mut cursor = payload;
    let rows = read_u64(&mut cursor)?;
    let nvals = read_u64(&mut cursor)?;
    if rows > MAX_LEN || nvals > rows.max(1) {
        return Err(MlError::Corrupt("dict length exceeds sanity bound".into()));
    }
    let val_offs: Vec<u32> = read_pod_vec(&mut cursor, nvals as usize + 1)?;
    let buf_len = read_u64(&mut cursor)?;
    if buf_len > MAX_LEN {
        return Err(MlError::Corrupt("dict value-buffer length exceeds sanity bound".into()));
    }
    let mut val_buf = vec![0u8; buf_len as usize];
    cursor.read_exact(&mut val_buf)?;
    let codes: Vec<u32> = read_pod_vec(&mut cursor, rows as usize)?;
    StrDict::from_parts(val_offs, val_buf, codes)
        .ok_or_else(|| MlError::Corrupt(format!("{}: dict invariants violated", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use monetlite_types::ColumnBuffer;

    fn roundtrip(bat: &Bat) {
        let mut buf = Vec::new();
        encode_bat(&mut buf, bat);
        let got = decode_bat(&mut buf.as_slice()).unwrap();
        assert_eq!(got.to_buffer(None), bat.to_buffer(None));
    }

    #[test]
    fn encode_decode_all_types() {
        roundtrip(&Bat::Bool(vec![0, 1, i8::MIN]));
        roundtrip(&Bat::Int(vec![1, -5, i32::MIN]));
        roundtrip(&Bat::Bigint(vec![i64::MAX, 0, i64::MIN]));
        roundtrip(&Bat::Double(vec![1.5, -2.25]));
        roundtrip(&Bat::Decimal { data: vec![150, -75], scale: 2 });
        roundtrip(&Bat::Date(vec![0, 10_000]));
        roundtrip(&Bat::from_buffer(&ColumnBuffer::Varchar(vec![
            Some("hello".into()),
            None,
            Some("hello".into()),
            Some("".into()),
        ])));
    }

    #[test]
    fn chunk_frames_roundtrip_and_eof_cleanly() {
        let a = Bat::Int(vec![1, 2, 3]);
        let b = Bat::from_buffer(&ColumnBuffer::Varchar(vec![Some("x".into()), None]));
        let mut buf = Vec::new();
        let n1 = write_chunk_frame(&mut buf, &[&a, &b]).unwrap();
        let n2 = write_chunk_frame(&mut buf, &[&a]).unwrap();
        assert_eq!(buf.len() as u64, n1 + n2);
        let mut r = buf.as_slice();
        let f1 = read_chunk_frame(&mut r).unwrap().unwrap();
        assert_eq!(f1.len(), 2);
        assert_eq!(f1[0].to_buffer(None), a.to_buffer(None));
        assert_eq!(f1[1].to_buffer(None), b.to_buffer(None));
        let f2 = read_chunk_frame(&mut r).unwrap().unwrap();
        assert_eq!(f2.len(), 1);
        assert!(read_chunk_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn truncated_chunk_frame_is_an_error() {
        let mut buf = Vec::new();
        write_chunk_frame(&mut buf, &[&Bat::Int(vec![1, 2, 3])]).unwrap();
        let cut = &buf[..buf.len() - 2];
        let mut r = cut;
        assert!(read_chunk_frame(&mut r).is_err(), "torn frame must not decode");
    }

    #[test]
    fn file_roundtrip() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c1.bat");
        let bat = Bat::Int((0..10_000).collect());
        write_column_file(&path, &bat).unwrap();
        let got = read_column_file(&path).unwrap();
        assert_eq!(got.to_buffer(None), bat.to_buffer(None));
    }

    #[test]
    fn corruption_is_an_error_not_a_crash() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c1.bat");
        write_column_file(&path, &Bat::Int(vec![1, 2, 3])).unwrap();
        // Flip a payload byte.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        match read_column_file(&path) {
            Err(MlError::Corrupt(_)) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c1.bat");
        std::fs::write(&path, b"NOTADATABASEFILE").unwrap();
        assert!(matches!(read_column_file(&path), Err(MlError::Corrupt(_))));
    }

    #[test]
    fn truncated_file_rejected() {
        let dir = tempfile::tempdir().unwrap();
        let path = dir.path().join("c1.bat");
        write_column_file(&path, &Bat::Int(vec![1, 2, 3])).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();
        assert!(read_column_file(&path).is_err());
    }

    #[test]
    fn insane_length_rejected() {
        let mut buf = vec![TAG_INT];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode_bat(&mut buf.as_slice()), Err(MlError::Corrupt(_))));
    }

    #[test]
    fn zonemap_file_roundtrip_and_corruption() {
        let dir = tempfile::tempdir().unwrap();
        let col = dir.path().join("c1.bat");
        let zp = zonemap_sidecar(&col);
        assert!(zp.to_string_lossy().ends_with("c1.bat.zm"));
        let bat = Bat::Int((0..20_000).collect());
        let zm = Zonemap::build(&bat);
        write_zonemap_file(&zp, &zm).unwrap();
        let got = read_zonemap_file(&zp).unwrap();
        assert_eq!(got.rows(), zm.rows());
        assert_eq!(got.mins(), zm.mins());
        assert_eq!(got.maxs(), zm.maxs());
        // Corruption surfaces as Corrupt (callers rebuild).
        let mut bytes = std::fs::read(&zp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&zp, &bytes).unwrap();
        assert!(matches!(read_zonemap_file(&zp), Err(MlError::Corrupt(_))));
    }

    #[test]
    fn stats_file_roundtrip_and_corruption() {
        let dir = tempfile::tempdir().unwrap();
        let col = dir.path().join("c1.bat");
        let sp = stats_sidecar(&col);
        assert!(sp.to_string_lossy().ends_with("c1.bat.st"));
        let bat =
            Bat::Int((0..50_000).map(|i| if i % 7 == 0 { i32::MIN } else { i % 999 }).collect());
        let st = ColumnStats::build(&bat);
        write_stats_file(&sp, &st).unwrap();
        let got = read_stats_file(&sp).unwrap();
        assert_eq!(got.rows, st.rows);
        assert_eq!(got.nulls, st.nulls);
        assert_eq!((got.min_key, got.max_key, got.has_range), (st.min_key, st.max_key, true));
        assert_eq!(got.sketch, st.sketch, "registers roundtrip bit-exactly");
        // Corruption surfaces as Corrupt (callers rebuild).
        let mut bytes = std::fs::read(&sp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&sp, &bytes).unwrap();
        assert!(matches!(read_stats_file(&sp), Err(MlError::Corrupt(_))));
        // Truncation too.
        write_stats_file(&sp, &st).unwrap();
        let bytes = std::fs::read(&sp).unwrap();
        std::fs::write(&sp, &bytes[..bytes.len() - 10]).unwrap();
        assert!(read_stats_file(&sp).is_err());
    }

    #[test]
    fn stats_file_no_range_and_bad_magic() {
        let dir = tempfile::tempdir().unwrap();
        let sp = dir.path().join("c2.bat.st");
        let st = ColumnStats::build(&Bat::Int(vec![i32::MIN; 4])); // all NULL
        write_stats_file(&sp, &st).unwrap();
        let got = read_stats_file(&sp).unwrap();
        assert!(!got.has_range);
        assert_eq!((got.rows, got.nulls), (4, 4));
        std::fs::write(&sp, b"NOTSTATS").unwrap();
        assert!(matches!(read_stats_file(&sp), Err(MlError::Corrupt(_))));
    }

    #[test]
    fn dict_file_roundtrip_and_corruption() {
        let dir = tempfile::tempdir().unwrap();
        let col = dir.path().join("c1.bat");
        let dp = dict_sidecar(&col);
        assert!(dp.to_string_lossy().ends_with("c1.bat.dict"));
        let bat = Bat::from_buffer(&ColumnBuffer::Varchar(
            (0..5000)
                .map(|i| if i % 11 == 0 { None } else { Some(format!("v{:04}", i % 300)) })
                .collect(),
        ));
        let d = StrDict::build(&bat).unwrap();
        write_dict_file(&dp, &d).unwrap();
        let got = read_dict_file(&dp).unwrap();
        assert_eq!(got, d, "dictionary roundtrips bit-exactly");
        // Corruption surfaces as Corrupt (callers rebuild).
        let mut bytes = std::fs::read(&dp).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&dp, &bytes).unwrap();
        assert!(matches!(read_dict_file(&dp), Err(MlError::Corrupt(_))));
        // Truncation too.
        write_dict_file(&dp, &d).unwrap();
        let bytes = std::fs::read(&dp).unwrap();
        std::fs::write(&dp, &bytes[..bytes.len() - 9]).unwrap();
        assert!(read_dict_file(&dp).is_err());
        // Bad magic.
        std::fs::write(&dp, b"NOTADICT").unwrap();
        assert!(matches!(read_dict_file(&dp), Err(MlError::Corrupt(_))));
    }

    #[test]
    fn varchar_offset_out_of_heap_rejected() {
        // Hand-craft: one offset pointing past the heap.
        let mut buf = vec![TAG_VARCHAR];
        buf.extend_from_slice(&1u64.to_le_bytes()); // 1 offset
        buf.extend_from_slice(&999u32.to_le_bytes()); // bogus offset
        buf.extend_from_slice(&1u64.to_le_bytes()); // heap of 1 byte
        buf.push(0xFF);
        assert!(matches!(decode_bat(&mut buf.as_slice()), Err(MlError::Corrupt(_))));
    }
}
