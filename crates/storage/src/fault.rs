//! Deterministic I/O fault injection.
//!
//! Every fallible filesystem operation in the storage layer (column
//! files, sidecars, WAL, catalog, checkpoint GC) and in the executor's
//! spill files routes through the wrappers in this module, each tagged
//! with a stable *site* name like `"persist.column.rename"`. The
//! injector is process-global and disarmed by default — a disarmed
//! wrapper costs one relaxed atomic load before delegating to `std` —
//! so production builds carry no measurable overhead and no behavioural
//! change.
//!
//! When armed ([`arm`]) a global monotonic counter assigns each wrapped
//! I/O an ordinal and the active [`FaultPolicy`] decides whether to
//! inject. Three [`FaultMode`]s are supported:
//!
//! * [`FaultMode::Error`] — the operation fails with an injected
//!   `io::Error` and has no effect (a transient `EIO`).
//! * [`FaultMode::ShortWrite`] — a write persists only a prefix of the
//!   buffer and then reports failure (`ENOSPC` mid-buffer). Non-write
//!   operations degrade to [`FaultMode::Error`].
//! * [`FaultMode::TornWrite`] — a write persists a prefix but reports
//!   *success*; every subsequent wrapped I/O then fails ("the process
//!   lost power mid-write"). Recovery code must cope with the torn
//!   bytes on the next open.
//!
//! The exhaustive fail-at-Nth-I/O sweep in `tests/tests/fault_sweep.rs`
//! runs a full workload once per ordinal until a run completes without
//! firing — the SQLite I/O-error-test discipline.
//!
//! Besides injection, the wrappers also give every *real* error uniform
//! context: `"<op> <path>: <cause> (site=<name>)"`, so an I/O failure
//! anywhere in the engine names the operation, the file and the code
//! site that issued it.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Which wrapped I/O the armed injector fails.
#[derive(Debug, Clone)]
pub enum FaultPolicy {
    /// Fail the k-th wrapped I/O after arming (0-based).
    Nth(u64),
    /// Fail every wrapped I/O whose site name contains the substring.
    SiteMatching(String),
}

/// How the selected I/O fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Fail with an injected error; the operation has no effect.
    Error,
    /// Writes persist a prefix of the buffer, then report failure.
    ShortWrite,
    /// Writes persist a prefix of the buffer but report success; every
    /// later wrapped I/O fails (simulated power loss mid-write).
    TornWrite,
}

/// What [`disarm`] reports about the armed window.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultReport {
    /// Wrapped I/O operations counted while armed.
    pub ios: u64,
    /// Whether the policy selected (and injected) a fault.
    pub fired: bool,
}

struct Armed {
    policy: FaultPolicy,
    mode: FaultMode,
    count: u64,
    fired: bool,
    /// Torn-write kill switch: the simulated process has "died" and every
    /// further wrapped I/O fails until [`disarm`].
    dead: bool,
}

/// Disarmed fast path: one relaxed load decides "not injecting".
static ENABLED: AtomicBool = AtomicBool::new(false);
static STATE: Mutex<Option<Armed>> = Mutex::new(None);
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serialise fault-injection tests: the injector is process-global, so
/// every test that arms it must hold this guard for its whole armed
/// region (including recovery assertions).
pub fn test_lock() -> MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Arm the injector. Resets the I/O counter and the fired flag.
pub fn arm(policy: FaultPolicy, mode: FaultMode) {
    let mut g = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    *g = Some(Armed { policy, mode, count: 0, fired: false, dead: false });
    ENABLED.store(true, Ordering::SeqCst);
}

/// Disarm the injector and report what happened while it was armed.
pub fn disarm() -> FaultReport {
    ENABLED.store(false, Ordering::SeqCst);
    let mut g = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    match g.take() {
        Some(s) => FaultReport { ios: s.count, fired: s.fired },
        None => FaultReport::default(),
    }
}

enum Decision {
    Pass,
    Fail(FaultMode),
    /// Post-torn-write kill switch: fail without consuming an ordinal.
    Dead,
}

fn decide(site: &str) -> Decision {
    if !ENABLED.load(Ordering::Relaxed) {
        return Decision::Pass;
    }
    let mut g = STATE.lock().unwrap_or_else(PoisonError::into_inner);
    let Some(s) = g.as_mut() else {
        return Decision::Pass;
    };
    if s.dead {
        return Decision::Dead;
    }
    let n = s.count;
    s.count += 1;
    let hit = match &s.policy {
        FaultPolicy::Nth(k) => n == *k,
        FaultPolicy::SiteMatching(pat) => site.contains(pat.as_str()),
    };
    if hit {
        s.fired = true;
        if s.mode == FaultMode::TornWrite {
            s.dead = true;
        }
        Decision::Fail(s.mode)
    } else {
        Decision::Pass
    }
}

fn injected(op: &str, what: &str, site: &str) -> std::io::Error {
    std::io::Error::other(format!("{op} {what}: injected I/O fault (site={site})"))
}

/// Wrap a real error with operation, target and site context. The error
/// kind is preserved so callers matching on `NotFound`/`AlreadyExists`
/// keep working.
fn ctx(op: &str, what: &str, site: &str, e: std::io::Error) -> std::io::Error {
    std::io::Error::new(e.kind(), format!("{op} {what}: {e} (site={site})"))
}

fn p(path: &Path) -> String {
    path.display().to_string()
}

// ---------------------------------------------------------------------------
// Path-level wrappers
// ---------------------------------------------------------------------------

/// `File::create` through the failpoint.
pub fn create(site: &'static str, path: &Path) -> std::io::Result<File> {
    match decide(site) {
        Decision::Pass => File::create(path).map_err(|e| ctx("create", &p(path), site, e)),
        _ => Err(injected("create", &p(path), site)),
    }
}

/// `File::open` through the failpoint.
pub fn open(site: &'static str, path: &Path) -> std::io::Result<File> {
    match decide(site) {
        Decision::Pass => File::open(path).map_err(|e| ctx("open", &p(path), site, e)),
        _ => Err(injected("open", &p(path), site)),
    }
}

/// Open append-mode (creating if absent) through the failpoint.
pub fn open_append(site: &'static str, path: &Path) -> std::io::Result<File> {
    match decide(site) {
        Decision::Pass => OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| ctx("open-append", &p(path), site, e)),
        _ => Err(injected("open-append", &p(path), site)),
    }
}

/// Exclusive create (`create_new`) through the failpoint; preserves the
/// `AlreadyExists` kind callers probe for.
pub fn create_new(site: &'static str, path: &Path) -> std::io::Result<File> {
    match decide(site) {
        Decision::Pass => OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
            .map_err(|e| ctx("create-new", &p(path), site, e)),
        _ => Err(injected("create-new", &p(path), site)),
    }
}

/// `fs::rename` through the failpoint.
pub fn rename(site: &'static str, from: &Path, to: &Path) -> std::io::Result<()> {
    let what = format!("{} -> {}", from.display(), to.display());
    match decide(site) {
        Decision::Pass => std::fs::rename(from, to).map_err(|e| ctx("rename", &what, site, e)),
        _ => Err(injected("rename", &what, site)),
    }
}

/// `fs::remove_file` through the failpoint.
pub fn remove_file(site: &'static str, path: &Path) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => std::fs::remove_file(path).map_err(|e| ctx("remove", &p(path), site, e)),
        _ => Err(injected("remove", &p(path), site)),
    }
}

/// `fs::create_dir_all` through the failpoint.
pub fn create_dir_all(site: &'static str, path: &Path) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => {
            std::fs::create_dir_all(path).map_err(|e| ctx("mkdir", &p(path), site, e))
        }
        _ => Err(injected("mkdir", &p(path), site)),
    }
}

/// `fs::read_dir` through the failpoint, collecting the entries so
/// per-entry errors surface here with context too.
pub fn read_dir(site: &'static str, path: &Path) -> std::io::Result<Vec<std::fs::DirEntry>> {
    match decide(site) {
        Decision::Pass => std::fs::read_dir(path)
            .and_then(|it| it.collect::<std::io::Result<Vec<_>>>())
            .map_err(|e| ctx("readdir", &p(path), site, e)),
        _ => Err(injected("readdir", &p(path), site)),
    }
}

/// A pure failpoint for operations with no wrappable std call (e.g. temp
/// directory creation via the `tempfile` shim).
pub fn hit(site: &'static str) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => Ok(()),
        _ => Err(injected("io", site, site)),
    }
}

// ---------------------------------------------------------------------------
// Handle-level wrappers
// ---------------------------------------------------------------------------

/// `write_all` through the failpoint. [`FaultMode::ShortWrite`] persists
/// half the buffer then errors; [`FaultMode::TornWrite`] persists half,
/// reports success, and trips the kill switch.
pub fn write_all(site: &'static str, w: &mut impl Write, buf: &[u8]) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => w.write_all(buf).map_err(|e| ctx("write", site, site, e)),
        Decision::Fail(FaultMode::ShortWrite) => {
            let _ = w.write_all(&buf[..buf.len() / 2]);
            Err(injected("write", "short write", site))
        }
        Decision::Fail(FaultMode::TornWrite) => {
            let _ = w.write_all(&buf[..buf.len() / 2]);
            Ok(())
        }
        _ => Err(injected("write", "buffer", site)),
    }
}

/// `flush` through the failpoint.
pub fn flush(site: &'static str, w: &mut impl Write) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => w.flush().map_err(|e| ctx("flush", site, site, e)),
        _ => Err(injected("flush", "buffer", site)),
    }
}

/// `File::sync_all` through the failpoint.
pub fn sync_all(site: &'static str, f: &File) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => f.sync_all().map_err(|e| ctx("fsync", site, site, e)),
        _ => Err(injected("fsync", "file", site)),
    }
}

/// `File::set_len` through the failpoint (WAL truncate-to-known-good).
pub fn set_len(site: &'static str, f: &File, len: u64) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => f.set_len(len).map_err(|e| ctx("truncate", site, site, e)),
        _ => Err(injected("truncate", "file", site)),
    }
}

/// Query a handle's length through the failpoint.
pub fn file_len(site: &'static str, f: &File) -> std::io::Result<u64> {
    match decide(site) {
        Decision::Pass => f.metadata().map(|m| m.len()).map_err(|e| ctx("stat", site, site, e)),
        _ => Err(injected("stat", "file", site)),
    }
}

/// `read` (single call, for header loops) through the failpoint.
pub fn read(site: &'static str, r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    match decide(site) {
        Decision::Pass => r.read(buf).map_err(|e| ctx("read", site, site, e)),
        _ => Err(injected("read", "buffer", site)),
    }
}

/// `read_exact` through the failpoint.
pub fn read_exact(site: &'static str, r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<()> {
    match decide(site) {
        Decision::Pass => r.read_exact(buf).map_err(|e| ctx("read", site, site, e)),
        _ => Err(injected("read", "buffer", site)),
    }
}

/// `read_to_end` through the failpoint.
pub fn read_to_end(
    site: &'static str,
    r: &mut impl Read,
    buf: &mut Vec<u8>,
) -> std::io::Result<usize> {
    match decide(site) {
        Decision::Pass => r.read_to_end(buf).map_err(|e| ctx("read", site, site, e)),
        _ => Err(injected("read", "stream", site)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_wrappers_delegate() {
        let _g = test_lock();
        let mut buf = Vec::new();
        write_all("t.write", &mut buf, b"abc").unwrap();
        assert_eq!(buf, b"abc");
        let mut out = [0u8; 3];
        read_exact("t.read", &mut buf.as_slice(), &mut out).unwrap();
        assert_eq!(&out, b"abc");
    }

    #[test]
    fn nth_policy_fails_exactly_one_op() {
        let _g = test_lock();
        arm(FaultPolicy::Nth(1), FaultMode::Error);
        let mut buf = Vec::new();
        assert!(write_all("t.a", &mut buf, b"x").is_ok());
        let e = write_all("t.b", &mut buf, b"y").unwrap_err();
        assert!(e.to_string().contains("(site=t.b)"), "{e}");
        assert!(write_all("t.c", &mut buf, b"z").is_ok());
        let rep = disarm();
        assert!(rep.fired);
        assert_eq!(rep.ios, 3);
    }

    #[test]
    fn site_policy_fails_every_match() {
        let _g = test_lock();
        arm(FaultPolicy::SiteMatching("wal".into()), FaultMode::Error);
        let mut buf = Vec::new();
        assert!(write_all("persist.x", &mut buf, b"x").is_ok());
        assert!(write_all("wal.append", &mut buf, b"x").is_err());
        assert!(write_all("wal.flush", &mut buf, b"x").is_err());
        assert!(disarm().fired);
    }

    #[test]
    fn short_write_persists_a_prefix_then_errors() {
        let _g = test_lock();
        arm(FaultPolicy::Nth(0), FaultMode::ShortWrite);
        let mut buf = Vec::new();
        assert!(write_all("t.w", &mut buf, b"abcdef").is_err());
        disarm();
        assert_eq!(buf, b"abc", "exactly half the buffer persisted");
    }

    #[test]
    fn torn_write_reports_success_then_kills_all_io() {
        let _g = test_lock();
        arm(FaultPolicy::Nth(0), FaultMode::TornWrite);
        let mut buf = Vec::new();
        assert!(write_all("t.w", &mut buf, b"abcdef").is_ok(), "torn write lies");
        assert_eq!(buf, b"abc");
        assert!(write_all("t.w2", &mut buf, b"more").is_err(), "kill switch");
        assert!(flush("t.f", &mut std::io::sink()).is_err(), "kill switch");
        let rep = disarm();
        assert!(rep.fired);
        assert_eq!(rep.ios, 1, "dead I/O does not consume ordinals");
    }

    #[test]
    fn real_errors_gain_site_context_and_keep_their_kind() {
        let _g = test_lock();
        let e = open("t.open", Path::new("/definitely/not/here")).unwrap_err();
        assert_eq!(e.kind(), std::io::ErrorKind::NotFound);
        assert!(e.to_string().contains("(site=t.open)"), "{e}");
        assert!(e.to_string().contains("/definitely/not/here"), "{e}");
    }
}
